// Figure 15: Effect of the buffer size on the real datasets (UX, NE).
// The paper's headline observation (Sec. 7.2.4): once UX (19,499 objects,
// ~468KB) fits in the buffer (>= 512KB), the naive plane sweep degenerates
// to one linear scan and becomes the best method; the aSB-tree does not fit
// in the same buffer due to its pointer overhead, and ExactMaxRS behaves as
// on the synthetic data. NE (123,593 objects) never fits, so the ordering
// stays Naive > aSB-Tree > ExactMaxRS.
//
// The original datasets (R-tree Portal) are no longer distributed; the
// clustered stand-ins preserve the cardinalities, the [0, 10^6]^2 domain,
// and the clustering that these experiments depend on (see DESIGN.md).
#include "bench_common.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<size_t> buffers_kb = {64, 128, 256, 384, 512};

  for (const std::string dataset : {"ux", "ne"}) {
    auto objects = MakeDistribution(dataset, 0, args.seed);
    TablePrinter table(
        "Figure 15 (" + dataset + "): I/O cost vs buffer size, real data",
        "Buffer (KB)", {"Naive", "aSB-Tree", "ExactMaxRS"}, args.csv_path);
    for (size_t kb : buffers_kb) {
      const size_t memory = kb << 10;
      const RunOutcome naive =
          RunAlgorithm(Algorithm::kNaive, objects, kDefaultRange, memory);
      const RunOutcome asb =
          RunAlgorithm(Algorithm::kASBTree, objects, kDefaultRange, memory);
      const RunOutcome exact =
          RunAlgorithm(Algorithm::kExactMaxRS, objects, kDefaultRange, memory);
      if (naive.total_weight != exact.total_weight ||
          asb.total_weight != exact.total_weight) {
        std::fprintf(stderr, "RESULT MISMATCH at buffer=%zuKB\n", kb);
        return 1;
      }
      table.AddRow(std::to_string(kb),
                   {static_cast<double>(naive.io), static_cast<double>(asb.io),
                    static_cast<double>(exact.io)});
    }
  }
  return 0;
}
