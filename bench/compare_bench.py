#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and flag perf regressions.

The bench harness (bench_micro, bench_serve) writes flat JSON arrays of
records keyed by (bench, algo, dataset, n, threads, memory_bytes). This
tool joins two such artifacts on that key, prints a per-config delta table,
and exits non-zero when the NEW run regresses against the BASE run:

  - wall-clock regression: wall_seconds grows by more than --wall-tol
    (default 15%) on any config;
  - I/O regression: io_blocks grows at all on any config (block counts are
    deterministic per config in the MemEnv, so ANY growth is a real
    algorithmic regression, not noise).

Wall time is machine-dependent, so CI compares committed baselines with
--io-only (block counts only); the wall check is for same-machine A/B runs.
See docs/BENCHMARKING.md for the workflow.

Usage:
  compare_bench.py BASE.json NEW.json [--wall-tol=0.15] [--io-only]

Exit codes: 0 = no regression, 1 = regression found, 2 = usage/input error.
"""

import argparse
import json
import sys

KEY_FIELDS = ("bench", "algo", "dataset", "n", "threads", "memory_bytes")


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"cannot read {path}: {e}\n")
        sys.exit(2)
    if not isinstance(records, list):
        sys.stderr.write(f"{path}: expected a JSON array of bench records\n")
        sys.exit(2)
    keyed = {}
    for r in records:
        try:
            key = tuple(r[k] for k in KEY_FIELDS)
        except (KeyError, TypeError):
            sys.stderr.write(f"{path}: record missing key fields: {r}\n")
            sys.exit(2)
        if key in keyed:
            sys.stderr.write(f"{path}: duplicate config {key}\n")
            sys.exit(2)
        keyed[key] = r
    return keyed


def fmt_key(key):
    bench, algo, dataset, n, threads, memory = key
    return f"{bench}/{algo} {dataset} n={n} t={threads} M={memory >> 10}KB"


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts, fail on regressions")
    parser.add_argument("base", help="baseline artifact")
    parser.add_argument("new", help="candidate artifact")
    parser.add_argument("--wall-tol", type=float, default=0.15,
                        help="allowed relative wall-seconds growth "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--io-only", action="store_true",
                        help="check only I/O block counts (machine-portable)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline config is absent "
                             "from the new artifact")
    args = parser.parse_args()

    base = load_records(args.base)
    new = load_records(args.new)
    common = [k for k in base if k in new]
    if not common:
        sys.stderr.write("no common configs between the two artifacts\n")
        sys.exit(2)

    header = (f"{'config':<58}{'wall base':>12}{'wall new':>12}{'Δwall':>9}"
              f"{'io base':>12}{'io new':>12}{'Δio':>9}")
    print(header)
    print("-" * len(header))

    regressions = []
    for key in sorted(common):
        b, n = base[key], new[key]
        wall_b, wall_n = b["wall_seconds"], n["wall_seconds"]
        io_b, io_n = b["io_blocks"], n["io_blocks"]
        dwall = (wall_n - wall_b) / wall_b if wall_b > 0 else 0.0
        dio = (io_n - io_b) / io_b if io_b > 0 else (1.0 if io_n > io_b else 0.0)
        print(f"{fmt_key(key):<58}{wall_b:>12.4f}{wall_n:>12.4f}"
              f"{dwall:>+8.1%} {io_b:>11}{io_n:>12}{dio:>+8.1%} ")
        if io_n > io_b:
            regressions.append(f"I/O regression on {fmt_key(key)}: "
                               f"{io_b} -> {io_n} blocks")
        # Sub-millisecond configs (e.g. warm cache rounds) are pure noise on
        # the wall axis; the I/O check still covers them.
        if not args.io_only and wall_b > 1e-3 and dwall > args.wall_tol:
            regressions.append(f"wall regression on {fmt_key(key)}: "
                               f"{wall_b:.4f}s -> {wall_n:.4f}s "
                               f"({dwall:+.1%} > {args.wall_tol:.0%})")

    only_base = sorted(k for k in base if k not in new)
    only_new = sorted(k for k in new if k not in base)
    for k in only_base:
        # A vanished config means lost coverage: the regression it would
        # have caught goes unflagged, so treat the loss itself as a failure
        # (pass --allow-missing for intentional sweeps).
        if args.allow_missing:
            print(f"note: config only in base (dropped?): {fmt_key(k)}")
        else:
            regressions.append(f"config dropped from new artifact: {fmt_key(k)}")
    for k in only_new:
        print(f"note: config only in new (added): {fmt_key(k)}")

    if regressions:
        print()
        for r in regressions:
            print(f"REGRESSION: {r}")
        sys.exit(1)
    print(f"\nno regressions across {len(common)} config(s)"
          + (" (I/O only)" if args.io_only else ""))
    sys.exit(0)


if __name__ == "__main__":
    main()
