#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and flag perf regressions.

The bench harness (bench_micro, bench_serve) writes flat JSON arrays of
records keyed by (bench, algo, dataset, n, threads, memory_bytes). This
tool joins two such artifacts on that key, prints a per-config delta table,
and exits non-zero when the NEW run regresses against the BASE run:

  - wall-clock regression: wall_seconds grows by more than --wall-tol
    (default 15%) on any config;
  - I/O regression: io_blocks grows at all on any config (block counts are
    deterministic per config in the MemEnv, so ANY growth is a real
    algorithmic regression, not noise).

Wall time is machine-dependent, so CI compares committed baselines with
--io-only (block counts only); the wall check is for same-machine A/B runs.
See docs/BENCHMARKING.md for the workflow.

A second mode renders the perf trajectory: --plot draws io_blocks per config
across any number of artifacts (committed baselines, fresh CI runs — in the
order given) as a standalone SVG line chart, uploaded as a CI artifact. The
plot shows block I/O only: wall time is machine-dependent, so a trajectory
mixing runners would chart noise.

Usage:
  compare_bench.py BASE.json NEW.json [--wall-tol=0.15] [--io-only]
  compare_bench.py --plot=TRAJECTORY.svg FIRST.json [MORE.json ...]

Exit codes: 0 = no regression, 1 = regression found, 2 = usage/input error.
"""

import argparse
import json
import sys

KEY_FIELDS = ("bench", "algo", "dataset", "n", "threads", "memory_bytes")

# Categorical series colors (validated palette, fixed slot order — see the
# chart-color notes in docs/BENCHMARKING.md): identity is assigned by config
# position and never re-cycled; past eight series the tail is reported as
# unplotted rather than silently dropped or painted with invented hues.
SERIES_COLORS = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e4e3df"


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"cannot read {path}: {e}\n")
        sys.exit(2)
    if not isinstance(records, list):
        sys.stderr.write(f"{path}: expected a JSON array of bench records\n")
        sys.exit(2)
    keyed = {}
    for r in records:
        try:
            key = tuple(r[k] for k in KEY_FIELDS)
        except (KeyError, TypeError):
            sys.stderr.write(f"{path}: record missing key fields: {r}\n")
            sys.exit(2)
        if key in keyed:
            sys.stderr.write(f"{path}: duplicate config {key}\n")
            sys.exit(2)
        keyed[key] = r
    return keyed


def fmt_key(key):
    bench, algo, dataset, n, threads, memory = key
    return f"{bench}/{algo} {dataset} n={n} t={threads} M={memory >> 10}KB"


def nice_ticks(hi, count=5):
    """Round tick positions 0..~hi (hi > 0)."""
    raw = hi / count
    mag = 10 ** max(0, len(str(int(raw))) - 1)
    step = max(1, int((raw + mag - 1) // mag) * mag)
    ticks = list(range(0, int(hi) + step, step))
    return ticks


def svg_escape(text):
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def render_plot(path, artifacts):
    """Writes an SVG trajectory of io_blocks per config across artifacts.

    `artifacts` is an ordered list of (label, {key: record}). One line per
    config, colored by fixed slot order; a config absent from an artifact
    simply has no point there (the line bridges the gap is NOT implied —
    segments are only drawn between consecutive present points).
    """
    keys = []
    for _, records in artifacts:
        for key in records:
            if key not in keys:
                keys.append(key)
    keys.sort()
    plotted, unplotted = keys[:len(SERIES_COLORS)], keys[len(SERIES_COLORS):]

    width, height = 960, 420
    margin_l, margin_r, margin_t, margin_b = 70, 20, 48, 70
    legend_h = 18 * len(plotted) + (16 if unplotted else 0)
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    height += legend_h

    max_io = 1
    for _, records in artifacts:
        for key in records:
            max_io = max(max_io, records[key]["io_blocks"])
    ticks = nice_ticks(max_io * 1.05)
    y_hi = max(ticks[-1], 1)

    def x_of(i):
        if len(artifacts) == 1:
            return margin_l + plot_w / 2
        return margin_l + plot_w * i / (len(artifacts) - 1)

    def y_of(v):
        return margin_t + plot_h * (1 - v / y_hi)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="system-ui, sans-serif">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{margin_l}" y="24" font-size="15" font-weight="600" '
        f'fill="{TEXT_PRIMARY}">Block I/O per bench config across '
        f'artifacts</text>',
        f'<text x="{margin_l}" y="40" font-size="11" '
        f'fill="{TEXT_SECONDARY}">io_blocks only — wall time is '
        f'machine-dependent and excluded</text>',
    ]
    # Recessive horizontal grid + y labels.
    for t in ticks:
        y = y_of(t)
        parts.append(f'<line x1="{margin_l}" y1="{y:.1f}" '
                     f'x2="{margin_l + plot_w}" y2="{y:.1f}" '
                     f'stroke="{GRID}" stroke-width="1"/>')
        parts.append(f'<text x="{margin_l - 8}" y="{y + 4:.1f}" '
                     f'font-size="11" text-anchor="end" '
                     f'fill="{TEXT_SECONDARY}">{t}</text>')
    # X labels: artifact names, in given order.
    for i, (label, _) in enumerate(artifacts):
        parts.append(f'<text x="{x_of(i):.1f}" y="{margin_t + plot_h + 18}" '
                     f'font-size="11" text-anchor="middle" '
                     f'fill="{TEXT_SECONDARY}">{svg_escape(label)}</text>')

    for s, key in enumerate(plotted):
        color = SERIES_COLORS[s]
        points = [(i, records[key]["io_blocks"])
                  for i, (_, records) in enumerate(artifacts)
                  if key in records]
        # Segments only between consecutive artifacts both carrying the
        # config; isolated points still get a marker.
        for (i0, v0), (i1, v1) in zip(points, points[1:]):
            if i1 == i0 + 1:
                parts.append(f'<line x1="{x_of(i0):.1f}" y1="{y_of(v0):.1f}" '
                             f'x2="{x_of(i1):.1f}" y2="{y_of(v1):.1f}" '
                             f'stroke="{color}" stroke-width="2"/>')
        for i, v in points:
            parts.append(f'<circle cx="{x_of(i):.1f}" cy="{y_of(v):.1f}" '
                         f'r="4" fill="{color}" stroke="{SURFACE}" '
                         f'stroke-width="2">'
                         f'<title>{svg_escape(fmt_key(key))}\n'
                         f'{svg_escape(artifacts[i][0])}: {v} blocks</title>'
                         f'</circle>')

    # Legend: swatch + config label in neutral ink, fixed order.
    legend_y = margin_t + plot_h + 40
    for s, key in enumerate(plotted):
        y = legend_y + 18 * s
        parts.append(f'<rect x="{margin_l}" y="{y - 9}" width="12" '
                     f'height="12" rx="3" fill="{SERIES_COLORS[s]}"/>')
        parts.append(f'<text x="{margin_l + 18}" y="{y + 1}" font-size="11" '
                     f'fill="{TEXT_PRIMARY}">{svg_escape(fmt_key(key))}'
                     f'</text>')
    if unplotted:
        y = legend_y + 18 * len(plotted)
        parts.append(f'<text x="{margin_l}" y="{y + 1}" font-size="11" '
                     f'fill="{TEXT_SECONDARY}">+{len(unplotted)} more '
                     f'config(s) not plotted (8-series cap); see the JSON '
                     f'artifacts</text>')
    parts.append("</svg>")

    try:
        with open(path, "w", encoding="utf-8") as f:
            f.write("\n".join(parts) + "\n")
    except OSError as e:
        sys.stderr.write(f"cannot write {path}: {e}\n")
        sys.exit(2)
    print(f"wrote trajectory of {len(plotted)} config(s) over "
          f"{len(artifacts)} artifact(s) to {path}")
    if unplotted:
        for key in unplotted:
            print(f"note: not plotted (series cap): {fmt_key(key)}")


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts, fail on regressions; "
                    "or --plot an io_blocks trajectory across many")
    parser.add_argument("artifacts", nargs="+",
                        help="bench artifacts: BASE NEW for the diff mode, "
                             "any number (in trajectory order) with --plot")
    parser.add_argument("--wall-tol", type=float, default=0.15,
                        help="allowed relative wall-seconds growth "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--io-only", action="store_true",
                        help="check only I/O block counts (machine-portable)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline config is absent "
                             "from the new artifact")
    parser.add_argument("--plot", metavar="SVG",
                        help="render the artifacts' io_blocks trajectory to "
                             "this SVG instead of diffing")
    args = parser.parse_args()

    if args.plot:
        labels = []
        for path in args.artifacts:
            name = path.rsplit("/", 1)[-1]
            labels.append(name[:-5] if name.endswith(".json") else name)
        render_plot(args.plot,
                    [(label, load_records(path))
                     for label, path in zip(labels, args.artifacts)])
        sys.exit(0)

    if len(args.artifacts) != 2:
        sys.stderr.write("diff mode takes exactly two artifacts "
                         "(BASE NEW); use --plot for trajectories\n")
        sys.exit(2)
    base = load_records(args.artifacts[0])
    new = load_records(args.artifacts[1])
    common = [k for k in base if k in new]
    if not common:
        sys.stderr.write("no common configs between the two artifacts\n")
        sys.exit(2)

    header = (f"{'config':<58}{'wall base':>12}{'wall new':>12}{'Δwall':>9}"
              f"{'io base':>12}{'io new':>12}{'Δio':>9}")
    print(header)
    print("-" * len(header))

    regressions = []
    for key in sorted(common):
        b, n = base[key], new[key]
        wall_b, wall_n = b["wall_seconds"], n["wall_seconds"]
        io_b, io_n = b["io_blocks"], n["io_blocks"]
        dwall = (wall_n - wall_b) / wall_b if wall_b > 0 else 0.0
        dio = (io_n - io_b) / io_b if io_b > 0 else (1.0 if io_n > io_b else 0.0)
        print(f"{fmt_key(key):<58}{wall_b:>12.4f}{wall_n:>12.4f}"
              f"{dwall:>+8.1%} {io_b:>11}{io_n:>12}{dio:>+8.1%} ")
        if io_n > io_b:
            regressions.append(f"I/O regression on {fmt_key(key)}: "
                               f"{io_b} -> {io_n} blocks")
        # Sub-millisecond configs (e.g. warm cache rounds) are pure noise on
        # the wall axis; the I/O check still covers them.
        if not args.io_only and wall_b > 1e-3 and dwall > args.wall_tol:
            regressions.append(f"wall regression on {fmt_key(key)}: "
                               f"{wall_b:.4f}s -> {wall_n:.4f}s "
                               f"({dwall:+.1%} > {args.wall_tol:.0%})")
        # Latency records (bench_workload) also carry tail percentiles;
        # p99 is machine-dependent like wall time, so the same --io-only
        # escape applies and the same tolerance governs.
        p99_b, p99_n = b.get("p99_ms", 0.0), n.get("p99_ms", 0.0)
        if not args.io_only and p99_b > 0.0 and p99_n > 0.0:
            dp99 = (p99_n - p99_b) / p99_b
            if dp99 > args.wall_tol:
                regressions.append(f"p99 latency regression on "
                                   f"{fmt_key(key)}: {p99_b:.3f}ms -> "
                                   f"{p99_n:.3f}ms "
                                   f"({dp99:+.1%} > {args.wall_tol:.0%})")

    only_base = sorted(k for k in base if k not in new)
    only_new = sorted(k for k in new if k not in base)
    for k in only_base:
        # A vanished config means lost coverage: the regression it would
        # have caught goes unflagged, so treat the loss itself as a failure
        # (pass --allow-missing for intentional sweeps).
        if args.allow_missing:
            print(f"note: config only in base (dropped?): {fmt_key(k)}")
        else:
            regressions.append(f"config dropped from new artifact: {fmt_key(k)}")
    for k in only_new:
        print(f"note: config only in new (added): {fmt_key(k)}")

    if regressions:
        print()
        for r in regressions:
            print(f"REGRESSION: {r}")
        sys.exit(1)
    print(f"\nno regressions across {len(common)} config(s)"
          + (" (I/O only)" if args.io_only else ""))
    sys.exit(0)


if __name__ == "__main__":
    main()
