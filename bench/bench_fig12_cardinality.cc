// Figure 12: Effect of the dataset cardinalities.
// I/O cost of Naive, aSB-Tree and ExactMaxRS for |O| in {100k..500k} under
// Gaussian (a) and uniform (b) distributions; space [0, 4|O|]^2, rectangle
// 1000 x 1000, buffer 1024KB, block 4KB. Expected shape: ExactMaxRS roughly
// two orders of magnitude below the plane-sweep baselines at every N.
#include "bench_common.h"

#include "datagen/generators.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<uint64_t> cardinalities = {100000, 200000, 300000, 400000,
                                               500000};

  for (const std::string dist : {"gaussian", "uniform"}) {
    TablePrinter table(
        "Figure 12 (" + dist + "): I/O cost vs cardinality",
        "N (objects)", {"Naive", "aSB-Tree", "ExactMaxRS"}, args.csv_path);
    for (uint64_t n_full : cardinalities) {
      const uint64_t n = ScaleN(n_full, args);
      SyntheticOptions options;
      options.cardinality = n;
      options.domain_size = 0.0;  // paper: [0, 4|O|]
      options.seed = args.seed;
      auto objects =
          dist == "gaussian" ? MakeGaussian(options) : MakeUniform(options);

      const RunOutcome naive = RunAlgorithm(Algorithm::kNaive, objects,
                                            kDefaultRange, kBufferSynthetic);
      const RunOutcome asb = RunAlgorithm(Algorithm::kASBTree, objects,
                                          kDefaultRange, kBufferSynthetic);
      const RunOutcome exact = RunAlgorithm(Algorithm::kExactMaxRS, objects,
                                            kDefaultRange, kBufferSynthetic);
      // Cross-check: all three must find the same optimum.
      if (naive.total_weight != exact.total_weight ||
          asb.total_weight != exact.total_weight) {
        std::fprintf(stderr, "RESULT MISMATCH at N=%llu (%s)\n",
                     static_cast<unsigned long long>(n), dist.c_str());
        return 1;
      }
      table.AddRow(std::to_string(n),
                   {static_cast<double>(naive.io), static_cast<double>(asb.io),
                    static_cast<double>(exact.io)});
    }
  }
  return 0;
}
