// Table 2: The cardinalities of real datasets, plus summary statistics of
// the clustered stand-ins used throughout the real-data experiments.
#include "bench_common.h"

#include <cinttypes>

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  TablePrinter table("Table 2: real dataset cardinalities (stand-ins)",
                     "Dataset",
                     {"Cardinality", "BBox width", "BBox height"},
                     args.csv_path);
  for (const std::string name : {"ux", "ne"}) {
    auto objects = MakeDistribution(name, 0, args.seed);
    const Rect box = BoundingBox(objects);
    table.AddRow(name == "ux" ? "UX (USA+Mexico)" : "NE (North East)",
                 {static_cast<double>(objects.size()), box.width(),
                  box.height()});
  }
  std::printf("\nPaper cardinalities: UX = 19,499; NE = 123,593 "
              "(both normalized to [0, 10^6]^2).\n");
  return 0;
}
