// Shared harness for the figure/table reproduction benchmarks.
//
// Every bench binary reproduces one table or figure of the paper. The
// common flow: generate (or reuse) a dataset, stage it into a fresh MemEnv
// with the paper's 4KB blocks, run one of the three MaxRS algorithms under
// a given memory budget, and report the I/O cost — the number of
// transferred blocks, the paper's metric. Output is an aligned table plus
// optional CSV (--csv), with --quick reducing cardinalities for smoke runs.
#ifndef MAXRS_BENCH_BENCH_COMMON_H_
#define MAXRS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/baseline.h"
#include "core/exact_maxrs.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "util/flags.h"

namespace maxrs {
namespace bench {

/// Paper defaults (Table 3).
inline constexpr size_t kBlockSize = 4096;
inline constexpr size_t kBufferSynthetic = 1024 << 10;
inline constexpr size_t kBufferReal = 256 << 10;
inline constexpr double kDefaultRange = 1000.0;
inline constexpr double kDefaultDiameter = 1000.0;
inline constexpr uint64_t kDefaultCardinality = 250000;

enum class Algorithm { kExactMaxRS, kNaive, kASBTree };

inline const char* AlgoName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kExactMaxRS:
      return "ExactMaxRS";
    case Algorithm::kNaive:
      return "Naive";
    case Algorithm::kASBTree:
      return "aSB-Tree";
  }
  return "?";
}

struct RunOutcome {
  uint64_t io = 0;
  double seconds = 0.0;
  double total_weight = 0.0;
};

/// Stages `objects` into a fresh 4KB-block MemEnv and runs `algo`.
/// `num_threads` feeds the parallel execution engine and `read_ahead` the
/// async prefetch layer; the baselines are serial/synchronous and ignore
/// both.
RunOutcome RunAlgorithm(Algorithm algo, const std::vector<SpatialObject>& objects,
                        double range, size_t memory_bytes,
                        size_t num_threads = 1, bool read_ahead = false);

/// One measurement for the machine-readable perf log (--json). The schema is
/// deliberately flat so downstream tooling can diff runs per
/// (bench, algo, dataset, n, threads) key.
struct BenchRecord {
  std::string bench;
  std::string algo;
  std::string dataset;
  uint64_t n = 0;
  size_t threads = 1;
  size_t memory_bytes = 0;
  double wall_seconds = 0.0;
  uint64_t io_blocks = 0;
  double total_weight = 0.0;
  // Latency-oriented extension (bench_workload): emitted to JSON only when
  // p99_ms > 0, so throughput-only benches keep their artifact schema.
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Writes `records` to `path` as a JSON array (overwrites). Returns false
/// (and prints to stderr) if the file cannot be written.
bool WriteBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records);

/// Fixed-layout series printer: one row per x value, one column per series.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::string x_label,
               std::vector<std::string> columns, std::string csv_path);
  ~TablePrinter();

  void AddRow(const std::string& x, const std::vector<double>& values);

 private:
  std::vector<std::string> columns_;
  std::FILE* csv_ = nullptr;
};

/// Common flags: --quick, --csv=..., --seed=N. (bench_micro parses its own
/// richer flag set — CSV lists of cardinalities/thread counts — directly.)
struct BenchArgs {
  bool quick = false;
  uint64_t seed = 42;
  std::string csv_path;

  static BenchArgs Parse(int argc, char** argv);
};

/// Scales a cardinality down in --quick mode.
inline uint64_t ScaleN(uint64_t n, const BenchArgs& args) {
  return args.quick ? n / 10 : n;
}

/// Parses a comma-separated list of unsigned integers (e.g. a --threads or
/// --n flag value); empty items are skipped.
std::vector<uint64_t> ParseU64List(const std::string& csv);

std::vector<SpatialObject> MakeDistribution(const std::string& name, uint64_t n,
                                            uint64_t seed);

}  // namespace bench
}  // namespace maxrs

#endif  // MAXRS_BENCH_BENCH_COMMON_H_
