// Figure 14: Effect of the range size (synthetic datasets).
// I/O cost for square ranges of side 1000..10000 at N = 250,000.
// Expected shape: the plane-sweep baselines degrade as the range grows
// (more active intervals / wider canonical updates), while ExactMaxRS is
// nearly unaffected — the paper's "less influenced by the size of range".
#include "bench_common.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<double> ranges = {1000, 2500, 5000, 7500, 10000};
  const uint64_t n = ScaleN(kDefaultCardinality, args);

  for (const std::string dist : {"gaussian", "uniform"}) {
    auto objects = MakeDistribution(dist, n, args.seed);
    TablePrinter table("Figure 14 (" + dist + "): I/O cost vs range size",
                       "Range size", {"Naive", "aSB-Tree", "ExactMaxRS"},
                       args.csv_path);
    for (double range : ranges) {
      const RunOutcome naive =
          RunAlgorithm(Algorithm::kNaive, objects, range, kBufferSynthetic);
      const RunOutcome asb =
          RunAlgorithm(Algorithm::kASBTree, objects, range, kBufferSynthetic);
      const RunOutcome exact =
          RunAlgorithm(Algorithm::kExactMaxRS, objects, range, kBufferSynthetic);
      if (naive.total_weight != exact.total_weight ||
          asb.total_weight != exact.total_weight) {
        std::fprintf(stderr, "RESULT MISMATCH at range=%.0f\n", range);
        return 1;
      }
      table.AddRow(std::to_string(static_cast<int>(range)),
                   {static_cast<double>(naive.io), static_cast<double>(asb.io),
                    static_cast<double>(exact.io)});
    }
  }
  return 0;
}
