#include "bench_common.h"

#include <cinttypes>
#include <cstdlib>

#include "datagen/dataset_io.h"
#include "util/check.h"

namespace maxrs {
namespace bench {

RunOutcome RunAlgorithm(Algorithm algo, const std::vector<SpatialObject>& objects,
                        double range, size_t memory_bytes,
                        size_t num_threads, bool read_ahead) {
  auto env = NewMemEnv(kBlockSize);
  MAXRS_CHECK_OK(WriteDataset(*env, "dataset", objects));
  env->stats().Reset();

  RunOutcome outcome;
  switch (algo) {
    case Algorithm::kExactMaxRS: {
      MaxRSOptions options;
      options.rect_width = range;
      options.rect_height = range;
      options.memory_bytes = memory_bytes;
      options.num_threads = num_threads;
      options.read_ahead = read_ahead;
      auto result = RunExactMaxRS(*env, "dataset", options);
      MAXRS_CHECK_OK(result.status());
      outcome.io = result->stats.io.total();
      outcome.seconds = result->stats.wall_seconds;
      outcome.total_weight = result->total_weight;
      break;
    }
    case Algorithm::kNaive:
    case Algorithm::kASBTree: {
      BaselineOptions options;
      options.rect_width = range;
      options.rect_height = range;
      options.memory_bytes = memory_bytes;
      auto result = algo == Algorithm::kNaive
                        ? RunNaivePlaneSweep(*env, "dataset", options)
                        : RunASBTreeSweep(*env, "dataset", options);
      MAXRS_CHECK_OK(result.status());
      outcome.io = result->io.total();
      outcome.seconds = result->wall_seconds;
      outcome.total_weight = result->total_weight;
      break;
    }
  }
  return outcome;
}

TablePrinter::TablePrinter(std::string title, std::string x_label,
                           std::vector<std::string> columns,
                           std::string csv_path)
    : columns_(std::move(columns)) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-22s", x_label.c_str());
  for (const std::string& c : columns_) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < 22 + 16 * columns_.size(); ++i) std::printf("-");
  std::printf("\n");
  if (!csv_path.empty()) {
    csv_ = std::fopen(csv_path.c_str(), "a");
    if (csv_ != nullptr) {
      std::fprintf(csv_, "# %s\n%s", title.c_str(), x_label.c_str());
      for (const std::string& c : columns_) std::fprintf(csv_, ",%s", c.c_str());
      std::fprintf(csv_, "\n");
    }
  }
}

TablePrinter::~TablePrinter() {
  if (csv_ != nullptr) std::fclose(csv_);
}

void TablePrinter::AddRow(const std::string& x, const std::vector<double>& values) {
  std::printf("%-22s", x.c_str());
  for (double v : values) {
    if (v == static_cast<uint64_t>(v) && v < 1e15) {
      std::printf("%16" PRIu64, static_cast<uint64_t>(v));
    } else {
      std::printf("%16.4f", v);
    }
  }
  std::printf("\n");
  std::fflush(stdout);
  if (csv_ != nullptr) {
    std::fprintf(csv_, "%s", x.c_str());
    for (double v : values) std::fprintf(csv_, ",%.6g", v);
    std::fprintf(csv_, "\n");
  }
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  BenchArgs args;
  args.quick = flags.GetBool("quick", false);
  args.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  args.csv_path = flags.GetString("csv", "");
  return args;
}

bool WriteBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  // Field values are plain identifiers and numbers; no JSON escaping needed.
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"algo\": \"%s\", \"dataset\": \"%s\","
                 " \"n\": %" PRIu64 ", \"threads\": %zu,"
                 " \"memory_bytes\": %zu, \"wall_seconds\": %.6f,"
                 " \"io_blocks\": %" PRIu64 ", \"total_weight\": %.6f",
                 r.bench.c_str(), r.algo.c_str(), r.dataset.c_str(), r.n,
                 r.threads, r.memory_bytes, r.wall_seconds, r.io_blocks,
                 r.total_weight);
    if (r.p99_ms > 0.0) {
      // Latency records (bench_workload): tail percentiles + throughput.
      std::fprintf(f,
                   ", \"qps\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f,"
                   " \"p99_ms\": %.3f",
                   r.qps, r.p50_ms, r.p95_ms, r.p99_ms);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  // A truncated artifact (disk full mid-write) must not report success:
  // downstream perf tooling consumes this file.
  const bool write_failed = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_failed) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<uint64_t> ParseU64List(const std::string& csv) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

std::vector<SpatialObject> MakeDistribution(const std::string& name, uint64_t n,
                                            uint64_t seed) {
  if (name == "ux") return MakeUxLike(seed);
  if (name == "ne") return MakeNeLike(seed);
  SyntheticOptions options;
  options.cardinality = n;
  options.domain_size = 1e6;  // Table 3 default space
  options.seed = seed;
  if (name == "gaussian") return MakeGaussian(options);
  return MakeUniform(options);
}

}  // namespace bench
}  // namespace maxrs
