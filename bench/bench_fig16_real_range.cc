// Figure 16: Effect of the range size on the real datasets (UX, NE).
// Buffer fixed at the real-data default of 256KB (Table 3); range sides
// 1000..10000. Same expected shape as Fig. 14, on clustered data.
#include "bench_common.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<double> ranges = {1000, 2500, 5000, 7500, 10000};

  for (const std::string dataset : {"ux", "ne"}) {
    auto objects = MakeDistribution(dataset, 0, args.seed);
    TablePrinter table(
        "Figure 16 (" + dataset + "): I/O cost vs range size, real data",
        "Range size", {"Naive", "aSB-Tree", "ExactMaxRS"}, args.csv_path);
    for (double range : ranges) {
      const RunOutcome naive =
          RunAlgorithm(Algorithm::kNaive, objects, range, kBufferReal);
      const RunOutcome asb =
          RunAlgorithm(Algorithm::kASBTree, objects, range, kBufferReal);
      const RunOutcome exact =
          RunAlgorithm(Algorithm::kExactMaxRS, objects, range, kBufferReal);
      if (naive.total_weight != exact.total_weight ||
          asb.total_weight != exact.total_weight) {
        std::fprintf(stderr, "RESULT MISMATCH at range=%.0f\n", range);
        return 1;
      }
      table.AddRow(std::to_string(static_cast<int>(range)),
                   {static_cast<double>(naive.io), static_cast<double>(asb.io),
                    static_cast<double>(exact.io)});
    }
  }
  return 0;
}
