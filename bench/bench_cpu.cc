// Google-benchmark CPU suite: CPU-level performance of the building
// blocks (segment tree, plane sweep, external sort, buffer pool, grid
// index). These are engineering benchmarks, not paper figures; the paper's
// metric (block I/O) is covered by the bench_fig* binaries.
#include <benchmark/benchmark.h>

#include "circle/grid_index.h"
#include "core/exact_maxrs.h"
#include "core/plane_sweep.h"
#include "core/segment_tree.h"
#include "datagen/generators.h"
#include "io/buffer_pool.h"
#include "io/external_sort.h"
#include "io/record_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace maxrs {
namespace {

void BM_SegmentTreeRangeAdd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SegmentTree tree(n);
  Rng rng(1);
  for (auto _ : state) {
    size_t a = rng.UniformU64(n);
    size_t b = a + rng.UniformU64(n - a);
    tree.RangeAdd(a, b, 1.0);
    benchmark::DoNotOptimize(tree.Max());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentTreeRangeAdd)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SegmentTreeMaxInterval(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SegmentTree tree(n);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    size_t a = rng.UniformU64(n);
    size_t b = a + rng.UniformU64(n - a);
    tree.RangeAdd(a, b, 1.0 + (i % 3));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.MaxInterval());
  }
}
BENCHMARK(BM_SegmentTreeMaxInterval)->Arg(1 << 10)->Arg(1 << 20);

void BM_PlaneSweep(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SyntheticOptions options;
  options.cardinality = n;
  options.domain_size = 1e6;
  auto objects = MakeUniform(options);
  std::vector<PieceRecord> pieces;
  pieces.reserve(n);
  for (const auto& o : objects) {
    pieces.push_back({o.x - 500, o.x + 500, o.y - 500, o.y + 500, o.w});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlaneSweep(pieces, Interval{-kInf, kInf}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlaneSweep)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ExactMaxRSInMemory(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SyntheticOptions options;
  options.cardinality = n;
  options.domain_size = 1e6;
  auto objects = MakeGaussian(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactMaxRSInMemory(objects, 1000, 1000));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactMaxRSInMemory)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ExternalSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto env = NewMemEnv(4096);
  {
    Rng rng(3);
    std::vector<EdgeRecord> records(n);
    for (auto& r : records) r.x = rng.NextDouble();
    MAXRS_CHECK_OK(WriteRecordFile(*env, "in", records));
  }
  int run = 0;
  for (auto _ : state) {
    MAXRS_CHECK_OK((ExternalSort<EdgeRecord>(
        *env, "in", "out" + std::to_string(run++),
        [](const EdgeRecord& a, const EdgeRecord& b) { return a.x < b.x; },
        ExternalSortOptions{256 << 10})));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_BufferPoolHit(benchmark::State& state) {
  auto env = NewMemEnv(4096);
  auto file = std::move(env->Create("f")).value();
  std::vector<char> buf(4096);
  for (int b = 0; b < 64; ++b) MAXRS_CHECK_OK(file->WriteBlock(b, buf.data()));
  BufferPool pool(*env, 64 * 4096);
  Rng rng(4);
  for (auto _ : state) {
    auto page = pool.Fetch(*file, rng.UniformU64(64));
    benchmark::DoNotOptimize(page->data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  auto env = NewMemEnv(4096);
  auto file = std::move(env->Create("f")).value();
  std::vector<char> buf(4096);
  for (int b = 0; b < 4096; ++b) MAXRS_CHECK_OK(file->WriteBlock(b, buf.data()));
  BufferPool pool(*env, 16 * 4096);  // tiny pool: ~every fetch misses
  Rng rng(5);
  for (auto _ : state) {
    auto page = pool.Fetch(*file, rng.UniformU64(4096));
    benchmark::DoNotOptimize(page->data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_GridIndexQuery(benchmark::State& state) {
  SyntheticOptions options;
  options.cardinality = 100000;
  options.domain_size = 1e6;
  auto objects = MakeUniform(options);
  GridIndex grid(objects, 1000.0);
  Rng rng(6);
  for (auto _ : state) {
    const Point c{rng.Uniform(0, 1e6), rng.Uniform(0, 1e6)};
    double sum = 0;
    grid.ForEachWithin(c, 2000.0, [&](const SpatialObject& o) { sum += o.w; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridIndexQuery);

}  // namespace
}  // namespace maxrs

BENCHMARK_MAIN();
