// Figure 13: Effect of the buffer size (synthetic datasets).
// I/O cost for buffer sizes 128KB..2048KB at the default N = 250,000.
// Expected shape: ExactMaxRS is the most buffer-sensitive (the log_{M/B}
// factor shrinks as M grows) until linear cost dominates; the aSB-tree
// benefits from caching its upper levels; the naive sweep's structure
// accesses are uncached, so it only gains through sorting.
#include "bench_common.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<size_t> buffers_kb = {128, 256, 512, 1024, 2048};
  const uint64_t n = ScaleN(kDefaultCardinality, args);

  for (const std::string dist : {"gaussian", "uniform"}) {
    auto objects = MakeDistribution(dist, n, args.seed);
    TablePrinter table("Figure 13 (" + dist + "): I/O cost vs buffer size",
                       "Buffer (KB)", {"Naive", "aSB-Tree", "ExactMaxRS"},
                       args.csv_path);
    for (size_t kb : buffers_kb) {
      const size_t memory = kb << 10;
      const RunOutcome naive =
          RunAlgorithm(Algorithm::kNaive, objects, kDefaultRange, memory);
      const RunOutcome asb =
          RunAlgorithm(Algorithm::kASBTree, objects, kDefaultRange, memory);
      const RunOutcome exact =
          RunAlgorithm(Algorithm::kExactMaxRS, objects, kDefaultRange, memory);
      if (naive.total_weight != exact.total_weight ||
          asb.total_weight != exact.total_weight) {
        std::fprintf(stderr, "RESULT MISMATCH at buffer=%zuKB\n", kb);
        return 1;
      }
      table.AddRow(std::to_string(kb),
                   {static_cast<double>(naive.io), static_cast<double>(asb.io),
                    static_cast<double>(exact.io)});
    }
  }
  return 0;
}
