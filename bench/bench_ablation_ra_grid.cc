// Ablation (paper Sec. 3, quantified): "A naive solution to the MaxRS
// problem is to issue an infinite number of RA queries, which is
// prohibitively expensive."
//
// We build an aggregate R-tree (the RA-query access method of the related
// work) and solve MaxRS approximately by probing a G x G grid of candidate
// centers. Two things should emerge, matching the paper's argument:
//   1. Accuracy approaches the exact optimum only as G grows; and
//   2. I/O grows with G^2 and overtakes ExactMaxRS (which is *exact*)
//      long before the grid answer converges.
#include "bench_common.h"

#include "datagen/dataset_io.h"
#include "index/agg_rtree.h"
#include "index/ra_grid.h"
#include "util/check.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t n = ScaleN(kDefaultCardinality, args);
  auto objects = MakeDistribution("gaussian", n, args.seed);

  // Reference: the exact external algorithm.
  const RunOutcome exact = RunAlgorithm(Algorithm::kExactMaxRS, objects,
                                        kDefaultRange, kBufferSynthetic);
  std::printf("ExactMaxRS reference: optimum = %.0f, I/O = %llu blocks\n",
              exact.total_weight, static_cast<unsigned long long>(exact.io));

  auto env = NewMemEnv(kBlockSize);
  auto tree_or = AggRTree::BulkLoad(*env, "tree", objects);
  MAXRS_CHECK_OK(tree_or.status());
  const uint64_t build_io = env->stats().Snapshot().total();
  std::printf("AggRTree: %llu blocks, height %llu (build I/O %llu)\n",
              static_cast<unsigned long long>(tree_or->num_blocks()),
              static_cast<unsigned long long>(tree_or->height()),
              static_cast<unsigned long long>(build_io));

  TablePrinter table("RA-grid MaxRS vs ExactMaxRS (gaussian, d=1000)",
                     "Grid G",
                     {"RA queries", "I/O (blocks)", "Best found", "% of opt"},
                     args.csv_path);
  for (uint32_t grid : {8u, 16u, 32u, 64u, 128u, 256u}) {
    BufferPool pool(*env, kBufferSynthetic);
    env->stats().Reset();
    auto got = RaGridMaxRS(*tree_or, pool, Rect{0, 1e6, 0, 1e6}, kDefaultRange,
                           kDefaultRange, grid);
    MAXRS_CHECK_OK(got.status());
    const uint64_t io = env->stats().Snapshot().total();
    table.AddRow(std::to_string(grid),
                 {static_cast<double>(got->queries), static_cast<double>(io),
                  got->total_weight,
                  exact.total_weight > 0
                      ? 100.0 * got->total_weight / exact.total_weight
                      : 100.0});
  }
  std::printf(
      "\nThe grid answer never reaches the optimum: candidate centers on a "
      "lattice\ncannot pin the best placement, no matter how many RA queries "
      "are issued —\nan exact answer needs infinitely many, which is the "
      "paper's Sec. 3 argument.\n(The I/O column also saturates at one full "
      "tree sweep only because the\nrow-major probe order is maximally "
      "cache-friendly; any non-local query\norder pays per-query node I/O.)\n");
  return 0;
}
