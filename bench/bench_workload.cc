// bench_workload: open-loop latency driver for the network front-end. It
// stands up the full serving stack — MemEnv dataset, sharded ingest,
// MaxRSServer, and the src/net TCP listener — then drives it over real
// loopback sockets from several concurrent clients, each following a
// precomputed open-loop arrival schedule (queries are sent at their
// scheduled instants regardless of when earlier responses return, so
// queueing delay shows up in the measurement instead of silently throttling
// the offered load). Rect sizes are drawn zipfian from a small pool: a few
// popular sizes dominate (cache hits after first touch), a long tail stays
// cold — the cache/dedup/execute mix a serving system actually sees.
//
// Two arrival schedules run as separate rounds against fresh servers:
//   steady — uniform inter-arrival at the target per-client rate;
//   bursty — the same mean rate delivered as back-to-back bursts of 10
//            followed by a proportionally longer gap.
//
// Per round the bench reports throughput (qps) and the p50/p95/p99 of
// per-query latency (scheduled-send to response-received, so schedule slip
// counts), and records them into BENCH_workload.json (same flat schema as
// the other benches plus qps/p50_ms/p95_ms/p99_ms; committed quick-mode
// baselines live in bench/baselines/).
//
// In-bench sanity checks, enforced with MAXRS_CHECK:
//   - every wire response is an OK frame (nothing shed or failed);
//   - for every rect in the pool the answer received over TCP is
//     bit-identical (%.17g round-trip) to an in-process Submit on the very
//     same server — the bit-identity contract survives the socket;
//   - all clients agree on every answer.
//
// Flags:
//   --n=100000       dataset cardinality (uniform data)
//   --clients=4      concurrent connections (each sender + receiver)
//   --queries=150    queries per client per round
//   --rate=100       per-client offered load, queries/second
//   --shards=8       x-slab shard count
//   --workers=4      server worker threads
//   --json=PATH      output path (default BENCH_workload.json)
//   --quick          small dataset / workload for CI smoke
//   --seed=N         dataset + schedule seed
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "datagen/dataset_io.h"
#include "net/net_server.h"
#include "net/query_protocol.h"
#include "net/socket.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace maxrs;
using namespace maxrs::bench;

namespace {

using Clock = std::chrono::steady_clock;

// The rect-size pool: 12 distinct sizes around the paper's default
// 1000x1000 query (the bench_serve recipe).
std::vector<std::pair<double, double>> MakeRectPool() {
  std::vector<std::pair<double, double>> rects;
  for (size_t i = 0; i < 12; ++i) {
    rects.emplace_back(400.0 + 97.0 * static_cast<double>(i % 17),
                       1600.0 - 83.0 * static_cast<double>(i % 13));
  }
  return rects;
}

// One scheduled query: which rect, and when (relative to round start).
struct ScheduledQuery {
  size_t rect = 0;
  std::chrono::microseconds at{0};
};

// Draws a zipfian(s=1) rect index sequence and arrival times for one
// client. Steady: uniform inter-arrival at `rate` qps. Bursty: bursts of
// 10 back-to-back queries, separated so the mean rate is the same.
std::vector<ScheduledQuery> MakeSchedule(size_t queries, double rate,
                                         bool bursty, size_t pool_size,
                                         Rng* rng) {
  // Zipf CDF over ranks 1..pool_size with exponent 1.
  std::vector<double> cdf(pool_size);
  double mass = 0.0;
  for (size_t r = 0; r < pool_size; ++r) {
    mass += 1.0 / static_cast<double>(r + 1);
    cdf[r] = mass;
  }
  const double interval_us = 1e6 / rate;
  constexpr size_t kBurst = 10;
  std::vector<ScheduledQuery> schedule(queries);
  for (size_t i = 0; i < queries; ++i) {
    const double u = rng->NextDouble() * mass;
    size_t rect = 0;
    while (rect + 1 < pool_size && cdf[rect] < u) ++rect;
    schedule[i].rect = rect;
    const double at_us =
        bursty ? static_cast<double>(i / kBurst) * interval_us * kBurst
               : static_cast<double>(i) * interval_us;
    schedule[i].at = std::chrono::microseconds(static_cast<int64_t>(at_us));
  }
  return schedule;
}

// Reads one '\n'-terminated frame; `carry` holds the read-ahead remainder.
std::string ReadFrame(const Socket& sock, std::string* carry) {
  while (true) {
    const std::string::size_type nl = carry->find('\n');
    if (nl != std::string::npos) {
      std::string line = carry->substr(0, nl);
      carry->erase(0, nl + 1);
      return line;
    }
    char chunk[1024];
    auto n = RecvSome(sock, chunk, sizeof(chunk));
    MAXRS_CHECK_MSG(n.ok() && n.value() > 0, "connection lost mid-round");
    carry->append(chunk, n.value());
  }
}

// The answer tokens of an OK frame ("x y weight"), the bit-carrying part
// (served_from and batch_size legitimately vary with timing).
std::string AnswerTokens(const std::string& frame) {
  MAXRS_CHECK_MSG(frame.rfind("OK ", 0) == 0,
                  ("non-OK response: " + frame).c_str());
  size_t end = frame.size(), spaces = 0;
  for (size_t i = 3; i < frame.size(); ++i) {
    if (frame[i] == ' ' && ++spaces == 3) {
      end = i;
      break;
    }
  }
  return frame.substr(3, end - 3);
}

struct RoundResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
};

double PercentileMs(const std::vector<double>& sorted_ms, double q) {
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

// Runs one open-loop round: `clients` connections against a fresh server,
// each following its schedule. Returns throughput + latency percentiles
// and checks every answer against the in-process oracle.
RoundResult RunRound(MaxRSServer& server, uint16_t port,
                     const std::vector<std::pair<double, double>>& pool,
                     const std::vector<std::vector<ScheduledQuery>>& schedules) {
  const size_t clients = schedules.size();
  std::vector<std::vector<double>> latencies_ms(clients);
  std::vector<std::vector<std::string>> answers(clients);
  for (size_t c = 0; c < clients; ++c) {
    answers[c].assign(pool.size(), std::string());
  }

  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto sock = ConnectLoopback(port);
      MAXRS_CHECK_MSG(sock.ok(), "connect failed");
      const std::vector<ScheduledQuery>& schedule = schedules[c];
      // Sender: fire each query at its scheduled instant, never waiting
      // for responses (open loop).
      std::thread sender([&] {
        for (const ScheduledQuery& q : schedule) {
          std::this_thread::sleep_until(start + q.at);
          char command[96];
          std::snprintf(command, sizeof(command), "MAXRS %.17g %.17g\n",
                        pool[q.rect].first, pool[q.rect].second);
          MAXRS_CHECK_MSG(SendAll(sock.value(), command).ok(), "send failed");
        }
      });
      // Receiver: responses come back in command order; latency is
      // response arrival minus SCHEDULED send (slip counts as latency).
      std::string carry;
      latencies_ms[c].reserve(schedule.size());
      for (const ScheduledQuery& q : schedule) {
        const std::string frame = ReadFrame(sock.value(), &carry);
        const std::chrono::duration<double, std::milli> lat =
            Clock::now() - (start + q.at);
        latencies_ms[c].push_back(lat.count());
        const std::string tokens = AnswerTokens(frame);
        if (answers[c][q.rect].empty()) {
          answers[c][q.rect] = tokens;
        } else {
          MAXRS_CHECK_MSG(answers[c][q.rect] == tokens,
                          "answer changed between repeats of one rect");
        }
      }
      sender.join();
    });
  }
  for (std::thread& t : threads) t.join();
  const Clock::time_point done = Clock::now();

  // Bit-identity oracle: the same rects through in-process Submit on the
  // same server, formatted with the same %.17g — must match the wire.
  for (size_t r = 0; r < pool.size(); ++r) {
    QuerySpec spec;
    spec.width = pool[r].first;
    spec.height = pool[r].second;
    auto oracle = server.Submit(spec);
    MAXRS_CHECK_MSG(oracle.ok(), "oracle Submit failed");
    char expected[96];
    std::snprintf(expected, sizeof(expected), "%.17g %.17g %.17g",
                  oracle->result.location.x, oracle->result.location.y,
                  oracle->result.total_weight);
    for (size_t c = 0; c < clients; ++c) {
      if (answers[c][r].empty()) continue;  // this client never drew rect r
      MAXRS_CHECK_MSG(answers[c][r] == expected,
                      "TCP answer differs from in-process Submit");
    }
  }

  std::vector<double> all_ms;
  for (const auto& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  MAXRS_CHECK(!all_ms.empty());
  std::sort(all_ms.begin(), all_ms.end());
  RoundResult result;
  result.wall_seconds =
      std::chrono::duration<double>(done - start).count();
  result.qps = static_cast<double>(all_ms.size()) / result.wall_seconds;
  result.p50_ms = PercentileMs(all_ms, 0.50);
  result.p95_ms = PercentileMs(all_ms, 0.95);
  result.p99_ms = PercentileMs(all_ms, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint64_t n =
      static_cast<uint64_t>(flags.GetInt("n", quick ? 10000 : 100000));
  const size_t clients =
      static_cast<size_t>(flags.GetInt("clients", quick ? 2 : 4));
  const size_t queries =
      static_cast<size_t>(flags.GetInt("queries", quick ? 40 : 150));
  const double rate = static_cast<double>(flags.GetInt("rate", 100));
  const size_t shard_count = static_cast<size_t>(flags.GetInt("shards", 8));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 4));
  const std::string json_path =
      flags.GetString("json", "BENCH_workload.json");
  MAXRS_CHECK(clients > 0 && queries > 0 && rate > 0);

  const auto objects = MakeDistribution("uniform", n, seed);
  const auto pool = MakeRectPool();

  auto env = NewMemEnv(kBlockSize);
  MAXRS_CHECK_OK(WriteDataset(*env, "dataset", objects));
  DatasetHandleOptions ingest_options;
  ingest_options.shard_count = shard_count;
  ingest_options.memory_bytes = kBufferSynthetic;
  auto handle = DatasetHandle::Ingest(*env, "dataset", ingest_options);
  MAXRS_CHECK_MSG(handle.ok(), "ingest failed");

  std::printf("\n=== bench_workload: uniform n=%" PRIu64
              ", %zu clients x %zu queries at %.0f qps each, "
              "%zu-rect zipf pool, %zu shards ===\n",
              n, clients, queries, rate, pool.size(), shard_count);
  std::printf("%-10s%10s%12s%12s%12s%12s%14s\n", "schedule", "qps", "p50 ms",
              "p95 ms", "p99 ms", "wall s", "blocks total");

  std::vector<BenchRecord> records;
  for (const bool bursty : {false, true}) {
    const char* name = bursty ? "bursty" : "steady";
    // Fresh server per round: each schedule meets a cold cache, so the
    // rounds are comparable and order-independent.
    MaxRSServerOptions server_options;
    server_options.num_workers = workers;
    server_options.memory_bytes = kBufferSynthetic;
    server_options.cache_max_extent_fraction = 1.0;
    MaxRSServer server(*env, *handle, server_options);
    NetServerOptions net_options;
    net_options.num_io_threads = clients;
    NetServer net(server, *env, net_options);
    MAXRS_CHECK_OK(net.Start());

    // Per-client schedules from one seeded stream: deterministic workload,
    // distinct per client and per round.
    Rng rng(seed ^ (bursty ? 0x9e3779b9ULL : 0x12345ULL));
    std::vector<std::vector<ScheduledQuery>> schedules;
    schedules.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      schedules.push_back(
          MakeSchedule(queries, rate, bursty, pool.size(), &rng));
    }

    const IoStatsSnapshot before = env->stats().Snapshot();
    const RoundResult round = RunRound(server, net.port(), pool, schedules);
    const uint64_t io = (env->stats().Snapshot() - before).total();
    net.Shutdown();
    server.Shutdown();

    std::printf("%-10s%10.0f%12.3f%12.3f%12.3f%12.3f%14" PRIu64 "\n", name,
                round.qps, round.p50_ms, round.p95_ms, round.p99_ms,
                round.wall_seconds, io);
    BenchRecord record;
    record.bench = "bench_workload";
    record.algo = name;
    record.dataset = "uniform";
    record.n = n;
    record.threads = clients;
    record.memory_bytes = kBufferSynthetic;
    record.wall_seconds = round.wall_seconds;
    record.io_blocks = io;
    record.total_weight = 0.0;
    record.qps = round.qps;
    record.p50_ms = round.p50_ms;
    record.p95_ms = round.p95_ms;
    record.p99_ms = round.p99_ms;
    records.push_back(record);
  }

  if (!WriteBenchJson(json_path, records)) return 1;
  std::printf("\nwrote %zu records to %s\n", records.size(),
              json_path.c_str());
  return 0;
}
