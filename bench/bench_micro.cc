// Perf-trajectory tracker: wall-clock seconds and block I/O of ExactMaxRS
// (optionally the baselines) per cardinality and thread count, emitted as
// BENCH_micro.json so CI archives a machine-readable perf history. Unlike
// the bench_fig* binaries (which reproduce paper figures, I/O only) and
// bench_cpu (Google-benchmark CPU kernels), this is the one place the
// repo's end-to-end speed is recorded run over run.
//
// Flags:
//   --n=250000,1000000     comma-separated cardinalities (uniform data)
//   --threads=1,2,8        comma-separated thread counts for ExactMaxRS
//   --baselines            also run Naive and aSB-Tree (serial, t=1)
//   --read_ahead           run ExactMaxRS with async read-ahead; records
//                          are keyed "ExactMaxRS+ra" so artifacts with and
//                          without the flag never collide in compare_bench
//   --json=PATH            output path (default BENCH_micro.json)
//   --quick                small cardinality / thread set for CI smoke
//   --seed=N               dataset seed
//
// The bench also asserts the parallel engine's core contract on real data:
// identical total_weight for every thread count and identical I/O at every
// thread count (the engine parallelizes the schedule, never the work —
// with --read_ahead the same holds for the prefetch layer by construction,
// and the I/O-invariance CHECK keeps running).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/check.h"
#include "util/flags.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool baselines = flags.GetBool("baselines", false);
  const bool read_ahead = flags.GetBool("read_ahead", false);
  const std::string exact_name =
      read_ahead ? "ExactMaxRS+ra" : "ExactMaxRS";
  const std::string json_path = flags.GetString("json", "BENCH_micro.json");
  const std::vector<uint64_t> cardinalities = ParseU64List(
      flags.GetString("n", quick ? "50000" : "250000,1000000"));
  const std::vector<uint64_t> thread_counts =
      ParseU64List(flags.GetString("threads", quick ? "1,2" : "1,2,8"));
  MAXRS_CHECK(!cardinalities.empty());
  MAXRS_CHECK(!thread_counts.empty());

  std::vector<BenchRecord> records;
  for (uint64_t n : cardinalities) {
    const auto objects = MakeDistribution("uniform", n, seed);
    std::printf("\n=== bench_micro: uniform n=%" PRIu64 " (M=%zuKB) ===\n", n,
                kBufferSynthetic >> 10);
    std::printf("%-14s%10s%16s%16s\n", "algo", "threads", "seconds",
                "I/O (blocks)");

    std::vector<RunOutcome> outcomes(thread_counts.size());
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      const size_t t = static_cast<size_t>(thread_counts[i]);
      const RunOutcome out =
          RunAlgorithm(Algorithm::kExactMaxRS, objects, kDefaultRange,
                       kBufferSynthetic, t, read_ahead);
      outcomes[i] = out;
      if (i > 0) {
        // The parallel engine contract, checked on live data: same answer,
        // same block transfers, at every thread count.
        MAXRS_CHECK_MSG(out.total_weight == outcomes[0].total_weight,
                        "thread count changed the result weight");
        MAXRS_CHECK_MSG(out.io == outcomes[0].io,
                        "thread count changed the I/O count");
      }
      std::printf("%-14s%10zu%16.4f%16" PRIu64 "\n", exact_name.c_str(), t,
                  out.seconds, out.io);
      records.push_back({"bench_micro", exact_name, "uniform", n, t,
                         kBufferSynthetic, out.seconds, out.io,
                         out.total_weight});
    }
    if (thread_counts.size() > 1) {
      // Headline speedup: fewest vs most threads, independent of the order
      // the --threads list was given in.
      size_t lo = 0, hi = 0;
      for (size_t i = 1; i < thread_counts.size(); ++i) {
        if (thread_counts[i] < thread_counts[lo]) lo = i;
        if (thread_counts[i] > thread_counts[hi]) hi = i;
      }
      std::printf("%-14s%10s%15.2fx  (%" PRIu64 "t vs %" PRIu64 "t)\n",
                  "speedup", "",
                  outcomes[hi].seconds > 0.0
                      ? outcomes[lo].seconds / outcomes[hi].seconds
                      : 0.0,
                  thread_counts[lo], thread_counts[hi]);
    }

    if (baselines) {
      for (Algorithm algo : {Algorithm::kNaive, Algorithm::kASBTree}) {
        const RunOutcome out = RunAlgorithm(algo, objects, kDefaultRange,
                                            kBufferSynthetic, 1);
        std::printf("%-14s%10d%16.4f%16" PRIu64 "\n", AlgoName(algo), 1,
                    out.seconds, out.io);
        records.push_back({"bench_micro", AlgoName(algo), "uniform", n, 1,
                           kBufferSynthetic, out.seconds, out.io,
                           out.total_weight});
      }
    }
  }

  if (!WriteBenchJson(json_path, records)) return 1;
  std::printf("\nwrote %zu records to %s\n", records.size(), json_path.c_str());
  return 0;
}
