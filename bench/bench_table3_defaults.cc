// Table 3: The default values of parameters, demonstrated live — one run of
// each algorithm at exactly the paper's default configuration.
#include "bench_common.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t n = ScaleN(kDefaultCardinality, args);

  std::printf("Table 3 defaults:\n");
  std::printf("  Cardinality (|O|)     : %llu%s\n",
              static_cast<unsigned long long>(n), args.quick ? " (quick)" : "");
  std::printf("  Block size            : 4KB\n");
  std::printf("  Buffer size           : 256KB (real), 1024KB (synthetic)\n");
  std::printf("  Space size            : 1M x 1M\n");
  std::printf("  Rectangle size (d1xd2): 1K x 1K\n");
  std::printf("  Circle diameter (d)   : 1K\n");

  auto objects = MakeDistribution("uniform", n, args.seed);
  TablePrinter table("Default-configuration run (uniform)", "Algorithm",
                     {"I/O (blocks)", "Wall (s)", "Max sum"}, args.csv_path);
  for (Algorithm algo :
       {Algorithm::kNaive, Algorithm::kASBTree, Algorithm::kExactMaxRS}) {
    const RunOutcome r =
        RunAlgorithm(algo, objects, kDefaultRange, kBufferSynthetic);
    table.AddRow(AlgoName(algo),
                 {static_cast<double>(r.io), r.seconds, r.total_weight});
  }
  return 0;
}
