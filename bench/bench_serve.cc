// Serve-layer throughput tracker: ingests one dataset, then measures the
// MaxRSServer on a scripted workload of distinct rectangle sizes — cold
// (every query executes the full per-query pipeline) and warm (every query
// is an LRU hit) — at 1/2/8 workers, across solve and routing modes (the
// default per-shard solve with streaming routing as "serve_cold"/
// "serve_warm", the same solve through materialized part files as
// "serve_cold_materialized", and the global k-way merge path as
// "serve_cold_globalmerge"), emitted as BENCH_serve.json. A final round
// pair re-runs the cold per-shard workload on a clustered dataset with the
// aggregate-index pruning on ("serve_cold_pruned") and off
// ("serve_cold_unpruned"), so the perf history tracks the block-transfer
// win of index-pruned serving where the bound actually bites. The mode
// comparisons make the cost of part-file materialization and of the global
// piece merge visible in the perf history. Together with BENCH_micro.json this
// is the repo's machine-readable perf trajectory (docs/BENCHMARKING.md;
// compare_bench.py --plot renders it).
//
// Flags:
//   --n=250000         dataset cardinality (uniform data)
//   --threads=1,2,8    comma-separated worker counts
//   --queries=32       distinct rects per round
//   --shards=8         x-slab shard count (0 derives)
//   --read_ahead       double-buffered async prefetch on ingest + queries
//                      (round names gain a "+ra" suffix in the JSON)
//   --json=PATH        output path (default BENCH_serve.json)
//   --quick            small dataset / workload for CI smoke
//   --seed=N           dataset seed
//
// The bench asserts the serve contract on live data: per-query results are
// identical at every worker count, in both solve modes, and across cache
// states, and a warm round performs zero block transfers.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datagen/dataset_io.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/stopwatch.h"

using namespace maxrs;
using namespace maxrs::bench;

namespace {

// A deterministic scripted workload: `count` distinct rect sizes spread
// around the paper's default 1000 x 1000 query.
std::vector<std::pair<double, double>> MakeWorkload(size_t count) {
  std::vector<std::pair<double, double>> rects;
  rects.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rects.emplace_back(400.0 + 97.0 * static_cast<double>(i % 17),
                       1600.0 - 83.0 * static_cast<double>(i % 13));
  }
  return rects;
}

// Skewed dataset for the pruning rounds: half the mass sits in one
// rect-sized cluster near the domain's far end, the rest spreads uniformly
// — so whole x-slabs away from the cluster hold less total weight than one
// well-placed rect captures. That is the regime where the aggregate-index
// upper bound genuinely skips shards; on uniform data every slab weighs
// about the same and the bound (correctly) prunes nothing.
std::vector<SpatialObject> MakeClustered(uint64_t n, uint64_t seed) {
  std::vector<SpatialObject> objects = MakeDistribution("uniform", n, seed);
  for (size_t i = 0; i < objects.size(); i += 2) {
    objects[i].x = 900000.0 + std::fmod(objects[i].x, 800.0);
    objects[i].y = 500000.0 + std::fmod(objects[i].y, 800.0);
  }
  return objects;
}

// Submits the whole workload from `clients` concurrent client threads
// (round-robin assignment) and returns the covered weights in workload
// order. Wall time spans first submit to last completion.
std::vector<double> RunRound(MaxRSServer& server,
                             const std::vector<std::pair<double, double>>& rects,
                             size_t clients, double* wall_seconds) {
  std::vector<double> weights(rects.size(), 0.0);
  Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = c; i < rects.size(); i += clients) {
        QuerySpec spec;
        spec.width = rects[i].first;
        spec.height = rects[i].second;
        auto result = server.Submit(spec);
        MAXRS_CHECK_MSG(result.ok(), "serve query failed");
        weights[i] = result->result.total_weight;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  *wall_seconds = timer.ElapsedSeconds();
  return weights;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const bool quick = flags.GetBool("quick", false);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint64_t n =
      static_cast<uint64_t>(flags.GetInt("n", quick ? 20000 : 250000));
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", quick ? 8 : 32));
  const size_t shard_count = static_cast<size_t>(flags.GetInt("shards", 8));
  const bool read_ahead = flags.GetBool("read_ahead", false);
  const std::string json_path = flags.GetString("json", "BENCH_serve.json");
  const std::vector<uint64_t> thread_counts =
      ParseU64List(flags.GetString("threads", quick ? "1,2" : "1,2,8"));
  MAXRS_CHECK(!thread_counts.empty());
  MAXRS_CHECK_MSG(num_queries > 0, "--queries must be positive");

  const auto objects = MakeDistribution("uniform", n, seed);
  const auto rects = MakeWorkload(num_queries);

  std::printf("\n=== bench_serve: uniform n=%" PRIu64 ", %zu distinct rects, "
              "%zu shards (M=%zuKB) ===\n",
              n, rects.size(), shard_count, kBufferSynthetic >> 10);
  std::printf("%-12s%10s%12s%14s%16s%16s\n", "round", "workers", "qps",
              "s/query", "I/O/query", "blocks total");

  std::vector<BenchRecord> records;
  std::vector<double> reference_weights;
  for (uint64_t t : thread_counts) {
    const size_t workers = static_cast<size_t>(t);
    auto env = NewMemEnv(kBlockSize);
    MAXRS_CHECK_OK(WriteDataset(*env, "dataset", objects));

    DatasetHandleOptions ingest_options;
    ingest_options.shard_count = shard_count;
    ingest_options.memory_bytes = kBufferSynthetic;
    ingest_options.num_threads = workers;
    ingest_options.read_ahead = read_ahead;
    auto handle = DatasetHandle::Ingest(*env, "dataset", ingest_options);
    MAXRS_CHECK_MSG(handle.ok(), "ingest failed");

    MaxRSServerOptions server_options;
    server_options.num_workers = workers;
    server_options.memory_bytes = kBufferSynthetic;
    server_options.cache_entries = rects.size();  // warm round = all hits
    // Huge-rect admission must not skew the warm round: the scripted
    // workload's rects are all well below half the extent, but the bench
    // should not silently depend on that.
    server_options.cache_max_extent_fraction = 1.0;
    server_options.read_ahead = read_ahead;
    MaxRSServer server(*env, *handle, server_options);

    for (const bool warm : {false, true}) {
      const IoStatsSnapshot before = env->stats().Snapshot();
      double wall = 0.0;
      const std::vector<double> weights =
          RunRound(server, rects, workers, &wall);
      const uint64_t io = (env->stats().Snapshot() - before).total();

      // The serve contract, checked on live data: worker count and cache
      // state never change an answer; a warm round does zero I/O.
      if (reference_weights.empty()) {
        reference_weights = weights;
      } else {
        MAXRS_CHECK_MSG(weights == reference_weights,
                        "worker count or cache state changed a result");
      }
      if (warm) MAXRS_CHECK_MSG(io == 0, "warm round performed I/O");

      const double per_query = wall / static_cast<double>(rects.size());
      std::printf("%-12s%10zu%12.1f%14.6f%16" PRIu64 "%16" PRIu64 "\n",
                  warm ? "warm" : "cold", workers,
                  wall > 0.0 ? static_cast<double>(rects.size()) / wall : 0.0,
                  per_query, io / rects.size(), io);
      // io_blocks records the round's TOTAL transfers: exact, so the CI
      // baseline diff flags any growth (a truncated per-query average
      // could hide a small regression).
      const std::string round_name =
          std::string(warm ? "serve_warm" : "serve_cold") +
          (read_ahead ? "+ra" : "");
      records.push_back({"bench_serve", round_name, "uniform", n, workers,
                         kBufferSynthetic, per_query, io, weights[0]});
    }

    // Routing comparison: the same per-shard workload, cold, with every
    // routed piece/edge/span materialized through Env part files instead
    // of streamed through channels. The delta against serve_cold is the
    // block traffic (and wall time) the zero-materialization pipeline
    // saves per query.
    {
      MaxRSServerOptions materialized_options = server_options;
      materialized_options.routing_mode = ServeRoutingMode::kMaterialized;
      materialized_options.cache_entries = 0;  // cold by construction
      MaxRSServer materialized_server(*env, *handle, materialized_options);
      const IoStatsSnapshot before = env->stats().Snapshot();
      double wall = 0.0;
      const std::vector<double> weights =
          RunRound(materialized_server, rects, workers, &wall);
      const uint64_t io = (env->stats().Snapshot() - before).total();
      MAXRS_CHECK_MSG(weights == reference_weights,
                      "routing mode changed a result");
      const double per_query = wall / static_cast<double>(rects.size());
      std::printf("%-12s%10zu%12.1f%14.6f%16" PRIu64 "%16" PRIu64 "\n",
                  "cold_mat", workers,
                  wall > 0.0 ? static_cast<double>(rects.size()) / wall : 0.0,
                  per_query, io / rects.size(), io);
      records.push_back({"bench_serve",
                         std::string("serve_cold_materialized") +
                             (read_ahead ? "+ra" : ""),
                         "uniform", n, workers, kBufferSynthetic, per_query,
                         io, weights[0]});
    }

    // Mode comparison: the same workload, cold, through the global-merge
    // path. The per-record delta against serve_cold is the price of the
    // global k-way piece merge + root division pass that the per-shard
    // solve skips (at production sizes; at quick-mode sizes the global
    // path may win by solving the whole merged input in one in-memory
    // sweep — exactly the crossover the perf history should show).
    {
      MaxRSServerOptions global_options = server_options;
      global_options.solve_mode = ServeSolveMode::kGlobalMerge;
      global_options.cache_entries = 0;  // cold by construction
      MaxRSServer global_server(*env, *handle, global_options);
      const IoStatsSnapshot before = env->stats().Snapshot();
      double wall = 0.0;
      const std::vector<double> weights =
          RunRound(global_server, rects, workers, &wall);
      const uint64_t io = (env->stats().Snapshot() - before).total();
      MAXRS_CHECK_MSG(weights == reference_weights,
                      "solve mode changed a result");
      const double per_query = wall / static_cast<double>(rects.size());
      std::printf("%-12s%10zu%12.1f%14.6f%16" PRIu64 "%16" PRIu64 "\n",
                  "cold_global", workers,
                  wall > 0.0 ? static_cast<double>(rects.size()) / wall : 0.0,
                  per_query, io / rects.size(), io);
      records.push_back({"bench_serve",
                         std::string("serve_cold_globalmerge") +
                             (read_ahead ? "+ra" : ""),
                         "uniform", n, workers, kBufferSynthetic, per_query,
                         io, weights[0]});
    }
  }

  // Batched shared-scan round: eight distinct cold rects submitted by eight
  // concurrent clients into a one-worker server that forms one full batch
  // (batch_max = 8, generous formation window), so all eight queries ride a
  // single routing scan per source shard. The in-bench serial leg runs the
  // identical rects one at a time on an unbatched server first; the contract
  // checked on live data is bit-identical weights and strictly fewer total
  // block transfers than eight single-query colds. The committed
  // serve_cold_batched baseline makes the amortization win a tracked number.
  {
    const size_t batch_k = std::min<size_t>(8, rects.size());
    const std::vector<std::pair<double, double>> batch_rects(
        rects.begin(), rects.begin() + batch_k);
    auto env = NewMemEnv(kBlockSize);
    MAXRS_CHECK_OK(WriteDataset(*env, "dataset", objects));

    DatasetHandleOptions ingest_options;
    ingest_options.shard_count = shard_count;
    ingest_options.memory_bytes = kBufferSynthetic;
    ingest_options.read_ahead = read_ahead;
    auto handle = DatasetHandle::Ingest(*env, "dataset", ingest_options);
    MAXRS_CHECK_MSG(handle.ok(), "ingest failed");

    MaxRSServerOptions serial_options;
    serial_options.num_workers = 1;
    serial_options.memory_bytes = kBufferSynthetic;
    serial_options.cache_entries = 0;  // cold by construction
    serial_options.cache_max_extent_fraction = 1.0;
    serial_options.read_ahead = read_ahead;

    uint64_t serial_io = 0;
    std::vector<double> serial_weights;
    {
      MaxRSServer serial_server(*env, *handle, serial_options);
      const IoStatsSnapshot before = env->stats().Snapshot();
      double wall = 0.0;
      serial_weights = RunRound(serial_server, batch_rects, 1, &wall);
      serial_io = (env->stats().Snapshot() - before).total();
    }

    MaxRSServerOptions batched_options = serial_options;
    batched_options.batch_max = 8;
    batched_options.batch_window_ms = 2000;
    MaxRSServer batched_server(*env, *handle, batched_options);
    const IoStatsSnapshot before = env->stats().Snapshot();
    double wall = 0.0;
    const std::vector<double> weights =
        RunRound(batched_server, batch_rects, batch_rects.size(), &wall);
    const uint64_t io = (env->stats().Snapshot() - before).total();
    MAXRS_CHECK_MSG(weights == serial_weights,
                    "batched execution changed a result");
    MAXRS_CHECK_MSG(io < serial_io,
                    "batched round did not beat single-query colds");

    const double per_query = wall / static_cast<double>(batch_rects.size());
    std::printf("%-12s%10zu%12.1f%14.6f%16" PRIu64 "%16" PRIu64 "\n",
                "cold_batch", size_t{1},
                wall > 0.0 ? static_cast<double>(batch_rects.size()) / wall
                           : 0.0,
                per_query, io / batch_rects.size(), io);
    records.push_back({"bench_serve",
                       std::string("serve_cold_batched") +
                           (read_ahead ? "+ra" : ""),
                       "uniform", n, 1, kBufferSynthetic, per_query, io,
                       weights[0]});
  }

  // Pruning round: the same serve pipeline on the clustered dataset, where
  // the aggregate-index bound genuinely bites. The workload mixes selective
  // rects with one full-extent rect (whose expanded window reaches every
  // shard, so no bound can prune it — it must still come back exact). Each
  // worker count runs an un-pruned oracle round first, then the pruned
  // round, pinning bit-identical weights and monotone block counts on live
  // data; the committed serve_cold_pruned / serve_cold_unpruned baselines
  // make the pruning win a tracked number.
  const auto clustered = MakeClustered(n, seed);
  auto pruned_rects = MakeWorkload(num_queries);
  pruned_rects[0] = {1e6, 1e6};
  std::vector<double> pruned_reference;
  for (uint64_t t : thread_counts) {
    const size_t workers = static_cast<size_t>(t);
    auto env = NewMemEnv(kBlockSize);
    MAXRS_CHECK_OK(WriteDataset(*env, "dataset", clustered));

    DatasetHandleOptions ingest_options;
    ingest_options.shard_count = shard_count;
    ingest_options.memory_bytes = kBufferSynthetic;
    ingest_options.num_threads = workers;
    ingest_options.read_ahead = read_ahead;
    auto handle = DatasetHandle::Ingest(*env, "dataset", ingest_options);
    MAXRS_CHECK_MSG(handle.ok(), "ingest failed");

    MaxRSServerOptions base_options;
    base_options.num_workers = workers;
    base_options.memory_bytes = kBufferSynthetic;
    base_options.cache_entries = 0;  // cold by construction
    base_options.cache_max_extent_fraction = 1.0;
    base_options.read_ahead = read_ahead;

    uint64_t unpruned_io = 0;
    for (const bool prune : {false, true}) {
      MaxRSServerOptions server_options = base_options;
      if (!prune) server_options.pruning_mode = ServePruningMode::kOff;
      MaxRSServer server(*env, *handle, server_options);
      const IoStatsSnapshot before = env->stats().Snapshot();
      double wall = 0.0;
      const std::vector<double> weights =
          RunRound(server, pruned_rects, workers, &wall);
      const IoStatsSnapshot delta = env->stats().Snapshot() - before;
      const uint64_t io = delta.total();

      // The pruning contract, checked on live data: identical answers,
      // never more block transfers, and on this skewed dataset the bound
      // must actually skip shards (a silently inert index would otherwise
      // make this round meaningless).
      if (pruned_reference.empty()) {
        pruned_reference = weights;
      } else {
        MAXRS_CHECK_MSG(weights == pruned_reference,
                        "pruning or worker count changed a result");
      }
      if (!prune) {
        unpruned_io = io;
        MAXRS_CHECK_MSG(delta.shards_pruned == 0,
                        "un-pruned round reported pruned shards");
      } else {
        MAXRS_CHECK_MSG(io <= unpruned_io,
                        "pruned round moved more blocks than un-pruned");
        if (shard_count >= 4) {
          MAXRS_CHECK_MSG(delta.shards_pruned > 0,
                          "aggregate index pruned nothing on clustered data");
        }
      }

      const double per_query = wall / static_cast<double>(pruned_rects.size());
      std::printf("%-12s%10zu%12.1f%14.6f%16" PRIu64 "%16" PRIu64 "\n",
                  prune ? "cold_pruned" : "cold_unprun", workers,
                  wall > 0.0
                      ? static_cast<double>(pruned_rects.size()) / wall
                      : 0.0,
                  per_query, io / pruned_rects.size(), io);
      records.push_back({"bench_serve",
                         std::string(prune ? "serve_cold_pruned"
                                           : "serve_cold_unpruned") +
                             (read_ahead ? "+ra" : ""),
                         "clustered", n, workers, kBufferSynthetic, per_query,
                         io, weights[0]});
    }
  }

  if (!WriteBenchJson(json_path, records)) return 1;
  std::printf("\nwrote %zu records to %s\n", records.size(), json_path.c_str());
  return 0;
}
