// Figure 17: Approximation quality of ApproxMaxCRS.
// Ratio W(c_hat) / W(c*) for circle diameters 1000..10000 on the uniform,
// Gaussian, UX and NE datasets. Optimal answers come from the exact
// reference (Drezner [8]-style arc sweep; grid-accelerated, same result).
// Expected shape: always far above the theoretical 1/4 bound, approaching
// ~0.9+ as the diameter grows.
#include "bench_common.h"

#include "circle/approx_maxcrs.h"
#include "circle/exact_maxcrs.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<double> diameters = {1000, 2500, 5000, 7500, 10000};
  const uint64_t n = ScaleN(kDefaultCardinality, args);

  TablePrinter table("Figure 17: approximation ratio W(c_hat)/W(c*) vs diameter",
                     "Diameter",
                     {"Uniform", "Gaussian", "UX", "NE"}, args.csv_path);
  // Pre-generate the four datasets.
  std::vector<std::vector<SpatialObject>> datasets;
  for (const std::string name : {"uniform", "gaussian", "ux", "ne"}) {
    datasets.push_back(MakeDistribution(name, n, args.seed));
  }

  for (double d : diameters) {
    std::vector<double> ratios;
    for (const auto& objects : datasets) {
      const MaxCRSResult approx = ApproxMaxCRSInMemory(objects, d);
      const ExactMaxCRSResult opt = ExactMaxCRS(objects, d);
      const double ratio =
          opt.total_weight > 0 ? approx.total_weight / opt.total_weight : 1.0;
      if (ratio < 0.25 - 1e-12 || ratio > 1.0 + 1e-12) {
        std::fprintf(stderr, "RATIO OUT OF BOUNDS: %.4f at d=%.0f\n", ratio, d);
        return 1;
      }
      ratios.push_back(ratio);
    }
    table.AddRow(std::to_string(static_cast<int>(d)), ratios);
  }
  return 0;
}
