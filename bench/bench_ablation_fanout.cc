// Ablation (not a paper figure): the effect of the distribution-sweep
// fan-out m on ExactMaxRS's I/O. The paper fixes m = Theta(M/B) (the choice
// that makes the recursion depth log_{M/B}); this bench shows what happens
// when m deviates from it — small m deepens the recursion (more full passes
// over the data), while m beyond M/B - 2 would exceed the output-buffer
// budget and is therefore capped by the library.
#include "bench_common.h"

#include "datagen/dataset_io.h"
#include "util/check.h"

using namespace maxrs;
using namespace maxrs::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const uint64_t n = ScaleN(kDefaultCardinality, args);
  auto objects = MakeDistribution("uniform", n, args.seed);

  const size_t memory = 256 << 10;  // small buffer so the fan-out matters
  TablePrinter table("Ablation: ExactMaxRS I/O vs fan-out m (M = 256KB)",
                     "Fan-out m",
                     {"I/O (blocks)", "Levels", "Base cases"}, args.csv_path);
  for (size_t fanout : {2, 4, 8, 16, 32, 62}) {
    auto env = NewMemEnv(kBlockSize);
    MAXRS_CHECK_OK(WriteDataset(*env, "dataset", objects));
    MaxRSOptions options;
    options.rect_width = kDefaultRange;
    options.rect_height = kDefaultRange;
    options.memory_bytes = memory;
    options.fanout = fanout;
    // Keep the base case small so the division machinery is exercised.
    options.base_case_max_pieces = memory / sizeof(PieceRecord);
    auto result = RunExactMaxRS(*env, "dataset", options);
    MAXRS_CHECK_OK(result.status());
    table.AddRow(std::to_string(fanout),
                 {static_cast<double>(result->stats.io.total()),
                  static_cast<double>(result->stats.recursion_levels),
                  static_cast<double>(result->stats.base_cases)});
  }
  return 0;
}
