// Tourist hotspot: the paper's second motivating example — find the most
// representative spot in a city for a tourist with a limited walking range
// (Sec. 1). Reach is circular, so this is the MaxCRS problem: we run
// ApproxMaxCRS (1/4-approximate, I/O-optimal) and compare it against the
// exact in-memory reference to show the practical quality.
//
//   $ ./tourist_hotspot [--attractions=5000] [--walk=800]
#include <cstdio>

#include "circle/approx_maxcrs.h"
#include "circle/exact_maxcrs.h"
#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace maxrs;
  Flags flags;
  flags.Parse(argc, argv);
  const uint64_t n = static_cast<uint64_t>(flags.GetInt("attractions", 5000));
  const double walk = flags.GetDouble("walk", 800.0);  // diameter, meters

  // Attractions cluster around the old town and the waterfront; weights are
  // visitor ratings (1..5 stars).
  ClusterOptions city;
  city.cardinality = n;
  city.domain_size = 10000.0;
  city.num_clusters = 8;
  city.cluster_sigma_fraction = 0.05;
  city.background_fraction = 0.3;
  city.seed = 11;
  auto attractions = MakeClustered(city);
  Rng stars(12);
  for (auto& a : attractions) a.w = static_cast<double>(1 + stars.UniformU64(5));

  std::printf("%llu attractions in a 10km x 10km city; walking range %.0fm\n\n",
              static_cast<unsigned long long>(n), walk);

  // External-memory ApproxMaxCRS through the public API.
  auto env = NewMemEnv(4096);
  if (Status st = WriteDataset(*env, "attractions", attractions); !st.ok()) {
    std::fprintf(stderr, "stage failed: %s\n", st.ToString().c_str());
    return 1;
  }
  MaxCRSOptions options;
  options.diameter = walk;
  options.memory_bytes = 1 << 20;
  auto approx = RunApproxMaxCRS(*env, "attractions", options);
  if (!approx.ok()) {
    std::fprintf(stderr, "MaxCRS failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }

  std::printf("ApproxMaxCRS candidates (p0 = MBR max-region center, p1..p4 "
              "diagonal shifts):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  p%d at (%7.1f, %7.1f): rating sum %6.1f%s\n", i,
                approx->candidates[i].x, approx->candidates[i].y,
                approx->candidate_weights[i],
                i == approx->chosen ? "   <-- chosen" : "");
  }

  const ExactMaxCRSResult exact = ExactMaxCRS(attractions, walk);
  std::printf("\nBest spot: (%.1f, %.1f) with rating sum %.1f\n",
              approx->location.x, approx->location.y, approx->total_weight);
  std::printf("Exact optimum:                          %.1f\n",
              exact.total_weight);
  std::printf("Approximation ratio: %.3f (theoretical worst case: 0.25)\n",
              exact.total_weight > 0 ? approx->total_weight / exact.total_weight
                                     : 1.0);
  std::printf("I/O spent: %llu blocks\n",
              static_cast<unsigned long long>(approx->stats.io.total()));
  return 0;
}
