// Quickstart: find the best placement of a 4 x 3 rectangle over a handful
// of weighted points — the example of Figure 1/2 in the paper, in ~30 lines.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "io/env.h"

int main() {
  using namespace maxrs;

  // A few weighted objects (shops, customers, attractions, ...).
  std::vector<SpatialObject> objects = {
      {2, 2, 1.0}, {4, 3, 1.0}, {3, 4, 1.0}, {9, 9, 1.0}, {10, 8, 2.0},
  };

  // --- The simplest path: everything in memory. ---
  MaxRSResult best = ExactMaxRSInMemory(objects, /*rect_width=*/4.0,
                                        /*rect_height=*/3.0);
  std::printf("In-memory : best location (%.2f, %.2f), covered weight %.1f\n",
              best.location.x, best.location.y, best.total_weight);

  // --- The scalable path: dataset in external storage, bounded memory. ---
  auto env = NewMemEnv(/*block_size=*/4096);  // or NewPosixEnv("/tmp/maxrs")
  if (Status st = WriteDataset(*env, "objects", objects); !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  MaxRSOptions options;
  options.rect_width = 4.0;
  options.rect_height = 3.0;
  options.memory_bytes = 64 << 10;  // pretend we only have 64KB
  auto result = RunExactMaxRS(*env, "objects", options);
  if (!result.ok()) {
    std::fprintf(stderr, "MaxRS failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("External  : best location (%.2f, %.2f), covered weight %.1f\n",
              result->location.x, result->location.y, result->total_weight);
  std::printf("            %llu block I/Os, max-region x:[%.2f, %.2f) y:[%.2f, %.2f)\n",
              static_cast<unsigned long long>(result->stats.io.total()),
              result->region.x_lo, result->region.x_hi, result->region.y_lo,
              result->region.y_hi);
  return 0;
}
