// maxrs_server_cli: the serve-layer counterpart of maxrs_cli — loads (or
// generates) a dataset ONCE, ingests it into a sharded DatasetHandle (the
// two object sorts run here and never again), then answers a scripted
// workload of MaxRS queries of varying rectangle sizes on a MaxRSServer.
//
//   $ ./maxrs_server_cli --demo --queries=1000x1000,500x2000,250x250
//   $ ./maxrs_server_cli --input=points.csv --queries=800x800 --repeat=3
//   $ ./maxrs_server_cli --demo --workers=4 --shards=8
//   $ ./maxrs_server_cli --demo --chaos_seed=7 --retry_budget=5 --deadline_ms=2000
//
// Each query line reports the optimal location, the covered weight, and the
// block I/O the query added — repeat rounds hit the LRU cache and report 0.
// --workers=K serves up to K queries concurrently (submitted from K client
// threads); results are identical for any worker count.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/retry_env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "util/flags.h"

using namespace maxrs;

namespace {

// Parses "WxH,WxH,..." into rect dimensions; returns false on bad syntax.
bool ParseQueries(const std::string& spec,
                  std::vector<std::pair<double, double>>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t x = item.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= item.size()) return false;
    char* end = nullptr;
    const double w = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + x) return false;  // trailing garbage before 'x'
    const double h = std::strtod(item.c_str() + x + 1, &end);
    if (end != item.c_str() + item.size()) return false;  // ... after it
    if (!(w > 0.0) || !(h > 0.0)) return false;
    out->emplace_back(w, h);
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);

  std::vector<SpatialObject> objects;
  if (flags.GetBool("demo", false)) {
    SyntheticOptions demo;
    demo.cardinality = static_cast<uint64_t>(flags.GetInt("n", 100000));
    demo.domain_size = 1e6;
    demo.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    objects = MakeGaussian(demo);
    std::printf("demo dataset: %zu Gaussian points in [0, 1e6]^2\n",
                objects.size());
  } else {
    const std::string input = flags.GetString("input", "");
    if (input.empty()) {
      std::fprintf(
          stderr,
          "usage: maxrs_server_cli --input=points.csv --queries=WxH[,WxH...]\n"
          "       maxrs_server_cli --demo [--n=100000]\n"
          "flags: --workers=K --shards=S --repeat=R --cache=E --memory-kb=M\n"
          "       --mode=per-shard|global-merge --read_ahead\n"
          "       --no_pruning (disable aggregate-index shard skipping)\n"
          "       --pool-kb=N (shared buffer pool over the dataset files;\n"
          "                    0 = off)\n"
          "       --deadline_ms=D (per-query deadline; 0 = none)\n"
          "       --retry_budget=R (transient-fault retries per block op)\n"
          "       --chaos_seed=S (inject a seeded fault schedule at serve "
          "time)\n");
      return 2;
    }
    auto loaded = LoadCsv(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    objects = std::move(loaded).value();
    std::printf("loaded %zu objects from %s\n", objects.size(), input.c_str());
  }

  std::vector<std::pair<double, double>> rects;
  if (!ParseQueries(
          flags.GetString("queries", "1000x1000,500x2000,2000x500,250x250"),
          &rects)) {
    std::fprintf(stderr, "bad --queries; expected WxH,WxH,...\n");
    return 2;
  }
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 2));
  const size_t repeat = static_cast<size_t>(flags.GetInt("repeat", 2));
  const size_t memory_bytes =
      static_cast<size_t>(flags.GetInt("memory-kb", 1024)) << 10;

  auto env = NewMemEnv(4096);
  if (Status st = WriteDataset(*env, "dataset", objects); !st.ok()) {
    std::fprintf(stderr, "staging failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // One parse shared by ingest and serve: the two halves must never run
  // with different read-ahead settings.
  const bool read_ahead = flags.GetBool("read_ahead", false);

  // Ingest once: the last external sorts this dataset will ever need.
  DatasetHandleOptions ingest_options;
  ingest_options.shard_count = static_cast<size_t>(flags.GetInt("shards", 0));
  ingest_options.memory_bytes = memory_bytes;
  ingest_options.num_threads = workers;
  ingest_options.read_ahead = read_ahead;
  auto handle = DatasetHandle::Ingest(*env, "dataset", ingest_options);
  if (!handle.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu objects into %zu x-slab shards "
              "(%llu block transfers, %.3fs)\n",
              static_cast<unsigned long long>(handle->num_objects()),
              handle->shards().size(),
              static_cast<unsigned long long>(handle->ingest_stats().io.total()),
              handle->ingest_stats().wall_seconds);

  // Serve-time robustness stack: ingest above ran clean on the base Env
  // (recovery of damaged persistent state is DatasetHandle::Open's job);
  // --chaos_seed injects a seeded fault schedule into every query-time
  // block transfer, and --retry_budget absorbs the transient share of it.
  Env* serve_env = env.get();
  std::unique_ptr<ChaosEnv> chaos;
  const int64_t chaos_seed = flags.GetInt("chaos_seed", 0);
  if (chaos_seed > 0) {
    ChaosOptions chaos_options;
    chaos_options.seed = static_cast<uint64_t>(chaos_seed);
    chaos_options.transient_fault_p = 0.01;
    chaos_options.permanent_fault_p = 0.0005;
    chaos_options.bit_flip_read_p = 0.0005;
    chaos_options.torn_write_p = 0.0005;
    chaos = std::make_unique<ChaosEnv>(*serve_env, chaos_options);
    serve_env = chaos.get();
    std::printf("chaos: seed %lld fault schedule armed on serve-time I/O\n",
                static_cast<long long>(chaos_seed));
  }
  std::unique_ptr<RetryEnv> retry;
  const int64_t retry_budget =
      flags.GetInt("retry_budget", chaos_seed > 0 ? 3 : 0);
  if (retry_budget > 0) {
    RetryPolicy policy;
    policy.max_retries = static_cast<int>(retry_budget);
    policy.initial_backoff = std::chrono::microseconds(100);
    retry = std::make_unique<RetryEnv>(*serve_env, policy);
    serve_env = retry.get();
  }

  MaxRSServerOptions server_options;
  server_options.num_workers = workers;
  server_options.memory_bytes = memory_bytes;
  server_options.read_ahead = read_ahead;
  server_options.cache_entries =
      static_cast<size_t>(flags.GetInt("cache", 16));
  server_options.deadline_ms =
      static_cast<int64_t>(flags.GetInt("deadline_ms", 0));
  const std::string mode = flags.GetString("mode", "per-shard");
  if (mode == "global-merge") {
    server_options.solve_mode = ServeSolveMode::kGlobalMerge;
  } else if (mode != "per-shard") {
    std::fprintf(stderr, "bad --mode; expected per-shard or global-merge\n");
    return 2;
  }
  if (flags.GetBool("no_pruning", false)) {
    server_options.pruning_mode = ServePruningMode::kOff;
  }
  server_options.buffer_pool_bytes =
      static_cast<size_t>(flags.GetInt("pool-kb", 0)) << 10;
  MaxRSServer server(*serve_env, *handle, server_options);

  std::printf("\n%-6s%14s%14s%24s%16s%14s\n", "round", "rect", "weight",
              "location", "I/O (blocks)", "result");
  bool failed = false;
  for (size_t round = 0; round < repeat; ++round) {
    // Submit the round from `workers` client threads so up to that many
    // queries are genuinely in flight at once.
    // Seed with a real error so an index a client somehow skips reads as a
    // visible failure, not an empty-but-ok() Result (which would be UB to
    // dereference).
    std::vector<Result<QueryResponse>> results(
        rects.size(), Status::Internal("query was never submitted"));
    std::vector<std::thread> clients;
    const size_t num_clients = std::min(workers == 0 ? 1 : workers, rects.size());
    clients.reserve(num_clients);
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = c; i < rects.size(); i += num_clients) {
          QuerySpec spec;
          spec.width = rects[i].first;
          spec.height = rects[i].second;
          results[i] = server.Submit(spec);
        }
      });
    }
    for (std::thread& t : clients) t.join();

    for (size_t i = 0; i < rects.size(); ++i) {
      char rect_label[64], location[64];
      std::snprintf(rect_label, sizeof(rect_label), "%gx%g", rects[i].first,
                    rects[i].second);
      if (!results[i].ok()) {
        std::printf("%-6zu%14s  query failed: %s\n", round, rect_label,
                    results[i].status().ToString().c_str());
        failed = true;
        continue;
      }
      // QueryResponse.io is this submission's own share of the block
      // transfers: exact at any worker count (cache and dedup hits read 0).
      const QueryResponse& response = results[i].value();
      std::snprintf(location, sizeof(location), "(%.2f, %.2f)",
                    response.result.location.x, response.result.location.y);
      const char* served = response.served_from == ServedFrom::kCache ? "cache"
                           : response.served_from == ServedFrom::kDedup
                               ? "dedup"
                               : "executed";
      std::printf("%-6zu%14s%14.1f%24s%16llu%14s\n", round, rect_label,
                  response.result.total_weight, location,
                  static_cast<unsigned long long>(response.io.total()),
                  served);
    }
  }

  const ServerCounters counters = server.counters();
  std::printf("\nserved %llu queries: %llu executed, %llu cache hits, "
              "%llu dedup hits, %llu cache rejects\n",
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(counters.executed),
              static_cast<unsigned long long>(counters.cache_hits),
              static_cast<unsigned long long>(counters.dedup_hits),
              static_cast<unsigned long long>(counters.cache_rejects));
  const IoStatsSnapshot io = env->stats().Snapshot();
  std::printf("robustness: %llu shed, %llu degraded, %llu deadline-expired, "
              "%llu corruption-rejected; %llu reads + %llu writes retried\n",
              static_cast<unsigned long long>(counters.shed),
              static_cast<unsigned long long>(counters.degraded),
              static_cast<unsigned long long>(counters.deadlines),
              static_cast<unsigned long long>(counters.corruptions),
              static_cast<unsigned long long>(io.reads_retried),
              static_cast<unsigned long long>(io.writes_retried));
  std::printf("pruning: %llu shards pruned at plan time, %llu skipped by "
              "bound, %llu queries served un-pruned\n",
              static_cast<unsigned long long>(io.shards_pruned),
              static_cast<unsigned long long>(io.bound_skips),
              static_cast<unsigned long long>(counters.unpruned));
  if (server_options.buffer_pool_bytes > 0) {
    const BufferPoolStats pool = server.pool_stats();
    std::printf("buffer pool: %llu hits (free), %llu misses, "
                "%llu evictions\n",
                static_cast<unsigned long long>(pool.hits),
                static_cast<unsigned long long>(pool.misses),
                static_cast<unsigned long long>(pool.evictions));
  }
  if (chaos != nullptr) {
    std::printf("chaos delivered: %llu transient, %llu permanent, "
                "%llu bit flips, %llu torn writes\n",
                static_cast<unsigned long long>(chaos->transient_faults()),
                static_cast<unsigned long long>(chaos->permanent_faults()),
                static_cast<unsigned long long>(chaos->bit_flips()),
                static_cast<unsigned long long>(chaos->torn_writes()));
  }
  return failed ? 1 : 0;
}
