// io_model_demo: a guided tour of the external-memory cost model the
// library is built on — the same N, solved under shrinking memory budgets,
// with the block-I/O counters the paper uses as its metric.
//
//   $ ./io_model_demo [--n=100000]
#include <cstdio>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace maxrs;
  Flags flags;
  flags.Parse(argc, argv);
  const uint64_t n = static_cast<uint64_t>(flags.GetInt("n", 100000));

  SyntheticOptions gen;
  gen.cardinality = n;
  gen.domain_size = 1e6;
  auto objects = MakeUniform(gen);

  auto env = NewMemEnv(4096);
  if (Status st = WriteDataset(*env, "data", objects); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t dataset_blocks = (n * sizeof(SpatialObject) + 4095) / 4096;
  std::printf("Dataset: %llu objects = %llu x 4KB blocks\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(dataset_blocks));

  std::printf("%-14s%-14s%-12s%-12s%-14s%s\n", "Memory (KB)", "I/O (blocks)",
              "levels", "base cases", "spans", "I/O per input block");
  for (size_t kb : {16, 32, 64, 128, 256, 512, 1024, 4096}) {
    MaxRSOptions options;
    options.rect_width = 1000;
    options.rect_height = 1000;
    options.memory_bytes = kb << 10;
    auto result = RunExactMaxRS(*env, "data", options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14zu%-14llu%-12llu%-12llu%-14llu%.1f\n", kb,
                static_cast<unsigned long long>(result->stats.io.total()),
                static_cast<unsigned long long>(result->stats.recursion_levels),
                static_cast<unsigned long long>(result->stats.base_cases),
                static_cast<unsigned long long>(result->stats.total_spans),
                static_cast<double>(result->stats.io.total()) / dataset_blocks);
  }

  std::printf(
      "\nReading the table: the I/O-per-input-block column is the constant of\n"
      "O((N/B) log_{M/B}(N/B)). Each halving of memory deepens the recursion\n"
      "(more levels -> another linear pass over the data); once the whole\n"
      "dataset fits in M, the run degenerates to one linear scan.\n");
  return 0;
}
