// maxrs_netserver_cli: the network front door in one binary — loads (or
// generates) a dataset, ingests it into a sharded DatasetHandle, stands up
// a MaxRSServer behind the loopback TCP listener (src/net), and serves the
// line protocol:
//
//   MAXRS <w> <h> [deadline_ms=N] [pruning=auto|off]
//                 [routing=streaming|materialized]
//   STATS | PING | QUIT
//
// Two modes:
//
//   $ ./maxrs_netserver_cli --demo --port=7777
//       serve until stdin closes (pair with `nc 127.0.0.1 7777`)
//   $ ./maxrs_netserver_cli --demo --queries=1000x1000,500x2000
//       self-client demo: starts the server on an ephemeral port, drives
//       the listed queries over a real socket, prints each wire response,
//       fetches STATS, and shuts down. Exit status 0 iff every query got
//       an OK frame.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "net/net_server.h"
#include "net/query_protocol.h"
#include "net/socket.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "util/flags.h"

using namespace maxrs;

namespace {

// Parses "WxH,WxH,..." into rect dimensions; returns false on bad syntax.
bool ParseQueries(const std::string& spec,
                  std::vector<std::pair<double, double>>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t x = item.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= item.size()) return false;
    char* end = nullptr;
    const double w = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + x) return false;
    const double h = std::strtod(item.c_str() + x + 1, &end);
    if (end != item.c_str() + item.size()) return false;
    if (!(w > 0.0) || !(h > 0.0)) return false;
    out->emplace_back(w, h);
    pos = comma + 1;
  }
  return !out->empty();
}

// Reads one '\n'-terminated frame off the socket; `carry` holds bytes that
// arrived past the previous newline.
Result<std::string> ReadFrame(const Socket& sock, std::string* carry) {
  while (true) {
    const std::string::size_type nl = carry->find('\n');
    if (nl != std::string::npos) {
      std::string line = carry->substr(0, nl);
      carry->erase(0, nl + 1);
      return {std::move(line)};
    }
    char chunk[512];
    Result<size_t> n = RecvSome(sock, chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) return Status::IOError("server closed the connection");
    carry->append(chunk, n.value());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);

  std::vector<SpatialObject> objects;
  if (flags.GetBool("demo", false)) {
    SyntheticOptions demo;
    demo.cardinality = static_cast<uint64_t>(flags.GetInt("n", 100000));
    demo.domain_size = 1e6;
    demo.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    objects = MakeGaussian(demo);
    std::printf("demo dataset: %zu Gaussian points in [0, 1e6]^2\n",
                objects.size());
  } else {
    const std::string input = flags.GetString("input", "");
    if (input.empty()) {
      std::fprintf(
          stderr,
          "usage: maxrs_netserver_cli --demo [--port=P]\n"
          "       maxrs_netserver_cli --demo --queries=WxH[,WxH...]\n"
          "       maxrs_netserver_cli --input=points.csv [--port=P]\n"
          "flags: --workers=K --shards=S --cache=E --deadline_ms=D\n"
          "       --io_threads=T (connection reader threads)\n"
          "with --port and no --queries the server runs until stdin "
          "closes\n");
      return 2;
    }
    auto loaded = LoadCsv(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    objects = std::move(loaded).value();
    std::printf("loaded %zu objects from %s\n", objects.size(), input.c_str());
  }

  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 2));
  auto env = NewMemEnv(4096);
  if (Status st = WriteDataset(*env, "dataset", objects); !st.ok()) {
    std::fprintf(stderr, "staging failed: %s\n", st.ToString().c_str());
    return 1;
  }
  DatasetHandleOptions ingest_options;
  ingest_options.shard_count = static_cast<size_t>(flags.GetInt("shards", 0));
  ingest_options.num_threads = workers;
  auto handle = DatasetHandle::Ingest(*env, "dataset", ingest_options);
  if (!handle.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu objects into %zu shards\n",
              static_cast<unsigned long long>(handle->num_objects()),
              handle->shards().size());

  MaxRSServerOptions server_options;
  server_options.num_workers = workers;
  server_options.cache_entries =
      static_cast<size_t>(flags.GetInt("cache", 16));
  server_options.deadline_ms =
      static_cast<int64_t>(flags.GetInt("deadline_ms", 0));
  MaxRSServer server(*env, *handle, server_options);

  NetServerOptions net_options;
  net_options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  net_options.num_io_threads =
      static_cast<size_t>(flags.GetInt("io_threads", 4));
  NetServer net(server, *env, net_options);
  if (Status st = net.Start(); !st.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", net.port());

  const std::string queries = flags.GetString("queries", "");
  if (queries.empty()) {
    // Serve mode: run until stdin closes, then drain and exit.
    std::printf("serving; close stdin (ctrl-d) to shut down\n");
    while (std::fgetc(stdin) != EOF) {
    }
    net.Shutdown();
    server.Shutdown();
    return 0;
  }

  // Self-client mode: drive the listed queries over a real socket.
  std::vector<std::pair<double, double>> rects;
  if (!ParseQueries(queries, &rects)) {
    std::fprintf(stderr, "bad --queries; expected WxH,WxH,...\n");
    return 2;
  }
  Result<Socket> client = ConnectLoopback(net.port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::string carry;
  bool failed = false;
  for (const auto& rect : rects) {
    char command[128];
    std::snprintf(command, sizeof(command), "MAXRS %.17g %.17g\n", rect.first,
                  rect.second);
    if (Status st = SendAll(client.value(), command); !st.ok()) {
      std::fprintf(stderr, "send failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Result<std::string> frame = ReadFrame(client.value(), &carry);
    if (!frame.ok()) {
      std::fprintf(stderr, "recv failed: %s\n",
                   frame.status().ToString().c_str());
      return 1;
    }
    std::printf("  %gx%-10g -> %s\n", rect.first, rect.second,
                frame.value().c_str());
    if (frame.value().rfind("OK ", 0) != 0) failed = true;
  }
  if (SendAll(client.value(), "STATS\n").ok()) {
    Result<std::string> stats = ReadFrame(client.value(), &carry);
    if (stats.ok()) std::printf("  %s\n", stats.value().c_str());
  }
  (void)SendAll(client.value(), "QUIT\n");
  net.Shutdown();
  server.Shutdown();
  return failed ? 1 : 0;
}
