// Franchise placement: the paper's motivating example — open a new pizza
// store with a limited delivery range in a city with a grid road network,
// maximizing the number of residents reached (Sec. 1).
//
// We synthesize a city of weighted households (clustered neighbourhoods,
// weight = household size), then solve MaxRS for several delivery ranges
// and report how the best location and reach change.
//
//   $ ./franchise_placement [--households=200000] [--seed=7]
#include <cstdio>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace maxrs;
  Flags flags;
  flags.Parse(argc, argv);
  const uint64_t households =
      static_cast<uint64_t>(flags.GetInt("households", 200000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // A 20km x 20km city (coordinates in meters): neighbourhoods as clusters,
  // households weighted by size 1..4.
  ClusterOptions city;
  city.cardinality = households;
  city.domain_size = 20000.0;
  city.num_clusters = 24;
  city.cluster_sigma_fraction = 0.035;
  city.background_fraction = 0.2;
  city.weights = WeightMode::kUnit;
  city.seed = seed;
  auto homes = MakeClustered(city);
  Rng size_rng(seed + 1);
  double population = 0;
  for (auto& h : homes) {
    h.w = static_cast<double>(1 + size_rng.UniformU64(4));  // household size
    population += h.w;
  }
  std::printf("City: %llu households, %.0f residents, 20km x 20km\n\n",
              static_cast<unsigned long long>(homes.size()), population);

  auto env = NewMemEnv(4096);
  if (Status st = WriteDataset(*env, "homes", homes); !st.ok()) {
    std::fprintf(stderr, "stage failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("%-18s%-24s%-16s%-12s%s\n", "Delivery range", "Best store site",
              "Residents", "% of city", "block I/Os");
  for (double range_m : {1000.0, 2000.0, 4000.0}) {
    MaxRSOptions options;
    options.rect_width = range_m;   // delivery rectangle (grid roads: L1-ish)
    options.rect_height = range_m;
    options.memory_bytes = 1 << 20;
    auto result = RunExactMaxRS(*env, "homes", options);
    if (!result.ok()) {
      std::fprintf(stderr, "MaxRS failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    char site[64];
    std::snprintf(site, sizeof(site), "(%.0fm, %.0fm)", result->location.x,
                  result->location.y);
    std::printf("%-18.0f%-24s%-16.0f%-12.1f%llu\n", range_m, site,
                result->total_weight, 100.0 * result->total_weight / population,
                static_cast<unsigned long long>(result->stats.io.total()));
  }

  std::printf("\nInterpretation: the optimal site tracks the densest cluster "
              "mix; doubling the\ndelivery range more than doubles reach only "
              "while adjacent neighbourhoods merge\ninto one service window.\n");
  return 0;
}
