// maxrs_cli: a command-line MaxRS/MaxCRS solver over CSV files — the tool a
// downstream user would actually run against their own point data.
//
//   $ ./maxrs_cli --input=points.csv --width=1000 --height=1000
//   $ ./maxrs_cli --input=points.csv --circle --diameter=1000
//   $ ./maxrs_cli --demo --algo=naive    # compare against a baseline
//
// CSV format: "x,y[,w]" per line, optional header. Output: the optimal
// location, the covered weight, and the I/O cost under the chosen memory
// budget (--memory-kb, default 1024). --algo selects exact (default),
// naive, or asb — the paper's comparison methods — for I/O comparisons on
// your own data. --threads=T runs the exact solver on the parallel engine
// (identical answer and I/O count at any thread count); --read_ahead
// double-buffers the sequential scans through the async prefetch layer
// (identical answer and I/O count, fetch overlapped with compute).
// --algo=serve ingests into a sharded DatasetHandle and answers through the
// serve layer's index-pruned execution (--shards=S, --no_pruning to compare
// against un-pruned serving) — same answer, fewer query-time blocks when
// the rect is selective.
#include <cstdio>
#include <string>

#include "baseline/baseline.h"
#include "circle/approx_maxcrs.h"
#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace maxrs;
  Flags flags;
  flags.Parse(argc, argv);

  std::vector<SpatialObject> objects;
  if (flags.GetBool("demo", false)) {
    SyntheticOptions demo;
    demo.cardinality = static_cast<uint64_t>(flags.GetInt("n", 100000));
    demo.domain_size = 1e6;
    objects = MakeGaussian(demo);
    std::printf("demo dataset: %zu Gaussian points in [0, 1e6]^2\n",
                objects.size());
  } else {
    const std::string input = flags.GetString("input", "");
    if (input.empty()) {
      std::fprintf(stderr,
                   "usage: maxrs_cli --input=points.csv --width=W --height=H\n"
                   "       maxrs_cli --input=points.csv --circle --diameter=D\n"
                   "       maxrs_cli --demo [--n=100000]\n");
      return 2;
    }
    auto loaded = LoadCsv(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    objects = std::move(loaded).value();
    std::printf("loaded %zu objects from %s\n", objects.size(), input.c_str());
  }

  auto env = NewMemEnv(4096);
  if (Status st = WriteDataset(*env, "input", objects); !st.ok()) {
    std::fprintf(stderr, "staging failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const size_t memory =
      static_cast<size_t>(flags.GetInt("memory-kb", 1024)) << 10;

  if (flags.GetBool("circle", false)) {
    MaxCRSOptions options;
    options.diameter = flags.GetDouble("diameter", 1000.0);
    options.memory_bytes = memory;
    auto result = RunApproxMaxCRS(*env, "input", options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("best circle center : (%.6f, %.6f)\n", result->location.x,
                result->location.y);
    std::printf("covered weight     : %.6f  (>= 1/4 of optimal)\n",
                result->total_weight);
    std::printf("block I/Os         : %llu\n",
                static_cast<unsigned long long>(result->stats.io.total()));
  } else {
    const std::string algo = flags.GetString("algo", "exact");
    const double width = flags.GetDouble("width", 1000.0);
    const double height = flags.GetDouble("height", 1000.0);
    if (algo == "naive" || algo == "asb") {
      BaselineOptions options;
      options.rect_width = width;
      options.rect_height = height;
      options.memory_bytes = memory;
      auto result = algo == "naive"
                        ? RunNaivePlaneSweep(*env, "input", options)
                        : RunASBTreeSweep(*env, "input", options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("best rect center   : (%.6f, %.6f)  [%s baseline]\n",
                  result->location.x, result->location.y, algo.c_str());
      std::printf("covered weight     : %.6f  (exact optimum)\n",
                  result->total_weight);
      std::printf("block I/Os         : %llu\n",
                  static_cast<unsigned long long>(result->io.total()));
      return 0;
    }
    if (algo == "serve") {
      DatasetHandleOptions ingest_options;
      ingest_options.shard_count =
          static_cast<size_t>(flags.GetInt("shards", 0));
      ingest_options.memory_bytes = memory;
      auto handle = DatasetHandle::Ingest(*env, "input", ingest_options);
      if (!handle.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     handle.status().ToString().c_str());
        return 1;
      }
      MaxRSServerOptions server_options;
      server_options.memory_bytes = memory;
      server_options.read_ahead = flags.GetBool("read_ahead", false);
      if (flags.GetBool("no_pruning", false)) {
        server_options.pruning_mode = ServePruningMode::kOff;
      }
      MaxRSServer server(*env, *handle, server_options);
      auto result = server.Submit(width, height);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("best rect center   : (%.6f, %.6f)  [served, %zu shards]\n",
                  result->location.x, result->location.y,
                  handle->shards().size());
      std::printf("covered weight     : %.6f  (exact optimum)\n",
                  result->total_weight);
      std::printf("query block I/Os   : %llu   shards pruned: %llu   "
                  "bound skips: %llu\n",
                  static_cast<unsigned long long>(result->stats.io.total()),
                  static_cast<unsigned long long>(
                      result->stats.io.shards_pruned),
                  static_cast<unsigned long long>(
                      result->stats.io.bound_skips));
      return 0;
    }
    MaxRSOptions options;
    options.rect_width = width;
    options.rect_height = height;
    options.memory_bytes = memory;
    options.num_threads = static_cast<size_t>(flags.GetInt("threads", 1));
    options.read_ahead = flags.GetBool("read_ahead", false);
    auto result = RunExactMaxRS(*env, "input", options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("best rect center   : (%.6f, %.6f)\n", result->location.x,
                result->location.y);
    std::printf("covered weight     : %.6f  (exact optimum)\n",
                result->total_weight);
    std::printf("max-region         : x [%.6f, %.6f)  y [%.6f, %.6f)\n",
                result->region.x_lo, result->region.x_hi, result->region.y_lo,
                result->region.y_hi);
    std::printf("block I/Os         : %llu   recursion levels: %llu\n",
                static_cast<unsigned long long>(result->stats.io.total()),
                static_cast<unsigned long long>(result->stats.recursion_levels));
  }
  return 0;
}
