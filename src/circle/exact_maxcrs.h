// Exact MaxCRS reference via angular arc sweep (Drezner [8] / Chazelle &
// Lee [4] style), used to measure ApproxMaxCRS's empirical approximation
// ratio (Fig. 17). The paper runs the O(n^2 log n) theoretical algorithm;
// we implement the same candidate space but prune pairs with a uniform grid
// (expected O(n k log k) where k is the number of neighbours within 2r),
// which changes nothing about the result — only the running time.
//
// Candidate argument: an optimal open disk can be shifted until its boundary
// passes (arbitrarily close to) one covered object; so centers on circles of
// radius r' = r(1 - 1e-9) around each object, plus the objects themselves,
// contain a (1 - o(1))-optimal center. Exact up to such epsilon-degeneracies
// (configurations whose circumradius equals r exactly), which have measure
// zero in the evaluated workloads; validated against an independent
// O(n^3)-ish brute force in the tests.
#ifndef MAXRS_CIRCLE_EXACT_MAXCRS_H_
#define MAXRS_CIRCLE_EXACT_MAXCRS_H_

#include <vector>

#include "geom/geometry.h"

namespace maxrs {

struct ExactMaxCRSResult {
  Point location;
  double total_weight = 0.0;
  /// Number of candidate anchor objects examined (diagnostics).
  size_t anchors = 0;
};

/// Exact (up to epsilon-degeneracies) MaxCRS for circles of diameter d.
ExactMaxCRSResult ExactMaxCRS(const std::vector<SpatialObject>& objects,
                              double diameter);

}  // namespace maxrs

#endif  // MAXRS_CIRCLE_EXACT_MAXCRS_H_
