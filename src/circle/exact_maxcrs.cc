#include "circle/exact_maxcrs.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "circle/grid_index.h"

namespace maxrs {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// An angular event on the carrier circle around the anchor object.
struct ArcEvent {
  double theta;
  double delta;  // +w when an arc opens, -w when it closes

  bool operator<(const ArcEvent& other) const { return theta < other.theta; }
};

}  // namespace

ExactMaxCRSResult ExactMaxCRS(const std::vector<SpatialObject>& objects,
                              double diameter) {
  ExactMaxCRSResult best;
  if (objects.empty() || diameter <= 0.0) return best;

  const double r = diameter / 2.0;
  const double r_carrier = r * (1.0 - 1e-9);
  GridIndex grid(objects, std::max(r, 1e-12));

  std::vector<ArcEvent> events;
  for (const SpatialObject& anchor : objects) {
    ++best.anchors;
    const Point a{anchor.x, anchor.y};

    // Base: weight always covered anywhere on the carrier circle, including
    // the anchor itself (strictly inside at distance r_carrier < r).
    double base = 0.0;
    events.clear();

    grid.ForEachWithin(a, r_carrier + r, [&](const SpatialObject& o) {
      if (o.x == anchor.x && o.y == anchor.y) return;  // merged into base below
      const double dist = Distance(a, {o.x, o.y});
      if (dist >= r_carrier + r) return;  // never covered from the carrier
      if (dist < r - r_carrier) {
        base += o.w;  // strictly covered from every carrier position
        return;
      }
      // Arc of carrier angles theta where |c(theta) - o| < r:
      // half-width phi from the law of cosines.
      double cos_phi = (r_carrier * r_carrier + dist * dist - r * r) /
                       (2.0 * r_carrier * dist);
      cos_phi = std::clamp(cos_phi, -1.0, 1.0);
      const double phi = std::acos(cos_phi);
      const double theta0 = std::atan2(o.y - a.y, o.x - a.x);
      double lo = theta0 - phi;
      double hi = theta0 + phi;
      if (lo < -kPi) {
        events.push_back({lo + 2.0 * kPi, o.w});
        events.push_back({kPi, -o.w});
        lo = -kPi;
      }
      if (hi > kPi) {
        events.push_back({-kPi, o.w});
        events.push_back({hi - 2.0 * kPi, -o.w});
        hi = kPi;
      }
      events.push_back({lo, o.w});
      events.push_back({hi, -o.w});
    });

    // Coincident duplicates of the anchor count toward every position.
    grid.ForEachWithin(a, 0.0, [&](const SpatialObject& o) { base += o.w; });

    if (events.empty()) {
      if (base > best.total_weight) {
        best.total_weight = base;
        best.location = a;
      }
      continue;
    }

    std::sort(events.begin(), events.end());
    // Arcs are closed in theta but disk cover is *strict*: at an arc
    // endpoint the defining object sits exactly on the boundary. Candidate
    // positions are therefore the midpoints of the gaps between consecutive
    // event angles, where every active arc holds strictly.
    double run = base;
    double best_here = base;
    double best_theta = -kPi;
    size_t i = 0;
    while (i < events.size()) {
      const double theta = events[i].theta;
      while (i < events.size() && events[i].theta == theta) {
        run += events[i].delta;
        ++i;
      }
      const double next_theta = (i < events.size()) ? events[i].theta : kPi;
      if (run > best_here && next_theta > theta) {
        best_here = run;
        best_theta = (theta + next_theta) / 2.0;
      }
    }
    if (best_here > best.total_weight) {
      best.total_weight = best_here;
      best.location = {a.x + r_carrier * std::cos(best_theta),
                       a.y + r_carrier * std::sin(best_theta)};
    }
  }
  return best;
}

}  // namespace maxrs
