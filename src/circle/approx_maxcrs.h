// ApproxMaxCRS (Algorithm 3): a (1/4)-approximation for the MaxCRS problem
// in O((N/B) log_{M/B}(N/B)) I/Os.
//
// Reduction (Sec. 6.1): replace every diameter-d circle by its MBR (a d x d
// square) and solve MaxRS exactly; let p0 be the returned optimal point.
// Because the max-region for the MBRs may not even intersect the optimal
// circle region (Fig. 8(c)), the algorithm evaluates p0 together with four
// points shifted by sigma along the axes (Fig. 9), where
// (sqrt(2)-1) d/2 < sigma < d/2 guarantees the MBR of the circle at p0 is
// covered by the union of the four shifted circles (Lemma 5), yielding
// W(c*) <= 4 W(c_hat) (Theorem 3). The five candidates are scored with one
// linear scan of the dataset.
#ifndef MAXRS_CIRCLE_APPROX_MAXCRS_H_
#define MAXRS_CIRCLE_APPROX_MAXCRS_H_

#include <array>
#include <string>
#include <vector>

#include "core/exact_maxrs.h"
#include "geom/geometry.h"
#include "io/env.h"
#include "util/status.h"

namespace maxrs {

struct MaxCRSOptions {
  /// Circle diameter d.
  double diameter = 1000.0;

  /// sigma = sigma_fraction * (d/2). Valid range is (sqrt(2)-1, 1)
  /// exclusive (Sec. 6.1); the default sits comfortably inside it.
  double sigma_fraction = 0.7;

  /// Memory budget M for the underlying ExactMaxRS run.
  size_t memory_bytes = 1 << 20;

  std::string work_prefix = "maxcrs_work";
};

struct MaxCRSResult {
  /// The chosen point p_hat among {p0, ..., p4}.
  Point location;
  /// W(c(p_hat)): total weight strictly inside the circle at `location`.
  double total_weight = 0.0;
  /// The five candidates and their weights (index 0 is p0), for diagnostics.
  std::array<Point, 5> candidates;
  std::array<double, 5> candidate_weights{};
  int chosen = 0;
  /// Statistics of the inner ExactMaxRS run plus the candidate scan.
  MaxRSStats stats;
};

/// External-memory ApproxMaxCRS over a SpatialObject record file.
Result<MaxCRSResult> RunApproxMaxCRS(Env& env, const std::string& object_file,
                                     const MaxCRSOptions& options);

/// In-memory convenience variant.
MaxCRSResult ApproxMaxCRSInMemory(const std::vector<SpatialObject>& objects,
                                  double diameter, double sigma_fraction = 0.7);

namespace circle_internal {

/// The four shifted points of Algorithm 3 (GetShiftedPoint).
std::array<Point, 4> ShiftedPoints(Point p0, double sigma);

}  // namespace circle_internal

}  // namespace maxrs

#endif  // MAXRS_CIRCLE_APPROX_MAXCRS_H_
