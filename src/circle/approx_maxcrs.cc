#include "circle/approx_maxcrs.h"

#include "io/record_io.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace maxrs {

namespace circle_internal {

std::array<Point, 4> ShiftedPoints(Point p0, double sigma) {
  // The shifted points lie on the diagonals of the MBR (Fig. 9/11): a corner
  // of the d x d square is at distance sqrt(2) d/2 from p0, so the diagonal
  // circle at distance sigma covers it iff sqrt(2) d/2 - sigma < d/2, i.e.
  // sigma > (sqrt(2)-1) d/2 — precisely the lower bound of Sec. 6.1.
  constexpr double kInvSqrt2 = 0.7071067811865476;
  const double s = sigma * kInvSqrt2;
  return {Point{p0.x + s, p0.y + s}, Point{p0.x + s, p0.y - s},
          Point{p0.x - s, p0.y - s}, Point{p0.x - s, p0.y + s}};
}

}  // namespace circle_internal

namespace {

Status ValidateCircleOptions(const MaxCRSOptions& options) {
  if (!(options.diameter > 0.0)) {
    return Status::InvalidArgument("diameter must be positive");
  }
  constexpr double kSqrt2Minus1 = 0.41421356237309515;
  if (options.sigma_fraction <= kSqrt2Minus1 || options.sigma_fraction >= 1.0) {
    return Status::InvalidArgument(
        "sigma_fraction must lie in (sqrt(2)-1, 1) for the 1/4 bound");
  }
  return Status::OK();
}

template <typename ScanFn>
Status FinishCandidates(const MaxRSResult& rs, const MaxCRSOptions& options,
                        ScanFn&& scan, MaxCRSResult* result) {
  const double sigma = options.sigma_fraction * options.diameter / 2.0;
  result->candidates[0] = rs.location;
  const auto shifted = circle_internal::ShiftedPoints(rs.location, sigma);
  for (int i = 0; i < 4; ++i) result->candidates[i + 1] = shifted[i];

  // One pass over the dataset scores all five candidates (Algorithm 3
  // line 7 "requires only a single scan").
  MAXRS_RETURN_IF_ERROR(scan([&](const SpatialObject& o) {
    for (int i = 0; i < 5; ++i) {
      const Circle c{result->candidates[i], options.diameter};
      if (c.Contains(o)) result->candidate_weights[i] += o.w;
    }
  }));

  result->chosen = 0;
  for (int i = 1; i < 5; ++i) {
    if (result->candidate_weights[i] >
        result->candidate_weights[result->chosen]) {
      result->chosen = i;
    }
  }
  result->location = result->candidates[result->chosen];
  result->total_weight = result->candidate_weights[result->chosen];
  result->stats = rs.stats;
  return Status::OK();
}

}  // namespace

Result<MaxCRSResult> RunApproxMaxCRS(Env& env, const std::string& object_file,
                                     const MaxCRSOptions& options) {
  MAXRS_RETURN_IF_ERROR(ValidateCircleOptions(options));
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();

  // Step 1-2: ExactMaxRS over the MBRs — the d x d squares centered at the
  // objects, i.e. a MaxRS run with rect_width = rect_height = d.
  MaxRSOptions rs_options;
  rs_options.rect_width = options.diameter;
  rs_options.rect_height = options.diameter;
  rs_options.memory_bytes = options.memory_bytes;
  rs_options.work_prefix = options.work_prefix;
  MAXRS_ASSIGN_OR_RETURN(MaxRSResult rs,
                         RunExactMaxRS(env, object_file, rs_options));

  // Step 3-7: score p0 and the four shifted points with one linear scan.
  auto scan = [&](auto&& per_object) -> Status {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> reader,
                           RecordReader<SpatialObject>::Make(env, object_file));
    SpatialObject o{};
    while (reader.Next(&o)) per_object(o);
    return reader.final_status();
  };
  MaxCRSResult result;
  MAXRS_RETURN_IF_ERROR(FinishCandidates(rs, options, scan, &result));
  result.stats.io = env.stats().Snapshot() - io_before;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return {std::move(result)};
}

MaxCRSResult ApproxMaxCRSInMemory(const std::vector<SpatialObject>& objects,
                                  double diameter, double sigma_fraction) {
  MaxCRSOptions options;
  options.diameter = diameter;
  options.sigma_fraction = sigma_fraction;
  MAXRS_CHECK_OK(ValidateCircleOptions(options));
  const MaxRSResult rs = ExactMaxRSInMemory(objects, diameter, diameter);
  auto scan = [&](auto&& per_object) -> Status {
    for (const SpatialObject& o : objects) per_object(o);
    return Status::OK();
  };
  MaxCRSResult result;
  MAXRS_CHECK_OK(FinishCandidates(rs, options, scan, &result));
  return result;
}

}  // namespace maxrs
