#include "circle/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace maxrs {

GridIndex::GridIndex(const std::vector<SpatialObject>& objects, double cell_size)
    : cell_size_(cell_size > 0 ? cell_size : 1.0) {
  if (objects.empty()) {
    offsets_.assign(2, 0);
    return;
  }
  const Rect box = BoundingBox(objects);
  origin_x_ = box.x_lo;
  origin_y_ = box.y_lo;
  cells_x_ = std::max<int64_t>(
      1, static_cast<int64_t>((box.x_hi - box.x_lo) / cell_size_) + 1);
  cells_y_ = std::max<int64_t>(
      1, static_cast<int64_t>((box.y_hi - box.y_lo) / cell_size_) + 1);
  // Bound the table size for very sparse data: fall back to coarser cells.
  const int64_t kMaxCells = 1 << 24;
  while (cells_x_ * cells_y_ > kMaxCells) {
    cell_size_ *= 2.0;
    cells_x_ = std::max<int64_t>(
        1, static_cast<int64_t>((box.x_hi - box.x_lo) / cell_size_) + 1);
    cells_y_ = std::max<int64_t>(
        1, static_cast<int64_t>((box.y_hi - box.y_lo) / cell_size_) + 1);
  }

  const size_t num_cells = static_cast<size_t>(cells_x_ * cells_y_);
  std::vector<uint32_t> counts(num_cells, 0);
  for (const SpatialObject& o : objects) {
    ++counts[CellIndex(CellX(o.x), CellY(o.y))];
  }
  offsets_.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) offsets_[c + 1] = offsets_[c] + counts[c];
  objects_.resize(objects.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const SpatialObject& o : objects) {
    const size_t c = CellIndex(CellX(o.x), CellY(o.y));
    objects_[cursor[c]++] = o;
  }
}

int64_t GridIndex::CellX(double x) const {
  int64_t c = static_cast<int64_t>(std::floor((x - origin_x_) / cell_size_));
  return std::clamp<int64_t>(c, 0, cells_x_ - 1);
}

int64_t GridIndex::CellY(double y) const {
  int64_t c = static_cast<int64_t>(std::floor((y - origin_y_) / cell_size_));
  return std::clamp<int64_t>(c, 0, cells_y_ - 1);
}

size_t GridIndex::CellIndex(int64_t cx, int64_t cy) const {
  return static_cast<size_t>(cy * cells_x_ + cx);
}

void GridIndex::ForEachWithin(
    Point center, double radius,
    const std::function<void(const SpatialObject&)>& fn) const {
  if (objects_.empty()) return;
  const double r2 = radius * radius;
  const int64_t cx_lo = CellX(center.x - radius);
  const int64_t cx_hi = CellX(center.x + radius);
  const int64_t cy_lo = CellY(center.y - radius);
  const int64_t cy_hi = CellY(center.y + radius);
  for (int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const size_t c = CellIndex(cx, cy);
      for (uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
        const SpatialObject& o = objects_[i];
        if (DistanceSquared({o.x, o.y}, center) <= r2) fn(o);
      }
    }
  }
}

double GridIndex::WeightInside(const Circle& circle) const {
  double sum = 0.0;
  ForEachWithin(circle.center, circle.radius(),
                [&](const SpatialObject& o) {
                  if (circle.Contains(o)) sum += o.w;
                });
  return sum;
}

}  // namespace maxrs
