// Uniform grid over a point set for radius-bounded neighbour enumeration.
// Used by the exact MaxCRS reference to prune the O(n^2) pair candidates to
// the pairs within distance 2r (expected O(n k) on bounded-density data),
// and by examples for quick density queries.
#ifndef MAXRS_CIRCLE_GRID_INDEX_H_
#define MAXRS_CIRCLE_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/geometry.h"

namespace maxrs {

class GridIndex {
 public:
  /// Builds a grid with square cells of side `cell_size` covering the
  /// bounding box of `objects`. The objects are copied (CSR bucket layout).
  GridIndex(const std::vector<SpatialObject>& objects, double cell_size);

  /// Invokes `fn` for every object within distance <= radius of `center`
  /// (closed; callers apply stricter predicates as needed).
  void ForEachWithin(Point center, double radius,
                     const std::function<void(const SpatialObject&)>& fn) const;

  /// Total weight of objects strictly inside the circle.
  double WeightInside(const Circle& circle) const;

  size_t size() const { return objects_.size(); }

 private:
  int64_t CellX(double x) const;
  int64_t CellY(double y) const;
  size_t CellIndex(int64_t cx, int64_t cy) const;

  std::vector<SpatialObject> objects_;  // reordered into CSR buckets
  std::vector<uint32_t> offsets_;       // bucket -> first object
  double cell_size_ = 1.0;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
  int64_t cells_x_ = 1;
  int64_t cells_y_ = 1;
};

}  // namespace maxrs

#endif  // MAXRS_CIRCLE_GRID_INDEX_H_
