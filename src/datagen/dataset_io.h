// Dataset persistence: record files inside an Env (the algorithms' input
// format) and CSV interchange on the host filesystem (for bringing real
// data in and out of the library).
#ifndef MAXRS_DATAGEN_DATASET_IO_H_
#define MAXRS_DATAGEN_DATASET_IO_H_

#include <string>
#include <vector>

#include "geom/geometry.h"
#include "io/env.h"
#include "util/status.h"

namespace maxrs {

/// Stores objects as a SpatialObject record file named `name` in `env`.
Status WriteDataset(Env& env, const std::string& name,
                    const std::vector<SpatialObject>& objects);

/// Loads a SpatialObject record file.
Result<std::vector<SpatialObject>> ReadDataset(Env& env, const std::string& name);

/// Reads "x,y[,w]" lines from a host CSV file (header line optional; w
/// defaults to 1). Not part of the counted I/O model.
Result<std::vector<SpatialObject>> LoadCsv(const std::string& path);

/// Writes "x,y,w" lines (with header) to a host CSV file.
Status SaveCsv(const std::string& path, const std::vector<SpatialObject>& objects);

}  // namespace maxrs

#endif  // MAXRS_DATAGEN_DATASET_IO_H_
