// Workload generators for the paper's experiments (Sec. 7.1).
//
// Synthetic datasets follow Table 3: cardinality |O| in [100k, 500k]
// (default 250k), coordinates in [0, 4|O|]^2 (default [0, 10^6]^2), under
// uniform or Gaussian distribution.
//
// The two real datasets (UX: USA + Mexico, 19,499 points; NE: North East
// USA, 123,593 points; both from the R-tree Portal, normalized to
// [0, 10^6]^2) are no longer distributed. MakeUxLike/MakeNeLike generate
// clustered stand-ins with the exact cardinalities and domain: UX is sparse
// with a few large clusters (a macro view), NE is dense with many city-like
// clusters plus background noise. The experiments that use them (Figs. 15,
// 16) depend only on cardinality, domain and clustering, both of which the
// stand-ins preserve; see DESIGN.md for the substitution rationale.
#ifndef MAXRS_DATAGEN_GENERATORS_H_
#define MAXRS_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"

namespace maxrs {

enum class WeightMode {
  kUnit,            ///< w(o) = 1 for all objects (the paper's experiments).
  kUniformRandom,   ///< w(o) uniform in [0.5, 2).
};

struct SyntheticOptions {
  uint64_t cardinality = 250000;
  /// Domain is [0, domain_size]^2; 0 derives the paper's 4*|O|.
  double domain_size = 0.0;
  WeightMode weights = WeightMode::kUnit;
  uint64_t seed = 42;
};

/// Uniform distribution over the domain.
std::vector<SpatialObject> MakeUniform(const SyntheticOptions& options);

/// Gaussian distribution centered at the domain center with sigma =
/// domain/8 per axis, rejected into the domain.
std::vector<SpatialObject> MakeGaussian(const SyntheticOptions& options);

/// Clustered stand-in for the UX real dataset (19,499 points, [0, 10^6]^2).
std::vector<SpatialObject> MakeUxLike(uint64_t seed = 42);

/// Clustered stand-in for the NE real dataset (123,593 points, [0, 10^6]^2).
std::vector<SpatialObject> MakeNeLike(uint64_t seed = 42);

/// Generic cluster-mixture generator used by the stand-ins and examples.
struct ClusterOptions {
  uint64_t cardinality = 100000;
  double domain_size = 1e6;
  uint64_t num_clusters = 32;
  /// Per-cluster Gaussian sigma as a fraction of the domain size.
  double cluster_sigma_fraction = 0.02;
  /// Fraction of points drawn uniformly as background noise.
  double background_fraction = 0.1;
  WeightMode weights = WeightMode::kUnit;
  uint64_t seed = 42;
};

std::vector<SpatialObject> MakeClustered(const ClusterOptions& options);

/// The paper's real-dataset cardinalities (Table 2).
inline constexpr uint64_t kUxCardinality = 19499;
inline constexpr uint64_t kNeCardinality = 123593;

}  // namespace maxrs

#endif  // MAXRS_DATAGEN_GENERATORS_H_
