#include "datagen/generators.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace maxrs {
namespace {

double DomainOf(const SyntheticOptions& options) {
  if (options.domain_size > 0.0) return options.domain_size;
  return 4.0 * static_cast<double>(options.cardinality);  // Table 3
}

double DrawWeight(Rng& rng, WeightMode mode) {
  switch (mode) {
    case WeightMode::kUnit:
      return 1.0;
    case WeightMode::kUniformRandom:
      return rng.Uniform(0.5, 2.0);
  }
  return 1.0;
}

}  // namespace

std::vector<SpatialObject> MakeUniform(const SyntheticOptions& options) {
  Rng rng(options.seed);
  const double s = DomainOf(options);
  std::vector<SpatialObject> objects;
  objects.reserve(options.cardinality);
  for (uint64_t i = 0; i < options.cardinality; ++i) {
    objects.push_back(
        {rng.Uniform(0.0, s), rng.Uniform(0.0, s), DrawWeight(rng, options.weights)});
  }
  return objects;
}

std::vector<SpatialObject> MakeGaussian(const SyntheticOptions& options) {
  Rng rng(options.seed);
  const double s = DomainOf(options);
  const double mu = s / 2.0;
  const double sigma = s / 8.0;
  std::vector<SpatialObject> objects;
  objects.reserve(options.cardinality);
  while (objects.size() < options.cardinality) {
    const double x = rng.Normal(mu, sigma);
    const double y = rng.Normal(mu, sigma);
    if (x < 0.0 || x >= s || y < 0.0 || y >= s) continue;  // reject outside
    objects.push_back({x, y, DrawWeight(rng, options.weights)});
  }
  return objects;
}

std::vector<SpatialObject> MakeClustered(const ClusterOptions& options) {
  Rng rng(options.seed);
  const double s = options.domain_size;
  // Cluster centers and relative masses.
  struct Cluster {
    double cx, cy, sigma, mass_cdf;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(options.num_clusters);
  double total_mass = 0.0;
  for (uint64_t c = 0; c < options.num_clusters; ++c) {
    // Zipf-ish masses: big cities dominate, like real population data.
    const double mass = 1.0 / static_cast<double>(c + 1);
    total_mass += mass;
    clusters.push_back({rng.Uniform(0.05 * s, 0.95 * s),
                        rng.Uniform(0.05 * s, 0.95 * s),
                        s * options.cluster_sigma_fraction *
                            rng.Uniform(0.5, 1.5),
                        total_mass});
  }
  for (Cluster& c : clusters) c.mass_cdf /= total_mass;

  std::vector<SpatialObject> objects;
  objects.reserve(options.cardinality);
  while (objects.size() < options.cardinality) {
    double x, y;
    if (rng.NextDouble() < options.background_fraction) {
      x = rng.Uniform(0.0, s);
      y = rng.Uniform(0.0, s);
    } else {
      const double u = rng.NextDouble();
      const Cluster* chosen = &clusters.back();
      for (const Cluster& c : clusters) {
        if (u <= c.mass_cdf) {
          chosen = &c;
          break;
        }
      }
      x = rng.Normal(chosen->cx, chosen->sigma);
      y = rng.Normal(chosen->cy, chosen->sigma);
      if (x < 0.0 || x >= s || y < 0.0 || y >= s) continue;
    }
    objects.push_back({x, y, DrawWeight(rng, options.weights)});
  }
  return objects;
}

std::vector<SpatialObject> MakeUxLike(uint64_t seed) {
  // USA + Mexico: sparse, a handful of dominant population centers, wide
  // empty areas — a "macro view" of NE, as the paper puts it.
  ClusterOptions options;
  options.cardinality = kUxCardinality;
  options.domain_size = 1e6;
  options.num_clusters = 12;
  options.cluster_sigma_fraction = 0.06;
  options.background_fraction = 0.25;
  options.seed = seed;
  return MakeClustered(options);
}

std::vector<SpatialObject> MakeNeLike(uint64_t seed) {
  // North East USA: dense city clusters along a corridor plus suburbs.
  ClusterOptions options;
  options.cardinality = kNeCardinality;
  options.domain_size = 1e6;
  options.num_clusters = 48;
  options.cluster_sigma_fraction = 0.025;
  options.background_fraction = 0.15;
  options.seed = seed + 1;
  return MakeClustered(options);
}

}  // namespace maxrs
