#include "datagen/dataset_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "io/record_io.h"

namespace maxrs {

Status WriteDataset(Env& env, const std::string& name,
                    const std::vector<SpatialObject>& objects) {
  return WriteRecordFile(env, name, objects);
}

Result<std::vector<SpatialObject>> ReadDataset(Env& env,
                                               const std::string& name) {
  return ReadRecordFile<SpatialObject>(env, name);
}

Result<std::vector<SpatialObject>> LoadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {Status::NotFound("cannot open " + path)};
  std::vector<SpatialObject> objects;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char* cursor = line;
    char* end = nullptr;
    const double x = std::strtod(cursor, &end);
    if (end == cursor) continue;  // header or blank line
    cursor = end;
    while (*cursor == ',' || *cursor == ' ' || *cursor == '\t') ++cursor;
    const double y = std::strtod(cursor, &end);
    if (end == cursor) continue;  // malformed: no y column
    cursor = end;
    while (*cursor == ',' || *cursor == ' ' || *cursor == '\t') ++cursor;
    double w = std::strtod(cursor, &end);
    if (end == cursor) w = 1.0;
    objects.push_back({x, y, w});
  }
  std::fclose(f);
  return {std::move(objects)};
}

Status SaveCsv(const std::string& path, const std::vector<SpatialObject>& objects) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  std::fprintf(f, "x,y,w\n");
  for (const SpatialObject& o : objects) {
    std::fprintf(f, "%.17g,%.17g,%.17g\n", o.x, o.y, o.w);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace maxrs
