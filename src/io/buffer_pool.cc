#include "io/buffer_pool.h"

#include <chrono>
#include <cstring>

#include "util/check.h"

namespace maxrs {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

char* PageHandle::data() {
  MAXRS_DCHECK(valid());
  return pool_->frames_[frame_].data.data();
}

const char* PageHandle::data() const {
  MAXRS_DCHECK(valid());
  return pool_->frames_[frame_].data.data();
}

void PageHandle::MarkDirty() {
  MAXRS_DCHECK(valid());
  pool_->MarkDirtyLocked(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Env& env, size_t capacity_bytes, uint64_t pin_wait_ms)
    : env_(&env), block_size_(env.block_size()), pin_wait_ms_(pin_wait_ms) {
  size_t n = capacity_bytes / block_size_;
  if (n == 0) n = 1;
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frames_[i].data.resize(block_size_);
    free_frames_.push_back(n - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back of anything still dirty.
  Status st = FlushAll();
  (void)st;
}

Result<PageHandle> BufferPool::Fetch(BlockFile& file, uint64_t block,
                                     bool zero_fill_new) {
  std::unique_lock<std::mutex> lock(mu_);
  Key key{&file, block};
  auto it = table_.find(key);
  if (it != table_.end()) {
    size_t idx = it->second;
    Frame& f = frames_[idx];
    ++stats_.hits;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return {PageHandle(this, idx)};
  }

  ++stats_.misses;
  MAXRS_ASSIGN_OR_RETURN(size_t idx, GetVictim(lock));
  Frame& f = frames_[idx];

  // The lock stays held across the transfer: it serializes access to the
  // shared BlockFile handle (Env's single-handle contract) and keeps the
  // frame ownership transition atomic with the I/O that fills it.
  const bool fresh_append = zero_fill_new && block >= file.NumBlocks();
  if (fresh_append) {
    std::memset(f.data.data(), 0, block_size_);
    // Materialize the block on storage so subsequent reads are in-bounds.
    // This is a real (counted) write: the EM algorithm allocates the block.
    MAXRS_RETURN_IF_ERROR(file.WriteBlock(block, f.data.data()));
  } else {
    Status read = file.ReadBlock(block, f.data.data());
    if (!read.ok()) {
      // The victim frame was already detached from the table; hand it back
      // to the free list so the failed fetch does not leak capacity.
      f.valid = false;
      free_frames_.push_back(idx);
      frame_freed_.notify_one();
      return {read};
    }
  }

  f.file = &file;
  f.block = block;
  f.dirty = false;
  f.valid = true;
  f.pins = 1;
  f.in_lru = false;
  table_[key] = idx;
  return {PageHandle(this, idx)};
}

Status BufferPool::FlushAll(BlockFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.valid && f.dirty && (file == nullptr || f.file == file)) {
      MAXRS_RETURN_IF_ERROR(WriteBack(f));
    }
  }
  return Status::OK();
}

Status BufferPool::Evict(BlockFile& file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.valid || f.file != &file) continue;
    MAXRS_CHECK_MSG(f.pins == 0, "evicting pinned page");
    if (f.dirty) MAXRS_RETURN_IF_ERROR(WriteBack(f));
    table_.erase({f.file, f.block});
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.valid = false;
    free_frames_.push_back(i);
    frame_freed_.notify_one();
  }
  return Status::OK();
}

BufferPoolStats BufferPool::pool_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  MAXRS_DCHECK(f.pins > 0);
  --f.pins;
  if (f.pins == 0 && !f.in_lru) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
    frame_freed_.notify_one();
  }
}

void BufferPool::MarkDirtyLocked(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

Result<size_t> BufferPool::GetVictim(std::unique_lock<std::mutex>& lock) {
  auto take = [&]() -> Result<size_t> {
    if (!free_frames_.empty()) {
      size_t idx = free_frames_.back();
      free_frames_.pop_back();
      return {idx};
    }
    size_t idx = lru_.back();
    lru_.pop_back();
    Frame& f = frames_[idx];
    f.in_lru = false;
    ++stats_.evictions;
    if (f.dirty) MAXRS_RETURN_IF_ERROR(WriteBack(f));
    table_.erase({f.file, f.block});
    f.valid = false;
    return {idx};
  };
  if (!free_frames_.empty() || !lru_.empty()) return take();
  if (pin_wait_ms_ > 0) {
    // Every frame is pinned by a concurrent reader. Wait (bounded) for an
    // unpin rather than failing a transient: the pool is shared across query
    // workers, and all-pinned is a momentary state, not a sizing error.
    const bool freed = frame_freed_.wait_for(
        lock, std::chrono::milliseconds(pin_wait_ms_),
        [&] { return !free_frames_.empty() || !lru_.empty(); });
    if (freed) return take();
  }
  return {Status::ResourceExhausted("buffer pool: all pages pinned")};
}

Status BufferPool::WriteBack(Frame& frame) {
  MAXRS_RETURN_IF_ERROR(frame.file->WriteBlock(frame.block, frame.data.data()));
  frame.dirty = false;
  ++stats_.writebacks;
  return Status::OK();
}

}  // namespace maxrs
