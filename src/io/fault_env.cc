#include "io/fault_env.h"

namespace maxrs {
namespace {

class FaultBlockFile : public BlockFile {
 public:
  FaultBlockFile(std::unique_ptr<BlockFile> base, FaultEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status ReadBlock(uint64_t index, void* buf) override {
    if (env_->ShouldFail()) {
      return Status::IOError("injected read fault on " + base_->name());
    }
    return base_->ReadBlock(index, buf);
  }

  Status WriteBlock(uint64_t index, const void* buf) override {
    if (env_->ShouldFail()) {
      return Status::IOError("injected write fault on " + base_->name());
    }
    return base_->WriteBlock(index, buf);
  }

  uint64_t NumBlocks() const override { return base_->NumBlocks(); }
  Status Truncate(uint64_t num_blocks) override {
    return base_->Truncate(num_blocks);
  }
  size_t block_size() const override { return base_->block_size(); }
  const std::string& name() const override { return base_->name(); }

 private:
  std::unique_ptr<BlockFile> base_;
  FaultEnv* env_;
};

}  // namespace

Result<std::unique_ptr<BlockFile>> FaultEnv::Create(const std::string& name) {
  auto base_or = base_->Create(name);
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new FaultBlockFile(std::move(base_or).value(), this))};
}

Result<std::unique_ptr<BlockFile>> FaultEnv::Open(const std::string& name) {
  auto base_or = base_->Open(name);
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new FaultBlockFile(std::move(base_or).value(), this))};
}

}  // namespace maxrs
