#include "io/fault_env.h"

#include <cstring>
#include <vector>

namespace maxrs {
namespace {

class FaultBlockFile : public BlockFile {
 public:
  FaultBlockFile(std::unique_ptr<BlockFile> base, FaultEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status ReadBlock(uint64_t index, void* buf) override {
    if (env_->ShouldFail()) {
      return Status::IOError("injected read fault on " + base_->name());
    }
    return base_->ReadBlock(index, buf);
  }

  Status WriteBlock(uint64_t index, const void* buf) override {
    if (env_->ShouldFail()) {
      return Status::IOError("injected write fault on " + base_->name());
    }
    return base_->WriteBlock(index, buf);
  }

  uint64_t NumBlocks() const override { return base_->NumBlocks(); }
  Status Truncate(uint64_t num_blocks) override {
    return base_->Truncate(num_blocks);
  }
  size_t block_size() const override { return base_->block_size(); }
  const std::string& name() const override { return base_->name(); }

 private:
  std::unique_ptr<BlockFile> base_;
  FaultEnv* env_;
};

class ChaosBlockFile : public BlockFile {
 public:
  ChaosBlockFile(std::unique_ptr<BlockFile> base, ChaosEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status ReadBlock(uint64_t index, void* buf) override {
    uint64_t bit = 0;
    switch (env_->DrawReadFault(&bit)) {
      case ChaosEnv::Fault::kTransient:
        return Status::Unavailable("chaos: transient read fault on " +
                                   base_->name());
      case ChaosEnv::Fault::kPermanent:
        return Status::IOError("chaos: permanent read fault on " +
                               base_->name());
      case ChaosEnv::Fault::kCorrupt: {
        MAXRS_RETURN_IF_ERROR(base_->ReadBlock(index, buf));
        auto* bytes = static_cast<unsigned char*>(buf);
        bit %= base_->block_size() * 8;
        bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        return Status::OK();
      }
      case ChaosEnv::Fault::kNone:
        break;
    }
    return base_->ReadBlock(index, buf);
  }

  Status WriteBlock(uint64_t index, const void* buf) override {
    switch (env_->DrawWriteFault()) {
      case ChaosEnv::Fault::kTransient:
        return Status::Unavailable("chaos: transient write fault on " +
                                   base_->name());
      case ChaosEnv::Fault::kPermanent:
        return Status::IOError("chaos: permanent write fault on " +
                               base_->name());
      case ChaosEnv::Fault::kCorrupt: {
        // Torn write: the first half of the block lands, the tail is
        // garbage, and the writer is told everything went fine.
        const size_t n = base_->block_size();
        std::vector<unsigned char> torn(n);
        std::memcpy(torn.data(), buf, n);
        for (size_t i = n / 2; i < n; ++i) torn[i] ^= 0xA5;
        return base_->WriteBlock(index, torn.data());
      }
      case ChaosEnv::Fault::kNone:
        break;
    }
    return base_->WriteBlock(index, buf);
  }

  uint64_t NumBlocks() const override { return base_->NumBlocks(); }
  Status Truncate(uint64_t num_blocks) override {
    return base_->Truncate(num_blocks);
  }
  size_t block_size() const override { return base_->block_size(); }
  const std::string& name() const override { return base_->name(); }

 private:
  std::unique_ptr<BlockFile> base_;
  ChaosEnv* env_;
};

}  // namespace

Result<std::unique_ptr<BlockFile>> FaultEnv::Create(const std::string& name) {
  auto base_or = base_->Create(name);
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new FaultBlockFile(std::move(base_or).value(), this))};
}

Result<std::unique_ptr<BlockFile>> FaultEnv::Open(const std::string& name) {
  auto base_or = base_->Open(name);
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new FaultBlockFile(std::move(base_or).value(), this))};
}

Result<std::unique_ptr<BlockFile>> ChaosEnv::Create(const std::string& name) {
  auto base_or = base_->Create(name);
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new ChaosBlockFile(std::move(base_or).value(), this))};
}

Result<std::unique_ptr<BlockFile>> ChaosEnv::Open(const std::string& name) {
  auto base_or = base_->Open(name);
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new ChaosBlockFile(std::move(base_or).value(), this))};
}

ChaosEnv::Fault ChaosEnv::DrawReadFault(uint64_t* detail) {
  double u;
  {
    std::lock_guard<std::mutex> lock(mu_);
    u = std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
    *detail = rng_();
  }
  if (u < options_.transient_fault_p) {
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kTransient;
  }
  u -= options_.transient_fault_p;
  if (u < options_.permanent_fault_p) {
    permanent_faults_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kPermanent;
  }
  u -= options_.permanent_fault_p;
  if (u < options_.bit_flip_read_p) {
    bit_flips_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kCorrupt;
  }
  return Fault::kNone;
}

ChaosEnv::Fault ChaosEnv::DrawWriteFault() {
  double u;
  {
    std::lock_guard<std::mutex> lock(mu_);
    u = std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }
  if (u < options_.transient_fault_p) {
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kTransient;
  }
  u -= options_.transient_fault_p;
  if (u < options_.permanent_fault_p) {
    permanent_faults_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kPermanent;
  }
  u -= options_.permanent_fault_p;
  if (u < options_.torn_write_p) {
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kCorrupt;
  }
  return Fault::kNone;
}

}  // namespace maxrs
