// Env: the storage abstraction of the library (in the spirit of RocksDB's
// Env). All files are block-granular; reading or writing one block is one
// I/O and is recorded in the Env's IoStats. Two implementations are
// provided: an in-memory Env (deterministic, fast, default for benchmarks)
// and a POSIX Env backed by real files. The role of each layer in the
// external-memory cost model is documented in docs/IO_MODEL.md.
//
// Concurrency contract of a BlockFile: distinct handles on the same file
// may read concurrently, and a single handle may be used from alternating
// threads provided the caller establishes happens-before between uses —
// the async read-ahead layer (prefetch_reader.h) does exactly that,
// handing one reader's co-owned handle back and forth between the
// consumer thread and a background fetch worker (serialized, never
// simultaneous), and the write-behind layer (record_io.h) is its dual: a
// writer's co-owned handle alternates between the producer thread and the
// flush worker, joined before the next block is issued, so a handle never
// sees two simultaneous writers either. Implementations must not assume a
// handle is confined to one thread. Writes are never concurrent with reads
// of the same blocks at this layer — record files are immutable once
// Finish()ed.
#ifndef MAXRS_IO_ENV_H_
#define MAXRS_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace maxrs {

/// A block-addressable file. Blocks are `block_size()` bytes; partial blocks
/// do not exist at this layer (record framing is layered on top).
class BlockFile {
 public:
  virtual ~BlockFile() = default;

  /// Reads block `index` into `buf` (block_size() bytes). Counted as 1 I/O.
  virtual Status ReadBlock(uint64_t index, void* buf) = 0;

  /// Writes block `index` from `buf`. Writing at index == NumBlocks()
  /// extends the file. Counted as 1 I/O.
  virtual Status WriteBlock(uint64_t index, const void* buf) = 0;

  /// Number of blocks currently in the file.
  virtual uint64_t NumBlocks() const = 0;

  /// Shrinks the file to `num_blocks` blocks. Not counted as I/O.
  virtual Status Truncate(uint64_t num_blocks) = 0;

  virtual size_t block_size() const = 0;
  virtual const std::string& name() const = 0;
};

/// Factory and namespace for BlockFiles, plus the I/O counters.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (or truncates) a file.
  virtual Result<std::unique_ptr<BlockFile>> Create(const std::string& name) = 0;

  /// Opens an existing file; NotFound if absent.
  virtual Result<std::unique_ptr<BlockFile>> Open(const std::string& name) = 0;

  virtual Status Delete(const std::string& name) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if it exists. The
  /// atomicity is the crash-consistency primitive of the library: a manifest
  /// is written under a temp name, Finish()ed, then Rename()d into place, so
  /// readers observe either the old state or the complete new file — never a
  /// partial one (docs/ROBUSTNESS.md, "Crash consistency").
  /// NotFound if `from` does not exist.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual bool Exists(const std::string& name) const = 0;
  virtual std::vector<std::string> ListFiles() const = 0;

  virtual size_t block_size() const = 0;
  virtual IoStats& stats() = 0;
  const IoStats& stats() const { return const_cast<Env*>(this)->stats(); }
};

/// In-memory Env. Deterministic and fast; blocks live on a simulated disk
/// and are memcpy'd on each counted transfer.
std::unique_ptr<Env> NewMemEnv(size_t block_size = 4096);

/// POSIX filesystem Env rooted at `root_dir` (created if missing).
std::unique_ptr<Env> NewPosixEnv(const std::string& root_dir,
                                 size_t block_size = 4096);

}  // namespace maxrs

#endif  // MAXRS_IO_ENV_H_
