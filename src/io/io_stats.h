// Block-transfer accounting: the cost metric of the external-memory model.
// Every block moved between backing storage and memory is counted here; the
// benchmark harness reports these counters exactly as the paper reports
// "I/O cost ... the number of transferred blocks during the entire process".
#ifndef MAXRS_IO_IO_STATS_H_
#define MAXRS_IO_IO_STATS_H_

#include <cstdint>

namespace maxrs {

/// A point-in-time copy of the counters.
struct IoStatsSnapshot {
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;

  uint64_t total() const { return blocks_read + blocks_written; }

  IoStatsSnapshot operator-(const IoStatsSnapshot& other) const {
    return {blocks_read - other.blocks_read,
            blocks_written - other.blocks_written};
  }
};

/// Mutable counters owned by an Env. Not thread-safe; the library is
/// single-threaded by design (the EM model measures a serial I/O stream).
class IoStats {
 public:
  void RecordRead(uint64_t blocks) { blocks_read_ += blocks; }
  void RecordWrite(uint64_t blocks) { blocks_written_ += blocks; }

  IoStatsSnapshot Snapshot() const { return {blocks_read_, blocks_written_}; }

  void Reset() {
    blocks_read_ = 0;
    blocks_written_ = 0;
  }

 private:
  uint64_t blocks_read_ = 0;
  uint64_t blocks_written_ = 0;
};

}  // namespace maxrs

#endif  // MAXRS_IO_IO_STATS_H_
