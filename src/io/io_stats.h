// Block-transfer accounting: the cost metric of the external-memory model.
// Every block moved between backing storage and memory is counted here; the
// benchmark harness reports these counters exactly as the paper reports
// "I/O cost ... the number of transferred blocks during the entire process".
// docs/IO_MODEL.md defines the model end to end: what is counted, what is
// not, and why totals are exact at any thread count.
#ifndef MAXRS_IO_IO_STATS_H_
#define MAXRS_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace maxrs {

/// A point-in-time copy of the counters.
struct IoStatsSnapshot {
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  /// Retry attempts recorded by io/retry_env.h. Each retried transfer that
  /// reaches the base Env is *also* counted in blocks_read/blocks_written —
  /// the retry counters say how many of those transfers were repeat
  /// attempts, keeping accounting exact (docs/IO_MODEL.md, "Retried and
  /// checksummed blocks").
  uint64_t reads_retried = 0;
  uint64_t writes_retried = 0;
  /// Work *avoided* by the aggregate shard index (serve/maxrs_server.cc).
  /// `shards_pruned` counts shards never routed or solved because their
  /// weight upper bound could not beat the best candidate found before
  /// routing; `bound_skips` counts shards whose routed input was discarded
  /// unsolved because a better candidate arrived mid-query. Neither is a
  /// block transfer, so neither contributes to total() — they annotate why
  /// blocks_read is *lower* than the un-pruned schedule (docs/IO_MODEL.md,
  /// "Index-pruned serving").
  uint64_t shards_pruned = 0;
  uint64_t bound_skips = 0;
  /// Source-shard scans *not performed* because batched execution
  /// (serve/maxrs_server.cc) shared one scan across several queries: a
  /// batch of k queries records (k - 1) shares per scan it runs. Like
  /// `shards_pruned` this is a decision counter, not a transfer — it is
  /// excluded from total() and annotates why blocks_read is lower than k
  /// serial executions (docs/IO_MODEL.md, "Batched shared scans").
  uint64_t scans_shared = 0;

  uint64_t total() const { return blocks_read + blocks_written; }

  IoStatsSnapshot operator-(const IoStatsSnapshot& other) const {
    return {blocks_read - other.blocks_read,
            blocks_written - other.blocks_written,
            reads_retried - other.reads_retried,
            writes_retried - other.writes_retried,
            shards_pruned - other.shards_pruned,
            bound_skips - other.bound_skips,
            scans_shared - other.scans_shared};
  }
};

/// Mutable counters owned by an Env. Thread-safe: the parallel execution
/// engine issues I/O from pool workers concurrently, so the counters are
/// relaxed atomics — cheap uncontended, and the *total* per run is exact and
/// schedule-independent (every block transfer increments exactly once).
/// Snapshots taken while I/O is in flight see some interleaving of the two
/// counters; the library only snapshots at quiescent points (before/after a
/// run), where the values are exact.
///
/// Deferred schedules count at transfer time, not issue time: a read-ahead
/// prefetch increments blocks_read when the IoExecutor performs it, and a
/// write-behind flush increments blocks_written when the deferred WriteBlock
/// runs — but both are joined before their stream's Finish/next-issue, so at
/// every quiescent point the counts equal the synchronous schedule's
/// exactly. Streaming channels (io/record_stream.h) add no counts of their
/// own: only their spill files touch the Env, and whether a channel spills
/// is a pure function of the records produced and the memory cap, keeping
/// per-query totals schedule-independent. docs/IO_MODEL.md, "Streaming
/// routing", has the full accounting.
class IoStats {
 public:
  void RecordRead(uint64_t blocks) {
    blocks_read_.fetch_add(blocks, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t blocks) {
    blocks_written_.fetch_add(blocks, std::memory_order_relaxed);
  }
  void RecordReadRetry(uint64_t blocks) {
    reads_retried_.fetch_add(blocks, std::memory_order_relaxed);
  }
  void RecordWriteRetry(uint64_t blocks) {
    writes_retried_.fetch_add(blocks, std::memory_order_relaxed);
  }
  void RecordShardsPruned(uint64_t shards) {
    shards_pruned_.fetch_add(shards, std::memory_order_relaxed);
  }
  void RecordBoundSkip(uint64_t shards) {
    bound_skips_.fetch_add(shards, std::memory_order_relaxed);
  }
  void RecordScansShared(uint64_t scans) {
    scans_shared_.fetch_add(scans, std::memory_order_relaxed);
  }

  IoStatsSnapshot Snapshot() const {
    return {blocks_read_.load(std::memory_order_relaxed),
            blocks_written_.load(std::memory_order_relaxed),
            reads_retried_.load(std::memory_order_relaxed),
            writes_retried_.load(std::memory_order_relaxed),
            shards_pruned_.load(std::memory_order_relaxed),
            bound_skips_.load(std::memory_order_relaxed),
            scans_shared_.load(std::memory_order_relaxed)};
  }

  void Reset() {
    blocks_read_.store(0, std::memory_order_relaxed);
    blocks_written_.store(0, std::memory_order_relaxed);
    reads_retried_.store(0, std::memory_order_relaxed);
    writes_retried_.store(0, std::memory_order_relaxed);
    shards_pruned_.store(0, std::memory_order_relaxed);
    bound_skips_.store(0, std::memory_order_relaxed);
    scans_shared_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> blocks_read_{0};
  std::atomic<uint64_t> blocks_written_{0};
  std::atomic<uint64_t> reads_retried_{0};
  std::atomic<uint64_t> writes_retried_{0};
  std::atomic<uint64_t> shards_pruned_{0};
  std::atomic<uint64_t> bound_skips_{0};
  std::atomic<uint64_t> scans_shared_{0};
};

}  // namespace maxrs

#endif  // MAXRS_IO_IO_STATS_H_
