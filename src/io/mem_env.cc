#include <cstring>
#include <map>
#include <mutex>

#include "io/env.h"
#include "util/check.h"

namespace maxrs {
namespace {

// Simulated on-disk contents of one file: a flat vector of blocks.
struct FileData {
  std::vector<std::vector<char>> blocks;
};

class MemEnv;

class MemBlockFile : public BlockFile {
 public:
  MemBlockFile(std::string name, std::shared_ptr<FileData> data, size_t block_size,
               IoStats* stats)
      : name_(std::move(name)),
        data_(std::move(data)),
        block_size_(block_size),
        stats_(stats) {}

  Status ReadBlock(uint64_t index, void* buf) override {
    if (index >= data_->blocks.size()) {
      return Status::IOError("read past end of file " + name_);
    }
    std::memcpy(buf, data_->blocks[index].data(), block_size_);
    stats_->RecordRead(1);
    return Status::OK();
  }

  Status WriteBlock(uint64_t index, const void* buf) override {
    if (index > data_->blocks.size()) {
      return Status::IOError("write beyond end+1 of file " + name_);
    }
    if (index == data_->blocks.size()) {
      data_->blocks.emplace_back(block_size_);
    }
    std::memcpy(data_->blocks[index].data(), buf, block_size_);
    stats_->RecordWrite(1);
    return Status::OK();
  }

  uint64_t NumBlocks() const override { return data_->blocks.size(); }

  Status Truncate(uint64_t num_blocks) override {
    if (num_blocks < data_->blocks.size()) data_->blocks.resize(num_blocks);
    return Status::OK();
  }

  size_t block_size() const override { return block_size_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::shared_ptr<FileData> data_;
  size_t block_size_;
  IoStats* stats_;
};

// The namespace map is guarded by a mutex so pool tasks can create, open
// and delete *distinct* files concurrently (each recursion child and each
// sort run owns its own scratch files). Block data itself is per-file
// (FileData behind a shared_ptr), so concurrent I/O on distinct files never
// shares mutable state; concurrent access to the *same* file is not
// synchronized at this layer, matching the POSIX Env.
class MemEnv : public Env {
 public:
  explicit MemEnv(size_t block_size) : block_size_(block_size) {
    MAXRS_CHECK(block_size_ >= 64);
  }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override {
    auto data = std::make_shared<FileData>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      files_[name] = data;
    }
    return {std::unique_ptr<BlockFile>(
        new MemBlockFile(name, std::move(data), block_size_, &stats_))};
  }

  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override {
    std::shared_ptr<FileData> data;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = files_.find(name);
      if (it == files_.end()) return {Status::NotFound("no such file: " + name)};
      data = it->second;
    }
    return {std::unique_ptr<BlockFile>(
        new MemBlockFile(name, std::move(data), block_size_, &stats_))};
  }

  Status Delete(const std::string& name) override {
    // Open handles keep the data alive through their shared_ptr.
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(name) == 0) return Status::NotFound("no such file: " + name);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    // One critical section = atomic: no observer can see `to` absent while
    // `from` is already gone, or both present.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound("no such file: " + from);
    files_[to] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  bool Exists(const std::string& name) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(name) > 0;
  }

  std::vector<std::string> ListFiles() const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(files_.size());
    for (const auto& [name, data] : files_) names.push_back(name);
    return names;
  }

  size_t block_size() const override { return block_size_; }
  IoStats& stats() override { return stats_; }

 private:
  size_t block_size_;
  IoStats stats_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileData>> files_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv(size_t block_size) {
  return std::make_unique<MemEnv>(block_size);
}

}  // namespace maxrs
