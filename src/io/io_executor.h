// The background I/O executor shared by the asynchronous block schedules:
// read-ahead (prefetch_reader.h) and write-behind (record_io.h).
//
// Deliberately separate from the compute ThreadPool (util/thread_pool.h):
// fetch/flush tasks are pure block transfers that never spawn work or wait,
// so they can never participate in (or break) the compute pool's
// help-while-wait deadlock-avoidance protocol, and a saturated compute pool
// cannot starve the I/O that would un-block it.
#ifndef MAXRS_IO_IO_EXECUTOR_H_
#define MAXRS_IO_IO_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace maxrs {

/// A small pool of dedicated background I/O workers draining one FIFO queue
/// of block-transfer closures.
class IoExecutor {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit IoExecutor(size_t num_threads = 1);

  /// Runs every task already queued, then joins the workers. Tasks are
  /// never dropped: a stream joining an in-flight transfer always wakes.
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  /// Enqueues `fn` for execution on a background worker (FIFO).
  void Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }

  /// The process-wide shared executor every stream uses unless given its
  /// own. Sized for double-buffering (one in-flight transfer per stream,
  /// many streams): transfers are short and queue rather than contend.
  static IoExecutor& Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

namespace prefetch_internal {

/// Completion slot of one in-flight block transfer, shared (via shared_ptr)
/// between the issuing stream and the executor task: whichever side finishes
/// last frees it, so neither an abandoned transfer nor a destroyed stream
/// can leave the other writing through a dangling pointer. Used by both the
/// read-ahead reader (buf holds the fetched block) and the write-behind
/// writer (buf holds the block being flushed).
struct BlockFetch {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::vector<char> buf;
};

}  // namespace prefetch_internal

}  // namespace maxrs

#endif  // MAXRS_IO_IO_EXECUTOR_H_
