#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "io/env.h"
#include "util/check.h"

namespace maxrs {
namespace {

namespace fs = std::filesystem;

class PosixBlockFile : public BlockFile {
 public:
  PosixBlockFile(std::string name, int fd, size_t block_size, IoStats* stats)
      : name_(std::move(name)), fd_(fd), block_size_(block_size), stats_(stats) {
    off_t size = lseek(fd_, 0, SEEK_END);
    num_blocks_ = size <= 0 ? 0 : static_cast<uint64_t>(size) / block_size_;
  }

  ~PosixBlockFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status ReadBlock(uint64_t index, void* buf) override {
    if (index >= num_blocks_) {
      return Status::IOError("read past end of file " + name_);
    }
    ssize_t n = pread(fd_, buf, block_size_,
                      static_cast<off_t>(index * block_size_));
    if (n != static_cast<ssize_t>(block_size_)) {
      return Status::IOError("short read on " + name_ + ": " +
                             std::strerror(errno));
    }
    stats_->RecordRead(1);
    return Status::OK();
  }

  Status WriteBlock(uint64_t index, const void* buf) override {
    if (index > num_blocks_) {
      return Status::IOError("write beyond end+1 of file " + name_);
    }
    ssize_t n = pwrite(fd_, buf, block_size_,
                       static_cast<off_t>(index * block_size_));
    if (n != static_cast<ssize_t>(block_size_)) {
      return Status::IOError("short write on " + name_ + ": " +
                             std::strerror(errno));
    }
    if (index == num_blocks_) ++num_blocks_;
    stats_->RecordWrite(1);
    return Status::OK();
  }

  uint64_t NumBlocks() const override { return num_blocks_; }

  Status Truncate(uint64_t num_blocks) override {
    if (num_blocks < num_blocks_) {
      if (ftruncate(fd_, static_cast<off_t>(num_blocks * block_size_)) != 0) {
        return Status::IOError("ftruncate failed on " + name_);
      }
      num_blocks_ = num_blocks;
    }
    return Status::OK();
  }

  size_t block_size() const override { return block_size_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  int fd_;
  size_t block_size_;
  IoStats* stats_;
  uint64_t num_blocks_;
};

// Concurrency audit: every namespace operation is a single syscall
// (open/unlink/stat), which the kernel serializes, and block I/O uses
// pread/pwrite on per-handle fds — so concurrent operations on *distinct*
// files need no extra locking. Concurrent access to the same file through
// one handle is not synchronized (PosixBlockFile::num_blocks_ is plain
// state), matching the MemEnv contract.
class PosixEnv : public Env {
 public:
  PosixEnv(std::string root, size_t block_size)
      : root_(std::move(root)), block_size_(block_size) {
    std::error_code ec;
    fs::create_directories(root_, ec);
  }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override {
    const std::string path = PathFor(name);
    int fd = open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return {Status::IOError("cannot create " + path + ": " +
                              std::strerror(errno))};
    }
    return {std::unique_ptr<BlockFile>(
        new PosixBlockFile(name, fd, block_size_, &stats_))};
  }

  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override {
    const std::string path = PathFor(name);
    int fd = open(path.c_str(), O_RDWR, 0644);
    if (fd < 0) return {Status::NotFound("no such file: " + path)};
    return {std::unique_ptr<BlockFile>(
        new PosixBlockFile(name, fd, block_size_, &stats_))};
  }

  Status Delete(const std::string& name) override {
    if (unlink(PathFor(name).c_str()) != 0) {
      return Status::NotFound("no such file: " + name);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    // POSIX rename(2) atomically replaces the target within one filesystem;
    // the whole namespace lives in one directory, so this always qualifies.
    if (::rename(PathFor(from).c_str(), PathFor(to).c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + from);
      return Status::IOError("rename " + from + " -> " + to + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  bool Exists(const std::string& name) const override {
    struct stat st;
    return stat(PathFor(name).c_str(), &st) == 0;
  }

  std::vector<std::string> ListFiles() const override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(root_, ec)) {
      if (entry.is_regular_file()) names.push_back(entry.path().filename());
    }
    return names;
  }

  size_t block_size() const override { return block_size_; }
  IoStats& stats() override { return stats_; }

 private:
  // File names may contain '/'-separated logical paths; flatten them so the
  // whole namespace lives in one directory.
  std::string PathFor(const std::string& name) const {
    std::string flat = name;
    for (char& c : flat) {
      if (c == '/') c = '_';
    }
    return root_ + "/" + flat;
  }

  std::string root_;
  size_t block_size_;
  IoStats stats_;
};

}  // namespace

std::unique_ptr<Env> NewPosixEnv(const std::string& root_dir, size_t block_size) {
  return std::make_unique<PosixEnv>(root_dir, block_size);
}

}  // namespace maxrs
