#include "io/pooled_env.h"

#include <cstring>
#include <utility>

namespace maxrs {
namespace {

// Read-only view of a pooled file. Holds the file's block count from open
// time (pooled files are immutable once published, so the snapshot stays
// exact) and fetches every block through the shared pool. No state of the
// shared underlying handle is touched outside the pool's lock.
class PooledFile : public BlockFile {
 public:
  PooledFile(BufferPool* pool, BlockFile* shared, std::string name)
      : pool_(pool),
        shared_(shared),
        name_(std::move(name)),
        block_size_(shared->block_size()),
        num_blocks_(shared->NumBlocks()) {}

  Status ReadBlock(uint64_t index, void* buf) override {
    MAXRS_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(*shared_, index));
    std::memcpy(buf, page.data(), block_size_);
    return Status::OK();
  }

  Status WriteBlock(uint64_t, const void*) override {
    return Status::NotSupported("pooled file is read-only: " + name_);
  }

  uint64_t NumBlocks() const override { return num_blocks_; }

  Status Truncate(uint64_t) override {
    return Status::NotSupported("pooled file is read-only: " + name_);
  }

  size_t block_size() const override { return block_size_; }
  const std::string& name() const override { return name_; }

 private:
  BufferPool* pool_;
  BlockFile* shared_;
  std::string name_;
  size_t block_size_;
  uint64_t num_blocks_;
};

}  // namespace

PooledEnv::PooledEnv(Env& base, size_t pool_bytes, uint64_t pin_wait_ms)
    : base_(&base), pool_(base, pool_bytes, pin_wait_ms) {}

PooledEnv::~PooledEnv() = default;

void PooledEnv::AddPooledPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  prefixes_.push_back(prefix);
}

bool PooledEnv::IsPooledName(const std::string& name) const {
  for (const std::string& prefix : prefixes_) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

Status PooledEnv::RetireHandle(const std::string& name) {
  auto it = handles_.find(name);
  if (it == handles_.end()) return Status::OK();
  MAXRS_RETURN_IF_ERROR(pool_.Evict(*it->second));
  retired_.push_back(std::move(it->second));
  handles_.erase(it);
  return Status::OK();
}

Result<std::unique_ptr<BlockFile>> PooledEnv::Create(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-creating a pooled name invalidates anything cached under it.
    MAXRS_RETURN_IF_ERROR(RetireHandle(name));
  }
  return base_->Create(name);
}

Result<std::unique_ptr<BlockFile>> PooledEnv::Open(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IsPooledName(name)) return base_->Open(name);
  auto it = handles_.find(name);
  if (it == handles_.end()) {
    MAXRS_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> shared,
                           base_->Open(name));
    it = handles_.emplace(name, std::move(shared)).first;
  }
  return {std::unique_ptr<BlockFile>(
      new PooledFile(&pool_, it->second.get(), name))};
}

Status PooledEnv::Delete(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MAXRS_RETURN_IF_ERROR(RetireHandle(name));
  }
  return base_->Delete(name);
}

Status PooledEnv::Rename(const std::string& from, const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MAXRS_RETURN_IF_ERROR(RetireHandle(from));
    MAXRS_RETURN_IF_ERROR(RetireHandle(to));
  }
  return base_->Rename(from, to);
}

bool PooledEnv::Exists(const std::string& name) const {
  return base_->Exists(name);
}

std::vector<std::string> PooledEnv::ListFiles() const {
  return base_->ListFiles();
}

size_t PooledEnv::block_size() const { return base_->block_size(); }

IoStats& PooledEnv::stats() { return base_->stats(); }

}  // namespace maxrs
