// Scratch-file lifecycle management. Algorithms allocate uniquely named
// temporary files and release them (deleting the backing storage) when a
// recursion node or sort pass completes.
#ifndef MAXRS_IO_TEMP_MANAGER_H_
#define MAXRS_IO_TEMP_MANAGER_H_

#include <cstdint>
#include <string>

#include "io/env.h"

namespace maxrs {

class TempFileManager {
 public:
  explicit TempFileManager(Env& env, std::string prefix = "tmp")
      : env_(&env), prefix_(std::move(prefix)) {}

  /// Returns a fresh unique file name; the file itself is not created yet.
  std::string NewName(const std::string& tag) {
    return prefix_ + "/" + std::to_string(next_id_++) + "_" + tag;
  }

  /// Deletes a temp file, ignoring NotFound (double release is harmless).
  void Release(const std::string& name) {
    Status st = env_->Delete(name);
    (void)st;
  }

  Env& env() { return *env_; }

 private:
  Env* env_;
  std::string prefix_;
  uint64_t next_id_ = 0;
};

}  // namespace maxrs

#endif  // MAXRS_IO_TEMP_MANAGER_H_
