// Scratch-file lifecycle management. Algorithms allocate uniquely named
// temporary files and release them (deleting the backing storage) when a
// recursion node or sort pass completes.
//
// Concurrency: NewName/Release are thread-safe (pool tasks of one recursion
// node allocate and release scratch files concurrently). Every manager
// instance additionally owns a process-unique namespace component, so two
// managers constructed with the same prefix — e.g. the piece-sort and the
// edge-sort running in parallel, each with its own "sort_tmp" manager —
// can never collide on a file name.
#ifndef MAXRS_IO_TEMP_MANAGER_H_
#define MAXRS_IO_TEMP_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "io/env.h"

namespace maxrs {

class TempFileManager {
 public:
  explicit TempFileManager(Env& env, std::string prefix = "tmp")
      : env_(&env),
        prefix_(std::move(prefix) + "/" + std::to_string(NextInstanceId())) {}

  /// Returns a fresh unique file name; the file itself is not created yet.
  std::string NewName(const std::string& tag) {
    const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    return prefix_ + "/" + std::to_string(id) + "_" + tag;
  }

  /// Deletes a temp file, ignoring NotFound (double release is harmless).
  void Release(const std::string& name) {
    Status st = env_->Delete(name);
    (void)st;
  }

  /// Deletes every file this manager ever named (prefix sweep over the
  /// Env namespace). The instance prefix is process-unique, so the sweep
  /// can never touch another manager's files — the error-path rollback of
  /// the serve layer.
  void ReleaseAll() {
    const std::string scope = prefix_ + "/";
    for (const std::string& name : env_->ListFiles()) {
      if (name.rfind(scope, 0) == 0) Release(name);
    }
  }

  Env& env() { return *env_; }

  /// The process-unique namespace component all names share.
  const std::string& prefix() const { return prefix_; }

 private:
  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  Env* env_;
  std::string prefix_;
  std::atomic<uint64_t> next_id_{0};
};

}  // namespace maxrs

#endif  // MAXRS_IO_TEMP_MANAGER_H_
