// Record streams: the zero-materialization seam between producers of
// records (routing passes) and their consumers (sub-slab solves).
//
// RecordWriter/RecordReader (record_io.h) force a full materialize-then-read
// cycle: a consumer cannot start until its producer has Finish()ed the file.
// The distribution sweep of ExactMaxRS only ever *streams* records in one
// direction, though, so the file in the middle is pure overhead — exactly
// the I/O the paper's recursion avoids by keeping each record's path
// minimal. This header abstracts the seam:
//
//   - RecordSource<T> / RecordSink<T>: the read and write halves of a
//     sequential record stream, with the Read/Next/final_status idiom of
//     RecordReader so consumers are source-agnostic.
//   - FileRecordSource<T> / FileRecordSink<T>: the compatibility adapters
//     over PrefetchingReader / RecordWriter.
//   - RecordChannel<T>: a SPSC in-memory channel with deterministic
//     spill-to-Env overflow — the zero-materialization hand-off. The
//     producer NEVER blocks (it buffers up to the memory cap, then spills
//     every subsequent record to exactly one Env part file), so channel
//     producers can never deadlock a saturated pool; the consumer blocks
//     until data or close arrive.
//   - MergingSource<T>: a k-way streaming merge over sources, selecting
//     heads with exactly the comparator MergeRuns (external_sort.h) uses —
//     byte-for-byte the sequence a materialized MergeSortedParts pass
//     chain produces, in a single zero-materialization pass.
//
// Determinism contract: whether (and what) a channel spills is a pure
// function of the records produced and the memory cap — never of consumer
// progress, scheduling, or abandonment — so IoStats are bit-identical for
// any thread count, and identical to a re-run. Cost accounting:
// docs/IO_MODEL.md ("Streaming routing").
#ifndef MAXRS_IO_RECORD_STREAM_H_
#define MAXRS_IO_RECORD_STREAM_H_

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/env.h"
#include "io/prefetch_reader.h"
#include "io/record_io.h"
#include "util/check.h"
#include "util/status.h"

namespace maxrs {

/// The read half of a sequential record stream. Same surface as
/// RecordReader (Read returning NotFound at end of stream; Next/
/// final_status for the iterator idiom), so consumers written against a
/// source work identically over a file, a channel, or a merge of either.
template <typename T>
class RecordSource {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  virtual ~RecordSource() = default;

  /// Reads the next record into *out; NotFound signals end of stream.
  virtual Status Read(T* out) = 0;

  /// Iterator idiom: returns false at end of stream OR on an error; in the
  /// error case the status is sticky — check final_status() after the loop.
  bool Next(T* out) {
    Status st = Read(out);
    if (st.code() == Status::Code::kNotFound) return false;
    if (!st.ok()) {
      final_status_ = st;
      return false;
    }
    return true;
  }

  /// OK unless a Next() iteration ended early due to an error.
  const Status& final_status() const { return final_status_; }

 private:
  Status final_status_;
};

/// The write half of a sequential record stream. A producer Appends records
/// and then Closes exactly once with its final status; Close(error)
/// propagates the error downstream in place of an end-of-stream.
template <typename T>
class RecordSink {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  virtual ~RecordSink() = default;

  /// Appends one record. An error here is the producer's to handle (it
  /// should stop producing and Close with the error).
  virtual Status Append(const T& record) = 0;

  /// Ends the stream. Idempotent; the first close's status wins. Returns
  /// the status the stream's consumer will observe (incoming `status`, or
  /// an internal flush error if `status` was OK).
  virtual Status Close(const Status& status) = 0;
};

/// RecordSource over a finished record file, via PrefetchingReader (so the
/// read_ahead block schedule is available behind the stream seam too).
template <typename T>
class FileRecordSource final : public RecordSource<T> {
 public:
  /// Opens `name` in `env`; see PrefetchingReader::Make for the read-ahead
  /// and executor semantics.
  static Result<FileRecordSource<T>> Make(Env& env, const std::string& name,
                                          bool read_ahead = false,
                                          IoExecutor* executor = nullptr) {
    auto reader_or = PrefetchingReader<T>::Make(env, name, read_ahead, executor);
    if (!reader_or.ok()) return {reader_or.status()};
    return {FileRecordSource<T>(std::move(reader_or).value())};
  }

  explicit FileRecordSource(PrefetchingReader<T> reader)
      : reader_(std::move(reader)) {}

  Status Read(T* out) override { return reader_.Read(out); }

  /// Records remaining in the file (the header count minus consumed).
  uint64_t remaining() const { return reader_.remaining(); }

 private:
  PrefetchingReader<T> reader_;
};

/// RecordSink over a fresh record file, via RecordWriter (so write-behind
/// is available behind the stream seam too). Close(OK) runs Finish.
template <typename T>
class FileRecordSink final : public RecordSink<T> {
 public:
  /// Creates `name` in `env`; see RecordWriter::Make for the write-behind
  /// and executor semantics.
  static Result<FileRecordSink<T>> Make(Env& env, const std::string& name,
                                        bool write_behind = false,
                                        IoExecutor* executor = nullptr) {
    auto writer_or = RecordWriter<T>::Make(env, name, write_behind, executor);
    if (!writer_or.ok()) return {writer_or.status()};
    return {FileRecordSink<T>(std::move(writer_or).value())};
  }

  explicit FileRecordSink(RecordWriter<T> writer) : writer_(std::move(writer)) {}

  Status Append(const T& record) override { return writer_.Append(record); }

  /// Finishes the file on an OK close (a file closed with an error is not
  /// finished and therefore not a valid record file).
  Status Close(const Status& status) override {
    if (!status.ok()) return status;
    return writer_.Finish();
  }

  uint64_t count() const { return writer_.count(); }
  const std::string& name() const { return writer_.name(); }

 private:
  RecordWriter<T> writer_;
};

/// A single-producer single-consumer record channel with deterministic
/// spill overflow: the zero-materialization hand-off between a routing
/// pass and a sub-slab solve.
///
/// Memory/spill policy (the determinism contract): records accumulate in
/// block-sized segments; a completed segment stays in memory while the
/// cumulative bytes enqueued in memory would not exceed `memory_cap_bytes`,
/// and from the first segment that would cross the cap onward EVERY
/// subsequent record of the stream is appended to one spill record file
/// (`spill_name` in `env`, created at the crossing). The decision depends
/// only on the bytes produced — never on how far the consumer has drained —
/// so the spill file's existence, contents, and block count are a pure
/// function of (stream contents, cap). memory_cap_bytes = 0 spills
/// everything; SIZE_MAX never spills. The in-memory cap bounds *enqueued*
/// bytes, hence the channel's resident footprint, at cap + one segment.
///
/// Threading: one producer thread (Append/Close), one consumer thread
/// (Read/Next); construction and destruction must be externally ordered
/// against both (the usual create → hand to tasks → join → destroy
/// pattern). The producer never blocks — the spine of the pipeline's
/// liveness argument: as long as callers start (or submit ahead of every
/// consumer, on a FIFO pool) each channel's producer, a parked consumer
/// always has a running, non-blocking producer destined to close its
/// channel, so plain condition-variable waiting cannot deadlock. (The
/// consumer must NOT help-run queued pool tasks while it waits: a node
/// that is simultaneously a consumer of its parent's channel and the
/// producer for its children could inline-run one of its own dependent
/// consumers beneath its suspended routing loop and deadlock.)
///
/// Error propagation: Close(error) parks the error; the consumer observes
/// it (after draining any segments enqueued before the close) in place of
/// end-of-stream, and never opens the spill file. A spill-write failure
/// surfaces at the producer's Append — the producer then Closes with it.
///
/// The destructor deletes the spill file (if one was created), so an
/// abandoned channel — a consumer that never drains, e.g. the edge stream
/// of a shard that turns out empty — leaks nothing.
template <typename T>
class RecordChannel final : public RecordSink<T>, public RecordSource<T> {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// The channel spills to `spill_name` in `env` if the stream outgrows
  /// `memory_cap_bytes`. `write_behind`/`executor` configure the spill
  /// writer's block schedule (RecordWriter::Make).
  RecordChannel(Env& env, std::string spill_name, size_t memory_cap_bytes,
                bool write_behind = false, IoExecutor* executor = nullptr)
      : env_(&env),
        spill_name_(std::move(spill_name)),
        cap_(memory_cap_bytes),
        per_segment_(std::max<size_t>(1, env.block_size() / sizeof(T))),
        write_behind_(write_behind),
        executor_(executor) {
    fill_.reserve(per_segment_);
  }

  /// Deletes the spill file if one was created. Any enqueued in-flight
  /// records are simply dropped — destroying an undrained channel is legal.
  ~RecordChannel() override {
    spill_writer_.reset();
    spill_reader_.reset();
    if (spill_created_) (void)env_->Delete(spill_name_);
  }

  RecordChannel(const RecordChannel&) = delete;
  RecordChannel& operator=(const RecordChannel&) = delete;

  // --- Producer side (RecordSink) ---

  Status Append(const T& record) override {
    MAXRS_DCHECK(!producer_closed_);
    fill_.push_back(record);
    if (fill_.size() == per_segment_) return EmitSegment();
    return Status::OK();
  }

  Status Close(const Status& status) override {
    if (producer_closed_) return close_copy_;
    producer_closed_ = true;
    Status st = status;
    if (st.ok() && !fill_.empty()) st = EmitSegment();
    if (st.ok() && spill_writer_.has_value()) st = spill_writer_->Finish();
    spill_writer_.reset();  // joins any write-behind flush
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      close_status_ = st;
    }
    cv_.notify_all();
    close_copy_ = st;
    return st;
  }

  /// Whether the stream crossed the cap and created its spill file.
  /// Meaningful once the producer has closed.
  bool spilled() const { return spill_created_; }

  // --- Consumer side (RecordSource) ---

  Status Read(T* out) override {
    while (true) {
      if (pos_ < current_.size()) {
        *out = current_[pos_++];
        return Status::OK();
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!segments_.empty()) {
          current_ = std::move(segments_.front());
          segments_.pop_front();
          pos_ = 0;
          continue;
        }
        if (closed_) {
          Status st = close_status_;
          lock.unlock();
          if (!st.ok()) return st;
          return ReadFromSpill(out);
        }
        cv_.wait(lock);
      }
    }
  }

 private:
  Status EmitSegment() {
    const size_t seg_bytes = fill_.size() * sizeof(T);
    if (!spilling_ && mem_bytes_enqueued_ + seg_bytes > cap_) {
      spilling_ = true;
      auto writer_or =
          RecordWriter<T>::Make(*env_, spill_name_, write_behind_, executor_);
      MAXRS_RETURN_IF_ERROR(writer_or.status());
      spill_created_ = true;
      spill_writer_.emplace(std::move(writer_or).value());
    }
    if (spilling_) {
      for (const T& r : fill_) MAXRS_RETURN_IF_ERROR(spill_writer_->Append(r));
      fill_.clear();
      return Status::OK();
    }
    mem_bytes_enqueued_ += seg_bytes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      segments_.push_back(std::move(fill_));
    }
    cv_.notify_all();
    fill_ = std::vector<T>();
    fill_.reserve(per_segment_);
    return Status::OK();
  }

  Status ReadFromSpill(T* out) {
    // Only reached after an OK close: the spill file (if any) is finished
    // and immutable, and the producer is gone, so no lock is needed.
    if (!spill_created_) return Status::NotFound("end of stream");
    if (!spill_reader_.has_value()) {
      auto reader_or = RecordReader<T>::Make(*env_, spill_name_);
      MAXRS_RETURN_IF_ERROR(reader_or.status());
      spill_reader_.emplace(std::move(reader_or).value());
    }
    return spill_reader_->Read(out);
  }

  Env* env_;
  std::string spill_name_;
  size_t cap_;
  size_t per_segment_;
  bool write_behind_;
  IoExecutor* executor_;

  // Producer-confined state (no lock: single producer).
  std::vector<T> fill_;
  size_t mem_bytes_enqueued_ = 0;
  bool spilling_ = false;
  bool spill_created_ = false;
  std::optional<RecordWriter<T>> spill_writer_;
  bool producer_closed_ = false;
  Status close_copy_;

  // Shared hand-off state.
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<T>> segments_;
  bool closed_ = false;
  Status close_status_;

  // Consumer-confined state (no lock: single consumer).
  std::vector<T> current_;
  size_t pos_ = 0;
  std::optional<RecordReader<T>> spill_reader_;
};

/// A source that yields one buffered record, then delegates to `rest` —
/// the glue for consumers that must probe a stream's first record (e.g.
/// "is this shard empty?") before handing the whole stream onward.
template <typename T>
class PrependedSource final : public RecordSource<T> {
 public:
  /// Yields `first`, then everything remaining in `rest` (not owned; must
  /// outlive this source).
  PrependedSource(const T& first, RecordSource<T>* rest)
      : first_(first), rest_(rest) {}

  Status Read(T* out) override {
    if (has_first_) {
      has_first_ = false;
      *out = first_;
      return Status::OK();
    }
    return rest_->Read(out);
  }

 private:
  T first_;
  bool has_first_ = true;
  RecordSource<T>* rest_;
};

/// A k-way streaming merge over record sources: the zero-materialization
/// equivalent of merging sorted part files with MergeSortedParts.
///
/// Selection replicates MergeRuns (external_sort.h) exactly — an index
/// heap over the non-exhausted sources, smallest head first, ties to the
/// lowest source index — so for a total-order comparator the merged
/// sequence is byte-identical to what any materialized merge-pass chain
/// over the same sources in the same order would produce (k-way min-of-
/// heads merging is associative, and cmp-equal records are byte-equal
/// under a total order, so the grouping of passes is unobservable).
template <typename T, typename Less>
class MergingSource final : public RecordSource<T> {
 public:
  /// Merges `sources` (not owned; must outlive this source). Sources may
  /// be empty; they are skipped. Heads are pulled lazily on first Read, so
  /// constructing a MergingSource costs no I/O and never blocks.
  MergingSource(std::vector<RecordSource<T>*> sources, Less less)
      : sources_(std::move(sources)), less_(std::move(less)) {}

  Status Read(T* out) override {
    if (!initialized_) MAXRS_RETURN_IF_ERROR(Init());
    if (heap_.empty()) return Status::NotFound("end of stream");
    const size_t i = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), cmp_);
    heap_.pop_back();
    *out = heads_[i];
    Status st = sources_[i]->Read(&heads_[i]);
    if (st.code() == Status::Code::kNotFound) return Status::OK();
    MAXRS_RETURN_IF_ERROR(st);
    heap_.push_back(i);
    std::push_heap(heap_.begin(), heap_.end(), cmp_);
    return Status::OK();
  }

 private:
  Status Init() {
    initialized_ = true;
    heads_.resize(sources_.size());
    heap_.reserve(sources_.size());
    for (size_t i = 0; i < sources_.size(); ++i) {
      Status st = sources_[i]->Read(&heads_[i]);
      if (st.code() == Status::Code::kNotFound) continue;  // empty source
      MAXRS_RETURN_IF_ERROR(st);
      heap_.push_back(i);
    }
    // The MergeRuns heap comparator, verbatim: max-heap on "later", so the
    // front is the smallest head, ties to the lowest index.
    std::make_heap(heap_.begin(), heap_.end(), cmp_);
    return Status::OK();
  }

  struct Cmp {
    MergingSource* self;
    bool operator()(size_t a, size_t b) const {
      if (self->less_(self->heads_[b], self->heads_[a])) return true;
      if (self->less_(self->heads_[a], self->heads_[b])) return false;
      return a > b;
    }
  };

  std::vector<RecordSource<T>*> sources_;
  Less less_;
  bool initialized_ = false;
  std::vector<T> heads_;
  std::vector<size_t> heap_;
  Cmp cmp_{this};
};

/// Closes every sink in `sinks` with `status`, exactly once each, and
/// returns `status` with the first close-side error folded in when `status`
/// itself is OK. The multi-sink dual of the per-channel close-on-error
/// protocol: a routing pass that feeds a whole row (or several queries'
/// rows) of channels must close all of them on every path — success or
/// error — or a parked consumer hangs forever. Null entries are skipped.
template <typename T>
Status CloseAllSinks(const std::vector<RecordSink<T>*>& sinks,
                     Status status) {
  for (RecordSink<T>* sink : sinks) {
    if (sink == nullptr) continue;
    Status close_st = sink->Close(status);
    if (status.ok()) status = close_st;
  }
  return status;
}

}  // namespace maxrs

#endif  // MAXRS_IO_RECORD_STREAM_H_
