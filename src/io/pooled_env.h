// PooledEnv: an Env wrapper that backs reads of a registered set of
// *immutable* files (a served dataset's manifest, aggregate index, and shard
// files) with one shared BufferPool. Every Open() of a pooled name returns a
// lightweight read-only handle that fetches blocks through the pool: a hit
// costs zero counted I/O, a miss is one counted ReadBlock on the single
// shared underlying handle. The pool — and therefore the warm working set —
// is shared across all query workers, which is exactly why BufferPool is
// thread-safe (its lock also provides the happens-before the Env contract
// requires for the shared handle).
//
// Scope is deliberately narrow: only names matching a registered prefix are
// pooled, and pooled handles are read-only (the serve layer never writes
// dataset files after ingest publishes them). Everything else — query temp
// files, spill channels, sort runs — passes straight through to the base
// Env untouched, so enabling the pool cannot perturb any write path.
// Accounting is covered in docs/IO_MODEL.md, "Index-pruned serving and the
// shared buffer pool".
#ifndef MAXRS_IO_POOLED_ENV_H_
#define MAXRS_IO_POOLED_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/buffer_pool.h"
#include "io/env.h"

namespace maxrs {

class PooledEnv : public Env {
 public:
  /// `pool_bytes` sizes the shared BufferPool; `pin_wait_ms` is forwarded to
  /// it (how long a Fetch may wait out an all-pinned pool before failing).
  PooledEnv(Env& base, size_t pool_bytes, uint64_t pin_wait_ms = 0);
  ~PooledEnv() override;

  /// Registers a name prefix: every existing or future file whose name
  /// starts with `prefix` is served through the pool on Open().
  void AddPooledPrefix(const std::string& prefix);

  BufferPoolStats pool_stats() const { return pool_.pool_stats(); }

  // Env interface. Create() always delegates raw (writers bypass the pool);
  // Delete()/Rename() of a pooled name evict its blocks first so stale data
  // can never be served under a recycled name.
  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override;
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override;
  Status Delete(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> ListFiles() const override;
  size_t block_size() const override;
  IoStats& stats() override;

 private:
  bool IsPooledName(const std::string& name) const;
  /// Drops (after evicting) the shared handle for `name`, if any. The handle
  /// object is retired, not destroyed, so pooled readers opened before a
  /// Delete/Rename can fail cleanly instead of dangling.
  Status RetireHandle(const std::string& name);

  Env* base_;
  BufferPool pool_;
  mutable std::mutex mu_;
  std::vector<std::string> prefixes_;
  std::map<std::string, std::unique_ptr<BlockFile>> handles_;
  std::vector<std::unique_ptr<BlockFile>> retired_;
};

}  // namespace maxrs

#endif  // MAXRS_IO_POOLED_ENV_H_
