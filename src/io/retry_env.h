// RetryEnv: an Env wrapper that absorbs transient faults with bounded
// retries + exponential backoff. The retry taxonomy lives in Status
// (util/status.h): kUnavailable is retryable; everything else is terminal
// unless the policy opts plain kIOError in (for storage whose drivers
// report transient errors that way).
//
// Accounting (docs/IO_MODEL.md, "Retried and checksummed blocks"): every
// retried attempt that reaches the base Env is counted there as usual; in
// addition each retry attempt increments IoStats reads_retried /
// writes_retried, so `blocks_read - reads_retried_that_transferred` style
// audits are possible and a converged transient-only chaos schedule shows
// base counts identical to a fault-free run.
#ifndef MAXRS_IO_RETRY_ENV_H_
#define MAXRS_IO_RETRY_ENV_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "io/env.h"

namespace maxrs {

/// Bounds and pacing for RetryEnv.
struct RetryPolicy {
  /// Retries after the first attempt; 3 means up to 4 attempts total.
  int max_retries = 3;
  /// Sleep before the first retry; doubles (×backoff_multiplier) each retry.
  /// Zero disables sleeping — useful in tests and on in-memory Envs.
  std::chrono::microseconds initial_backoff{0};
  double backoff_multiplier = 2.0;
  /// Treat plain kIOError as transient too. Off by default: a POSIX EIO is
  /// permanent more often than not, and retrying corruption is never right.
  bool retry_io_errors = false;
};

/// Env wrapper retrying retryable failures of block transfers and of
/// Create/Open. Namespace mutations (Delete, Rename) pass through unretried:
/// they are not idempotent under concurrent observers, and the fault
/// injectors never fault them.
class RetryEnv : public Env {
 public:
  RetryEnv(Env& base, const RetryPolicy& policy)
      : base_(&base), policy_(policy) {}

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override;
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override;
  Status Delete(const std::string& name) override { return base_->Delete(name); }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_->ListFiles();
  }
  size_t block_size() const override { return base_->block_size(); }
  IoStats& stats() override { return base_->stats(); }

  /// Total retry attempts performed (reads + writes + open/create).
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  const RetryPolicy& policy() const { return policy_; }

  /// True if `s` should be retried under this policy (internal use).
  bool ShouldRetry(const Status& s) const {
    return s.is_retryable() ||
           (policy_.retry_io_errors && s.code() == Status::Code::kIOError);
  }

  /// Sleeps for the backoff of retry attempt `attempt` (0-based) and bumps
  /// the retry counter (internal use by the wrapped files).
  void OnRetry(int attempt);

 private:
  Env* base_;
  RetryPolicy policy_;
  std::atomic<uint64_t> retries_{0};
};

}  // namespace maxrs

#endif  // MAXRS_IO_RETRY_ENV_H_
