// Asynchronous read-ahead streaming: the latency-hiding layer between the
// record streams and the Env.
//
// RecordReader (record_io.h) blocks the compute thread on every ReadBlock:
// fetching block k+1 and deserializing block k are serialized, which is
// exactly where the EM cost model says the time goes on a cold pass. A
// PrefetchingReader double-buffers instead — while records of block k are
// being consumed, block k+1 is already being fetched by a background
// IoExecutor worker — so a sequential scan overlaps I/O with compute.
//
// Accounting contract (docs/IO_MODEL.md, "Read-ahead"): a prefetched block
// is counted exactly once, by the worker's ReadBlock, at issue time; serving
// it to the consumer is a buffer swap, never a second transfer. A fetch is
// issued only when the header says its block will be needed, so a fully
// consumed stream transfers precisely the blocks the synchronous reader
// would have — block counts are bit-identical with read-ahead on or off.
//
// Error contract: an I/O error hit by an in-flight fetch (including
// FaultEnv-injected faults and short files whose header promises more
// blocks than exist) is parked in the completion slot and surfaced to the
// consumer at the next Read()/Next() call; the worker itself never throws,
// crashes, or touches reader state. Destroying a reader with a fetch in
// flight joins the fetch first, so a worker can never write through a
// dangling buffer or touch a dead Env.
//
// With `read_ahead = false` the reader never touches the executor and
// performs the exact synchronous block schedule of RecordReader — the
// serial fallback every consumer defaults to.
#ifndef MAXRS_IO_PREFETCH_READER_H_
#define MAXRS_IO_PREFETCH_READER_H_

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "io/env.h"
#include "io/io_executor.h"
#include "io/record_io.h"
#include "util/check.h"
#include "util/status.h"

namespace maxrs {

/// Drop-in replacement for RecordReader<T> (same surface: Read/Next/
/// final_status/total/remaining, NotFound at end of stream) that overlaps
/// the fetch of block k+1 with the consumption of block k when
/// `read_ahead` is on. Costs one extra block of buffer memory (two blocks
/// instead of RecordReader's one) while a fetch is in flight.
template <typename T>
class PrefetchingReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Opens `name` in `env`. Read-ahead is opt-in (default false, matching
  /// every read_ahead option in the library): without it the reader
  /// performs the exact synchronous RecordReader schedule and never
  /// touches the executor. `executor` defaults to the shared
  /// IoExecutor::Default(). Only the header block is read here — the first
  /// data-block fetch is issued lazily by the first Read(), so header-only
  /// probes cost one block either way.
  static Result<PrefetchingReader<T>> Make(Env& env, const std::string& name,
                                           bool read_ahead = false,
                                           IoExecutor* executor = nullptr) {
    auto file_or = env.Open(name);
    if (!file_or.ok()) return {file_or.status()};
    PrefetchingReader<T> reader(std::move(file_or).value(), read_ahead,
                                executor);
    MAXRS_RETURN_IF_ERROR(reader.ReadHeader());
    return {std::move(reader)};
  }

  explicit PrefetchingReader(std::unique_ptr<BlockFile> file,
                             bool read_ahead = false,
                             IoExecutor* executor = nullptr)
      : file_(std::move(file)),
        per_block_(file_->block_size() / sizeof(T)),
        buf_(file_->block_size()),
        read_ahead_(read_ahead),
        executor_(executor) {
    MAXRS_CHECK_MSG(per_block_ > 0, "record does not fit in a block");
  }

  /// Joins any in-flight fetch (its result is discarded) so no background
  /// task can outlive the reader's file handle.
  ~PrefetchingReader() { JoinInflight(); }

  PrefetchingReader(PrefetchingReader&&) noexcept = default;
  PrefetchingReader& operator=(PrefetchingReader&& other) noexcept {
    if (this != &other) {
      JoinInflight();
      file_ = std::move(other.file_);
      per_block_ = other.per_block_;
      buf_ = std::move(other.buf_);
      read_ahead_ = other.read_ahead_;
      executor_ = other.executor_;
      inflight_ = std::move(other.inflight_);
      spare_ = std::move(other.spare_);
      sums_ = std::move(other.sums_);
      total_ = other.total_;
      consumed_ = other.consumed_;
      in_buf_ = other.in_buf_;
      buffered_ = other.buffered_;
      next_block_ = other.next_block_;
      final_status_ = std::move(other.final_status_);
    }
    return *this;
  }

  /// Reads the next record into *out; returns false at end of stream OR on
  /// an I/O error — the RecordReader iterator idiom. Callers iterating with
  /// Next() must check final_status() when the loop ends.
  bool Next(T* out) {
    Status st = Read(out);
    if (st.code() == Status::Code::kNotFound) return false;
    if (!st.ok()) {
      final_status_ = st;
      return false;
    }
    return true;
  }

  /// OK unless a Next() iteration ended early due to an I/O error.
  const Status& final_status() const { return final_status_; }

  /// Status-returning variant: NotFound signals end-of-stream. An error
  /// parked by an in-flight prefetch is returned here, on the Read() that
  /// first needs the failed block.
  Status Read(T* out) {
    if (consumed_ == total_) return Status::NotFound("end of stream");
    if (in_buf_ == buffered_) MAXRS_RETURN_IF_ERROR(FillBuffer());
    std::memcpy(out, buf_.data() + in_buf_ * sizeof(T), sizeof(T));
    ++in_buf_;
    ++consumed_;
    return Status::OK();
  }

  uint64_t total() const { return total_; }
  uint64_t remaining() const { return total_ - consumed_; }

 private:
  Status ReadHeader() {
    return record_internal::ReadAndValidateHeader(*file_, sizeof(T), &total_,
                                                  &sums_);
  }

  // Makes block `next_block_` current: adopts the in-flight fetch if one
  // was issued, otherwise reads inline (first block, read-ahead off, or
  // the retry after a surfaced prefetch error — next_block_ only advances
  // on success, so the retry re-reads the same block, exactly like the
  // synchronous reader). Then issues the next fetch if the header says
  // that block will be needed.
  Status FillBuffer() {
    if (inflight_ != nullptr) {
      std::shared_ptr<prefetch_internal::BlockFetch> fetch =
          std::move(inflight_);
      inflight_.reset();
      {
        std::unique_lock<std::mutex> lock(fetch->mu);
        fetch->cv.wait(lock, [&fetch] { return fetch->done; });
      }
      // The worker is finished with the slot once done is set, so it (and
      // its block buffer) is recycled for the next fetch — the steady
      // state allocates nothing per block. On success the swap hands the
      // just-consumed buffer to the slot.
      Status st = fetch->status;
      if (st.ok()) buf_.swap(fetch->buf);
      spare_ = std::move(fetch);
      MAXRS_RETURN_IF_ERROR(st);
    } else {
      MAXRS_RETURN_IF_ERROR(file_->ReadBlock(next_block_, buf_.data()));
    }
    // Verified on the consumer thread (for prefetched blocks too): the
    // worker only moves bytes; corruption surfaces here as a sticky
    // kCorruption before next_block_ advances.
    MAXRS_RETURN_IF_ERROR(record_internal::VerifyBlockChecksum(
        sums_, *file_, next_block_, buf_.data(), buf_.size()));
    ++next_block_;
    in_buf_ = 0;
    buffered_ = std::min<uint64_t>(per_block_, total_ - consumed_);
    // Double-buffering: records beyond the block just adopted exist, so its
    // successor is certain to be needed — fetch it while the consumer
    // deserializes. (Never issued for the last block: a synchronous reader
    // would not touch anything past it, and neither do we.)
    if (read_ahead_ && consumed_ + buffered_ < total_) IssuePrefetch();
    return Status::OK();
  }

  void IssuePrefetch() {
    // The shared executor is resolved lazily, here — the only path gated
    // on read_ahead_ — so synchronous readers never spawn its threads
    // (the "never touches the executor" contract of Make).
    if (executor_ == nullptr) executor_ = &IoExecutor::Default();
    std::shared_ptr<prefetch_internal::BlockFetch> fetch;
    if (spare_ != nullptr) {
      fetch = std::move(spare_);
      spare_.reset();
      fetch->done = false;
      fetch->status = Status::OK();
    } else {
      fetch = std::make_shared<prefetch_internal::BlockFetch>();
      fetch->buf.resize(file_->block_size());
    }
    std::shared_ptr<BlockFile> file = file_;
    const uint64_t block = next_block_;
    inflight_ = fetch;
    executor_->Submit([fetch, file, block] {
      Status st = file->ReadBlock(block, fetch->buf.data());
      std::lock_guard<std::mutex> lock(fetch->mu);
      fetch->status = std::move(st);
      fetch->done = true;
      fetch->cv.notify_all();
    });
  }

  void JoinInflight() {
    if (inflight_ == nullptr) return;
    std::unique_lock<std::mutex> lock(inflight_->mu);
    inflight_->cv.wait(lock, [this] { return inflight_->done; });
    lock.unlock();
    inflight_.reset();
  }

  // shared_ptr (not unique_ptr): in-flight fetch tasks co-own the file so
  // the handle outlives any read the worker already started.
  std::shared_ptr<BlockFile> file_;
  size_t per_block_;
  std::vector<char> buf_;
  bool read_ahead_ = false;
  // Null until the first prefetch is issued; synchronous readers never
  // resolve (or construct) the shared executor.
  IoExecutor* executor_ = nullptr;
  std::shared_ptr<prefetch_internal::BlockFetch> inflight_;
  // Recycled completion slot + buffer of the last adopted fetch; one slot
  // suffices because at most one fetch is ever in flight per reader.
  std::shared_ptr<prefetch_internal::BlockFetch> spare_;
  record_internal::BlockChecksums sums_;
  uint64_t total_ = 0;
  uint64_t consumed_ = 0;
  size_t in_buf_ = 0;
  uint64_t buffered_ = 0;
  uint64_t next_block_ = 1;
  Status final_status_;
};

/// Convenience: reads a whole record file into memory, optionally with
/// read-ahead — the prefetching counterpart of ReadRecordFile.
template <typename T>
Result<std::vector<T>> ReadRecordFilePrefetched(Env& env,
                                                const std::string& name,
                                                bool read_ahead) {
  MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<T> reader,
                         PrefetchingReader<T>::Make(env, name, read_ahead));
  return record_internal::DrainToVector<T>(reader);
}

}  // namespace maxrs

#endif  // MAXRS_IO_PREFETCH_READER_H_
