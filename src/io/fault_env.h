// Fault-injecting Env wrapper for failure-path testing: fails the K-th block
// read or write (counting from the wrapper's construction or last Arm call)
// with an IOError. Used by tests to verify Status propagation through every
// layer (streams, sorts, sweeps, public API).
#ifndef MAXRS_IO_FAULT_ENV_H_
#define MAXRS_IO_FAULT_ENV_H_

#include <limits>
#include <memory>
#include <string>

#include "io/env.h"

namespace maxrs {

class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env& base) : base_(&base) {}

  /// Fails the `k`-th counted operation from now (1-based). Reads and writes
  /// share the countdown.
  void ArmAfter(uint64_t k) { remaining_ = k; }
  void Disarm() { remaining_ = std::numeric_limits<uint64_t>::max(); }

  /// Number of faults actually delivered.
  uint64_t faults_delivered() const { return faults_delivered_; }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override;
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override;
  Status Delete(const std::string& name) override { return base_->Delete(name); }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_->ListFiles();
  }
  size_t block_size() const override { return base_->block_size(); }
  IoStats& stats() override { return base_->stats(); }

  /// Returns true if the current operation must fail (internal use by the
  /// wrapped files).
  bool ShouldFail() {
    if (remaining_ == std::numeric_limits<uint64_t>::max()) return false;
    if (remaining_ <= 1) {
      Disarm();
      ++faults_delivered_;
      return true;
    }
    --remaining_;
    return false;
  }

 private:
  Env* base_;
  uint64_t remaining_ = std::numeric_limits<uint64_t>::max();
  uint64_t faults_delivered_ = 0;
};

}  // namespace maxrs

#endif  // MAXRS_IO_FAULT_ENV_H_
