// Fault-injecting Env wrappers for failure-path testing.
//
// FaultEnv fails the K-th block read or write (counting from the wrapper's
// construction or last Arm call) with an IOError — deterministic single-shot
// injection for verifying Status propagation through every layer (streams,
// sorts, sweeps, public API).
//
// ChaosEnv is the probabilistic generalization: a seeded schedule of
// transient faults (kUnavailable), permanent faults (kIOError), silent read
// bit-flips, and torn writes, for the chaos battery (tests/chaos_test.cc).
#ifndef MAXRS_IO_FAULT_ENV_H_
#define MAXRS_IO_FAULT_ENV_H_

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <string>

#include "io/env.h"

namespace maxrs {

class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env& base) : base_(&base) {}

  /// Fails the `k`-th counted operation from now (1-based). Reads and writes
  /// share the countdown.
  void ArmAfter(uint64_t k) { remaining_.store(k, std::memory_order_relaxed); }
  void Disarm() { remaining_.store(kDisarmed, std::memory_order_relaxed); }

  /// Number of faults actually delivered.
  uint64_t faults_delivered() const {
    return faults_delivered_.load(std::memory_order_relaxed);
  }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override;
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override;
  Status Delete(const std::string& name) override { return base_->Delete(name); }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_->ListFiles();
  }
  size_t block_size() const override { return base_->block_size(); }
  IoStats& stats() override { return base_->stats(); }

  /// Returns true if the current operation must fail (internal use by the
  /// wrapped files). Lock-free CAS countdown: background prefetch workers
  /// (io/prefetch_reader.h) issue counted reads concurrently with the
  /// compute thread, and exactly one of the racing operations must take
  /// the armed fault.
  bool ShouldFail() {
    uint64_t current = remaining_.load(std::memory_order_relaxed);
    while (true) {
      if (current == kDisarmed) return false;
      const uint64_t next = current <= 1 ? kDisarmed : current - 1;
      if (remaining_.compare_exchange_weak(current, next,
                                           std::memory_order_relaxed)) {
        if (current <= 1) {
          faults_delivered_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        return false;
      }
    }
  }

 private:
  static constexpr uint64_t kDisarmed = std::numeric_limits<uint64_t>::max();

  Env* base_;
  std::atomic<uint64_t> remaining_{kDisarmed};
  std::atomic<uint64_t> faults_delivered_{0};
};

/// Fault mix for a ChaosEnv. Probabilities are per block operation and are
/// drawn in the order listed: at most one fault fires per operation.
struct ChaosOptions {
  uint64_t seed = 1;
  /// P(a read/write fails with kUnavailable before touching storage).
  /// Transient: a retry re-draws and usually succeeds.
  double transient_fault_p = 0.0;
  /// P(a read/write fails with kIOError before touching storage). Permanent
  /// in the retry taxonomy — RetryEnv gives up immediately by default.
  double permanent_fault_p = 0.0;
  /// P(a read completes — and is counted — but one bit of the returned
  /// buffer is silently flipped). Caught by block checksums as kCorruption.
  double bit_flip_read_p = 0.0;
  /// P(a write completes — and is counted — but the stored block is garbled
  /// past its midpoint, as if the write tore). Reported OK to the writer;
  /// caught by block checksums on the next read.
  double torn_write_p = 0.0;
};

/// Seeded probabilistic fault injector. Faults fire *before* the base
/// transfer (transient/permanent) or corrupt an otherwise-counted transfer
/// (bit-flip/torn-write), so a schedule whose transient faults are all
/// retried away performs exactly the block transfers of a fault-free run —
/// the accounting invariant chaos_test pins. The RNG is shared and
/// mutex-guarded: the schedule is a deterministic function of the seed and
/// the sequence of operations, though under concurrency the interleaving
/// (and thus which op draws which fault) is schedule-dependent.
class ChaosEnv : public Env {
 public:
  ChaosEnv(Env& base, const ChaosOptions& options)
      : base_(&base), options_(options), rng_(options.seed) {}

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override;
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override;
  Status Delete(const std::string& name) override { return base_->Delete(name); }
  Status Rename(const std::string& from, const std::string& to) override {
    // Namespace operations are not faulted: the chaos model targets block
    // transfers; Rename atomicity is the base Env's contract.
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_->ListFiles();
  }
  size_t block_size() const override { return base_->block_size(); }
  IoStats& stats() override { return base_->stats(); }

  uint64_t transient_faults() const {
    return transient_faults_.load(std::memory_order_relaxed);
  }
  uint64_t permanent_faults() const {
    return permanent_faults_.load(std::memory_order_relaxed);
  }
  uint64_t bit_flips() const {
    return bit_flips_.load(std::memory_order_relaxed);
  }
  uint64_t torn_writes() const {
    return torn_writes_.load(std::memory_order_relaxed);
  }

  /// What a ChaosBlockFile operation should do (internal use).
  enum class Fault { kNone, kTransient, kPermanent, kCorrupt };

  /// Draws the fault outcome for one read; on kCorrupt, `*detail` is the bit
  /// index to flip within the block.
  Fault DrawReadFault(uint64_t* detail);
  /// Draws the fault outcome for one write (kCorrupt = torn write).
  Fault DrawWriteFault();

 private:
  Env* base_;
  ChaosOptions options_;
  std::mutex mu_;
  std::mt19937_64 rng_;
  std::atomic<uint64_t> transient_faults_{0};
  std::atomic<uint64_t> permanent_faults_{0};
  std::atomic<uint64_t> bit_flips_{0};
  std::atomic<uint64_t> torn_writes_{0};
};

}  // namespace maxrs

#endif  // MAXRS_IO_FAULT_ENV_H_
