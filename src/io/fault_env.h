// Fault-injecting Env wrapper for failure-path testing: fails the K-th block
// read or write (counting from the wrapper's construction or last Arm call)
// with an IOError. Used by tests to verify Status propagation through every
// layer (streams, sorts, sweeps, public API).
#ifndef MAXRS_IO_FAULT_ENV_H_
#define MAXRS_IO_FAULT_ENV_H_

#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "io/env.h"

namespace maxrs {

class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env& base) : base_(&base) {}

  /// Fails the `k`-th counted operation from now (1-based). Reads and writes
  /// share the countdown.
  void ArmAfter(uint64_t k) { remaining_.store(k, std::memory_order_relaxed); }
  void Disarm() { remaining_.store(kDisarmed, std::memory_order_relaxed); }

  /// Number of faults actually delivered.
  uint64_t faults_delivered() const {
    return faults_delivered_.load(std::memory_order_relaxed);
  }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override;
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override;
  Status Delete(const std::string& name) override { return base_->Delete(name); }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_->ListFiles();
  }
  size_t block_size() const override { return base_->block_size(); }
  IoStats& stats() override { return base_->stats(); }

  /// Returns true if the current operation must fail (internal use by the
  /// wrapped files). Lock-free CAS countdown: background prefetch workers
  /// (io/prefetch_reader.h) issue counted reads concurrently with the
  /// compute thread, and exactly one of the racing operations must take
  /// the armed fault.
  bool ShouldFail() {
    uint64_t current = remaining_.load(std::memory_order_relaxed);
    while (true) {
      if (current == kDisarmed) return false;
      const uint64_t next = current <= 1 ? kDisarmed : current - 1;
      if (remaining_.compare_exchange_weak(current, next,
                                           std::memory_order_relaxed)) {
        if (current <= 1) {
          faults_delivered_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        return false;
      }
    }
  }

 private:
  static constexpr uint64_t kDisarmed = std::numeric_limits<uint64_t>::max();

  Env* base_;
  std::atomic<uint64_t> remaining_{kDisarmed};
  std::atomic<uint64_t> faults_delivered_{0};
};

}  // namespace maxrs

#endif  // MAXRS_IO_FAULT_ENV_H_
