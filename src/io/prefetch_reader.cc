#include "io/prefetch_reader.h"

// IoExecutor's implementation lives in io_executor.cc; this translation unit
// exists so the library keeps a stable .cc anchor for the reader template's
// header (and for any future non-template reader helpers).
