// Write-back LRU buffer pool with pinning. The two plane-sweep baselines
// access their sweep structures through this pool, so their I/O cost reflects
// the available buffer size M exactly as in the paper's experiments: when the
// working set fits in M the I/O count collapses (Fig. 15(a)), otherwise every
// miss is a counted block fetch and every dirty eviction a counted write
// (see docs/IO_MODEL.md for how this composes with the stream layer).
//
// The pool is thread-safe: the serve layer shares one pool across all query
// workers (io/pooled_env.h), so every state transition — lookup, victim
// selection, the fetch I/O itself, unpin — happens under one mutex. Holding
// the lock across the miss I/O is deliberate: it also provides the
// happens-before ordering the Env contract requires for the single shared
// BlockFile handle behind each pooled file. Frame payloads are stable
// in memory while pinned, so PageHandle::data() needs no lock.
#ifndef MAXRS_IO_BUFFER_POOL_H_
#define MAXRS_IO_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "io/env.h"
#include "util/status.h"

namespace maxrs {

class BufferPool;

/// RAII pin on a cached block. While alive, the frame cannot be evicted.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }

  /// Block contents; block_size bytes. Safe without the pool lock: the frame
  /// is pinned for the handle's lifetime, so it cannot be evicted or reused.
  char* data();
  const char* data() const;

  /// Marks the block dirty; it will be written back on eviction or flush.
  void MarkDirty();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
};

/// Statistics of pool behaviour (hits are free; misses cost I/O).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

class BufferPool {
 public:
  /// `capacity_bytes` is the memory budget M; the pool holds
  /// capacity_bytes / block_size frames (at least 1).
  ///
  /// `pin_wait_ms` bounds how long Fetch blocks when every frame is pinned
  /// by other threads. Zero (the default) fails immediately with
  /// ResourceExhausted — the historical single-owner behaviour, where an
  /// exhausted pool is a sizing bug, not a transient. A positive bound lets
  /// concurrent readers ride out momentary all-pinned states: Fetch waits on
  /// a condition variable signalled by every unpin, and only reports
  /// ResourceExhausted if no frame frees within the bound.
  BufferPool(Env& env, size_t capacity_bytes, uint64_t pin_wait_ms = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the given block of `file`, fetching it from storage on a miss.
  /// If `zero_fill_new` and the block is exactly one past the end of the
  /// file, the frame is zero-filled without a counted read (fresh append).
  Result<PageHandle> Fetch(BlockFile& file, uint64_t block, bool zero_fill_new = false);

  /// Writes back all dirty blocks of `file` (or all files if nullptr).
  Status FlushAll(BlockFile* file = nullptr);

  /// Flushes and forgets all blocks of `file`; must not have pinned pages.
  Status Evict(BlockFile& file);

  size_t capacity_frames() const { return frames_.size(); }
  BufferPoolStats pool_stats() const;

 private:
  friend class PageHandle;

  struct Frame {
    BlockFile* file = nullptr;
    uint64_t block = 0;
    std::vector<char> data;
    bool dirty = false;
    bool valid = false;
    uint32_t pins = 0;
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  using Key = std::pair<BlockFile*, uint64_t>;

  void Unpin(size_t frame);
  void MarkDirtyLocked(size_t frame);
  Result<size_t> GetVictim(std::unique_lock<std::mutex>& lock);
  Status WriteBack(Frame& frame);

  Env* env_;
  size_t block_size_;
  uint64_t pin_wait_ms_;
  mutable std::mutex mu_;
  std::condition_variable frame_freed_;
  std::vector<Frame> frames_;
  std::map<Key, size_t> table_;
  std::list<size_t> lru_;  // front = most recent
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace maxrs

#endif  // MAXRS_IO_BUFFER_POOL_H_
