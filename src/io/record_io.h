// Typed sequential record streams over BlockFiles.
//
// Layout: block 0 is a header {magic, record_size, record_count}; blocks 1..n
// hold `block_size / sizeof(T)` records each. A stream holds exactly one
// block of buffer memory, so a reader or writer costs one block of the
// memory budget M — the standard EM-model streaming primitive with O(1/B)
// amortized I/O per record (cost accounting: docs/IO_MODEL.md).
//
// RecordWriter optionally double-buffers its block flushes on the shared
// IoExecutor ("write-behind", the dual of prefetch_reader.h's read-ahead):
// while records of block k+1 are being serialized, block k is being written
// by a background worker. At most one write is ever in flight and it is
// joined before the next one is issued, so the on-disk block sequence (and
// the IoStats count — each block written exactly once, by the worker) is
// bit-identical to the synchronous schedule. A background write error is
// parked and surfaced at the next Append/Finish; Finish always joins and
// then writes the header synchronously, so a finished file is fully
// persisted. Destroying an unfinished writer joins any in-flight write.
//
// T must be trivially copyable and fit in one block.
//
// Checksums (format v2, the write default): every data block's CRC32C is
// recorded — inline in the header block while they fit, then in
// self-checksummed trailer blocks appended after the data — and verified by
// both readers on every data-block read, surfacing kCorruption with the
// block index. Data blocks keep their full record capacity, so block counts
// (and the IO_MODEL invariants) are unchanged for any file of up to
// ~(block_size-32)/4 data blocks; larger files pay exactly the trailer
// blocks, written at Finish and read at open. Files with the v1 magic still
// open and read, unverified (docs/ROBUSTNESS.md, "Checksum format").
#ifndef MAXRS_IO_RECORD_IO_H_
#define MAXRS_IO_RECORD_IO_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "io/env.h"
#include "io/io_executor.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace maxrs {

namespace record_internal {
constexpr uint64_t kMagic = 0x4d61785253f11eULL;    // v1: no checksums.
constexpr uint64_t kMagicV2 = 0x4d61785253f22eULL;  // v2: CRC32C per block.

struct Header {
  uint64_t magic;
  uint64_t record_size;
  uint64_t record_count;
};

/// v2 header: the v1 fields plus a CRC over the whole header block (inline
/// checksum table included), computed with header_crc itself zeroed.
struct HeaderV2 {
  uint64_t magic;
  uint64_t record_size;
  uint64_t record_count;
  uint32_t header_crc;
  uint32_t reserved;
};
static_assert(sizeof(HeaderV2) == 32, "on-disk layout");

/// Data-block CRCs that fit in the header block after the fixed fields.
inline uint64_t InlineCrcCapacity(size_t block_size) {
  return (block_size - sizeof(HeaderV2)) / sizeof(uint32_t);
}
/// CRCs per trailer block; the last 4 bytes hold the trailer's own CRC
/// (over the preceding block_size-4 bytes), so a torn trailer is detected
/// without a second metadata location.
inline uint64_t TrailerCrcCapacity(size_t block_size) {
  return (block_size - sizeof(uint32_t)) / sizeof(uint32_t);
}
inline uint64_t DataBlocksFor(uint64_t record_count, uint64_t per_block) {
  return (record_count + per_block - 1) / per_block;
}
inline uint64_t TrailerBlocksFor(uint64_t data_blocks, size_t block_size) {
  const uint64_t inline_cap = InlineCrcCapacity(block_size);
  if (data_blocks <= inline_cap) return 0;
  const uint64_t overflow = data_blocks - inline_cap;
  return (overflow + TrailerCrcCapacity(block_size) - 1) /
         TrailerCrcCapacity(block_size);
}

/// The per-data-block checksum table of an open record file. Disabled for
/// v1 files and empty files; when enabled, crcs[i] guards data block i+1.
struct BlockChecksums {
  bool enabled = false;
  std::vector<uint32_t> crcs;
};

/// Reads and validates the header block of `file` against `record_size`,
/// storing the record count in *total and the checksum table in *sums
/// (trailer blocks, if any, are read — counted — and verified here). An
/// empty file is a valid zero-record stream. A truncated file (fewer blocks
/// than the header promises) and any checksum mismatch surface as clean
/// kCorruption. Shared by RecordReader and PrefetchingReader
/// (prefetch_reader.h) so the two readers can never diverge on what a valid
/// file is.
inline Status ReadAndValidateHeader(BlockFile& file, uint64_t record_size,
                                    uint64_t* total, BlockChecksums* sums) {
  sums->enabled = false;
  sums->crcs.clear();
  if (file.NumBlocks() == 0) {
    *total = 0;  // Empty file: treated as zero records.
    return Status::OK();
  }
  const size_t bs = file.block_size();
  std::vector<char> hbuf(bs);
  MAXRS_RETURN_IF_ERROR(file.ReadBlock(0, hbuf.data()));
  uint64_t magic;
  std::memcpy(&magic, hbuf.data(), sizeof(magic));
  if (magic == kMagic) {
    // Legacy v1 file: no checksum table; reads are unverified.
    Header header;
    std::memcpy(&header, hbuf.data(), sizeof(header));
    if (header.record_size != record_size) {
      return Status::Corruption("record size mismatch in " + file.name());
    }
    *total = header.record_count;
    return Status::OK();
  }
  if (magic != kMagicV2) {
    return Status::Corruption("bad magic in " + file.name());
  }
  HeaderV2 header;
  std::memcpy(&header, hbuf.data(), sizeof(header));
  {
    // The header CRC covers the whole block with its own field zeroed.
    std::vector<char> check(hbuf);
    const uint32_t zero = 0;
    std::memcpy(check.data() + offsetof(HeaderV2, header_crc), &zero,
                sizeof(zero));
    if (Crc32c(check.data(), check.size()) != header.header_crc) {
      return Status::Corruption("header checksum mismatch in " + file.name());
    }
  }
  if (header.record_size != record_size) {
    return Status::Corruption("record size mismatch in " + file.name());
  }
  const uint64_t per_block = bs / record_size;
  const uint64_t data_blocks = DataBlocksFor(header.record_count, per_block);
  const uint64_t trailer_blocks = TrailerBlocksFor(data_blocks, bs);
  if (file.NumBlocks() < 1 + data_blocks + trailer_blocks) {
    return Status::Corruption("truncated record file " + file.name());
  }
  sums->crcs.reserve(data_blocks);
  const uint64_t from_header =
      std::min<uint64_t>(data_blocks, InlineCrcCapacity(bs));
  sums->crcs.resize(from_header);
  if (from_header > 0) {
    std::memcpy(sums->crcs.data(), hbuf.data() + sizeof(HeaderV2),
                from_header * sizeof(uint32_t));
  }
  uint64_t remaining = data_blocks - from_header;
  for (uint64_t t = 0; remaining > 0; ++t) {
    MAXRS_RETURN_IF_ERROR(file.ReadBlock(1 + data_blocks + t, hbuf.data()));
    uint32_t self;
    std::memcpy(&self, hbuf.data() + bs - sizeof(self), sizeof(self));
    if (Crc32c(hbuf.data(), bs - sizeof(self)) != self) {
      return Status::Corruption("checksum trailer mismatch in " + file.name());
    }
    const uint64_t n = std::min<uint64_t>(remaining, TrailerCrcCapacity(bs));
    const size_t at = sums->crcs.size();
    sums->crcs.resize(at + n);
    std::memcpy(sums->crcs.data() + at, hbuf.data(), n * sizeof(uint32_t));
    remaining -= n;
  }
  sums->enabled = true;
  *total = header.record_count;
  return Status::OK();
}

/// Verifies data block `block` (1-based file index) against the table; a
/// no-op when checksums are disabled. Both readers call this on every block
/// they make current.
inline Status VerifyBlockChecksum(const BlockChecksums& sums,
                                  const BlockFile& file, uint64_t block,
                                  const char* data, size_t n) {
  if (!sums.enabled) return Status::OK();
  MAXRS_DCHECK(block >= 1 && block - 1 < sums.crcs.size());
  if (Crc32c(data, n) != sums.crcs[block - 1]) {
    return Status::Corruption("checksum mismatch in " + file.name() +
                              " block " + std::to_string(block));
  }
  return Status::OK();
}

/// Drains a sequential reader (RecordReader or PrefetchingReader — anything
/// with total/Next/final_status) into a vector. The single implementation
/// behind the ReadRecordFile* conveniences.
template <typename T, typename Reader>
Result<std::vector<T>> DrainToVector(Reader& reader) {
  std::vector<T> records;
  records.reserve(reader.total());
  T rec{};
  while (reader.Next(&rec)) records.push_back(rec);
  MAXRS_RETURN_IF_ERROR(reader.final_status());
  return {std::move(records)};
}
}  // namespace record_internal

/// Appends records of type T to a fresh file. Call Finish() to persist the
/// header; a stream that is not finished is not a valid record file.
template <typename T>
class RecordWriter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Creates the file `name` in `env` and returns a writer for it.
  /// Write-behind is opt-in (default false, matching every read_ahead
  /// option in the library): without it the writer performs the exact
  /// synchronous block schedule and never touches the executor. `executor`
  /// defaults to the shared IoExecutor::Default(), resolved lazily on the
  /// first background flush.
  static Result<RecordWriter<T>> Make(Env& env, const std::string& name,
                                      bool write_behind = false,
                                      IoExecutor* executor = nullptr) {
    auto file_or = env.Create(name);
    if (!file_or.ok()) return {file_or.status()};
    return {
        RecordWriter<T>(std::move(file_or).value(), write_behind, executor)};
  }

  explicit RecordWriter(std::unique_ptr<BlockFile> file,
                        bool write_behind = false,
                        IoExecutor* executor = nullptr)
      : file_(std::move(file)),
        per_block_(file_->block_size() / sizeof(T)),
        buf_(file_->block_size()),
        write_behind_(write_behind),
        executor_(executor) {
    MAXRS_CHECK_MSG(per_block_ > 0, "record does not fit in a block");
  }

  /// Joins any in-flight background write (its error, if any, is discarded
  /// — an unfinished stream is not a valid record file regardless) so no
  /// background task can outlive the writer's buffers.
  ~RecordWriter() { (void)JoinInflight(); }

  RecordWriter(RecordWriter&&) noexcept = default;
  RecordWriter& operator=(RecordWriter&& other) noexcept {
    if (this != &other) {
      (void)JoinInflight();
      file_ = std::move(other.file_);
      per_block_ = other.per_block_;
      buf_ = std::move(other.buf_);
      write_behind_ = other.write_behind_;
      executor_ = other.executor_;
      inflight_ = std::move(other.inflight_);
      spare_ = std::move(other.spare_);
      crcs_ = std::move(other.crcs_);
      in_buf_ = other.in_buf_;
      count_ = other.count_;
      next_block_ = other.next_block_;
      finished_ = other.finished_;
    }
    return *this;
  }

  Status Append(const T& record) {
    MAXRS_DCHECK(!finished_);
    std::memcpy(buf_.data() + in_buf_ * sizeof(T), &record, sizeof(T));
    ++in_buf_;
    ++count_;
    if (in_buf_ == per_block_) return FlushBlock();
    return Status::OK();
  }

  /// Flushes buffered records (joining any background write first), writes
  /// any checksum-trailer blocks, and writes the header synchronously.
  /// Idempotent. After an OK Finish every block of the file is persisted.
  Status Finish() {
    if (finished_) return Status::OK();
    if (in_buf_ > 0) MAXRS_RETURN_IF_ERROR(FlushBlock());
    MAXRS_RETURN_IF_ERROR(JoinInflight());
    const size_t bs = file_->block_size();
    std::vector<char> hbuf(bs, 0);
    // Overflow CRCs beyond the header's inline table land in trailer blocks
    // appended after the data, each guarding itself with a final self-CRC.
    const uint64_t inline_cap = record_internal::InlineCrcCapacity(bs);
    const uint64_t trailer_cap = record_internal::TrailerCrcCapacity(bs);
    for (uint64_t at = inline_cap; at < crcs_.size(); at += trailer_cap) {
      std::fill(hbuf.begin(), hbuf.end(), 0);
      const uint64_t n = std::min<uint64_t>(crcs_.size() - at, trailer_cap);
      std::memcpy(hbuf.data(), crcs_.data() + at, n * sizeof(uint32_t));
      const uint32_t self = Crc32c(hbuf.data(), bs - sizeof(uint32_t));
      std::memcpy(hbuf.data() + bs - sizeof(self), &self, sizeof(self));
      MAXRS_RETURN_IF_ERROR(file_->WriteBlock(next_block_, hbuf.data()));
      ++next_block_;
    }
    std::fill(hbuf.begin(), hbuf.end(), 0);
    record_internal::HeaderV2 header{record_internal::kMagicV2, sizeof(T),
                                     count_, 0, 0};
    std::memcpy(hbuf.data(), &header, sizeof(header));
    const uint64_t inline_n = std::min<uint64_t>(crcs_.size(), inline_cap);
    if (inline_n > 0) {
      std::memcpy(hbuf.data() + sizeof(header), crcs_.data(),
                  inline_n * sizeof(uint32_t));
    }
    const uint32_t header_crc = Crc32c(hbuf.data(), bs);
    std::memcpy(hbuf.data() + offsetof(record_internal::HeaderV2, header_crc),
                &header_crc, sizeof(header_crc));
    MAXRS_RETURN_IF_ERROR(file_->WriteBlock(0, hbuf.data()));
    finished_ = true;
    return Status::OK();
  }

  uint64_t count() const { return count_; }
  const std::string& name() const { return file_->name(); }

 private:
  Status FlushBlock() {
    // Data blocks start at 1; block 0 is reserved for the header. Reserve it
    // lazily (uncounted zero-fill would be wrong: header write is a real I/O
    // performed in Finish, so here we only ensure the index exists). Always
    // synchronous, and always ahead of the first background data write, so
    // the file grows strictly sequentially in both schedules.
    if (file_->NumBlocks() == 0) {
      std::vector<char> zero(file_->block_size(), 0);
      MAXRS_RETURN_IF_ERROR(file_->WriteBlock(0, zero.data()));
    }
    // The block's CRC is taken now, before the buffer can be handed to a
    // background flush: it must checksum exactly the bytes being written.
    crcs_.push_back(Crc32c(buf_.data(), buf_.size()));
    if (write_behind_) {
      // One write in flight at most: join the previous flush (surfacing its
      // parked error here, on the Append that overflowed the next block)
      // before issuing this one. Sequential issue order means the file is
      // extended in block order exactly as the synchronous schedule does.
      MAXRS_RETURN_IF_ERROR(JoinInflight());
      IssueWriteBehind();
    } else {
      MAXRS_RETURN_IF_ERROR(file_->WriteBlock(next_block_, buf_.data()));
    }
    ++next_block_;
    in_buf_ = 0;
    return Status::OK();
  }

  void IssueWriteBehind() {
    // The shared executor is resolved lazily, here — the only path gated on
    // write_behind_ — so synchronous writers never spawn its threads.
    if (executor_ == nullptr) executor_ = &IoExecutor::Default();
    std::shared_ptr<prefetch_internal::BlockFetch> fetch;
    if (spare_ != nullptr) {
      fetch = std::move(spare_);
      spare_.reset();
      fetch->done = false;
      fetch->status = Status::OK();
    } else {
      fetch = std::make_shared<prefetch_internal::BlockFetch>();
      fetch->buf.resize(file_->block_size());
    }
    // The slot takes the serialized block; the writer keeps the recycled
    // buffer for the next block — the steady state allocates nothing.
    fetch->buf.swap(buf_);
    std::shared_ptr<BlockFile> file = file_;
    const uint64_t block = next_block_;
    inflight_ = fetch;
    executor_->Submit([fetch, file, block] {
      Status st = file->WriteBlock(block, fetch->buf.data());
      std::lock_guard<std::mutex> lock(fetch->mu);
      fetch->status = std::move(st);
      fetch->done = true;
      fetch->cv.notify_all();
    });
  }

  // Waits for the in-flight write (if any), recycles its slot, and returns
  // its status — the parked-error surfacing point.
  Status JoinInflight() {
    if (inflight_ == nullptr) return Status::OK();
    std::shared_ptr<prefetch_internal::BlockFetch> fetch = std::move(inflight_);
    inflight_.reset();
    {
      std::unique_lock<std::mutex> lock(fetch->mu);
      fetch->cv.wait(lock, [&fetch] { return fetch->done; });
    }
    Status st = fetch->status;
    spare_ = std::move(fetch);
    return st;
  }

  // shared_ptr (not unique_ptr): in-flight flush tasks co-own the file so
  // the handle outlives any write the worker already started.
  std::shared_ptr<BlockFile> file_;
  size_t per_block_;
  std::vector<char> buf_;
  bool write_behind_ = false;
  // Null until the first background flush; synchronous writers never
  // resolve (or construct) the shared executor.
  IoExecutor* executor_ = nullptr;
  std::shared_ptr<prefetch_internal::BlockFetch> inflight_;
  std::shared_ptr<prefetch_internal::BlockFetch> spare_;
  // CRC32C of every data block flushed so far, in block order; persisted by
  // Finish into the header's inline table plus trailer blocks.
  std::vector<uint32_t> crcs_;
  size_t in_buf_ = 0;
  uint64_t count_ = 0;
  uint64_t next_block_ = 1;
  bool finished_ = false;
};

/// Sequentially reads records of type T from a finished record file.
template <typename T>
class RecordReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static Result<RecordReader<T>> Make(Env& env, const std::string& name) {
    auto file_or = env.Open(name);
    if (!file_or.ok()) return {file_or.status()};
    RecordReader<T> reader(std::move(file_or).value());
    MAXRS_RETURN_IF_ERROR(reader.ReadHeader());
    return {std::move(reader)};
  }

  explicit RecordReader(std::unique_ptr<BlockFile> file)
      : file_(std::move(file)),
        per_block_(file_->block_size() / sizeof(T)),
        buf_(file_->block_size()) {}

  RecordReader(RecordReader&&) noexcept = default;
  RecordReader& operator=(RecordReader&&) noexcept = default;

  /// Reads the next record into *out; returns false at end of stream OR on
  /// an I/O error. In the error case the status is sticky: callers iterating
  /// with Next() must check final_status() when the loop ends (the RocksDB
  /// iterator idiom). Alternatively use the Status-returning Read().
  bool Next(T* out) {
    Status st = Read(out);
    if (st.code() == Status::Code::kNotFound) return false;
    if (!st.ok()) {
      final_status_ = st;
      return false;
    }
    return true;
  }

  /// OK unless a Next() iteration ended early due to an I/O error.
  const Status& final_status() const { return final_status_; }

  /// Status-returning variant: NotFound signals end-of-stream; a block whose
  /// contents do not match its recorded CRC32C surfaces as kCorruption.
  Status Read(T* out) {
    if (consumed_ == total_) return Status::NotFound("end of stream");
    if (in_buf_ == buffered_) {
      MAXRS_RETURN_IF_ERROR(file_->ReadBlock(next_block_, buf_.data()));
      MAXRS_RETURN_IF_ERROR(record_internal::VerifyBlockChecksum(
          sums_, *file_, next_block_, buf_.data(), buf_.size()));
      ++next_block_;
      in_buf_ = 0;
      buffered_ = std::min<uint64_t>(per_block_, total_ - consumed_);
    }
    std::memcpy(out, buf_.data() + in_buf_ * sizeof(T), sizeof(T));
    ++in_buf_;
    ++consumed_;
    return Status::OK();
  }

  uint64_t total() const { return total_; }
  uint64_t remaining() const { return total_ - consumed_; }

 private:
  Status ReadHeader() {
    return record_internal::ReadAndValidateHeader(*file_, sizeof(T), &total_,
                                                  &sums_);
  }

  std::unique_ptr<BlockFile> file_;
  size_t per_block_;
  std::vector<char> buf_;
  record_internal::BlockChecksums sums_;
  uint64_t total_ = 0;
  uint64_t consumed_ = 0;
  size_t in_buf_ = 0;
  uint64_t buffered_ = 0;
  uint64_t next_block_ = 1;
  Status final_status_;
};

/// Convenience: writes `records` as a record file. Returns the count written.
template <typename T>
Status WriteRecordFile(Env& env, const std::string& name,
                       const std::vector<T>& records) {
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer, RecordWriter<T>::Make(env, name));
  for (const T& r : records) MAXRS_RETURN_IF_ERROR(writer.Append(r));
  return writer.Finish();
}

/// Convenience: reads a whole record file into memory (tests/small inputs).
template <typename T>
Result<std::vector<T>> ReadRecordFile(Env& env, const std::string& name) {
  MAXRS_ASSIGN_OR_RETURN(RecordReader<T> reader, RecordReader<T>::Make(env, name));
  return record_internal::DrainToVector<T>(reader);
}

}  // namespace maxrs

#endif  // MAXRS_IO_RECORD_IO_H_
