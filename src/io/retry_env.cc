#include "io/retry_env.h"

#include <thread>

namespace maxrs {
namespace {

class RetryBlockFile : public BlockFile {
 public:
  RetryBlockFile(std::unique_ptr<BlockFile> base, RetryEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status ReadBlock(uint64_t index, void* buf) override {
    Status s = base_->ReadBlock(index, buf);
    for (int attempt = 0; !s.ok() && env_->ShouldRetry(s) &&
                          attempt < env_->policy().max_retries;
         ++attempt) {
      env_->OnRetry(attempt);
      env_->stats().RecordReadRetry(1);
      s = base_->ReadBlock(index, buf);
    }
    return s;
  }

  Status WriteBlock(uint64_t index, const void* buf) override {
    Status s = base_->WriteBlock(index, buf);
    for (int attempt = 0; !s.ok() && env_->ShouldRetry(s) &&
                          attempt < env_->policy().max_retries;
         ++attempt) {
      env_->OnRetry(attempt);
      env_->stats().RecordWriteRetry(1);
      s = base_->WriteBlock(index, buf);
    }
    return s;
  }

  uint64_t NumBlocks() const override { return base_->NumBlocks(); }
  Status Truncate(uint64_t num_blocks) override {
    return base_->Truncate(num_blocks);
  }
  size_t block_size() const override { return base_->block_size(); }
  const std::string& name() const override { return base_->name(); }

 private:
  std::unique_ptr<BlockFile> base_;
  RetryEnv* env_;
};

}  // namespace

void RetryEnv::OnRetry(int attempt) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (policy_.initial_backoff.count() <= 0) return;
  auto backoff = std::chrono::duration_cast<std::chrono::microseconds>(
      policy_.initial_backoff);
  for (int i = 0; i < attempt; ++i) {
    backoff = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * policy_.backoff_multiplier));
  }
  std::this_thread::sleep_for(backoff);
}

Result<std::unique_ptr<BlockFile>> RetryEnv::Create(const std::string& name) {
  auto base_or = base_->Create(name);
  for (int attempt = 0; !base_or.ok() && ShouldRetry(base_or.status()) &&
                        attempt < policy_.max_retries;
       ++attempt) {
    OnRetry(attempt);
    base_or = base_->Create(name);
  }
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new RetryBlockFile(std::move(base_or).value(), this))};
}

Result<std::unique_ptr<BlockFile>> RetryEnv::Open(const std::string& name) {
  auto base_or = base_->Open(name);
  for (int attempt = 0; !base_or.ok() && ShouldRetry(base_or.status()) &&
                        attempt < policy_.max_retries;
       ++attempt) {
    OnRetry(attempt);
    base_or = base_->Open(name);
  }
  if (!base_or.ok()) return base_or;
  return {std::unique_ptr<BlockFile>(
      new RetryBlockFile(std::move(base_or).value(), this))};
}

}  // namespace maxrs
