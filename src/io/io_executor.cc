#include "io/io_executor.h"

#include <algorithm>
#include <utility>

namespace maxrs {

IoExecutor::IoExecutor(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void IoExecutor::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(fn));
      lock.unlock();
      cv_.notify_one();
      return;
    }
  }
  // Queued work after stop would never drain; running it inline preserves
  // the "every completion slot is eventually signalled" contract during
  // shutdown races (only reachable from static-destruction order).
  fn();
}

void IoExecutor::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

IoExecutor& IoExecutor::Default() {
  // Sized to the machine, not per stream: enough workers that a parallel
  // phase (num_threads merge groups, each with a transfer in flight) is not
  // throttled below the synchronous path's inline parallelism, capped
  // because transfers are short and beyond the disk's queue depth extra
  // threads only contend. Excess transfers queue FIFO — a delayed overlap,
  // never a correctness issue. Function-local static: constructed on first
  // use, drained and joined at process exit (streams are function-scoped,
  // so they are gone by then; a racing Submit degrades to an inline
  // transfer).
  static IoExecutor executor(std::max(
      2u, std::min(8u, std::thread::hardware_concurrency())));
  return executor;
}

}  // namespace maxrs
