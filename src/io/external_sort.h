// External k-way merge sort: the textbook O((N/B) log_{M/B}(N/B)) algorithm.
// Run formation sorts M-byte chunks in memory; merging proceeds with fan-in
// M/B - 1 (one block of buffer per input run plus one output block) until a
// single sorted file remains. Both ExactMaxRS pre-sorts (by y for the piece
// file, by x for the edge file) and the baselines' event sorts use this.
#ifndef MAXRS_IO_EXTERNAL_SORT_H_
#define MAXRS_IO_EXTERNAL_SORT_H_

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "io/record_io.h"
#include "io/temp_manager.h"
#include "util/check.h"
#include "util/status.h"

namespace maxrs {

struct ExternalSortOptions {
  /// Memory budget M in bytes: bounds both the in-memory run size and the
  /// merge fan-in (M/B - 1 input buffers).
  size_t memory_bytes = 1 << 20;
};

namespace sort_internal {

/// Statistics of one sort execution, exposed for the complexity tests.
struct SortRunInfo {
  uint64_t initial_runs = 0;
  uint64_t merge_passes = 0;
};

}  // namespace sort_internal

template <typename T, typename Less>
Status MergeRuns(Env& env, const std::vector<std::string>& run_names,
                 const std::string& output_name, Less less);

template <typename T>
Status CopyRecordFile(Env& env, const std::string& from, const std::string& to);

/// Sorts the record file `input_name` into `output_name` using Less.
/// The input file is left untouched. `info`, if non-null, receives run/pass
/// counts for complexity verification.
template <typename T, typename Less>
Status ExternalSort(Env& env, const std::string& input_name,
                    const std::string& output_name, Less less,
                    const ExternalSortOptions& options = {},
                    sort_internal::SortRunInfo* info = nullptr) {
  TempFileManager temps(env, "sort_tmp");
  const size_t block_size = env.block_size();
  // Keep at least two records' worth of run memory so progress is guaranteed.
  const size_t run_records =
      std::max<size_t>(2, options.memory_bytes / sizeof(T));
  const size_t fan_in = std::max<size_t>(2, options.memory_bytes / block_size - 1);

  // --- Run formation ---
  std::vector<std::string> runs;
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<T> reader,
                           RecordReader<T>::Make(env, input_name));
    std::vector<T> chunk;
    chunk.reserve(std::min<uint64_t>(run_records, reader.total()));
    T rec{};
    bool more = true;
    while (more) {
      chunk.clear();
      while (chunk.size() < run_records) {
        Status st = reader.Read(&rec);
        if (st.code() == Status::Code::kNotFound) {
          more = false;
          break;
        }
        MAXRS_RETURN_IF_ERROR(st);
        chunk.push_back(rec);
      }
      if (chunk.empty()) break;
      std::stable_sort(chunk.begin(), chunk.end(), less);
      std::string run_name = temps.NewName("run");
      MAXRS_RETURN_IF_ERROR(WriteRecordFile(env, run_name, chunk));
      runs.push_back(std::move(run_name));
    }
  }
  if (info != nullptr) info->initial_runs = runs.size();

  if (runs.empty()) {
    // Empty input: emit an empty (but valid) output file.
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                           RecordWriter<T>::Make(env, output_name));
    return writer.Finish();
  }

  // --- Merge passes ---
  uint64_t passes = 0;
  while (runs.size() > 1) {
    ++passes;
    std::vector<std::string> next_runs;
    for (size_t group = 0; group < runs.size(); group += fan_in) {
      size_t end = std::min(runs.size(), group + fan_in);
      std::vector<std::string> group_runs(runs.begin() + group, runs.begin() + end);
      const bool is_final = (runs.size() <= fan_in);
      std::string out_name = is_final ? output_name : temps.NewName("merge");
      MAXRS_RETURN_IF_ERROR(
          MergeRuns<T>(env, group_runs, out_name, less));
      for (const std::string& r : group_runs) temps.Release(r);
      next_runs.push_back(std::move(out_name));
    }
    runs = std::move(next_runs);
  }

  if (info != nullptr) info->merge_passes = passes;

  // Single run and no merge happened: rename by copy (one linear pass).
  if (passes == 0) {
    MAXRS_RETURN_IF_ERROR(CopyRecordFile<T>(env, runs[0], output_name));
    temps.Release(runs[0]);
  }
  return Status::OK();
}

/// Merges already-sorted record files into `output_name` (k-way, one block
/// of memory per input).
template <typename T, typename Less>
Status MergeRuns(Env& env, const std::vector<std::string>& run_names,
                 const std::string& output_name, Less less) {
  struct Source {
    RecordReader<T> reader;
    T head;
  };
  std::vector<Source> sources;
  sources.reserve(run_names.size());
  for (const std::string& name : run_names) {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<T> reader, RecordReader<T>::Make(env, name));
    Source src{std::move(reader), T{}};
    Status st = src.reader.Read(&src.head);
    if (st.code() == Status::Code::kNotFound) continue;  // empty run
    MAXRS_RETURN_IF_ERROR(st);
    sources.push_back(std::move(src));
  }

  // Index-based heap over sources; stable w.r.t. source order for equal keys
  // (ties broken by source index, preserving run formation stability).
  auto cmp = [&](size_t a, size_t b) {
    if (less(sources[b].head, sources[a].head)) return true;
    if (less(sources[a].head, sources[b].head)) return false;
    return a > b;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < sources.size(); ++i) heap.push(i);

  MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                         RecordWriter<T>::Make(env, output_name));
  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    MAXRS_RETURN_IF_ERROR(writer.Append(sources[i].head));
    Status st = sources[i].reader.Read(&sources[i].head);
    if (st.code() == Status::Code::kNotFound) continue;
    MAXRS_RETURN_IF_ERROR(st);
    heap.push(i);
  }
  return writer.Finish();
}

/// Copies a record file (one linear pass).
template <typename T>
Status CopyRecordFile(Env& env, const std::string& from, const std::string& to) {
  MAXRS_ASSIGN_OR_RETURN(RecordReader<T> reader, RecordReader<T>::Make(env, from));
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer, RecordWriter<T>::Make(env, to));
  T rec{};
  while (true) {
    Status st = reader.Read(&rec);
    if (st.code() == Status::Code::kNotFound) break;
    MAXRS_RETURN_IF_ERROR(st);
    MAXRS_RETURN_IF_ERROR(writer.Append(rec));
  }
  return writer.Finish();
}

}  // namespace maxrs

#endif  // MAXRS_IO_EXTERNAL_SORT_H_
