// External k-way merge sort: the textbook O((N/B) log_{M/B}(N/B)) algorithm.
// Run formation sorts M-byte chunks in memory; merging proceeds with fan-in
// M/B - 1 (one block of buffer per input run plus one output block) until a
// single sorted file remains. Both ExactMaxRS pre-sorts (by y for the piece
// file, by x for the edge file) and the baselines' event sorts use this.
//
// Parallelism: with ExternalSortOptions::pool set, the in-memory sorts and
// run writes of up to num_threads chunks overlap, and the independent merge
// groups of one pass run concurrently. Chunk boundaries depend only on the
// memory budget and runs are merged with a fixed tie-break, so the output
// file, the run/pass counts, and the total I/O are identical for any thread
// count. Transient memory grows to ~num_threads x M during a parallel phase.
//
// Determinism: run formation uses std::sort (not stable_sort). Supply a
// comparator that is a *total* order (break ties on every field) and the
// output is one canonical sequence; with a partial order the output is still
// deterministic for a given build, but records with equal keys may not keep
// their input order.
#ifndef MAXRS_IO_EXTERNAL_SORT_H_
#define MAXRS_IO_EXTERNAL_SORT_H_

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "io/prefetch_reader.h"
#include "io/record_io.h"
#include "io/temp_manager.h"
#include "util/check.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace maxrs {

struct ExternalSortOptions {
  /// Memory budget M in bytes: bounds both the in-memory run size and the
  /// merge fan-in (M/B - 1 input buffers).
  size_t memory_bytes = 1 << 20;

  /// Optional worker pool; null runs fully serial. See the header comment
  /// for the parallel execution contract.
  ThreadPool* pool = nullptr;

  /// Double-buffered read-ahead (io/prefetch_reader.h) on every sequential
  /// input stream: the run-formation scan and each merge fan-in buffer.
  /// Off by default. Block counts and output are bit-identical either way;
  /// only the overlap of fetch and compute changes.
  bool read_ahead = false;
};

namespace sort_internal {

/// Statistics of one sort execution, exposed for the complexity tests.
struct SortRunInfo {
  uint64_t initial_runs = 0;
  uint64_t merge_passes = 0;
};

}  // namespace sort_internal

template <typename T, typename Less>
Status MergeRuns(Env& env, const std::vector<std::string>& run_names,
                 const std::string& output_name, Less less,
                 bool read_ahead = false);

template <typename T>
Status CopyRecordFile(Env& env, const std::string& from, const std::string& to,
                      bool read_ahead = false);

template <typename T, typename Less>
Status MergeSortedParts(Env& env, TempFileManager& temps,
                        std::vector<std::string> parts,
                        const std::string& output_name, Less less,
                        size_t fan_in, ThreadPool* pool = nullptr,
                        uint64_t* passes_out = nullptr,
                        bool read_ahead = false);

/// Sorts the record file `input_name` into `output_name` using Less.
/// The input file is left untouched. `info`, if non-null, receives run/pass
/// counts for complexity verification.
template <typename T, typename Less>
Status ExternalSort(Env& env, const std::string& input_name,
                    const std::string& output_name, Less less,
                    const ExternalSortOptions& options = {},
                    sort_internal::SortRunInfo* info = nullptr) {
  TempFileManager temps(env, "sort_tmp");
  const size_t block_size = env.block_size();
  // Keep at least two records' worth of run memory so progress is guaranteed.
  const size_t run_records =
      std::max<size_t>(2, options.memory_bytes / sizeof(T));
  const size_t fan_in = std::max<size_t>(2, options.memory_bytes / block_size - 1);
  ThreadPool* pool = options.pool;
  // Chunks read ahead per wave: bounds transient memory at wave * M.
  const size_t wave = pool != nullptr ? pool->num_threads() : 1;

  // --- Run formation ---
  // The reader is one serial stream; chunks are cut every `run_records`
  // records regardless of thread count, then each chunk of a wave is sorted
  // and written to its (pre-allocated) run file on the pool.
  std::vector<std::string> runs;
  {
    MAXRS_ASSIGN_OR_RETURN(
        PrefetchingReader<T> reader,
        PrefetchingReader<T>::Make(env, input_name, options.read_ahead));
    // Slots are pre-sized so a chunk's sort/write task can start the moment
    // the chunk is cut — reading chunk i+1 overlaps sorting chunk i —
    // without later fills invalidating references held by tasks. The
    // buffers live across waves (clear() keeps capacity, so the hot loop
    // does not reallocate M bytes per run), and each wave's group is
    // declared after them: on an early error return the group joins
    // (TaskGroup destructor) before the slots are destroyed.
    std::vector<std::vector<T>> chunks(wave);
    std::vector<std::string> names(wave);
    bool more = true;
    while (more) {
      size_t filled = 0;
      TaskGroup group(pool);
      for (size_t i = 0; i < wave && more; ++i) {
        std::vector<T>& chunk = chunks[i];
        chunk.clear();
        chunk.reserve(std::min<uint64_t>(run_records, reader.remaining()));
        T rec{};
        while (chunk.size() < run_records) {
          Status st = reader.Read(&rec);
          if (st.code() == Status::Code::kNotFound) {
            more = false;
            break;
          }
          MAXRS_RETURN_IF_ERROR(st);
          chunk.push_back(rec);
        }
        if (chunk.empty()) break;
        names[i] = temps.NewName("run");
        ++filled;
        group.Run([&env, &chunk, &name = names[i], &less]() -> Status {
          std::sort(chunk.begin(), chunk.end(), less);
          return WriteRecordFile(env, name, chunk);
        });
      }
      MAXRS_RETURN_IF_ERROR(group.Wait());
      for (size_t i = 0; i < filled; ++i) runs.push_back(std::move(names[i]));
    }
  }
  if (info != nullptr) info->initial_runs = runs.size();

  if (runs.empty()) {
    // Empty input: emit an empty (but valid) output file.
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                           RecordWriter<T>::Make(env, output_name));
    return writer.Finish();
  }

  // --- Merge passes --- (the shared fan-in-bounded multi-pass merge; the
  // serve layer's per-query shard merge reuses the same primitive)
  uint64_t passes = 0;
  MAXRS_RETURN_IF_ERROR(MergeSortedParts<T>(env, temps, std::move(runs),
                                            output_name, less, fan_in, pool,
                                            &passes, options.read_ahead));
  if (info != nullptr) info->merge_passes = passes;
  return Status::OK();
}

/// Merges already-sorted part files into `output_name` holding at most
/// `fan_in` input blocks (+1 output block) at once: one k-way merge when
/// the parts fit the fan-in, multiple passes otherwise — the merge phase
/// of ExternalSort, exposed for any caller with pre-sorted parts (e.g. the
/// serve layer's per-shard streams). The groups of one pass have disjoint
/// inputs and distinct outputs, so with a pool they merge concurrently;
/// passes themselves are sequential. Consumes (releases) the part files;
/// a single part degenerates to one copy pass. With a total-order
/// comparator the output is canonical for any fan_in/grouping.
/// `passes_out`, if non-null, receives the number of merge passes.
template <typename T, typename Less>
Status MergeSortedParts(Env& env, TempFileManager& temps,
                        std::vector<std::string> parts,
                        const std::string& output_name, Less less,
                        size_t fan_in, ThreadPool* pool,
                        uint64_t* passes_out, bool read_ahead) {
  MAXRS_CHECK_MSG(!parts.empty(), "MergeSortedParts needs at least one part");
  if (fan_in < 2) fan_in = 2;
  uint64_t passes = 0;
  while (parts.size() > 1) {
    ++passes;
    const bool is_final = parts.size() <= fan_in;
    std::vector<std::vector<std::string>> groups;
    std::vector<std::string> outs;
    for (size_t start = 0; start < parts.size(); start += fan_in) {
      const size_t end = std::min(parts.size(), start + fan_in);
      groups.emplace_back(parts.begin() + start, parts.begin() + end);
      outs.push_back(is_final ? output_name : temps.NewName("merge"));
    }
    TaskGroup group(pool);
    for (size_t g = 0; g < groups.size(); ++g) {
      group.Run([&env, &groups, &outs, &less, g, read_ahead] {
        return MergeRuns<T>(env, groups[g], outs[g], less, read_ahead);
      });
    }
    MAXRS_RETURN_IF_ERROR(group.Wait());
    for (const std::vector<std::string>& grp : groups) {
      for (const std::string& r : grp) temps.Release(r);
    }
    parts = std::move(outs);
  }

  // Single part and no merge happened: rename by copy (one linear pass).
  if (passes == 0) {
    MAXRS_RETURN_IF_ERROR(
        CopyRecordFile<T>(env, parts[0], output_name, read_ahead));
    temps.Release(parts[0]);
  }
  if (passes_out != nullptr) *passes_out = passes;
  return Status::OK();
}

/// Merges already-sorted record files into `output_name` (k-way, one block
/// of memory per input; with `read_ahead`, each input double-buffers its
/// next block via the shared IoExecutor).
template <typename T, typename Less>
Status MergeRuns(Env& env, const std::vector<std::string>& run_names,
                 const std::string& output_name, Less less, bool read_ahead) {
  struct Source {
    PrefetchingReader<T> reader;
    T head;
  };
  std::vector<Source> sources;
  sources.reserve(run_names.size());
  for (const std::string& name : run_names) {
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<T> reader,
                           PrefetchingReader<T>::Make(env, name, read_ahead));
    Source src{std::move(reader), T{}};
    Status st = src.reader.Read(&src.head);
    if (st.code() == Status::Code::kNotFound) continue;  // empty run
    MAXRS_RETURN_IF_ERROR(st);
    sources.push_back(std::move(src));
  }

  // Index-based heap over sources; ties broken by source index, so the merge
  // order is a pure function of the run contents (with a total-order
  // comparator, tied records are byte-identical and the point is moot).
  auto cmp = [&](size_t a, size_t b) {
    if (less(sources[b].head, sources[a].head)) return true;
    if (less(sources[a].head, sources[b].head)) return false;
    return a > b;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < sources.size(); ++i) heap.push(i);

  MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                         RecordWriter<T>::Make(env, output_name));
  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    MAXRS_RETURN_IF_ERROR(writer.Append(sources[i].head));
    Status st = sources[i].reader.Read(&sources[i].head);
    if (st.code() == Status::Code::kNotFound) continue;
    MAXRS_RETURN_IF_ERROR(st);
    heap.push(i);
  }
  return writer.Finish();
}

/// Copies a record file (one linear pass).
template <typename T>
Status CopyRecordFile(Env& env, const std::string& from, const std::string& to,
                      bool read_ahead) {
  MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<T> reader,
                         PrefetchingReader<T>::Make(env, from, read_ahead));
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer, RecordWriter<T>::Make(env, to));
  T rec{};
  while (true) {
    Status st = reader.Read(&rec);
    if (st.code() == Status::Code::kNotFound) break;
    MAXRS_RETURN_IF_ERROR(st);
    MAXRS_RETURN_IF_ERROR(writer.Append(rec));
  }
  return writer.Finish();
}

}  // namespace maxrs

#endif  // MAXRS_IO_EXTERNAL_SORT_H_
