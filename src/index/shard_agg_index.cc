#include "index/shard_agg_index.h"

#include <cmath>
#include <utility>

#include "io/record_io.h"

namespace maxrs {

ShardAggIndex::ShardAggIndex(std::vector<ShardAgg> shards)
    : shards_(std::move(shards)) {
  pruning_safe_ = true;
  for (const ShardAgg& s : shards_) {
    total_count_ += s.count;
    total_weight_ += s.weight;
    // Empty shards are vacuously safe: their +inf min_weight is a
    // placeholder, not a weight.
    if (s.count > 0 &&
        (!std::isfinite(s.weight) || !(s.min_weight >= 0.0))) {
      pruning_safe_ = false;
    }
  }
  if (!std::isfinite(total_weight_)) pruning_safe_ = false;
  if (!shards_.empty()) {
    nodes_.resize(4 * shards_.size());
    BuildNode(1, 0, shards_.size());
  }
}

void ShardAggIndex::BuildNode(size_t node, size_t lo, size_t hi) {
  Node& n = nodes_[node];
  if (hi - lo == 1) {
    const ShardAgg& s = shards_[lo];
    n.weight = s.weight;
    n.x_lo = s.x_lo;
    n.x_hi = s.x_hi;
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  BuildNode(2 * node, lo, mid);
  BuildNode(2 * node + 1, mid, hi);
  n.weight = nodes_[2 * node].weight + nodes_[2 * node + 1].weight;
  n.x_lo = std::min(nodes_[2 * node].x_lo, nodes_[2 * node + 1].x_lo);
  n.x_hi = std::max(nodes_[2 * node].x_hi, nodes_[2 * node + 1].x_hi);
}

double ShardAggIndex::WindowWeight(double win_lo, double win_hi) const {
  if (shards_.empty()) return 0.0;
  return DescendWindow(1, 0, shards_.size(), win_lo, win_hi);
}

double ShardAggIndex::DescendWindow(size_t node, size_t lo, size_t hi,
                                    double win_lo, double win_hi) const {
  const Node& n = nodes_[node];
  // Disjoint node (or all-empty subtree, whose inverted MBR compares
  // disjoint with any finite window): contributes nothing.
  if (n.x_lo > win_hi || n.x_hi < win_lo) return 0.0;
  // Node fully inside the window: its precomputed aggregate, no descent.
  if (win_lo <= n.x_lo && n.x_hi <= win_hi) return n.weight;
  if (hi - lo == 1) {
    // Straddling leaf: the shard intersects the window, so all of its
    // weight may be reachable from placements in the window.
    return n.weight;
  }
  const size_t mid = lo + (hi - lo) / 2;
  return DescendWindow(2 * node, lo, mid, win_lo, win_hi) +
         DescendWindow(2 * node + 1, mid, hi, win_lo, win_hi);
}

Status ShardAggIndex::Write(Env& env, const std::string& name,
                            const std::vector<ShardAgg>& shards) {
  std::vector<ShardAggRecord> records;
  records.reserve(shards.size() + 1);
  ShardAggRecord header;
  header.kind = 0;
  header.index = kShardAggFormatVersion;
  header.count = shards.size();
  ShardAgg global;
  for (const ShardAgg& s : shards) {
    global.count += s.count;
    global.weight += s.weight;
    global.min_weight = std::min(global.min_weight, s.min_weight);
    global.x_lo = std::min(global.x_lo, s.x_lo);
    global.x_hi = std::max(global.x_hi, s.x_hi);
    global.y_lo = std::min(global.y_lo, s.y_lo);
    global.y_hi = std::max(global.y_hi, s.y_hi);
  }
  header.weight = global.weight;
  header.min_weight = global.min_weight;
  header.x_lo = global.x_lo;
  header.x_hi = global.x_hi;
  header.y_lo = global.y_lo;
  header.y_hi = global.y_hi;
  records.push_back(header);
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardAgg& s = shards[i];
    ShardAggRecord r;
    r.kind = 1;
    r.index = i;
    r.count = s.count;
    r.weight = s.weight;
    r.min_weight = s.min_weight;
    r.x_lo = s.x_lo;
    r.x_hi = s.x_hi;
    r.y_lo = s.y_lo;
    r.y_hi = s.y_hi;
    records.push_back(r);
  }
  return WriteRecordFile(env, name, records);
}

Result<ShardAggIndex> ShardAggIndex::Open(Env& env, const std::string& name) {
  MAXRS_ASSIGN_OR_RETURN(std::vector<ShardAggRecord> records,
                         ReadRecordFile<ShardAggRecord>(env, name));
  if (records.empty() || records[0].kind != 0) {
    return {Status::Corruption("aggregate index: missing header record")};
  }
  const ShardAggRecord& header = records[0];
  if (header.index != kShardAggFormatVersion) {
    return {Status::Corruption("aggregate index: unknown format version " +
                               std::to_string(header.index))};
  }
  if (records.size() != header.count + 1) {
    return {Status::Corruption(
        "aggregate index: header names " + std::to_string(header.count) +
        " shards but the file holds " + std::to_string(records.size() - 1))};
  }
  std::vector<ShardAgg> shards;
  shards.reserve(header.count);
  for (size_t i = 1; i < records.size(); ++i) {
    const ShardAggRecord& r = records[i];
    if (r.kind != 1 || r.index != i - 1) {
      return {Status::Corruption(
          "aggregate index: malformed shard record at position " +
          std::to_string(i))};
    }
    ShardAgg s;
    s.count = r.count;
    s.weight = r.weight;
    s.min_weight = r.min_weight;
    s.x_lo = r.x_lo;
    s.x_hi = r.x_hi;
    s.y_lo = r.y_lo;
    s.y_hi = r.y_hi;
    if (s.count > 0 && !(s.x_lo <= s.x_hi && s.y_lo <= s.y_hi)) {
      return {Status::Corruption(
          "aggregate index: inverted MBR on non-empty shard " +
          std::to_string(i - 1))};
    }
    shards.push_back(s);
  }
  return {ShardAggIndex(std::move(shards))};
}

}  // namespace maxrs
