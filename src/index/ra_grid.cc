#include "index/ra_grid.h"

#include "util/check.h"

namespace maxrs {

Result<RaGridResult> RaGridMaxRS(const AggRTree& tree, BufferPool& pool,
                                 const Rect& domain, double rect_w,
                                 double rect_h, uint32_t grid_size) {
  if (grid_size == 0 || domain.empty()) {
    return {Status::InvalidArgument("grid_size and domain must be non-empty")};
  }
  RaGridResult result;
  const double step_x = domain.width() / grid_size;
  const double step_y = domain.height() / grid_size;
  for (uint32_t gy = 0; gy < grid_size; ++gy) {
    for (uint32_t gx = 0; gx < grid_size; ++gx) {
      const Point center{domain.x_lo + (gx + 0.5) * step_x,
                         domain.y_lo + (gy + 0.5) * step_y};
      const Rect query = Rect::Centered(center, rect_w, rect_h);
      MAXRS_ASSIGN_OR_RETURN(double sum,
                             tree.RangeSum(pool, query, &result.traversal));
      ++result.queries;
      if (sum > result.total_weight) {
        result.total_weight = sum;
        result.location = center;
      }
    }
  }
  return {std::move(result)};
}

}  // namespace maxrs
