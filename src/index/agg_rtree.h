// External aggregate R-tree: the access method the paper's Related Work
// (Sec. 3) describes for range-aggregate (RA) queries — "a pre-calculated
// value for each entry in the index, which usually indicates the aggregation
// of the region specified by the entry" [5, 12, 13, 15, 17].
//
// Bulk-loaded with Sort-Tile-Recursive packing (x-sorted into vertical
// tiles, y-sorted within a tile), block-sized nodes, per-entry MBR + SUM
// aggregate. RangeSum answers a rectangle-sum query in O(log_B N + T/B)
// node accesses through a BufferPool: entries fully inside the query
// contribute their aggregate without descending.
//
// This substrate exists to reproduce the paper's argument that MaxRS cannot
// be solved efficiently by RA queries ("a naive solution ... is to issue an
// infinite number of RA queries, which is prohibitively expensive"): see
// ra_grid.h and bench_ablation_ra_grid.
#ifndef MAXRS_INDEX_AGG_RTREE_H_
#define MAXRS_INDEX_AGG_RTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "util/status.h"

namespace maxrs {

struct RangeSumStats {
  uint64_t nodes_visited = 0;
  uint64_t entries_aggregated = 0;  ///< entries answered from their aggregate
  uint64_t objects_scanned = 0;     ///< leaf objects individually tested
};

class AggRTree {
 public:
  /// Bulk-loads the tree over `objects` into the block file `tree_file`
  /// (STR packing; build writes each node once, sequentially). The object
  /// vector is reordered in place during packing.
  static Result<AggRTree> BulkLoad(Env& env, const std::string& tree_file,
                                   std::vector<SpatialObject> objects);

  /// Re-opens a previously bulk-loaded tree.
  static Result<AggRTree> Open(Env& env, const std::string& tree_file);

  /// Total weight of objects covered by `query` (half-open cover semantics,
  /// consistent with the rest of the library). Node accesses go through
  /// `pool`; `stats`, if non-null, accumulates traversal counters.
  Result<double> RangeSum(BufferPool& pool, const Rect& query,
                          RangeSumStats* stats = nullptr) const;

  /// Total weight of the whole dataset (root aggregate; O(1) node access).
  Result<double> TotalSum(BufferPool& pool) const;

  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t height() const { return height_; }
  uint64_t num_objects() const { return num_objects_; }
  bool empty() const { return file_ == nullptr; }

 private:
  AggRTree() = default;

  Status SumRec(BufferPool& pool, uint64_t block, const Rect& query,
                double* sum, RangeSumStats* stats) const;

  std::unique_ptr<BlockFile> file_;
  uint64_t root_block_ = 0;
  uint64_t num_blocks_ = 0;
  uint64_t height_ = 0;
  uint64_t num_objects_ = 0;
};

}  // namespace maxrs

#endif  // MAXRS_INDEX_AGG_RTREE_H_
