// Aggregate index over a served dataset's x-slab shard grid: per-shard MBR,
// object count, total weight, and minimum weight, combined bottom-up into an
// implicit binary tree of per-node MBR + weight aggregates — the aRB-tree
// idea of the paper's Related Work (a pre-calculated aggregate per index
// entry) specialized to the shard grid, in the spirit of agg_rtree.h but
// tiny enough to live in memory for the server's lifetime.
//
// The serve layer uses it two ways (docs/ARCHITECTURE.md, "Index-pruned
// serving"):
//   - WindowWeight(lo, hi) is a sound upper bound on the weight any rect
//     placement inside an x-window can cover: every object that could
//     contribute lives in a shard whose MBR intersects the window, and
//     weights are non-negative when pruning_safe(). Shards whose bound
//     cannot beat the best weight already found are never routed or solved.
//   - The per-shard aggregates are persisted next to the manifest
//     (DatasetHandle, format v3) and validated on open; a corrupt or
//     missing index degrades the server to un-pruned serving — never a
//     wrong answer.
//
// Upper-bound comparisons are exact when weights are exactly summable
// (integers); with arbitrary reals the tree sum and the sweep sum may
// differ in the last ulps — the same caveat the per-shard serve mode
// already documents for bit-identity.
#ifndef MAXRS_INDEX_SHARD_AGG_INDEX_H_
#define MAXRS_INDEX_SHARD_AGG_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "io/env.h"
#include "util/status.h"

namespace maxrs {

/// Aggregates of one x-slab shard. An empty shard has count 0, weight 0,
/// min_weight +inf and an inverted MBR (never intersects anything).
struct ShardAgg {
  uint64_t count = 0;
  double weight = 0.0;
  double min_weight = kInf;
  double x_lo = kInf;
  double x_hi = -kInf;
  double y_lo = kInf;
  double y_hi = -kInf;

  void Add(const SpatialObject& o) {
    ++count;
    weight += o.w;
    min_weight = std::min(min_weight, o.w);
    x_lo = std::min(x_lo, o.x);
    x_hi = std::max(x_hi, o.x);
    y_lo = std::min(y_lo, o.y);
    y_hi = std::max(y_hi, o.y);
  }
};

/// On-disk record of the aggregate index file (record_io v2 framing, so
/// torn or bit-flipped blocks surface as kCorruption before any field is
/// trusted). kind 0 = header (index = format version, count = shard count,
/// aggregates = whole dataset); kind 1 = one shard, ascending `index`.
struct ShardAggRecord {
  uint64_t kind = 0;
  uint64_t index = 0;
  uint64_t count = 0;
  double weight = 0.0;
  double min_weight = 0.0;
  double x_lo = 0.0;
  double x_hi = 0.0;
  double y_lo = 0.0;
  double y_hi = 0.0;
};

inline constexpr uint64_t kShardAggFormatVersion = 1;

class ShardAggIndex {
 public:
  /// Builds the in-memory aggregate tree over per-shard aggregates (one
  /// entry per shard, shard order = x-slab order).
  explicit ShardAggIndex(std::vector<ShardAgg> shards);

  /// Persists `shards` as an index file. Written before the manifest that
  /// references it, so a published manifest never names a missing index.
  static Status Write(Env& env, const std::string& name,
                      const std::vector<ShardAgg>& shards);

  /// Opens and validates an index file: header kind/version, leaf count and
  /// ordering. Structural damage — short file, bad kinds, out-of-order
  /// leaves — returns kCorruption (the record layer already turns torn
  /// blocks into kCorruption via per-block CRCs).
  static Result<ShardAggIndex> Open(Env& env, const std::string& name);

  size_t num_shards() const { return shards_.size(); }
  const ShardAgg& shard(size_t i) const { return shards_[i]; }
  uint64_t total_count() const { return total_count_; }
  double total_weight() const { return total_weight_; }

  /// Whether weight upper bounds are sound for branch-and-bound: every
  /// weight finite and non-negative (a negative weight lets a skipped
  /// object *raise* another placement's sum, breaking UB monotonicity).
  bool pruning_safe() const { return pruning_safe_; }

  /// Total weight of all shards whose x-MBR (closed) intersects the closed
  /// window [lo, hi] — an upper bound on the weight coverable by any rect
  /// placement whose x-extent is [lo, hi]. Descends the aggregate tree:
  /// nodes fully inside contribute their precomputed sum, disjoint nodes
  /// contribute nothing, straddling nodes recurse (deterministic grouping,
  /// left to right).
  double WindowWeight(double lo, double hi) const;

  /// Whether shard `i`'s x-MBR (closed) intersects the closed [lo, hi].
  bool Intersects(size_t i, double lo, double hi) const {
    const ShardAgg& s = shards_[i];
    return s.x_lo <= hi && lo <= s.x_hi;
  }

 private:
  struct Node {
    double weight = 0.0;
    double x_lo = kInf;
    double x_hi = -kInf;
  };

  void BuildNode(size_t node, size_t lo, size_t hi);
  double DescendWindow(size_t node, size_t lo, size_t hi, double win_lo,
                       double win_hi) const;

  std::vector<ShardAgg> shards_;
  std::vector<Node> nodes_;  // implicit binary tree, 1-based heap layout
  uint64_t total_count_ = 0;
  double total_weight_ = 0.0;
  bool pruning_safe_ = false;
};

}  // namespace maxrs

#endif  // MAXRS_INDEX_SHARD_AGG_INDEX_H_
