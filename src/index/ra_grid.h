// MaxRS via RA queries on a candidate grid — the strawman the paper
// dismisses in Sec. 3: "A naive solution to the MaxRS problem is to issue an
// infinite number of RA queries, which is prohibitively expensive."
//
// This is the finite version of that idea: evaluate the range sum of the
// query rectangle centered at each point of a G x G grid over the data
// bounding box, using an aggregate R-tree, and return the best candidate.
// It is (a) approximate — the optimum can fall between grid points — and
// (b) expensive — G^2 RA queries, each O(log_B N + boundary leaves) I/Os.
// bench_ablation_ra_grid quantifies both against ExactMaxRS, turning the
// paper's remark into a measured experiment.
#ifndef MAXRS_INDEX_RA_GRID_H_
#define MAXRS_INDEX_RA_GRID_H_

#include <cstdint>

#include "geom/geometry.h"
#include "index/agg_rtree.h"
#include "io/buffer_pool.h"
#include "util/status.h"

namespace maxrs {

struct RaGridResult {
  Point location;
  double total_weight = 0.0;  ///< best grid candidate (<= true optimum)
  uint64_t queries = 0;
  RangeSumStats traversal;
};

/// Evaluates rect_w x rect_h placements centered on a grid_size x grid_size
/// lattice over `domain` and returns the best one.
Result<RaGridResult> RaGridMaxRS(const AggRTree& tree, BufferPool& pool,
                                 const Rect& domain, double rect_w,
                                 double rect_h, uint32_t grid_size);

}  // namespace maxrs

#endif  // MAXRS_INDEX_RA_GRID_H_
