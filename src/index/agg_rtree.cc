#include "index/agg_rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace maxrs {
namespace {

// Block 0 holds the tree header; nodes follow.
struct TreeHeader {
  uint64_t magic;
  uint64_t root_block;
  uint64_t num_blocks;
  uint64_t height;
  uint64_t num_objects;
};
constexpr uint64_t kTreeMagic = 0x52747265654d5253ULL;  // "RtreeMRS"

struct NodeHeader {
  int32_t is_leaf;
  int32_t num_entries;
};

struct LeafEntry {  // one object
  double x;
  double y;
  double w;
};

struct InternalEntry {
  Rect mbr;        // 4 doubles
  double agg_sum;  // SUM over the child subtree
  uint32_t child;
  uint32_t pad = 0;
};

constexpr size_t kNodeHeaderSize = sizeof(NodeHeader);

size_t LeafCapacity(size_t block_size) {
  return (block_size - kNodeHeaderSize) / sizeof(LeafEntry);
}
size_t InternalCapacity(size_t block_size) {
  return (block_size - kNodeHeaderSize) / sizeof(InternalEntry);
}

NodeHeader* HeaderOf(char* data) { return reinterpret_cast<NodeHeader*>(data); }
LeafEntry* LeafEntriesOf(char* data) {
  return reinterpret_cast<LeafEntry*>(data + kNodeHeaderSize);
}
InternalEntry* InternalEntriesOf(char* data) {
  return reinterpret_cast<InternalEntry*>(data + kNodeHeaderSize);
}

/// Point MBR containment for build-time aggregation: objects are points, so
/// MBRs here are closed point boxes [min,max] in both axes.
Rect PointBox(const SpatialObject& o) { return Rect{o.x, o.x, o.y, o.y}; }

Rect Union(const Rect& a, const Rect& b) {
  return Rect{std::min(a.x_lo, b.x_lo), std::max(a.x_hi, b.x_hi),
              std::min(a.y_lo, b.y_lo), std::max(a.y_hi, b.y_hi)};
}

/// Closed-box versus half-open-query predicates. Node MBRs are closed point
/// boxes; the query is half-open [x_lo,x_hi) x [y_lo,y_hi).
bool BoxInsideQuery(const Rect& box, const Rect& query) {
  return box.x_lo >= query.x_lo && box.x_hi < query.x_hi &&
         box.y_lo >= query.y_lo && box.y_hi < query.y_hi;
}
bool BoxIntersectsQuery(const Rect& box, const Rect& query) {
  return box.x_lo < query.x_hi && box.x_hi >= query.x_lo &&
         box.y_lo < query.y_hi && box.y_hi >= query.y_lo;
}

}  // namespace

Result<AggRTree> AggRTree::BulkLoad(Env& env, const std::string& tree_file,
                                    std::vector<SpatialObject> objects) {
  const size_t block_size = env.block_size();
  const size_t leaf_cap = LeafCapacity(block_size);
  const size_t internal_cap = InternalCapacity(block_size);

  AggRTree tree;
  tree.num_objects_ = objects.size();
  MAXRS_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> file, env.Create(tree_file));

  std::vector<char> buf(block_size, 0);
  // Reserve block 0 for the header (written last).
  MAXRS_RETURN_IF_ERROR(file->WriteBlock(0, buf.data()));
  uint64_t next_block = 1;

  struct NodeMeta {
    uint64_t block;
    Rect mbr;
    double sum;
  };
  std::vector<NodeMeta> level;

  if (!objects.empty()) {
    // --- STR leaf packing: x-sort, tile into vertical slices, y-sort. ---
    const size_t num_leaves = (objects.size() + leaf_cap - 1) / leaf_cap;
    const size_t num_slices =
        std::max<size_t>(1, static_cast<size_t>(std::ceil(std::sqrt(
                                static_cast<double>(num_leaves)))));
    const size_t slice_records =
        (objects.size() + num_slices - 1) / num_slices;
    std::sort(objects.begin(), objects.end(),
              [](const SpatialObject& a, const SpatialObject& b) {
                return a.x < b.x;
              });
    for (size_t s = 0; s < objects.size(); s += slice_records) {
      const size_t end = std::min(objects.size(), s + slice_records);
      std::sort(objects.begin() + s, objects.begin() + end,
                [](const SpatialObject& a, const SpatialObject& b) {
                  return a.y < b.y;
                });
    }

    for (size_t i = 0; i < objects.size(); i += leaf_cap) {
      const size_t here = std::min(leaf_cap, objects.size() - i);
      std::memset(buf.data(), 0, buf.size());
      *HeaderOf(buf.data()) = NodeHeader{1, static_cast<int32_t>(here)};
      LeafEntry* entries = LeafEntriesOf(buf.data());
      Rect mbr = PointBox(objects[i]);
      double sum = 0.0;
      for (size_t k = 0; k < here; ++k) {
        const SpatialObject& o = objects[i + k];
        entries[k] = LeafEntry{o.x, o.y, o.w};
        mbr = Union(mbr, PointBox(o));
        sum += o.w;
      }
      MAXRS_RETURN_IF_ERROR(file->WriteBlock(next_block, buf.data()));
      level.push_back(NodeMeta{next_block, mbr, sum});
      ++next_block;
    }
    tree.height_ = 1;

    // --- Internal levels. ---
    while (level.size() > 1) {
      std::vector<NodeMeta> upper;
      for (size_t i = 0; i < level.size(); i += internal_cap) {
        const size_t here = std::min(internal_cap, level.size() - i);
        std::memset(buf.data(), 0, buf.size());
        *HeaderOf(buf.data()) = NodeHeader{0, static_cast<int32_t>(here)};
        InternalEntry* entries = InternalEntriesOf(buf.data());
        Rect mbr = level[i].mbr;
        double sum = 0.0;
        for (size_t k = 0; k < here; ++k) {
          const NodeMeta& child = level[i + k];
          entries[k] = InternalEntry{child.mbr, child.sum,
                                     static_cast<uint32_t>(child.block)};
          mbr = Union(mbr, child.mbr);
          sum += child.sum;
        }
        MAXRS_RETURN_IF_ERROR(file->WriteBlock(next_block, buf.data()));
        upper.push_back(NodeMeta{next_block, mbr, sum});
        ++next_block;
      }
      level = std::move(upper);
      ++tree.height_;
    }
    tree.root_block_ = level.front().block;
  }

  tree.num_blocks_ = next_block;
  // Header block.
  std::memset(buf.data(), 0, buf.size());
  TreeHeader header{kTreeMagic, tree.root_block_, tree.num_blocks_,
                    tree.height_, tree.num_objects_};
  std::memcpy(buf.data(), &header, sizeof(header));
  MAXRS_RETURN_IF_ERROR(file->WriteBlock(0, buf.data()));

  tree.file_ = std::move(file);
  return {std::move(tree)};
}

Result<AggRTree> AggRTree::Open(Env& env, const std::string& tree_file) {
  MAXRS_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> file, env.Open(tree_file));
  std::vector<char> buf(file->block_size());
  MAXRS_RETURN_IF_ERROR(file->ReadBlock(0, buf.data()));
  TreeHeader header;
  std::memcpy(&header, buf.data(), sizeof(header));
  if (header.magic != kTreeMagic) {
    return {Status::Corruption("not an AggRTree file: " + tree_file)};
  }
  AggRTree tree;
  tree.root_block_ = header.root_block;
  tree.num_blocks_ = header.num_blocks;
  tree.height_ = header.height;
  tree.num_objects_ = header.num_objects;
  tree.file_ = std::move(file);
  return {std::move(tree)};
}

Result<double> AggRTree::RangeSum(BufferPool& pool, const Rect& query,
                                  RangeSumStats* stats) const {
  if (empty() || num_objects_ == 0 || query.empty()) return {0.0};
  double sum = 0.0;
  MAXRS_RETURN_IF_ERROR(SumRec(pool, root_block_, query, &sum, stats));
  return {sum};
}

Result<double> AggRTree::TotalSum(BufferPool& pool) const {
  if (empty() || num_objects_ == 0) return {0.0};
  MAXRS_ASSIGN_OR_RETURN(PageHandle page, pool.Fetch(*file_, root_block_));
  const NodeHeader* header = HeaderOf(page.data());
  double sum = 0.0;
  if (header->is_leaf != 0) {
    const LeafEntry* entries = LeafEntriesOf(page.data());
    for (int32_t k = 0; k < header->num_entries; ++k) sum += entries[k].w;
  } else {
    const InternalEntry* entries = InternalEntriesOf(page.data());
    for (int32_t k = 0; k < header->num_entries; ++k) sum += entries[k].agg_sum;
  }
  return {sum};
}

Status AggRTree::SumRec(BufferPool& pool, uint64_t block, const Rect& query,
                        double* sum, RangeSumStats* stats) const {
  MAXRS_ASSIGN_OR_RETURN(PageHandle page, pool.Fetch(*file_, block));
  if (stats != nullptr) ++stats->nodes_visited;
  const NodeHeader* header = HeaderOf(page.data());

  if (header->is_leaf != 0) {
    const LeafEntry* entries = LeafEntriesOf(page.data());
    for (int32_t k = 0; k < header->num_entries; ++k) {
      if (stats != nullptr) ++stats->objects_scanned;
      if (query.Contains(Point{entries[k].x, entries[k].y})) {
        *sum += entries[k].w;
      }
    }
    return Status::OK();
  }

  const InternalEntry* entries = InternalEntriesOf(page.data());
  for (int32_t k = 0; k < header->num_entries; ++k) {
    const InternalEntry& e = entries[k];
    if (!BoxIntersectsQuery(e.mbr, query)) continue;
    if (BoxInsideQuery(e.mbr, query)) {
      // The pre-computed aggregate answers this entry without descending —
      // the core idea of aggregate indexes (Sec. 3 of the paper).
      *sum += e.agg_sum;
      if (stats != nullptr) ++stats->entries_aggregated;
      continue;
    }
    MAXRS_RETURN_IF_ERROR(SumRec(pool, e.child, query, sum, stats));
  }
  return Status::OK();
}

}  // namespace maxrs
