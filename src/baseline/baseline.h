// Shared types for the two plane-sweep baselines the paper compares against
// (Sec. 7.1): Naive Plane Sweep and the aSB-tree, both externalizations of
// the in-memory algorithm of Imai & Asano [11] following Du et al. [9].
#ifndef MAXRS_BASELINE_BASELINE_H_
#define MAXRS_BASELINE_BASELINE_H_

#include <cstdint>
#include <string>

#include "geom/geometry.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace maxrs {

struct BaselineOptions {
  double rect_width = 1000.0;
  double rect_height = 1000.0;
  /// Memory budget M in bytes (sort buffers, node cache, in-memory shortcut).
  size_t memory_bytes = 1 << 20;
  std::string work_prefix = "baseline_work";
};

struct BaselineResult {
  /// The maximum range sum found (must equal ExactMaxRS's total_weight).
  double total_weight = 0.0;
  /// An optimal location.
  Point location;
  IoStatsSnapshot io;
  double wall_seconds = 0.0;
  uint64_t events = 0;
};

/// Naive Plane Sweep: external sort of the transformed rectangles by y, then
/// a bottom-to-top sweep keeping the active x-intervals in an on-disk file,
/// sorted by x_lo. Every event re-reads the file, applies the insert/delete
/// while rewriting it, and the max count is recomputed by scanning (a naive
/// sweep has no incremental max structure). Like the implementation the
/// paper measures, it loads the whole dataset and solves in memory when it
/// fits in M ("UX is small enough to be loaded into a buffer of size 512KB,
/// which causes only one linear scan", Sec. 7.2.4) — giving the Fig. 15(a)
/// crossover; otherwise every sweep-file access is direct, uncached I/O.
Result<BaselineResult> RunNaivePlaneSweep(Env& env,
                                          const std::string& object_file,
                                          const BaselineOptions& options);

/// aSB-tree: the sweep structure is a disk-resident aggregate segment tree
/// with block-sized nodes (per-entry lazy `add` + subtree `max`), accessed
/// through an LRU buffer pool of size M. Each event performs a canonical
/// range update in O(log_B N) node touches, matching the O(N log_B N) bound
/// the paper quotes for the B-tree adaptation; larger buffers cache the
/// upper levels (Fig. 13/15 sensitivity), and wider ranges touch more
/// boundary leaves (Fig. 14 growth). The pointer-bearing tree is several
/// times larger than the raw dataset, so it gets no in-memory shortcut —
/// exactly the paper's explanation of why only the naive sweep collapses
/// once UX fits in the buffer.
Result<BaselineResult> RunASBTreeSweep(Env& env, const std::string& object_file,
                                       const BaselineOptions& options);

}  // namespace maxrs

#endif  // MAXRS_BASELINE_BASELINE_H_
