#include "baseline/baseline.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "baseline/sweep_prep.h"
#include "core/exact_maxrs.h"
#include "core/records.h"
#include "io/record_io.h"
#include "io/temp_manager.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace maxrs {
namespace {

/// An active x-interval [x_lo, x_hi) of weight w on the sweep line.
struct IntervalRecord {
  double x_lo;
  double x_hi;
  double w;
};

/// The naive sweep's disk-resident structure: a flat file of IntervalRecords
/// sorted by x_lo, fully re-read and fully re-written on every modification
/// (a straightforward array externalization, with direct uncounted-by-cache
/// I/O — a naive implementation manages no block cache of its own).
class LiveIntervalFile {
 public:
  LiveIntervalFile(Env& env, std::unique_ptr<BlockFile> file)
      : file_(std::move(file)),
        per_block_(env.block_size() / sizeof(IntervalRecord)),
        block_size_(env.block_size()),
        count_(0) {}

  /// Reads the whole file into `out` (counted reads).
  Status Load(std::vector<IntervalRecord>* out) {
    out->clear();
    out->reserve(count_);
    std::vector<char> buf(block_size_);
    uint64_t remaining = count_;
    for (uint64_t b = 0; remaining > 0; ++b) {
      MAXRS_RETURN_IF_ERROR(file_->ReadBlock(b, buf.data()));
      const uint64_t here = std::min<uint64_t>(per_block_, remaining);
      const IntervalRecord* recs =
          reinterpret_cast<const IntervalRecord*>(buf.data());
      out->insert(out->end(), recs, recs + here);
      remaining -= here;
    }
    return Status::OK();
  }

  /// Writes the whole file back (counted writes).
  Status Store(const std::vector<IntervalRecord>& records) {
    std::vector<char> buf(block_size_);
    uint64_t b = 0;
    size_t i = 0;
    while (i < records.size()) {
      const size_t here = std::min(per_block_, records.size() - i);
      std::memcpy(buf.data(), records.data() + i, here * sizeof(IntervalRecord));
      MAXRS_RETURN_IF_ERROR(file_->WriteBlock(b, buf.data()));
      ++b;
      i += here;
    }
    // Even an empty structure costs one write: the naive implementation
    // persists its (empty) array.
    if (records.empty()) {
      MAXRS_RETURN_IF_ERROR(file_->WriteBlock(0, buf.data()));
    }
    count_ = records.size();
    return Status::OK();
  }

 private:
  std::unique_ptr<BlockFile> file_;
  size_t per_block_;
  size_t block_size_;
  uint64_t count_;
};

/// Max stabbing weight restricted to the x-extent of `probe`, given the
/// active intervals. The global max over the whole sweep is attained right
/// after some insertion, within the inserted interval, so probing at inserts
/// suffices. Returns the best weight and an x strictly inside the best run
/// (interior, so the caller's center-space witness is boundary-safe).
std::pair<double, double> MaxOverlapWithin(const std::vector<IntervalRecord>& live,
                                           const IntervalRecord& probe) {
  // Collect endpoint deltas clipped to the probe's extent.
  std::vector<std::pair<double, double>> deltas;  // (x, +/- w)
  for (const IntervalRecord& r : live) {
    if (r.x_lo < probe.x_hi && probe.x_lo < r.x_hi) {
      deltas.emplace_back(std::max(r.x_lo, probe.x_lo), r.w);
      if (r.x_hi < probe.x_hi) deltas.emplace_back(r.x_hi, -r.w);
    }
  }
  std::sort(deltas.begin(), deltas.end());
  double best = 0.0;
  double best_x = probe.x_lo;
  double run = 0.0;
  bool pending_mid = false;
  double run_start = probe.x_lo;
  size_t i = 0;
  while (i < deltas.size()) {
    const double x = deltas[i].first;
    if (pending_mid) {
      best_x = (run_start + x) / 2.0;  // interior of the previous max run
      pending_mid = false;
    }
    while (i < deltas.size() && deltas[i].first == x) {
      run += deltas[i].second;
      ++i;
    }
    if (run > best) {
      best = run;
      run_start = x;
      pending_mid = true;
    }
  }
  if (pending_mid) best_x = (run_start + probe.x_hi) / 2.0;
  return {best, best_x};
}

}  // namespace

Result<BaselineResult> RunNaivePlaneSweep(Env& env,
                                          const std::string& object_file,
                                          const BaselineOptions& options) {
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  BaselineResult result;

  TempFileManager temps(env, options.work_prefix);
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> probe,
                           RecordReader<SpatialObject>::Make(env, object_file));
    const uint64_t n = probe.total();
    if (n * sizeof(SpatialObject) <= options.memory_bytes) {
      // The whole dataset fits in the buffer: one linear scan, then solve in
      // memory (the behaviour the paper observes for UX at >= 512KB).
      std::vector<SpatialObject> objects;
      objects.reserve(n);
      SpatialObject o{};
      while (probe.Next(&o)) objects.push_back(o);
      MAXRS_RETURN_IF_ERROR(probe.final_status());
      const MaxRSResult mem = ExactMaxRSInMemory(objects, options.rect_width,
                                                 options.rect_height);
      result.total_weight = mem.total_weight;
      result.location = mem.location;
      result.events = 2 * n;
      result.io = env.stats().Snapshot() - io_before;
      result.wall_seconds = timer.ElapsedSeconds();
      return {std::move(result)};
    }
  }

  uint64_t n = 0;
  MAXRS_ASSIGN_OR_RETURN(
      std::string rect_file,
      PrepareSortedRectangles(temps, object_file, options.rect_width,
                              options.rect_height, options.memory_bytes, &n));

  // Bottom events from one sequential reader, top events from a second (all
  // rectangles share height d2, so both arrive in file order).
  MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> bottoms,
                         RecordReader<PieceRecord>::Make(env, rect_file));
  MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> tops,
                         RecordReader<PieceRecord>::Make(env, rect_file));

  const std::string live_name = temps.NewName("naive_live");
  MAXRS_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> live_file,
                         env.Create(live_name));
  LiveIntervalFile live(env, std::move(live_file));

  std::vector<IntervalRecord> work;
  PieceRecord bottom{}, top{};
  bool have_bottom = bottoms.Next(&bottom);
  bool have_top = tops.Next(&top);

  while (have_bottom || have_top) {
    MAXRS_RETURN_IF_ERROR(bottoms.final_status());
    MAXRS_RETURN_IF_ERROR(tops.final_status());
    // Ties go to tops: with half-open [y_lo, y_hi) extents, an interval
    // expiring at y must leave the structure before any same-y insertion is
    // probed, or the probe would overcount.
    const bool do_bottom = have_bottom && (!have_top || bottom.y_lo < top.y_hi);

    if (do_bottom) {
      const IntervalRecord rec{bottom.x_lo, bottom.x_hi, bottom.w};
      // Insert: full read, sorted insert, full write.
      MAXRS_RETURN_IF_ERROR(live.Load(&work));
      auto pos = std::lower_bound(
          work.begin(), work.end(), rec,
          [](const IntervalRecord& a, const IntervalRecord& b) {
            return a.x_lo < b.x_lo;
          });
      work.insert(pos, rec);
      MAXRS_RETURN_IF_ERROR(live.Store(work));
      // The interval counts live inside the structure (Imai & Asano keep
      // per-interval counts in the sweep tree), so tracking the running max
      // takes another scan of the file after the update.
      MAXRS_RETURN_IF_ERROR(live.Load(&work));
      const auto [weight, x] = MaxOverlapWithin(work, rec);
      if (weight > result.total_weight) {
        result.total_weight = weight;
        // x is interior to the max run; y sits on the stratum's lower edge
        // (an interior y would require lookahead to the next event).
        result.location = {x, bottom.y_lo};
      }
      have_bottom = bottoms.Next(&bottom);
    } else {
      // Delete: full read, remove the matching interval, full write, and the
      // same post-update max scan.
      MAXRS_RETURN_IF_ERROR(live.Load(&work));
      const IntervalRecord rec{top.x_lo, top.x_hi, top.w};
      auto it = std::find_if(work.begin(), work.end(),
                             [&rec](const IntervalRecord& r) {
                               return r.x_lo == rec.x_lo && r.x_hi == rec.x_hi &&
                                      r.w == rec.w;
                             });
      MAXRS_CHECK_MSG(it != work.end(), "naive sweep lost an interval");
      work.erase(it);
      MAXRS_RETURN_IF_ERROR(live.Store(work));
      MAXRS_RETURN_IF_ERROR(live.Load(&work));
      have_top = tops.Next(&top);
    }
    ++result.events;
  }
  MAXRS_RETURN_IF_ERROR(bottoms.final_status());
  MAXRS_RETURN_IF_ERROR(tops.final_status());

  temps.Release(live_name);
  temps.Release(rect_file);
  result.io = env.stats().Snapshot() - io_before;
  result.wall_seconds = timer.ElapsedSeconds();
  return {std::move(result)};
}

}  // namespace maxrs
