#include "baseline/sweep_prep.h"

#include "geom/geometry.h"
#include "io/external_sort.h"
#include "io/record_io.h"

namespace maxrs {

Result<std::string> PrepareSortedRectangles(TempFileManager& temps,
                                            const std::string& object_file,
                                            double rect_width,
                                            double rect_height,
                                            size_t memory_bytes,
                                            uint64_t* num_objects) {
  Env& env = temps.env();
  std::string raw = temps.NewName("rects_raw");
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> reader,
                           RecordReader<SpatialObject>::Make(env, object_file));
    if (num_objects != nullptr) *num_objects = reader.total();
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<PieceRecord> writer,
                           RecordWriter<PieceRecord>::Make(env, raw));
    SpatialObject o{};
    while (reader.Next(&o)) {
      MAXRS_RETURN_IF_ERROR(writer.Append(
          PieceRecord{o.x - rect_width / 2.0, o.x + rect_width / 2.0,
                      o.y - rect_height / 2.0, o.y + rect_height / 2.0, o.w}));
    }
    MAXRS_RETURN_IF_ERROR(writer.Finish());
  }
  std::string sorted = temps.NewName("rects_sorted");
  // PieceYLess is a total order: required for a canonical sorted file now
  // that run formation uses an unstable sort.
  MAXRS_RETURN_IF_ERROR(ExternalSort<PieceRecord>(
      env, raw, sorted, PieceYLess, ExternalSortOptions{memory_bytes}));
  temps.Release(raw);
  return {std::move(sorted)};
}

}  // namespace maxrs
