// External aggregate segment tree: the sweep structure of the aSB-tree
// baseline (Du et al. [9] as adapted by the paper, Sec. 7.1).
//
// A static tree over the elementary x-intervals defined by all rectangle
// edge coordinates. Nodes are block-sized; internal entries carry a lazy
// `add` (weight applied to the entry's whole subtree) and `child_max` (the
// subtree max, excluding this entry's add), so a range update touches only
// the O(log_B N) nodes along the two boundary paths and the global max is
// read off the root. All node accesses go through a caller-supplied
// BufferPool, which is what makes the baseline's I/O cost buffer-sensitive.
#ifndef MAXRS_BASELINE_ASB_TREE_H_
#define MAXRS_BASELINE_ASB_TREE_H_

#include <memory>
#include <string>

#include "core/records.h"
#include "geom/geometry.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "io/record_io.h"
#include "util/status.h"

namespace maxrs {

class ExternalAggTree {
 public:
  /// Builds the tree over the elementary intervals between consecutive
  /// distinct values of the (x-sorted) edge coordinate stream. Build I/O is
  /// counted (sequential block writes). Returns the ready tree.
  static Result<ExternalAggTree> Build(Env& env, const std::string& tree_file,
                                       RecordReader<EdgeRecord>& edges);

  /// Adds w to every elementary interval within [x_lo, x_hi). Both bounds
  /// must be edge coordinates used at Build time (rectangle extents always
  /// are). Node accesses go through `pool`.
  Status RangeAdd(BufferPool& pool, double x_lo, double x_hi, double w);

  /// Current global maximum stabbing weight.
  Result<double> MaxValue(BufferPool& pool);

  /// A witness x-position achieving the current maximum.
  Result<double> MaxWitness(BufferPool& pool);

  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t height() const { return height_; }
  bool empty() const { return file_ == nullptr; }

  BlockFile* file() { return file_.get(); }

 private:
  ExternalAggTree() = default;

  Status AddRec(BufferPool& pool, uint64_t block, double lo, double hi, double w,
                double* subtree_max);

  std::unique_ptr<BlockFile> file_;
  uint64_t root_block_ = 0;
  uint64_t num_blocks_ = 0;
  uint64_t height_ = 0;
  double domain_lo_ = 0.0;
  double domain_hi_ = 0.0;
};

}  // namespace maxrs

#endif  // MAXRS_BASELINE_ASB_TREE_H_
