#include "baseline/asb_tree.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "baseline/baseline.h"
#include "baseline/sweep_prep.h"
#include "core/records.h"
#include "io/external_sort.h"
#include "io/temp_manager.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace maxrs {
namespace {

struct NodeHeader {
  int32_t is_leaf;
  int32_t num_entries;
  double x_lo;
  double x_hi;
};

struct LeafEntry {
  double x_lo;  ///< Cell covers [x_lo, next cell's x_lo or node x_hi).
  double value;
};

struct InternalEntry {
  double x_lo;  ///< Child covers [x_lo, next entry's x_lo or node x_hi).
  double add;
  double child_max;
  uint32_t child;
  uint32_t pad = 0;
};

constexpr size_t kHeaderSize = sizeof(NodeHeader);

size_t LeafFanout(size_t block_size) {
  return (block_size - kHeaderSize) / sizeof(LeafEntry);
}
size_t InternalFanout(size_t block_size) {
  return (block_size - kHeaderSize) / sizeof(InternalEntry);
}

NodeHeader* HeaderOf(char* data) { return reinterpret_cast<NodeHeader*>(data); }
LeafEntry* LeavesOf(char* data) {
  return reinterpret_cast<LeafEntry*>(data + kHeaderSize);
}
InternalEntry* InternalsOf(char* data) {
  return reinterpret_cast<InternalEntry*>(data + kHeaderSize);
}

}  // namespace

Result<ExternalAggTree> ExternalAggTree::Build(Env& env,
                                               const std::string& tree_file,
                                               RecordReader<EdgeRecord>& edges) {
  ExternalAggTree tree;
  const size_t block_size = env.block_size();
  const size_t leaf_fanout = LeafFanout(block_size);
  const size_t internal_fanout = InternalFanout(block_size);

  MAXRS_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> file, env.Create(tree_file));

  struct NodeMeta {
    uint64_t block;
    double x_lo;
    double x_hi;
  };

  // --- Leaf level: stream the sorted edges, dedupe, pack cells. ---
  std::vector<NodeMeta> level;
  {
    std::vector<char> buf(block_size, 0);
    NodeHeader* header = HeaderOf(buf.data());
    LeafEntry* cells = LeavesOf(buf.data());
    uint64_t next_block = 0;
    int32_t in_node = 0;
    double node_lo = 0.0;
    bool have_prev = false;
    double prev = 0.0;
    EdgeRecord e{};

    auto flush_leaf = [&](double upper) -> Status {
      if (in_node == 0) return Status::OK();
      *header = NodeHeader{1, in_node, node_lo, upper};
      MAXRS_RETURN_IF_ERROR(file->WriteBlock(next_block, buf.data()));
      level.push_back(NodeMeta{next_block, node_lo, upper});
      ++next_block;
      in_node = 0;
      return Status::OK();
    };

    while (edges.Next(&e)) {
      if (have_prev) {
        if (e.x == prev) continue;  // dedupe
        // Cell [prev, e.x).
        if (in_node == 0) node_lo = prev;
        cells[in_node++] = LeafEntry{prev, 0.0};
        if (in_node == static_cast<int32_t>(leaf_fanout)) {
          MAXRS_RETURN_IF_ERROR(flush_leaf(e.x));
        }
      }
      prev = e.x;
      have_prev = true;
    }
    MAXRS_RETURN_IF_ERROR(edges.final_status());
    if (have_prev) MAXRS_RETURN_IF_ERROR(flush_leaf(prev));

    if (level.empty()) {
      // Zero or one distinct coordinate: no elementary interval exists.
      return {std::move(tree)};  // empty() == true
    }
    tree.domain_lo_ = level.front().x_lo;
    tree.domain_hi_ = level.back().x_hi;
    tree.num_blocks_ = next_block;
    tree.height_ = 1;
  }

  // --- Internal levels, bottom-up. ---
  while (level.size() > 1) {
    std::vector<NodeMeta> upper;
    std::vector<char> buf(block_size, 0);
    NodeHeader* header = HeaderOf(buf.data());
    InternalEntry* entries = InternalsOf(buf.data());
    size_t i = 0;
    while (i < level.size()) {
      const size_t here = std::min(internal_fanout, level.size() - i);
      for (size_t k = 0; k < here; ++k) {
        entries[k] = InternalEntry{level[i + k].x_lo, 0.0, 0.0,
                                   static_cast<uint32_t>(level[i + k].block)};
      }
      *header = NodeHeader{0, static_cast<int32_t>(here), level[i].x_lo,
                           level[i + here - 1].x_hi};
      MAXRS_RETURN_IF_ERROR(file->WriteBlock(tree.num_blocks_, buf.data()));
      upper.push_back(
          NodeMeta{tree.num_blocks_, level[i].x_lo, level[i + here - 1].x_hi});
      ++tree.num_blocks_;
      i += here;
    }
    level = std::move(upper);
    ++tree.height_;
  }

  tree.root_block_ = level.front().block;
  tree.file_ = std::move(file);
  return {std::move(tree)};
}

Status ExternalAggTree::RangeAdd(BufferPool& pool, double x_lo, double x_hi,
                                 double w) {
  if (empty()) return Status::OK();
  const double lo = std::max(x_lo, domain_lo_);
  const double hi = std::min(x_hi, domain_hi_);
  if (lo >= hi) return Status::OK();
  double unused = 0.0;
  return AddRec(pool, root_block_, lo, hi, w, &unused);
}

Status ExternalAggTree::AddRec(BufferPool& pool, uint64_t block, double lo,
                               double hi, double w, double* subtree_max) {
  MAXRS_ASSIGN_OR_RETURN(PageHandle page, pool.Fetch(*file_, block));
  NodeHeader* header = HeaderOf(page.data());

  if (header->is_leaf != 0) {
    LeafEntry* cells = LeavesOf(page.data());
    double node_max = -kInf;
    for (int32_t k = 0; k < header->num_entries; ++k) {
      // Range boundaries are always edge coordinates, so cells are either
      // fully inside or fully outside [lo, hi).
      if (cells[k].x_lo >= lo && cells[k].x_lo < hi) cells[k].value += w;
      node_max = std::max(node_max, cells[k].value);
    }
    page.MarkDirty();
    *subtree_max = node_max;
    return Status::OK();
  }

  InternalEntry* entries = InternalsOf(page.data());
  const int32_t n = header->num_entries;
  double node_max = -kInf;
  bool dirty = false;
  for (int32_t k = 0; k < n; ++k) {
    const double e_lo = entries[k].x_lo;
    const double e_hi = (k + 1 < n) ? entries[k + 1].x_lo : header->x_hi;
    if (e_lo < hi && lo < e_hi) {
      if (lo <= e_lo && e_hi <= hi) {
        entries[k].add += w;  // fully covered: lazy add
      } else {
        double child_max = 0.0;
        MAXRS_RETURN_IF_ERROR(AddRec(pool, entries[k].child, std::max(lo, e_lo),
                                     std::min(hi, e_hi), w, &child_max));
        entries[k].child_max = child_max;
      }
      dirty = true;
    }
    node_max = std::max(node_max, entries[k].child_max + entries[k].add);
  }
  if (dirty) page.MarkDirty();
  *subtree_max = node_max;
  return Status::OK();
}

Result<double> ExternalAggTree::MaxValue(BufferPool& pool) {
  if (empty()) return {0.0};
  MAXRS_ASSIGN_OR_RETURN(PageHandle page, pool.Fetch(*file_, root_block_));
  NodeHeader* header = HeaderOf(page.data());
  double best = -kInf;
  if (header->is_leaf != 0) {
    LeafEntry* cells = LeavesOf(page.data());
    for (int32_t k = 0; k < header->num_entries; ++k) {
      best = std::max(best, cells[k].value);
    }
  } else {
    InternalEntry* entries = InternalsOf(page.data());
    for (int32_t k = 0; k < header->num_entries; ++k) {
      best = std::max(best, entries[k].child_max + entries[k].add);
    }
  }
  return {best};
}

Result<double> ExternalAggTree::MaxWitness(BufferPool& pool) {
  if (empty()) return {0.0};
  uint64_t block = root_block_;
  while (true) {
    MAXRS_ASSIGN_OR_RETURN(PageHandle page, pool.Fetch(*file_, block));
    NodeHeader* header = HeaderOf(page.data());
    if (header->is_leaf != 0) {
      LeafEntry* cells = LeavesOf(page.data());
      int32_t best = 0;
      for (int32_t k = 1; k < header->num_entries; ++k) {
        if (cells[k].value > cells[best].value) best = k;
      }
      const double cell_hi = (best + 1 < header->num_entries)
                                 ? cells[best + 1].x_lo
                                 : header->x_hi;
      return {(cells[best].x_lo + cell_hi) / 2.0};
    }
    InternalEntry* entries = InternalsOf(page.data());
    int32_t best = 0;
    double best_val = entries[0].child_max + entries[0].add;
    for (int32_t k = 1; k < header->num_entries; ++k) {
      const double v = entries[k].child_max + entries[k].add;
      if (v > best_val) {
        best_val = v;
        best = k;
      }
    }
    block = entries[best].child;
  }
}

// ---------------------------------------------------------------------------
// Sweep driver.
// ---------------------------------------------------------------------------

Result<BaselineResult> RunASBTreeSweep(Env& env, const std::string& object_file,
                                       const BaselineOptions& options) {
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  BaselineResult result;
  TempFileManager temps(env, options.work_prefix);

  uint64_t n = 0;
  MAXRS_ASSIGN_OR_RETURN(
      std::string rect_file,
      PrepareSortedRectangles(temps, object_file, options.rect_width,
                              options.rect_height, options.memory_bytes, &n));
  if (n == 0) {
    temps.Release(rect_file);
    result.io = env.stats().Snapshot() - io_before;
    result.wall_seconds = timer.ElapsedSeconds();
    return {std::move(result)};
  }

  // Edge coordinates, x-sorted, for the static tree skeleton.
  std::string raw_edges = temps.NewName("edges_raw");
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> reader,
                           RecordReader<PieceRecord>::Make(env, rect_file));
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<EdgeRecord> writer,
                           RecordWriter<EdgeRecord>::Make(env, raw_edges));
    PieceRecord p{};
    while (reader.Next(&p)) {
      MAXRS_RETURN_IF_ERROR(writer.Append(EdgeRecord{p.x_lo}));
      MAXRS_RETURN_IF_ERROR(writer.Append(EdgeRecord{p.x_hi}));
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
    MAXRS_RETURN_IF_ERROR(writer.Finish());
  }
  std::string sorted_edges = temps.NewName("edges_sorted");
  MAXRS_RETURN_IF_ERROR(ExternalSort<EdgeRecord>(
      env, raw_edges, sorted_edges, EdgeXLess,
      ExternalSortOptions{options.memory_bytes}));
  temps.Release(raw_edges);

  const std::string tree_name = temps.NewName("asb_tree");
  MAXRS_ASSIGN_OR_RETURN(RecordReader<EdgeRecord> edge_reader,
                         RecordReader<EdgeRecord>::Make(env, sorted_edges));
  MAXRS_ASSIGN_OR_RETURN(ExternalAggTree tree,
                         ExternalAggTree::Build(env, tree_name, edge_reader));
  temps.Release(sorted_edges);

  BufferPool pool(env, options.memory_bytes);

  MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> bottoms,
                         RecordReader<PieceRecord>::Make(env, rect_file));
  MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> tops,
                         RecordReader<PieceRecord>::Make(env, rect_file));
  PieceRecord bottom{}, top{};
  bool have_bottom = bottoms.Next(&bottom);
  bool have_top = tops.Next(&top);

  double best_y = 0.0;
  bool improved = false;
  while (have_bottom || have_top) {
    MAXRS_RETURN_IF_ERROR(bottoms.final_status());
    MAXRS_RETURN_IF_ERROR(tops.final_status());
    // Apply the full batch of events at the current h-line before querying.
    const double y = have_bottom
                         ? (have_top ? std::min(bottom.y_lo, top.y_hi) : bottom.y_lo)
                         : top.y_hi;
    while (have_top && top.y_hi == y) {
      MAXRS_RETURN_IF_ERROR(tree.RangeAdd(pool, top.x_lo, top.x_hi, -top.w));
      have_top = tops.Next(&top);
      ++result.events;
    }
    while (have_bottom && bottom.y_lo == y) {
      MAXRS_RETURN_IF_ERROR(
          tree.RangeAdd(pool, bottom.x_lo, bottom.x_hi, bottom.w));
      have_bottom = bottoms.Next(&bottom);
      ++result.events;
    }
    MAXRS_ASSIGN_OR_RETURN(double max_now, tree.MaxValue(pool));
    if (max_now > result.total_weight) {
      result.total_weight = max_now;
      best_y = y;
      improved = true;
      MAXRS_ASSIGN_OR_RETURN(double witness_x, tree.MaxWitness(pool));
      result.location = {witness_x, best_y};
    }
  }
  (void)improved;
  MAXRS_RETURN_IF_ERROR(bottoms.final_status());
  MAXRS_RETURN_IF_ERROR(tops.final_status());

  MAXRS_RETURN_IF_ERROR(pool.FlushAll());
  temps.Release(tree_name);
  temps.Release(rect_file);
  result.io = env.stats().Snapshot() - io_before;
  result.wall_seconds = timer.ElapsedSeconds();
  return {std::move(result)};
}

}  // namespace maxrs
