// Event preparation shared by both baselines: transform the objects into
// d1 x d2 rectangles and sort them by bottom edge. Top events need no second
// sort: all rectangles share height d2, so the y_lo order equals the y_hi
// order and a second sequential reader over the same file delivers tops.
#ifndef MAXRS_BASELINE_SWEEP_PREP_H_
#define MAXRS_BASELINE_SWEEP_PREP_H_

#include <string>

#include "core/records.h"
#include "io/temp_manager.h"
#include "util/status.h"

namespace maxrs {

/// Writes the transformed rectangle file (sorted by y_lo) for `object_file`
/// and returns its name. `num_objects` receives N.
Result<std::string> PrepareSortedRectangles(TempFileManager& temps,
                                            const std::string& object_file,
                                            double rect_width,
                                            double rect_height,
                                            size_t memory_bytes,
                                            uint64_t* num_objects);

}  // namespace maxrs

#endif  // MAXRS_BASELINE_SWEEP_PREP_H_
