// Brute-force MaxRS oracle for testing.
//
// The optimum of the MaxRS problem is always attained by a placement whose
// rectangle has some object on its left edge x and some object on its bottom
// edge y (slide any optimal rectangle left/down until its low edges hit
// objects; with half-open cover semantics the covered set never shrinks).
// Enumerating all O(n^2) such candidate placements and scanning the objects
// for each is O(n^3) — fine as a test oracle for small n.
#ifndef MAXRS_CORE_BRUTE_FORCE_H_
#define MAXRS_CORE_BRUTE_FORCE_H_

#include <vector>

#include "geom/geometry.h"

namespace maxrs {

/// An optimal placement found by exhaustive search: the oracle the sweep
/// algorithms are differential-tested against.
struct BruteForceResult {
  Point location;
  double total_weight = 0.0;
};

/// Exhaustive MaxRS over candidate anchor pairs.
BruteForceResult BruteForceMaxRS(const std::vector<SpatialObject>& objects,
                                 double rect_width, double rect_height);

/// Exhaustive MaxCRS: evaluates circles centered at every object and at
/// every intersection point of radius-r circles around object pairs (the
/// classic O(n^3 log n)-ish reference). Small n only.
BruteForceResult BruteForceMaxCRS(const std::vector<SpatialObject>& objects,
                                  double diameter);

}  // namespace maxrs

#endif  // MAXRS_CORE_BRUTE_FORCE_H_
