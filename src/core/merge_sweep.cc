#include "core/merge_sweep.h"

#include <limits>
#include <memory>

#include "io/prefetch_reader.h"
#include "io/record_io.h"
#include "util/check.h"

namespace maxrs {
namespace {

/// Sequential reader with one-record lookahead; double-buffers blocks when
/// constructed with read_ahead.
template <typename T>
class PeekedReader {
 public:
  static Result<PeekedReader<T>> Make(Env& env, const std::string& name,
                                      bool read_ahead) {
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<T> reader,
                           PrefetchingReader<T>::Make(env, name, read_ahead));
    PeekedReader<T> peeked(std::move(reader));
    MAXRS_RETURN_IF_ERROR(peeked.Advance());
    return {std::move(peeked)};
  }

  explicit PeekedReader(PrefetchingReader<T> reader)
      : reader_(std::move(reader)) {}

  bool has_value() const { return has_value_; }
  const T& head() const { return head_; }

  Status Advance() {
    Status st = reader_.Read(&head_);
    if (st.code() == Status::Code::kNotFound) {
      has_value_ = false;
      return Status::OK();
    }
    MAXRS_RETURN_IF_ERROR(st);
    has_value_ = true;
    return Status::OK();
  }

 private:
  PrefetchingReader<T> reader_;
  T head_{};
  bool has_value_ = false;
};

}  // namespace

Status MergeSweep(Env& env, const std::vector<ChildSlab>& children,
                  const std::vector<std::string>& child_slab_files,
                  const std::string& span_file, const std::string& output_file,
                  SweepObjective objective, bool read_ahead, bool write_behind,
                  const CancelToken* cancel, SlabBest* best_out) {
  std::vector<Interval> ranges;
  ranges.reserve(children.size());
  for (const ChildSlab& child : children) ranges.push_back(child.x_range);
  return MergeSweep(env, ranges, child_slab_files, span_file, output_file,
                    objective, read_ahead, write_behind, cancel, best_out);
}

Status MergeSweep(Env& env, const std::vector<Interval>& child_ranges,
                  const std::vector<std::string>& child_slab_files,
                  const std::string& span_file, const std::string& output_file,
                  SweepObjective objective, bool read_ahead, bool write_behind,
                  const CancelToken* cancel, SlabBest* best_out) {
  const size_t m = child_ranges.size();
  MAXRS_CHECK(m >= 1 && child_slab_files.size() == m);

  // A "" name marks a known-empty child: it participates in the sweep state
  // (base 0, interval = its range) but gets no reader and costs no I/O.
  std::vector<std::unique_ptr<PeekedReader<SlabTuple>>> slabs(m);
  for (size_t i = 0; i < m; ++i) {
    if (child_slab_files[i].empty()) continue;
    MAXRS_ASSIGN_OR_RETURN(
        PeekedReader<SlabTuple> reader,
        PeekedReader<SlabTuple>::Make(env, child_slab_files[i], read_ahead));
    slabs[i] = std::make_unique<PeekedReader<SlabTuple>>(std::move(reader));
  }
  // Two independent sequential scans over the span file: one delivering
  // bottom events (y_lo order), one delivering top events (y_hi order; equal
  // to y_lo order because all spans have the original height d2).
  MAXRS_ASSIGN_OR_RETURN(
      PeekedReader<SpanRecord> bottoms,
      PeekedReader<SpanRecord>::Make(env, span_file, read_ahead));
  MAXRS_ASSIGN_OR_RETURN(
      PeekedReader<SpanRecord> tops,
      PeekedReader<SpanRecord>::Make(env, span_file, read_ahead));

  MAXRS_ASSIGN_OR_RETURN(RecordWriter<SlabTuple> writer,
                         RecordWriter<SlabTuple>::Make(env, output_file,
                                                       write_behind));

  // Sweep state (Algorithm 1 lines 1-4): per-child latest max-interval and
  // the spanning weight currently over it.
  std::vector<double> base(m, 0.0);
  std::vector<double> up_sum(m, 0.0);
  std::vector<Interval> interval(m);
  for (size_t i = 0; i < m; ++i) interval[i] = child_ranges[i];

  const double inf = std::numeric_limits<double>::infinity();
  while (true) {
    MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
    // Next event y across all inputs.
    double y = inf;
    for (const auto& s : slabs) {
      if (s && s->has_value()) y = std::min(y, s->head().y);
    }
    if (bottoms.has_value()) y = std::min(y, bottoms.head().y_lo);
    if (tops.has_value()) y = std::min(y, tops.head().y_hi);
    if (y == inf) break;

    // Apply all events at this h-line (lines 6-16). With half-open y-extents
    // additions and removals at equal y commute.
    while (tops.has_value() && tops.head().y_hi == y) {
      const SpanRecord& s = tops.head();
      for (int32_t k = s.child_lo; k <= s.child_hi; ++k) up_sum[k] -= s.w;
      MAXRS_RETURN_IF_ERROR(tops.Advance());
    }
    while (bottoms.has_value() && bottoms.head().y_lo == y) {
      const SpanRecord& s = bottoms.head();
      MAXRS_CHECK(s.child_lo >= 0 && s.child_hi < static_cast<int32_t>(m));
      for (int32_t k = s.child_lo; k <= s.child_hi; ++k) up_sum[k] += s.w;
      MAXRS_RETURN_IF_ERROR(bottoms.Advance());
    }
    for (size_t i = 0; i < m; ++i) {
      while (slabs[i] && slabs[i]->has_value() && slabs[i]->head().y == y) {
        base[i] = slabs[i]->head().sum;
        interval[i] = {slabs[i]->head().x_lo, slabs[i]->head().x_hi};
        MAXRS_RETURN_IF_ERROR(slabs[i]->Advance());
      }
    }

    // GetMaxInterval (lines 17-18): pick the best eff[i]; extend across
    // adjacent children whose tied max-intervals touch at the boundary.
    // For the min objective "best" means smallest.
    const bool maximize = objective == SweepObjective::kMaximize;
    double best = maximize ? -inf : inf;
    size_t best_i = 0;
    for (size_t i = 0; i < m; ++i) {
      const double eff = base[i] + up_sum[i];
      if (maximize ? eff > best : eff < best) {
        best = eff;
        best_i = i;
      }
    }
    Interval merged = interval[best_i];
    for (size_t i = best_i + 1; i < m; ++i) {
      if (base[i] + up_sum[i] == best && interval[i].lo == merged.hi) {
        merged.hi = interval[i].hi;
      } else {
        break;
      }
    }
    if (best_out != nullptr) best_out->Offer(best);
    MAXRS_RETURN_IF_ERROR(writer.Append(SlabTuple{y, merged.lo, merged.hi, best}));
  }

  return writer.Finish();
}

}  // namespace maxrs
