// MergeSweep (Algorithm 1): merges the slab-files of m child slabs and the
// spanning-rectangle file of the parent into the parent's slab-file, in one
// synchronized bottom-to-top sweep costing O(K/B) I/Os (Lemma 3).
//
// State per child i: the base sum and max-interval from its latest tuple,
// plus upSum[i] — the total weight of spanning rectangles currently covering
// child i. A tuple is emitted at *every* event y (child tuples and spanning
// bottoms/tops), carrying the best eff[i] = base[i] + upSum[i]; tied
// max-intervals of adjacent children that touch at the boundary are merged
// into one extended interval (GetMaxInterval).
//
// Spanning tops need no separate sort: pieces are never clipped in y, so all
// spans share the original rectangle height d2 and the y_lo-sorted span file
// is also y_hi-sorted — a second sequential reader delivers top events.
#ifndef MAXRS_CORE_MERGE_SWEEP_H_
#define MAXRS_CORE_MERGE_SWEEP_H_

#include <string>
#include <vector>

#include "core/division.h"
#include "core/plane_sweep.h"
#include "core/records.h"
#include "io/env.h"
#include "util/cancel.h"
#include "util/status.h"

namespace maxrs {

/// Merges `child_slab_files[i]` (the slab-file of children[i]) plus the
/// spanning file into the slab-file `output_file` for the union slab.
/// The objective must match the one the child slab-files were built with.
/// With `read_ahead`, every input stream double-buffers its next block via
/// the shared IoExecutor (io/prefetch_reader.h); with `write_behind`, the
/// output writer flushes its blocks on the same executor (io/record_io.h).
/// Output and block counts are identical in every schedule combination.
/// A non-null `cancel` token is polled once per sweep event; an expired
/// token aborts the merge with kDeadlineExceeded.
/// A non-null `best_out` receives the running maximum of the emitted tuple
/// sums (maximize objective) as a free by-product of the sweep — no
/// re-scan, no extra I/O.
Status MergeSweep(Env& env, const std::vector<ChildSlab>& children,
                  const std::vector<std::string>& child_slab_files,
                  const std::string& span_file, const std::string& output_file,
                  SweepObjective objective = SweepObjective::kMaximize,
                  bool read_ahead = false, bool write_behind = false,
                  const CancelToken* cancel = nullptr,
                  SlabBest* best_out = nullptr);

/// MergeSweep over externally-produced sub-slab solutions: identical sweep,
/// but the children are given as bare x-ranges instead of DivisionResult
/// children — the entry point for callers that solved adjacent sub-slabs
/// outside the recursion (the serve layer's per-shard solve, where the
/// x-slab shards are the top-level division). `child_ranges[i]` must be
/// adjacent ascending half-open slabs, `child_slab_files[i]` the slab-file
/// solved for exactly that range, and `span_file` the y_lo-sorted records
/// of rectangles spanning whole sub-slabs (child indices into
/// `child_ranges`). An empty span file is valid.
///
/// A child whose slab-file name is the empty string "" is a *known-empty*
/// child: no reader is opened for it (zero I/O — not even the empty file's
/// framing read) and it sweeps exactly like an existing empty slab-file
/// (base 0, interval = its range). The serve layer's index-pruned execution
/// passes "" for shards it proved cannot contain the optimum, keeping the
/// adjacent-ascending-ranges contract (and span child indices) intact
/// without materializing anything for skipped shards.
Status MergeSweep(Env& env, const std::vector<Interval>& child_ranges,
                  const std::vector<std::string>& child_slab_files,
                  const std::string& span_file, const std::string& output_file,
                  SweepObjective objective = SweepObjective::kMaximize,
                  bool read_ahead = false, bool write_behind = false,
                  const CancelToken* cancel = nullptr,
                  SlabBest* best_out = nullptr);

}  // namespace maxrs

#endif  // MAXRS_CORE_MERGE_SWEEP_H_
