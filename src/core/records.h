// On-disk record types used by the ExactMaxRS distribution sweep.
// All are fixed-size and trivially copyable (see io/record_io.h).
#ifndef MAXRS_CORE_RECORDS_H_
#define MAXRS_CORE_RECORDS_H_

#include <cstdint>

#include "geom/geometry.h"

namespace maxrs {

/// A (possibly x-clipped) transformed rectangle: the d1 x d2 rectangle
/// centered at an object (Sec. 5.1), restricted to the current slab.
/// Half-open extents [x_lo, x_hi) x [y_lo, y_hi); weight w(o).
/// Pieces are only ever clipped in x, so every piece keeps the original
/// height d2 — which is why both bottom (y_lo) and top (y_hi) event orders
/// coincide with the file order of a y_lo-sorted file.
struct PieceRecord {
  double x_lo;
  double x_hi;
  double y_lo;
  double y_hi;
  double w;
};

/// One vertical-edge x-coordinate of an original rectangle. The edge file
/// (x-sorted) provides the exact edge-count quantiles that the division
/// phase cuts on (Lemma 1 partitions edges, not rectangles).
struct EdgeRecord {
  double x;
};

/// The spanning part of a rectangle: covers children [child_lo, child_hi]
/// (inclusive) fully in x, contributing weight w on y in [y_lo, y_hi).
/// These do not descend into the recursion (Sec. 5.2.1); they are merged
/// back in MergeSweep via the upSum counters.
struct SpanRecord {
  double y_lo;
  double y_hi;
  double w;
  int32_t child_lo;
  int32_t child_hi;
};

/// One slab-file tuple t = <y, [x1, x2], sum> (Def. 6 / Sec. 5.2.2): on any
/// horizontal line with y-coordinate in [t.y, next tuple's y), the
/// max-interval of the slab is [x_lo, x_hi) with location-weight `sum`.
struct SlabTuple {
  double y;
  double x_lo;
  double x_hi;
  double sum;
};

}  // namespace maxrs

#endif  // MAXRS_CORE_RECORDS_H_
