// On-disk record types used by the ExactMaxRS distribution sweep.
// All are fixed-size and trivially copyable (see io/record_io.h).
#ifndef MAXRS_CORE_RECORDS_H_
#define MAXRS_CORE_RECORDS_H_

#include <cstdint>
#include <cstring>

#include "geom/geometry.h"

namespace maxrs {

/// A (possibly x-clipped) transformed rectangle: the d1 x d2 rectangle
/// centered at an object (Sec. 5.1), restricted to the current slab.
/// Half-open extents [x_lo, x_hi) x [y_lo, y_hi); weight w(o).
/// Pieces are only ever clipped in x, so every piece keeps the original
/// height d2 — which is why both bottom (y_lo) and top (y_hi) event orders
/// coincide with the file order of a y_lo-sorted file.
struct PieceRecord {
  double x_lo;
  double x_hi;
  double y_lo;
  double y_hi;
  double w;
};

/// Canonical total order on doubles (IEEE-754 totalOrder, minus the
/// quiet/signaling distinction): numeric order on ordinary values, -0 < +0,
/// NaNs at the extremes by sign. Plain `<` is not a strict weak ordering
/// once a NaN sneaks in (NaN compares "equivalent" to everything), which
/// would make std::sort undefined behavior — and user-supplied weights
/// (e.g. via maxrs_cli CSVs) are not validated.
inline uint64_t DoubleOrderKey(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return (bits & (1ULL << 63)) ? ~bits : bits | (1ULL << 63);
}

/// Total order on pieces for the y pre-sort: y_lo (the sweep key) first,
/// then every remaining field. A total order makes the unstable run-
/// formation sort (std::sort) and the external merge produce one canonical
/// sequence — the basis of bit-identical results at any thread count.
inline bool PieceYLess(const PieceRecord& a, const PieceRecord& b) {
  uint64_t ka = DoubleOrderKey(a.y_lo), kb = DoubleOrderKey(b.y_lo);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.x_lo), kb = DoubleOrderKey(b.x_lo);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.x_hi), kb = DoubleOrderKey(b.x_hi);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.y_hi), kb = DoubleOrderKey(b.y_hi);
  if (ka != kb) return ka < kb;
  return DoubleOrderKey(a.w) < DoubleOrderKey(b.w);
}

/// One vertical-edge x-coordinate of an original rectangle. The edge file
/// (x-sorted) provides the exact edge-count quantiles that the division
/// phase cuts on (Lemma 1 partitions edges, not rectangles).
struct EdgeRecord {
  double x;
};

/// Total order on edges (single field; the total-order key keeps the
/// comparator a strict weak ordering even for NaN input).
inline bool EdgeXLess(const EdgeRecord& a, const EdgeRecord& b) {
  return DoubleOrderKey(a.x) < DoubleOrderKey(b.x);
}

/// The spanning part of a rectangle: covers children [child_lo, child_hi]
/// (inclusive) fully in x, contributing weight w on y in [y_lo, y_hi).
/// These do not descend into the recursion (Sec. 5.2.1); they are merged
/// back in MergeSweep via the upSum counters.
struct SpanRecord {
  double y_lo;
  double y_hi;
  double w;
  int32_t child_lo;
  int32_t child_hi;
};

/// Total order on spans for the serve layer's cross-shard span merge: y_lo
/// (the MergeSweep bottom-event key) first, then every remaining field.
/// MergeSweep itself only needs y_lo order; the full total order makes the
/// k-way merge of per-shard span streams produce one canonical sequence
/// (equal-comparing spans are byte-identical), mirroring PieceYLess.
inline bool SpanYLess(const SpanRecord& a, const SpanRecord& b) {
  uint64_t ka = DoubleOrderKey(a.y_lo), kb = DoubleOrderKey(b.y_lo);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.y_hi), kb = DoubleOrderKey(b.y_hi);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.w), kb = DoubleOrderKey(b.w);
  if (ka != kb) return ka < kb;
  if (a.child_lo != b.child_lo) return a.child_lo < b.child_lo;
  return a.child_hi < b.child_hi;
}

/// The Sec. 5.1 transform: the d1 x d2 rectangle centered at object `o`,
/// carrying w(o). Both the one-shot pipeline and the serve layer's
/// per-shard derivation call THIS function — served answers are
/// bit-identical to one-shot runs only while the two sides compute
/// identical floating-point values, so keep the transform in one place.
inline PieceRecord TransformObject(const SpatialObject& o, double rect_width,
                                   double rect_height) {
  return PieceRecord{o.x - rect_width / 2.0, o.x + rect_width / 2.0,
                     o.y - rect_height / 2.0, o.y + rect_height / 2.0, o.w};
}

/// One slab-file tuple t = <y, [x1, x2], sum> (Def. 6 / Sec. 5.2.2): on any
/// horizontal line with y-coordinate in [t.y, next tuple's y), the
/// max-interval of the slab is [x_lo, x_hi) with location-weight `sum`.
struct SlabTuple {
  double y;
  double x_lo;
  double x_hi;
  double sum;
};

/// Running maximum of slab-tuple sums, produced as a by-product of writing a
/// slab-file (base case and MergeSweep alike) so callers never pay a counted
/// re-scan to learn a slab's best achievable weight. The serve layer's
/// index-pruned execution uses it as the branch-and-bound incumbent: any
/// shard whose weight upper bound cannot beat a known SlabBest is skipped.
/// Maximize objective only.
struct SlabBest {
  bool has_value = false;
  double sum = 0.0;

  /// Folds one tuple sum into the running maximum.
  void Offer(double s) {
    if (!has_value || s > sum) {
      sum = s;
      has_value = true;
    }
  }
};

}  // namespace maxrs

#endif  // MAXRS_CORE_RECORDS_H_
