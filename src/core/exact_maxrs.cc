#include "core/exact_maxrs.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "core/division.h"
#include "core/merge_sweep.h"
#include "core/plane_sweep.h"
#include "io/external_sort.h"
#include "io/prefetch_reader.h"
#include "io/record_io.h"
#include "io/temp_manager.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace maxrs {
namespace {

// Upper bound on num_threads: a request beyond this is a unit mix-up (e.g.
// bytes passed as threads), not a real machine.
constexpr size_t kMaxThreads = 1024;

Status ValidateOptions(const MaxRSOptions& options, size_t block_size) {
  if (!std::isfinite(options.rect_width) ||
      !std::isfinite(options.rect_height) || !(options.rect_width > 0.0) ||
      !(options.rect_height > 0.0)) {
    return Status::InvalidArgument(
        "rectangle dimensions must be positive and finite");
  }
  if (options.memory_bytes < 4 * block_size) {
    return Status::InvalidArgument("memory budget must be at least 4 blocks");
  }
  if (options.fanout == 1) {
    return Status::InvalidArgument("fanout must be 0 (derive) or at least 2");
  }
  // Each division child needs one block of output buffer, so a fan-out
  // beyond M/B can never run within the memory budget.
  if (options.fanout > options.memory_bytes / block_size) {
    return Status::InvalidArgument(
        "fanout exceeds the block budget M/B; lower it or raise memory_bytes");
  }
  if (options.num_threads > kMaxThreads) {
    return Status::InvalidArgument("num_threads must be at most 1024");
  }
  return Status::OK();
}

// Base-case threshold (#pieces) shared by the recursion driver and the
// top-level small-input fast path.
uint64_t DeriveBaseCaseMax(const MaxRSOptions& options) {
  return options.base_case_max_pieces != 0
             ? options.base_case_max_pieces
             : std::max<uint64_t>(2, options.memory_bytes / sizeof(PieceRecord));
}

double FiniteMid(double lo, double hi) {
  const bool lo_f = std::isfinite(lo);
  const bool hi_f = std::isfinite(hi);
  if (lo_f && hi_f) return (lo + hi) / 2.0;
  if (lo_f) return lo;
  if (hi_f) return hi;
  return 0.0;
}

/// Recursive solver: owns the per-run knobs and statistics. With a pool,
/// Solve runs concurrently on sibling sub-slabs — every recursion child owns
/// its own scratch files, so the only shared mutable state is the stats
/// block (guarded by stats_mu_) and the thread-safe temp manager.
class Driver {
 public:
  Driver(Env& env, TempFileManager& temps, const MaxRSOptions& options,
         MaxRSStats* stats, ThreadPool* pool)
      : env_(env), temps_(temps), options_(options),
        stats_(stats), pool_(pool) {
    const size_t blocks = options.memory_bytes / env.block_size();
    fanout_ = options.fanout != 0
                  ? options.fanout
                  : std::max<size_t>(2, blocks > 2 ? blocks - 2 : 2);
    base_max_ = DeriveBaseCaseMax(options);
  }

  uint64_t base_max() const { return base_max_; }
  TempFileManager& temps() { return temps_; }

  /// Streaming counterpart of Solve: consumes a *stream* of the slab's
  /// y-sorted pieces instead of a piece file, so the caller's routing and
  /// this node's solve overlap. Stats counters (levels, base cases, merges,
  /// spans) are identical to Solve over a file of the same stream — the
  /// division decisions depend only on the record sequence, which is the
  /// same — while per-child piece files are replaced by SPSC channels
  /// (io/record_stream.h) that spill deterministically beyond the cap.
  /// `best_out`, when non-null, receives the maximum tuple sum of the
  /// returned slab-file as a by-product of writing it (base case and
  /// MergeSweep alike). Only the root invocation threads it; recursive
  /// children pass null — the root file's maximum is what callers need.
  Result<std::string> StreamSolve(
      RecordSource<PieceRecord>* source,
      const core_internal::EdgeFileProvider& edge_provider,
      const Interval& slab, uint64_t depth, SlabBest* best_out = nullptr) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_->recursion_levels = std::max(stats_->recursion_levels, depth);
    }
    // Node-entry deadline poll: a cancelled query unwinds through the
    // ordinary error paths, so channels close and scratch files release.
    MAXRS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
    // Buffer up to the base-case threshold: a stream that ends within it
    // is solved in memory with no division (or edge) I/O at all.
    std::vector<PieceRecord> buffer;
    bool overflow = false;
    {
      PieceRecord p{};
      while (true) {
        Status st = source->Read(&p);
        if (st.code() == Status::Code::kNotFound) break;
        MAXRS_RETURN_IF_ERROR(st);
        buffer.push_back(p);
        if (buffer.size() > base_max_) {
          overflow = true;
          break;
        }
      }
    }
    if (!overflow) return StreamBaseCase(std::move(buffer), slab, best_out);

    // Overflow: the node divides. Only now is the edge file needed.
    MAXRS_ASSIGN_OR_RETURN(std::string edge_file, edge_provider());
    uint64_t num_edges = 0;
    MAXRS_ASSIGN_OR_RETURN(std::vector<double> bounds,
                           division_internal::ComputeEdgeBounds(
                               env_, edge_file, fanout_, &num_edges));
    if (bounds.empty()) {
      // Degenerate (all edges share one x): the slab cannot be split —
      // drain the stream and fall through to the in-memory base case,
      // exactly like the materialized division's InvalidArgument fallback.
      PieceRecord p{};
      while (true) {
        Status st = source->Read(&p);
        if (st.code() == Status::Code::kNotFound) break;
        MAXRS_RETURN_IF_ERROR(st);
        buffer.push_back(p);
      }
      return StreamBaseCase(std::move(buffer), slab, best_out);
    }

    const size_t num_children = bounds.size() + 1;
    std::vector<Interval> ranges(num_children);
    for (size_t k = 0; k < num_children; ++k) {
      ranges[k].lo = (k == 0) ? slab.lo : bounds[k - 1];
      ranges[k].hi = (k + 1 == num_children) ? slab.hi : bounds[k];
    }

    // Pass 2 (eager, as in DividePieces): route edges into per-child files
    // — the lazily-claimed inputs of whichever children overflow in turn.
    std::vector<std::string> child_edge_files(num_children);
    {
      MAXRS_ASSIGN_OR_RETURN(RecordReader<EdgeRecord> reader,
                             RecordReader<EdgeRecord>::Make(env_, edge_file));
      std::vector<RecordWriter<EdgeRecord>> writers;
      writers.reserve(num_children);
      for (size_t k = 0; k < num_children; ++k) {
        child_edge_files[k] = temps_.NewName("edges");
        MAXRS_ASSIGN_OR_RETURN(
            RecordWriter<EdgeRecord> w,
            RecordWriter<EdgeRecord>::Make(env_, child_edge_files[k]));
        writers.push_back(std::move(w));
      }
      EdgeRecord e{};
      while (reader.Next(&e)) {
        MAXRS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
        size_t k = std::min(division_internal::IndexOf(bounds, e.x),
                            num_children - 1);
        MAXRS_RETURN_IF_ERROR(writers[k].Append(e));
      }
      MAXRS_RETURN_IF_ERROR(reader.final_status());
      for (size_t k = 0; k < num_children; ++k) {
        MAXRS_RETURN_IF_ERROR(writers[k].Finish());
      }
    }

    // Pass 3: the streamed division. Per-child piece channels consumed by
    // the recursive child solves while this thread routes into them.
    std::vector<std::unique_ptr<RecordChannel<PieceRecord>>> channels;
    channels.reserve(num_children);
    for (size_t k = 0; k < num_children; ++k) {
      channels.push_back(std::make_unique<RecordChannel<PieceRecord>>(
          env_, temps_.NewName("spill"), options_.stream_channel_bytes,
          options_.write_behind));
    }
    std::string span_file = temps_.NewName("spans");
    uint64_t num_spans = 0;

    // Routes the buffered prefix, then the rest of the stream, closing
    // every channel with the final status no matter what — an unclosed
    // channel would hang its consumer forever.
    auto route_and_close = [&]() -> Status {
      Status st = [&]() -> Status {
        MAXRS_ASSIGN_OR_RETURN(
            RecordWriter<SpanRecord> span_writer,
            RecordWriter<SpanRecord>::Make(env_, span_file,
                                           options_.write_behind));
        auto emit_piece = [&](size_t k, const PieceRecord& piece) {
          return channels[k]->Append(piece);
        };
        auto emit_span = [&](const SpanRecord& s) {
          return span_writer.Append(s);
        };
        for (const PieceRecord& buffered : buffer) {
          MAXRS_RETURN_IF_ERROR(division_internal::RoutePiece(
              bounds, ranges, buffered, emit_piece, emit_span));
        }
        std::vector<PieceRecord>().swap(buffer);
        PieceRecord p{};
        while (true) {
          MAXRS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
          Status read_st = source->Read(&p);
          if (read_st.code() == Status::Code::kNotFound) break;
          MAXRS_RETURN_IF_ERROR(read_st);
          MAXRS_RETURN_IF_ERROR(division_internal::RoutePiece(
              bounds, ranges, p, emit_piece, emit_span));
        }
        MAXRS_RETURN_IF_ERROR(span_writer.Finish());
        num_spans = span_writer.count();
        return Status::OK();
      }();
      for (auto& channel : channels) {
        Status close_st = channel->Close(st);
        if (st.ok() && !close_st.ok()) st = close_st;
      }
      return st;
    };

    std::vector<std::string> child_slab_files(num_children);
    Status route_status;
    Status child_status;
    {
      TaskGroup group(pool_);
      auto submit_children = [&] {
        for (size_t k = 0; k < num_children; ++k) {
          group.Run([this, k, &channels, &child_slab_files, &child_edge_files,
                     &ranges, depth]() -> Status {
            core_internal::EdgeFileProvider provider =
                [&child_edge_files, k]() -> Result<std::string> {
              return {child_edge_files[k]};
            };
            auto slab_or =
                StreamSolve(channels[k].get(), provider, ranges[k], depth + 1);
            if (!slab_or.ok()) return slab_or.status();
            child_slab_files[k] = std::move(slab_or).value();
            return Status::OK();
          });
        }
      };
      if (pool_ == nullptr) {
        // Serial: a Run() executes inline and would park forever on an
        // open channel, so route first (the closed channels then act as
        // deterministic buffers) and solve the children afterwards.
        route_status = route_and_close();
        if (route_status.ok()) submit_children();
      } else {
        // Parallel: children first — they start solving the moment their
        // first records arrive — then feed them from this thread. The
        // producer (this thread) is running and never blocks, so parked
        // consumers always make progress (record_stream.h, "Threading").
        submit_children();
        route_status = route_and_close();
      }
      child_status = group.Wait();
    }
    for (const std::string& f : child_edge_files) temps_.Release(f);
    MAXRS_RETURN_IF_ERROR(route_status);
    MAXRS_RETURN_IF_ERROR(child_status);

    std::string out = temps_.NewName("slab");
    MAXRS_RETURN_IF_ERROR(MergeSweep(env_, ranges, child_slab_files, span_file,
                                     out, options_.objective,
                                     options_.read_ahead, options_.write_behind,
                                     options_.cancel, best_out));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_->merges;
      stats_->total_spans += num_spans;
    }
    for (const std::string& f : child_slab_files) temps_.Release(f);
    temps_.Release(span_file);
    return {std::move(out)};
  }

  /// Solves the sub-problem of `slab`, consuming (and deleting) the two
  /// input files; returns the name of the slab-file produced.
  Result<std::string> Solve(const std::string& piece_file,
                            const std::string& edge_file, const Interval& slab,
                            uint64_t num_pieces, uint64_t depth,
                            SlabBest* best_out = nullptr) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_->recursion_levels = std::max(stats_->recursion_levels, depth);
    }
    MAXRS_RETURN_IF_ERROR(CheckCancel(options_.cancel));

    if (num_pieces > base_max_) {
      auto division_or =
          DividePieces(temps_, piece_file, edge_file, slab, fanout_);
      if (division_or.ok()) {
        return Merge(piece_file, edge_file, std::move(division_or).value(),
                     depth, best_out);
      }
      if (division_or.status().code() != Status::Code::kInvalidArgument) {
        return {division_or.status()};
      }
      // Degenerate input (all edges share one x): the slab cannot be split,
      // so fall through to the in-memory base case regardless of size.
    }
    return BaseCase(piece_file, edge_file, slab, best_out);
  }

 private:
  /// In-memory base case over an already-buffered piece vector: the stream
  /// ended (or could not be split) within the memory budget, so no piece or
  /// edge file is ever materialized for this node.
  Result<std::string> StreamBaseCase(std::vector<PieceRecord> pieces,
                                     const Interval& slab,
                                     SlabBest* best_out = nullptr) {
    const std::vector<SlabTuple> tuples =
        PlaneSweep(pieces, slab, options_.objective);
    if (best_out != nullptr) {
      for (const SlabTuple& t : tuples) best_out->Offer(t.sum);
    }
    std::string out = temps_.NewName("slab");
    MAXRS_RETURN_IF_ERROR(WriteRecordFile(env_, out, tuples));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_->base_cases;
    }
    return {std::move(out)};
  }

  Result<std::string> BaseCase(const std::string& piece_file,
                               const std::string& edge_file,
                               const Interval& slab,
                               SlabBest* best_out = nullptr) {
    MAXRS_ASSIGN_OR_RETURN(std::vector<PieceRecord> pieces,
                           ReadRecordFilePrefetched<PieceRecord>(
                               env_, piece_file, options_.read_ahead));
    temps_.Release(piece_file);
    temps_.Release(edge_file);
    const std::vector<SlabTuple> tuples =
        PlaneSweep(pieces, slab, options_.objective);
    if (best_out != nullptr) {
      for (const SlabTuple& t : tuples) best_out->Offer(t.sum);
    }
    std::string out = temps_.NewName("slab");
    MAXRS_RETURN_IF_ERROR(WriteRecordFile(env_, out, tuples));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_->base_cases;
    }
    return {std::move(out)};
  }

  Result<std::string> Merge(const std::string& piece_file,
                            const std::string& edge_file,
                            DivisionResult division, uint64_t depth,
                            SlabBest* best_out = nullptr) {
    temps_.Release(piece_file);
    temps_.Release(edge_file);

    // The m child sub-slabs are independent until MergeSweep combines their
    // slab-files: each owns its own input files and writes its slab-file
    // into a distinct pre-sized slot, so solving them concurrently changes
    // nothing about the result. MergeSweep itself stays serial per node (it
    // is one ordered sweep over all children).
    std::vector<std::string> child_slab_files(division.children.size());
    MAXRS_RETURN_IF_ERROR(ParallelFor(
        pool_, 0, division.children.size(), [&](size_t k) -> Status {
          const ChildSlab& child = division.children[k];
          auto slab_file_or = Solve(child.piece_file, child.edge_file,
                                    child.x_range, child.num_pieces, depth + 1);
          if (!slab_file_or.ok()) return slab_file_or.status();
          child_slab_files[k] = std::move(slab_file_or).value();
          return Status::OK();
        }));

    std::string out = temps_.NewName("slab");
    MAXRS_RETURN_IF_ERROR(MergeSweep(env_, division.children, child_slab_files,
                                     division.span_file, out,
                                     options_.objective, options_.read_ahead,
                                     options_.write_behind, options_.cancel,
                                     best_out));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_->merges;
      stats_->total_spans += division.num_spans;
    }
    for (const std::string& f : child_slab_files) temps_.Release(f);
    temps_.Release(division.span_file);
    return {std::move(out)};
  }

  Env& env_;
  TempFileManager& temps_;
  MaxRSOptions options_;
  MaxRSStats* stats_;
  ThreadPool* pool_;
  std::mutex stats_mu_;
  size_t fanout_ = 2;
  uint64_t base_max_ = 2;
};

// The back half of the pipeline, shared by VisitRootTuples and
// VisitPreparedTuples: division + merge-sweep from sorted inputs on `pool`,
// then one streaming scan of the root slab-file. Consumes (deletes) the two
// input files of `input`.
Status SolvePreparedOnPool(Env& env, const PreparedInput& input,
                           const MaxRSOptions& options, MaxRSStats* stats,
                           ThreadPool* pool,
                           const std::function<void(const SlabTuple&)>& visit) {
  TempFileManager temps(env, options.work_prefix);
  MAXRS_ASSIGN_OR_RETURN(
      std::string root_slab_file,
      core_internal::SolveSlab(env, temps, input, options, stats, pool));
  {
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SlabTuple> reader,
                           PrefetchingReader<SlabTuple>::Make(
                               env, root_slab_file, options.read_ahead));
    SlabTuple t{};
    while (reader.Next(&t)) visit(t);
    MAXRS_RETURN_IF_ERROR(reader.final_status());
  }
  temps.Release(root_slab_file);
  return Status::OK();
}

}  // namespace

Status ValidateMaxRSOptions(const MaxRSOptions& options, size_t block_size) {
  return ValidateOptions(options, block_size);
}

namespace core_internal {

Result<std::string> SolveSlab(Env& env, TempFileManager& temps,
                              const PreparedInput& input,
                              const MaxRSOptions& options, MaxRSStats* stats,
                              ThreadPool* pool, SlabBest* best_out) {
  MAXRS_RETURN_IF_ERROR(ValidateOptions(options, env.block_size()));
  Driver driver(env, temps, options, stats, pool);
  if (options.streaming_division) {
    // Stream the piece file through the channel-based division instead of
    // materializing per-child piece files. Results, stats, and division
    // decisions are bit-identical to the materialized path below.
    Result<std::string> out = [&]() -> Result<std::string> {
      MAXRS_ASSIGN_OR_RETURN(FileRecordSource<PieceRecord> source,
                             FileRecordSource<PieceRecord>::Make(
                                 env, input.piece_file, options.read_ahead));
      core_internal::EdgeFileProvider provider =
          [&input]() -> Result<std::string> { return {input.edge_file}; };
      return driver.StreamSolve(&source, provider, input.x_range, /*depth=*/0,
                                best_out);
    }();
    // The source is closed before the inputs are released; the edge file is
    // owned by the caller's temp manager, so release both here as Solve does.
    if (out.ok()) {
      temps.Release(input.piece_file);
      temps.Release(input.edge_file);
    }
    return out;
  }
  return driver.Solve(input.piece_file, input.edge_file, input.x_range,
                      input.num_pieces, /*depth=*/0, best_out);
}

Result<std::string> SolveSlabStream(Env& env, TempFileManager& temps,
                                    RecordSource<PieceRecord>* pieces,
                                    const EdgeFileProvider& edge_provider,
                                    const Interval& x_range,
                                    const MaxRSOptions& options,
                                    MaxRSStats* stats, ThreadPool* pool,
                                    SlabBest* best_out) {
  MAXRS_RETURN_IF_ERROR(ValidateOptions(options, env.block_size()));
  Driver driver(env, temps, options, stats, pool);
  return driver.StreamSolve(pieces, edge_provider, x_range, /*depth=*/0,
                            best_out);
}

void TopTupleTracker::Visit(const SlabTuple& t) {
  if (have_pending_ && t.sum == pending_.sum && t.x_lo == pending_.x_lo &&
      t.x_hi == pending_.x_hi) {
    // Same stratum continues: the event at t.y changed something elsewhere
    // in the slab but not the max-interval. Keep the pending run open so
    // its y-extent ends where the max-interval next *changes*.
    return;
  }
  if (have_pending_) Offer(pending_, t.y);
  pending_ = t;
  have_pending_ = true;
}

void TopTupleTracker::Offer(const SlabTuple& t, double y_next) {
  if (heap_.size() < k_) {
    heap_.push_back({t, y_next});
    std::push_heap(heap_.begin(), heap_.end(), &TopTupleTracker::SumGreater);
    return;
  }
  if (!heap_.empty() && t.sum > heap_.front().tuple.sum) {
    std::pop_heap(heap_.begin(), heap_.end(), &TopTupleTracker::SumGreater);
    heap_.back() = {t, y_next};
    std::push_heap(heap_.begin(), heap_.end(), &TopTupleTracker::SumGreater);
  }
}

std::vector<RankedRegion> TopTupleTracker::Finish() {
  if (have_pending_) {
    Offer(pending_, kInf);
    have_pending_ = false;
  }
  std::sort(heap_.begin(), heap_.end(),
            [](const Entry& a, const Entry& b) { return a.tuple.sum > b.tuple.sum; });
  std::vector<RankedRegion> out;
  out.reserve(heap_.size());
  for (const Entry& e : heap_) {
    RankedRegion region;
    region.total_weight = e.tuple.sum;
    region.region = Rect{e.tuple.x_lo, e.tuple.x_hi, e.tuple.y, e.y_next};
    region.location = {FiniteMid(e.tuple.x_lo, e.tuple.x_hi),
                       FiniteMid(e.tuple.y, e.y_next)};
    out.push_back(region);
  }
  heap_.clear();
  return out;
}

bool TopTupleTracker::SumGreater(const Entry& a, const Entry& b) {
  return a.tuple.sum > b.tuple.sum;
}

MaxRSResult ExtractFromTuples(const std::vector<SlabTuple>& tuples) {
  TopTupleTracker tracker(1);
  for (const SlabTuple& t : tuples) tracker.Visit(t);
  auto best = tracker.Finish();
  MaxRSResult result;
  if (best.empty()) {
    result.region = Rect{-kInf, kInf, -kInf, kInf};
    return result;
  }
  result.location = best[0].location;
  result.total_weight = best[0].total_weight;
  result.region = best[0].region;
  return result;
}

Status VisitRootTuples(Env& env, const std::string& object_file,
                       const MaxRSOptions& options, MaxRSStats* stats,
                       const std::function<void(const SlabTuple&)>& visit) {
  MAXRS_RETURN_IF_ERROR(ValidateOptions(options, env.block_size()));
  // The pool (if any) lives for the whole run and is threaded through the
  // sorts and the recursion; num_threads <= 1 keeps the serial code path.
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  const bool minimize = options.objective == SweepObjective::kMinimize;

  MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> objects,
                         PrefetchingReader<SpatialObject>::Make(
                             env, object_file, options.read_ahead));
  const uint64_t n = objects.total();
  stats->input_objects = n;

  // The min objective restricts placements to the dataset bounding box
  // (unrestricted, the minimum is trivially 0 anywhere in empty space).
  // This needs one extra counted scan to find the box.
  Interval root_slab{-kInf, kInf};
  if (minimize) {
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> scan,
                           PrefetchingReader<SpatialObject>::Make(
                               env, object_file, options.read_ahead));
    Rect box{kInf, -kInf, kInf, -kInf};
    SpatialObject o{};
    bool any = false;
    while (scan.Next(&o)) {
      any = true;
      box.x_lo = std::min(box.x_lo, o.x);
      box.x_hi = std::max(box.x_hi, o.x);
      box.y_lo = std::min(box.y_lo, o.y);
      box.y_hi = std::max(box.y_hi, o.y);
    }
    MAXRS_RETURN_IF_ERROR(scan.final_status());
    if (!any) return Status::OK();  // empty dataset: no tuples
    // Guard degenerate (zero-extent) boxes; the domain is half-open.
    if (box.x_lo == box.x_hi) box.x_hi = box.x_lo + 1.0;
    if (box.y_lo == box.y_hi) box.y_hi = box.y_lo + 1.0;
    stats->domain = box;
    root_slab = Interval{box.x_lo, box.x_hi};
  }

  // Clips a transformed rectangle to the root slab; returns false if it
  // falls entirely outside the placement domain in x.
  auto clip = [&root_slab, minimize](PieceRecord* piece) {
    if (!minimize) return true;
    piece->x_lo = std::max(piece->x_lo, root_slab.lo);
    piece->x_hi = std::min(piece->x_hi, root_slab.hi);
    return piece->x_lo < piece->x_hi;
  };

  if (n <= DeriveBaseCaseMax(options)) {
    // Whole dataset fits in memory: one linear scan + in-memory PlaneSweep
    // (Algorithm 2 line 9 at the top level; no recursion, no extra I/O).
    std::vector<PieceRecord> pieces;
    pieces.reserve(n);
    SpatialObject o{};
    while (objects.Next(&o)) {
      PieceRecord piece =
          TransformObject(o, options.rect_width, options.rect_height);
      if (clip(&piece)) pieces.push_back(piece);
    }
    MAXRS_RETURN_IF_ERROR(objects.final_status());
    for (const SlabTuple& t : PlaneSweep(pieces, root_slab, options.objective)) {
      visit(t);
    }
    stats->base_cases += 1;
    return Status::OK();
  }

  TempFileManager temps(env, options.work_prefix);
  // Transform pass: emit the rectangle (piece) file and the vertical-edge
  // x-coordinate file, both unsorted.
  std::string raw_pieces = temps.NewName("raw_pieces");
  std::string raw_edges = temps.NewName("raw_edges");
  uint64_t num_pieces = 0;
  {
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<PieceRecord> piece_writer,
                           RecordWriter<PieceRecord>::Make(env, raw_pieces));
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<EdgeRecord> edge_writer,
                           RecordWriter<EdgeRecord>::Make(env, raw_edges));
    SpatialObject o{};
    while (objects.Next(&o)) {
      PieceRecord piece =
          TransformObject(o, options.rect_width, options.rect_height);
      if (!clip(&piece)) continue;
      MAXRS_RETURN_IF_ERROR(piece_writer.Append(piece));
      MAXRS_RETURN_IF_ERROR(edge_writer.Append(EdgeRecord{piece.x_lo}));
      MAXRS_RETURN_IF_ERROR(edge_writer.Append(EdgeRecord{piece.x_hi}));
    }
    MAXRS_RETURN_IF_ERROR(objects.final_status());
    MAXRS_RETURN_IF_ERROR(piece_writer.Finish());
    MAXRS_RETURN_IF_ERROR(edge_writer.Finish());
    num_pieces = piece_writer.count();
  }

  // The two up-front external sorts of Theorem 2. They touch disjoint files,
  // so with a pool they run concurrently (and each parallelizes internally);
  // both comparators are total orders, making the sorted files — and hence
  // everything downstream — canonical for any thread count.
  ExternalSortOptions sort_options{options.memory_bytes, pool.get(),
                                   options.read_ahead};
  std::string sorted_pieces = temps.NewName("pieces");
  std::string sorted_edges = temps.NewName("edges");
  {
    TaskGroup sorts(pool.get());
    sorts.Run([&env, &raw_pieces, &sorted_pieces, &sort_options] {
      return ExternalSort<PieceRecord>(env, raw_pieces, sorted_pieces,
                                       PieceYLess, sort_options);
    });
    sorts.Run([&env, &raw_edges, &sorted_edges, &sort_options] {
      return ExternalSort<EdgeRecord>(env, raw_edges, sorted_edges, EdgeXLess,
                                      sort_options);
    });
    MAXRS_RETURN_IF_ERROR(sorts.Wait());
  }
  temps.Release(raw_pieces);
  temps.Release(raw_edges);

  const PreparedInput prepared{sorted_pieces, sorted_edges, num_pieces,
                               root_slab};
  return SolvePreparedOnPool(env, prepared, options, stats, pool.get(), visit);
}

Status VisitPreparedTuples(Env& env, const PreparedInput& input,
                           const MaxRSOptions& options, MaxRSStats* stats,
                           const std::function<void(const SlabTuple&)>& visit) {
  MAXRS_RETURN_IF_ERROR(ValidateOptions(options, env.block_size()));
  if (options.objective == SweepObjective::kMinimize) {
    // The min objective needs the bounding-box restriction and piece
    // clipping that only the object-level pipeline performs (see
    // VisitRootTuples); an unbounded prepared run would return the
    // trivial minimum 0 in empty space.
    return Status::NotSupported(
        "prepared inputs support the maximize objective only; use "
        "RunMinRS / RunExactMaxRS for the min objective");
  }
  {
    // One header read closes a silent footgun: num_pieces defaults to 0,
    // and a wrong count would route any dataset into the in-memory base
    // case (reading the whole file into RAM) without complaint.
    MAXRS_ASSIGN_OR_RETURN(
        RecordReader<PieceRecord> probe,
        RecordReader<PieceRecord>::Make(env, input.piece_file));
    if (probe.total() != input.num_pieces) {
      return Status::InvalidArgument(
          "PreparedInput::num_pieces (" + std::to_string(input.num_pieces) +
          ") does not match the piece file's record count (" +
          std::to_string(probe.total()) + ")");
    }
  }
  stats->input_objects = input.num_pieces;
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  return SolvePreparedOnPool(env, input, options, stats, pool.get(), visit);
}

}  // namespace core_internal

namespace {

// Shared tail of the two external entry points: run `produce` (one of the
// Visit*Tuples pipelines), extract the best region from its tuple stream,
// and stamp I/O and wall-clock statistics.
Result<MaxRSResult> ExtractTimedResult(
    Env& env,
    const std::function<Status(
        MaxRSStats*, const std::function<void(const SlabTuple&)>&)>& produce) {
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  MaxRSStats stats;
  core_internal::TopTupleTracker tracker(1);
  MAXRS_RETURN_IF_ERROR(produce(
      &stats, [&tracker](const SlabTuple& t) { tracker.Visit(t); }));

  MaxRSResult result;
  auto best = tracker.Finish();
  if (best.empty()) {
    result.region = Rect{-kInf, kInf, -kInf, kInf};
  } else {
    result.location = best[0].location;
    result.total_weight = best[0].total_weight;
    result.region = best[0].region;
  }
  stats.io = env.stats().Snapshot() - io_before;
  stats.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return {std::move(result)};
}

}  // namespace

MaxRSResult ExactMaxRSInMemory(const std::vector<SpatialObject>& objects,
                               double rect_width, double rect_height) {
  std::vector<PieceRecord> pieces;
  pieces.reserve(objects.size());
  for (const SpatialObject& o : objects) {
    pieces.push_back(TransformObject(o, rect_width, rect_height));
  }
  const Interval everything{-kInf, kInf};
  MaxRSResult result =
      core_internal::ExtractFromTuples(PlaneSweep(pieces, everything));
  result.stats.input_objects = objects.size();
  result.stats.base_cases = 1;
  return result;
}

Result<MaxRSResult> RunExactMaxRS(Env& env, const std::string& object_file,
                                  const MaxRSOptions& options) {
  return ExtractTimedResult(
      env, [&](MaxRSStats* stats,
               const std::function<void(const SlabTuple&)>& visit) {
        return core_internal::VisitRootTuples(env, object_file, options, stats,
                                              visit);
      });
}

Result<MaxRSResult> RunExactMaxRSPrepared(Env& env, const PreparedInput& input,
                                          const MaxRSOptions& options) {
  return ExtractTimedResult(
      env, [&](MaxRSStats* stats,
               const std::function<void(const SlabTuple&)>& visit) {
        return core_internal::VisitPreparedTuples(env, input, options, stats,
                                                  visit);
      });
}

Result<MaxRSResult> RunExactMaxRS(Env& env,
                                  const std::vector<SpatialObject>& objects,
                                  const MaxRSOptions& options) {
  const std::string staging = options.work_prefix + "/dataset_staging";
  MAXRS_RETURN_IF_ERROR(WriteRecordFile(env, staging, objects));
  auto result = RunExactMaxRS(env, staging, options);
  Status st = env.Delete(staging);
  (void)st;
  return result;
}

}  // namespace maxrs
