#include "core/extensions.h"

#include <algorithm>
#include <optional>

#include "core/plane_sweep.h"
#include "core/records.h"
#include "io/record_io.h"
#include "io/temp_manager.h"
#include "util/stopwatch.h"

namespace maxrs {

Result<std::vector<RankedRegion>> RunTopKMaxRS(Env& env,
                                               const std::string& object_file,
                                               const MaxRSOptions& options,
                                               size_t k, MaxRSStats* stats) {
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  MaxRSStats local_stats;
  core_internal::TopTupleTracker tracker(k);
  MAXRS_RETURN_IF_ERROR(core_internal::VisitRootTuples(
      env, object_file, options, &local_stats,
      [&tracker](const SlabTuple& t) { tracker.Visit(t); }));
  local_stats.io = env.stats().Snapshot() - io_before;
  local_stats.wall_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return {tracker.Finish()};
}

std::vector<RankedRegion> TopKMaxRSInMemory(
    const std::vector<SpatialObject>& objects, double rect_width,
    double rect_height, size_t k) {
  std::vector<PieceRecord> pieces;
  pieces.reserve(objects.size());
  for (const SpatialObject& o : objects) {
    pieces.push_back(PieceRecord{o.x - rect_width / 2.0, o.x + rect_width / 2.0,
                                 o.y - rect_height / 2.0,
                                 o.y + rect_height / 2.0, o.w});
  }
  core_internal::TopTupleTracker tracker(k);
  for (const SlabTuple& t : PlaneSweep(pieces, Interval{-kInf, kInf})) {
    tracker.Visit(t);
  }
  return tracker.Finish();
}

namespace {

/// Streaming minimum-stratum tracker restricted to a y-window: tuples whose
/// stratum misses [window_lo, window_hi) are skipped, partially covered
/// strata are clamped. Mirrors TopTupleTracker for the min objective.
class MinTupleTracker {
 public:
  MinTupleTracker(double window_lo, double window_hi)
      : window_lo_(window_lo), window_hi_(window_hi) {}

  void Visit(const SlabTuple& t) {
    if (have_pending_) Offer(pending_, t.y);
    pending_ = t;
    have_pending_ = true;
  }

  /// Returns the best (minimum) region, or nullopt if no stratum
  /// intersected the window.
  std::optional<RankedRegion> Finish() {
    if (have_pending_) {
      Offer(pending_, kInf);
      have_pending_ = false;
    }
    return best_;
  }

 private:
  void Offer(const SlabTuple& t, double y_next) {
    const double lo = std::max(t.y, window_lo_);
    const double hi = std::min(y_next, window_hi_);
    if (lo >= hi) return;
    if (!best_.has_value() || t.sum < best_->total_weight) {
      RankedRegion region;
      region.total_weight = t.sum;
      region.region = Rect{t.x_lo, t.x_hi, lo, hi};
      region.location = {(t.x_lo + t.x_hi) / 2.0, (lo + hi) / 2.0};
      best_ = region;
    }
  }

  double window_lo_;
  double window_hi_;
  std::optional<RankedRegion> best_;
  SlabTuple pending_{};
  bool have_pending_ = false;
};

}  // namespace

Result<MaxRSResult> RunMinRS(Env& env, const std::string& object_file,
                             const MaxRSOptions& options) {
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  MaxRSOptions min_options = options;
  min_options.objective = SweepObjective::kMinimize;

  // The pipeline restricts placements to the bounding box in x; the tracker
  // applies the same restriction in y using the domain reported in stats,
  // which is populated before the first tuple is visited.
  MaxRSStats stats;
  std::optional<MinTupleTracker> tracker;
  Status st = core_internal::VisitRootTuples(
      env, object_file, min_options, &stats, [&](const SlabTuple& t) {
        if (!tracker.has_value()) {
          tracker.emplace(stats.domain.y_lo, stats.domain.y_hi);
        }
        tracker->Visit(t);
      });
  MAXRS_RETURN_IF_ERROR(st);

  MaxRSResult result;
  std::optional<RankedRegion> best =
      tracker.has_value() ? tracker->Finish() : std::nullopt;
  if (best.has_value()) {
    result.location = best->location;
    result.total_weight = best->total_weight;
    result.region = best->region;
  } else {
    result.region = Rect{-kInf, kInf, -kInf, kInf};
  }
  stats.io = env.stats().Snapshot() - io_before;
  stats.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return {std::move(result)};
}

Result<std::vector<RankedRegion>> RunGreedyKMaxRS(Env& env,
                                                  const std::string& object_file,
                                                  const MaxRSOptions& options,
                                                  size_t k, MaxRSStats* stats) {
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  MaxRSStats local_stats;
  TempFileManager temps(env, options.work_prefix);

  std::vector<RankedRegion> placements;
  std::string current = object_file;
  bool current_is_temp = false;
  for (size_t round = 0; round < k; ++round) {
    auto result_or = RunExactMaxRS(env, current, options);
    if (!result_or.ok()) {
      if (current_is_temp) temps.Release(current);
      return {result_or.status()};
    }
    const MaxRSResult& result = *result_or;
    local_stats.input_objects =
        std::max(local_stats.input_objects, result.stats.input_objects);
    local_stats.recursion_levels =
        std::max(local_stats.recursion_levels, result.stats.recursion_levels);
    if (result.total_weight <= 0.0) break;  // nothing left worth covering
    placements.push_back(
        RankedRegion{result.location, result.total_weight, result.region});
    if (round + 1 == k) break;

    // Filter out the objects served by this placement (one linear pass).
    const Rect served = Rect::Centered(result.location, options.rect_width,
                                       options.rect_height);
    std::string next = temps.NewName("greedy_rest");
    {
      auto reader_or = RecordReader<SpatialObject>::Make(env, current);
      if (!reader_or.ok()) return {reader_or.status()};
      auto writer_or = RecordWriter<SpatialObject>::Make(env, next);
      if (!writer_or.ok()) return {writer_or.status()};
      SpatialObject o{};
      while (reader_or->Next(&o)) {
        if (!served.Contains(o)) {
          MAXRS_RETURN_IF_ERROR(writer_or->Append(o));
        }
      }
      MAXRS_RETURN_IF_ERROR(reader_or->final_status());
      MAXRS_RETURN_IF_ERROR(writer_or->Finish());
    }
    if (current_is_temp) temps.Release(current);
    current = std::move(next);
    current_is_temp = true;
  }
  if (current_is_temp) temps.Release(current);

  local_stats.io = env.stats().Snapshot() - io_before;
  local_stats.wall_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return {std::move(placements)};
}

std::vector<RankedRegion> GreedyKMaxRSInMemory(std::vector<SpatialObject> objects,
                                               double rect_width,
                                               double rect_height, size_t k) {
  std::vector<RankedRegion> placements;
  for (size_t round = 0; round < k && !objects.empty(); ++round) {
    const MaxRSResult result =
        ExactMaxRSInMemory(objects, rect_width, rect_height);
    if (result.total_weight <= 0.0) break;
    placements.push_back(
        RankedRegion{result.location, result.total_weight, result.region});
    const Rect served = Rect::Centered(result.location, rect_width, rect_height);
    objects.erase(
        std::remove_if(
            objects.begin(), objects.end(),
            [&served](const SpatialObject& o) { return served.Contains(o); }),
        objects.end());
  }
  return placements;
}

MaxRSResult MinRSInMemory(const std::vector<SpatialObject>& objects,
                          double rect_width, double rect_height) {
  MaxRSResult result;
  result.stats.input_objects = objects.size();
  if (objects.empty()) {
    result.region = Rect{-kInf, kInf, -kInf, kInf};
    return result;
  }
  Rect box = BoundingBox(objects);
  if (box.x_lo == box.x_hi) box.x_hi = box.x_lo + 1.0;
  if (box.y_lo == box.y_hi) box.y_hi = box.y_lo + 1.0;
  result.stats.domain = box;

  std::vector<PieceRecord> pieces;
  pieces.reserve(objects.size());
  for (const SpatialObject& o : objects) {
    PieceRecord p{o.x - rect_width / 2.0, o.x + rect_width / 2.0,
                  o.y - rect_height / 2.0, o.y + rect_height / 2.0, o.w};
    p.x_lo = std::max(p.x_lo, box.x_lo);
    p.x_hi = std::min(p.x_hi, box.x_hi);
    if (p.x_lo < p.x_hi) pieces.push_back(p);
  }
  MinTupleTracker tracker(box.y_lo, box.y_hi);
  for (const SlabTuple& t : PlaneSweep(pieces, Interval{box.x_lo, box.x_hi},
                                       SweepObjective::kMinimize)) {
    tracker.Visit(t);
  }
  std::optional<RankedRegion> best = tracker.Finish();
  if (best.has_value()) {
    result.location = best->location;
    result.total_weight = best->total_weight;
    result.region = best->region;
  } else {
    result.region = Rect{-kInf, kInf, -kInf, kInf};
  }
  result.stats.base_cases = 1;
  return result;
}

}  // namespace maxrs
