#include "core/plane_sweep.h"

#include <algorithm>
#include <cstdint>

#include "core/segment_tree.h"
#include "util/check.h"

namespace maxrs {
namespace {

struct Event {
  double y;
  double x_lo;
  double x_hi;
  double w;  // +w at bottom edge, -w at top edge.
};

}  // namespace

std::vector<SlabTuple> PlaneSweep(const std::vector<PieceRecord>& pieces,
                                  const Interval& slab,
                                  SweepObjective objective) {
  std::vector<SlabTuple> out;
  if (pieces.empty()) return out;

  // Elementary interval boundaries: slab bounds plus all piece x-edges.
  std::vector<double> xs;
  xs.reserve(2 * pieces.size() + 2);
  xs.push_back(slab.lo);
  xs.push_back(slab.hi);
  for (const PieceRecord& p : pieces) {
    MAXRS_DCHECK(p.x_lo >= slab.lo && p.x_hi <= slab.hi);
    MAXRS_DCHECK(p.x_lo < p.x_hi && p.y_lo < p.y_hi);
    xs.push_back(p.x_lo);
    xs.push_back(p.x_hi);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  const size_t num_elem = xs.size() - 1;  // elementary intervals [xs[t], xs[t+1])

  auto index_of = [&xs](double x) {
    return static_cast<size_t>(
        std::lower_bound(xs.begin(), xs.end(), x) - xs.begin());
  };

  std::vector<Event> events;
  events.reserve(2 * pieces.size());
  for (const PieceRecord& p : pieces) {
    events.push_back({p.y_lo, p.x_lo, p.x_hi, p.w});
    events.push_back({p.y_hi, p.x_lo, p.x_hi, -p.w});
  }
  // Total order (not just by y): events tied on y are applied to the tree
  // in one canonical sequence, which makes the emitted tuples a pure
  // function of the piece *multiset* — floating-point accumulation is not
  // associative, so without this the caller's piece order could leak into
  // last-ulp differences of tied-y sums. The serve layer's bit-identity
  // contract (pieces arrive sorted there, in file order in the one-shot
  // fast path) rests on this.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    uint64_t ka = DoubleOrderKey(a.y), kb = DoubleOrderKey(b.y);
    if (ka != kb) return ka < kb;
    ka = DoubleOrderKey(a.x_lo), kb = DoubleOrderKey(b.x_lo);
    if (ka != kb) return ka < kb;
    ka = DoubleOrderKey(a.x_hi), kb = DoubleOrderKey(b.x_hi);
    if (ka != kb) return ka < kb;
    return DoubleOrderKey(a.w) < DoubleOrderKey(b.w);
  });

  SegmentTree tree(num_elem);
  size_t i = 0;
  while (i < events.size()) {
    const double y = events[i].y;
    // Apply every event at this h-line: with half-open [y_lo, y_hi) extents,
    // both openings and closings at y take effect for the stratum [y, next).
    while (i < events.size() && events[i].y == y) {
      const Event& e = events[i];
      const size_t first = index_of(e.x_lo);
      const size_t last = index_of(e.x_hi) - 1;  // inclusive elementary index
      tree.RangeAdd(first, last, e.w);
      ++i;
    }
    const MaxRun run = objective == SweepObjective::kMaximize
                           ? tree.MaxInterval()
                           : tree.MinInterval();
    out.push_back(SlabTuple{y, xs[run.first], xs[run.last + 1], run.value});
  }
  return out;
}

size_t BestTupleIndex(const std::vector<SlabTuple>& tuples) {
  if (tuples.empty()) return SIZE_MAX;
  size_t best = 0;
  for (size_t i = 1; i < tuples.size(); ++i) {
    if (tuples[i].sum > tuples[best].sum) best = i;
  }
  return best;
}

}  // namespace maxrs
