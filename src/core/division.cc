#include "core/division.h"

#include <algorithm>

#include "io/record_io.h"
#include "util/check.h"

namespace maxrs {
namespace {

/// Child index containing coordinate v. `bounds` holds the m-1 interior
/// boundaries s_1 < ... < s_{m-1}; child k covers [s_k, s_{k+1}) with
/// s_0 = slab.lo, s_m = slab.hi. Values equal to slab.hi are clamped into
/// the last child (pieces are clipped to the slab, so x_hi == slab.hi is
/// legal and must not fall off the end).
size_t ChildOf(const std::vector<double>& bounds, double v) {
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

}  // namespace

Result<DivisionResult> DividePieces(TempFileManager& temps,
                                    const std::string& piece_file,
                                    const std::string& edge_file,
                                    const Interval& slab, size_t m) {
  Env& env = temps.env();
  MAXRS_CHECK(m >= 2);

  // --- Pass 1: choose interior boundaries from edge-count quantiles. ---
  // Cut after every ~n_e/m edges, but only where the value strictly
  // increases, so that routing by value reproduces the chunks exactly.
  std::vector<double> bounds;
  uint64_t num_edges = 0;
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<EdgeRecord> reader,
                           RecordReader<EdgeRecord>::Make(env, edge_file));
    num_edges = reader.total();
    const uint64_t target = (num_edges + m - 1) / m;  // ceil
    uint64_t in_chunk = 0;
    bool have_prev = false;
    double prev = 0.0;
    EdgeRecord e{};
    while (reader.Next(&e)) {
      if (have_prev && in_chunk >= target && e.x > prev &&
          bounds.size() + 1 < m) {
        bounds.push_back(e.x);
        in_chunk = 0;
      }
      prev = e.x;
      have_prev = true;
      ++in_chunk;
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
  }
  if (bounds.empty()) {
    return {Status::InvalidArgument(
        "division cannot split: all edges share one x-coordinate")};
  }
  const size_t num_children = bounds.size() + 1;

  DivisionResult result;
  result.children.resize(num_children);
  for (size_t k = 0; k < num_children; ++k) {
    ChildSlab& child = result.children[k];
    child.x_range.lo = (k == 0) ? slab.lo : bounds[k - 1];
    child.x_range.hi = (k + 1 == num_children) ? slab.hi : bounds[k];
    child.piece_file = temps.NewName("pieces");
    child.edge_file = temps.NewName("edges");
  }
  result.span_file = temps.NewName("spans");

  // --- Pass 2: route edges (contiguous cut; stays x-sorted). ---
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<EdgeRecord> reader,
                           RecordReader<EdgeRecord>::Make(env, edge_file));
    std::vector<RecordWriter<EdgeRecord>> writers;
    writers.reserve(num_children);
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_ASSIGN_OR_RETURN(
          RecordWriter<EdgeRecord> w,
          RecordWriter<EdgeRecord>::Make(env, result.children[k].edge_file));
      writers.push_back(std::move(w));
    }
    EdgeRecord e{};
    while (reader.Next(&e)) {
      size_t k = std::min(ChildOf(bounds, e.x), num_children - 1);
      MAXRS_RETURN_IF_ERROR(writers[k].Append(e));
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_RETURN_IF_ERROR(writers[k].Finish());
      result.children[k].num_edges = writers[k].count();
    }
  }

  // --- Pass 3: route pieces (subsequences; stay y-sorted). ---
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> reader,
                           RecordReader<PieceRecord>::Make(env, piece_file));
    std::vector<RecordWriter<PieceRecord>> writers;
    writers.reserve(num_children);
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_ASSIGN_OR_RETURN(
          RecordWriter<PieceRecord> w,
          RecordWriter<PieceRecord>::Make(env, result.children[k].piece_file));
      writers.push_back(std::move(w));
    }
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<SpanRecord> span_writer,
                           RecordWriter<SpanRecord>::Make(env, result.span_file));

    PieceRecord p{};
    while (reader.Next(&p)) {
      // Children touched by the piece: i (contains x_lo) through j. A piece
      // ending exactly at a child's lower boundary never enters that child.
      const size_t i = std::min(ChildOf(bounds, p.x_lo), num_children - 1);
      size_t j = std::min(ChildOf(bounds, p.x_hi), num_children - 1);
      if (j > i && p.x_hi == result.children[j].x_range.lo) --j;

      // A part that covers its child's entire x-range is *spanning* and must
      // not descend (Sec. 5.2.1: spanning rectangles would defeat Lemma 1's
      // termination argument). Child i is fully covered iff the piece starts
      // at its lower bound; child j iff the piece ends at its upper bound;
      // every child strictly between i and j is always fully covered.
      const bool left_full = (p.x_lo == result.children[i].x_range.lo);
      const bool right_full = (p.x_hi == result.children[j].x_range.hi);

      if (i == j) {
        if (left_full && right_full) {
          SpanRecord span{p.y_lo, p.y_hi, p.w, static_cast<int32_t>(i),
                          static_cast<int32_t>(i)};
          MAXRS_RETURN_IF_ERROR(span_writer.Append(span));
        } else {
          MAXRS_RETURN_IF_ERROR(writers[i].Append(p));
        }
        continue;
      }

      const size_t span_lo = left_full ? i : i + 1;
      const size_t span_hi = right_full ? j : j - 1;
      if (!left_full) {
        PieceRecord left = p;  // [x_lo, s_i): keeps a real edge strictly inside
        left.x_hi = result.children[i].x_range.hi;
        MAXRS_RETURN_IF_ERROR(writers[i].Append(left));
      }
      if (!right_full) {
        PieceRecord right = p;  // [s_{j-1}, x_hi)
        right.x_lo = result.children[j].x_range.lo;
        MAXRS_RETURN_IF_ERROR(writers[j].Append(right));
      }
      if (span_lo <= span_hi) {
        SpanRecord span{p.y_lo, p.y_hi, p.w, static_cast<int32_t>(span_lo),
                        static_cast<int32_t>(span_hi)};
        MAXRS_RETURN_IF_ERROR(span_writer.Append(span));
      }
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_RETURN_IF_ERROR(writers[k].Finish());
      result.children[k].num_pieces = writers[k].count();
    }
    MAXRS_RETURN_IF_ERROR(span_writer.Finish());
    result.num_spans = span_writer.count();
  }

  return {std::move(result)};
}

}  // namespace maxrs
