#include "core/division.h"

#include <algorithm>

#include "io/record_io.h"
#include "util/check.h"

namespace maxrs {

namespace division_internal {

Result<std::vector<double>> ComputeEdgeBounds(Env& env,
                                              const std::string& edge_file,
                                              size_t m, uint64_t* num_edges) {
  // Cut after every ~n_e/m edges, but only where the value strictly
  // increases, so that routing by value reproduces the chunks exactly.
  std::vector<double> bounds;
  MAXRS_ASSIGN_OR_RETURN(RecordReader<EdgeRecord> reader,
                         RecordReader<EdgeRecord>::Make(env, edge_file));
  *num_edges = reader.total();
  const uint64_t target = (*num_edges + m - 1) / m;  // ceil
  uint64_t in_chunk = 0;
  bool have_prev = false;
  double prev = 0.0;
  EdgeRecord e{};
  while (reader.Next(&e)) {
    if (have_prev && in_chunk >= target && e.x > prev &&
        bounds.size() + 1 < m) {
      bounds.push_back(e.x);
      in_chunk = 0;
    }
    prev = e.x;
    have_prev = true;
    ++in_chunk;
  }
  MAXRS_RETURN_IF_ERROR(reader.final_status());
  return {std::move(bounds)};
}

}  // namespace division_internal

Result<DivisionResult> DividePieces(TempFileManager& temps,
                                    const std::string& piece_file,
                                    const std::string& edge_file,
                                    const Interval& slab, size_t m) {
  Env& env = temps.env();
  MAXRS_CHECK(m >= 2);

  // --- Pass 1: choose interior boundaries from edge-count quantiles. ---
  uint64_t num_edges = 0;
  MAXRS_ASSIGN_OR_RETURN(
      std::vector<double> bounds,
      division_internal::ComputeEdgeBounds(env, edge_file, m, &num_edges));
  if (bounds.empty()) {
    return {Status::InvalidArgument(
        "division cannot split: all edges share one x-coordinate")};
  }
  const size_t num_children = bounds.size() + 1;

  DivisionResult result;
  result.children.resize(num_children);
  std::vector<Interval> ranges(num_children);
  for (size_t k = 0; k < num_children; ++k) {
    ChildSlab& child = result.children[k];
    child.x_range.lo = (k == 0) ? slab.lo : bounds[k - 1];
    child.x_range.hi = (k + 1 == num_children) ? slab.hi : bounds[k];
    ranges[k] = child.x_range;
    child.piece_file = temps.NewName("pieces");
    child.edge_file = temps.NewName("edges");
  }
  result.span_file = temps.NewName("spans");

  // --- Pass 2: route edges (contiguous cut; stays x-sorted). ---
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<EdgeRecord> reader,
                           RecordReader<EdgeRecord>::Make(env, edge_file));
    std::vector<RecordWriter<EdgeRecord>> writers;
    writers.reserve(num_children);
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_ASSIGN_OR_RETURN(
          RecordWriter<EdgeRecord> w,
          RecordWriter<EdgeRecord>::Make(env, result.children[k].edge_file));
      writers.push_back(std::move(w));
    }
    EdgeRecord e{};
    while (reader.Next(&e)) {
      size_t k = std::min(division_internal::IndexOf(bounds, e.x),
                          num_children - 1);
      MAXRS_RETURN_IF_ERROR(writers[k].Append(e));
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_RETURN_IF_ERROR(writers[k].Finish());
      result.children[k].num_edges = writers[k].count();
    }
  }

  // --- Pass 3: route pieces (subsequences; stay y-sorted). ---
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<PieceRecord> reader,
                           RecordReader<PieceRecord>::Make(env, piece_file));
    std::vector<RecordWriter<PieceRecord>> writers;
    writers.reserve(num_children);
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_ASSIGN_OR_RETURN(
          RecordWriter<PieceRecord> w,
          RecordWriter<PieceRecord>::Make(env, result.children[k].piece_file));
      writers.push_back(std::move(w));
    }
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<SpanRecord> span_writer,
                           RecordWriter<SpanRecord>::Make(env, result.span_file));

    PieceRecord p{};
    while (reader.Next(&p)) {
      MAXRS_RETURN_IF_ERROR(division_internal::RoutePiece(
          bounds, ranges, p,
          [&](size_t k, const PieceRecord& piece) {
            return writers[k].Append(piece);
          },
          [&](const SpanRecord& span) { return span_writer.Append(span); }));
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
    for (size_t k = 0; k < num_children; ++k) {
      MAXRS_RETURN_IF_ERROR(writers[k].Finish());
      result.children[k].num_pieces = writers[k].count();
    }
    MAXRS_RETURN_IF_ERROR(span_writer.Finish());
    result.num_spans = span_writer.count();
  }

  return {std::move(result)};
}

}  // namespace maxrs
