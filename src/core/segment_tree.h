// Augmented segment tree over a fixed set of elementary x-intervals,
// supporting range-add of weights and extraction of one maximal run of
// elementary intervals achieving the global maximum location-weight.
//
// This is the in-memory sweep structure of the PlaneSweep base case
// (the role played by the binary interval tree in Imai & Asano [11]):
// inserting a rectangle's x-extent is a range-add of +w, removing it -w,
// and after each batch of events the tree reports the max-interval tuple.
#ifndef MAXRS_CORE_SEGMENT_TREE_H_
#define MAXRS_CORE_SEGMENT_TREE_H_

#include <cstddef>
#include <vector>

#include "geom/geometry.h"

namespace maxrs {

/// A maximal run of elementary intervals with the maximum value.
struct MaxRun {
  double value = 0.0;     ///< The maximum location-weight.
  size_t first = 0;       ///< First elementary interval index of the run.
  size_t last = 0;        ///< Last elementary interval index (inclusive).
};

/// The lazy range-add segment tree described in the header comment.
class SegmentTree {
 public:
  /// Builds a tree over `num_leaves` elementary intervals, all with value 0.
  explicit SegmentTree(size_t num_leaves);

  /// Adds `w` to every elementary interval in [first, last] (inclusive).
  void RangeAdd(size_t first, size_t last, double w);

  /// Global maximum value.
  double Max() const;

  /// Global minimum value.
  double Min() const;

  /// Returns the leftmost maximal run of elementary intervals achieving
  /// Max(). "Maximal" means it cannot be extended right without dropping
  /// below the maximum.
  MaxRun MaxInterval() const;

  /// Symmetric: the leftmost maximal run achieving Min(). Used by the MinRS
  /// extension's min-objective sweep.
  MaxRun MinInterval() const;

  /// Number of elementary intervals the tree was built over.
  size_t num_leaves() const { return num_leaves_; }

 private:
  struct Node {
    double max = 0.0;  ///< Max over subtree, including this node's `add`.
    double min = 0.0;  ///< Min over subtree, including this node's `add`.
    double add = 0.0;  ///< Lazy addition applied to the whole subtree.
  };

  void Add(size_t node, size_t lo, size_t hi, size_t first, size_t last, double w);
  /// Leftmost leaf attaining the subtree max (want_max) or min (!want_max).
  size_t FindLeftmost(size_t node, size_t lo, size_t hi, double acc,
                      bool want_max) const;
  /// Smallest leaf index >= from whose value is below (want_max) or above
  /// (!want_max) the target, or num_leaves_ if none.
  size_t FindFirstOutside(size_t node, size_t lo, size_t hi, double acc,
                          size_t from, double target, bool want_max) const;

  MaxRun ExtremalInterval(bool want_max) const;

  size_t num_leaves_;
  std::vector<Node> nodes_;
};

}  // namespace maxrs

#endif  // MAXRS_CORE_SEGMENT_TREE_H_
