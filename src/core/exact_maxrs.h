// ExactMaxRS (Algorithm 2): the paper's primary contribution — the first
// external-memory algorithm for the MaxRS problem, optimal at
// O((N/B) log_{M/B}(N/B)) I/Os under the EM comparison model (Theorem 2).
//
// Pipeline (Sec. 5):
//   1. Transform each object o into the d1 x d2 rectangle centered at o
//      carrying weight w(o); MaxRS becomes finding the max-region of the
//      rectangle set (Sec. 4, Def. 5).
//   2. External-sort the rectangle file by y and the vertical-edge
//      x-coordinates by x (the two up-front sorts of Theorem 2).
//   3. Recursively divide the slab into m = Theta(M/B) sub-slabs of roughly
//      equal edge count, separating spanning parts (division.h); solve each
//      sub-slab (in memory once it fits, plane_sweep.h); merge child
//      slab-files bottom-up (merge_sweep.h).
//   4. Scan the root slab-file for the tuple with the maximum sum: its
//      stratum is the max-region; any interior point is an optimal location.
//
// This header is the public entry point of the library for MaxRS.
#ifndef MAXRS_CORE_EXACT_MAXRS_H_
#define MAXRS_CORE_EXACT_MAXRS_H_

#include <functional>
#include <string>
#include <vector>

#include "core/plane_sweep.h"
#include "core/records.h"
#include "geom/geometry.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "io/record_stream.h"
#include "io/temp_manager.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace maxrs {

/// Tuning knobs of one ExactMaxRS run (paper defaults in bench_common.h).
struct MaxRSOptions {
  /// Query rectangle size (paper: d1 x d2).
  double rect_width = 1000.0;
  double rect_height = 1000.0;

  /// Memory budget M in bytes. Governs the fan-out m = Theta(M/B), the
  /// external-sort fan-in, and the in-memory base-case threshold.
  size_t memory_bytes = 1 << 20;

  /// Fan-out override for tests; 0 derives max(2, M/B - 2).
  size_t fanout = 0;

  /// Base-case threshold override (#pieces) for tests; 0 derives M/|piece|.
  uint64_t base_case_max_pieces = 0;

  /// Namespace prefix for scratch files inside the Env.
  std::string work_prefix = "maxrs_work";

  /// Worker threads for the parallel execution engine. <= 1 runs the exact
  /// serial code path (no pool is created). With T > 1 threads the two
  /// up-front external sorts, the run formation / merge groups inside each
  /// sort, and the independent child sub-slabs of every recursion node
  /// execute concurrently; MergeSweep stays serial per node. Results are
  /// bit-identical for any value, and the reported I/O counts at 1 thread
  /// match the serial engine exactly. Transient memory peaks at ~2 x T x
  /// memory_bytes during the up-front-sort phase (two concurrent sorts,
  /// each buffering a wave of T run chunks of ~memory_bytes).
  size_t num_threads = 1;

  /// Double-buffered asynchronous read-ahead (io/prefetch_reader.h) on the
  /// hot sequential streams: the object/transform scans, external-sort run
  /// formation and merge fan-in, MergeSweep inputs, and the root slab-file
  /// scan. Block k+1 is fetched by a background I/O worker while block k is
  /// deserialized. Results and block counts are bit-identical with the
  /// synchronous path at any thread count; only the overlap of I/O and
  /// compute changes. Costs one extra block of buffer per open stream.
  bool read_ahead = false;

  /// kMaximize is the paper's MaxRS. kMinimize runs the MinRS extension's
  /// min-objective sweep with placements restricted to the dataset bounding
  /// box (unrestricted MinRS is trivially 0 in empty space); use RunMinRS
  /// from core/extensions.h rather than setting this directly.
  SweepObjective objective = SweepObjective::kMaximize;

  /// Zero-materialization division (io/record_stream.h): route each
  /// recursion node's pieces into per-child SPSC channels consumed by the
  /// child solves directly — children start solving while the parent is
  /// still routing — instead of materializing per-child piece files. A
  /// channel spills to a scratch file only beyond stream_channel_bytes.
  /// Results, stats counters, and division decisions are bit-identical to
  /// the materialized path; only the I/O schedule (and count) changes.
  /// Off by default: the materialized path remains the reference block
  /// schedule that the determinism goldens pin.
  bool streaming_division = false;

  /// Per-channel in-memory cap (bytes) for streaming_division's child
  /// piece channels. A node's resident routing memory is bounded by
  /// fanout x min(cap, child size); records beyond the cap spill to one
  /// scratch file per channel, deterministically (a pure function of the
  /// routed records and the cap — never of scheduling). 0 spills
  /// everything (the fully-external schedule); SIZE_MAX never spills.
  size_t stream_channel_bytes = 1 << 20;

  /// Double-buffered asynchronous write-behind (io/record_io.h) on the hot
  /// sequential writers — the dual of read_ahead: block k is flushed by a
  /// background I/O worker while block k+1 is serialized. Applied to the
  /// MergeSweep output writers and the streaming division's span/spill
  /// writers. Results and block counts are bit-identical either way.
  bool write_behind = false;

  /// Optional cooperative cancellation (util/cancel.h), not owned; must
  /// outlive the run. Polled at every recursion-node entry, routing loop,
  /// and MergeSweep record loop: an expired token aborts the run with a
  /// clean kDeadlineExceeded through the ordinary error paths (scratch
  /// files released, channels closed). Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Execution statistics of one ExactMaxRS run.
struct MaxRSStats {
  uint64_t input_objects = 0;
  uint64_t recursion_levels = 0;  ///< Depth of the deepest recursion node.
  uint64_t base_cases = 0;        ///< In-memory PlaneSweep invocations.
  uint64_t merges = 0;            ///< MergeSweep invocations.
  uint64_t total_spans = 0;       ///< Spanning records produced overall.
  IoStatsSnapshot io;             ///< Block transfers attributed to this run.
  /// Number of queries that shared the execution behind `io`: 1 for every
  /// one-shot and serial serve-layer run; k > 1 when the serve layer
  /// executed this query inside a k-query shared-scan batch, in which case
  /// `io` is this query's amortized equal share of the batch total and
  /// `wall_seconds` is the whole batch's wall time (docs/IO_MODEL.md,
  /// "Batched shared scans").
  uint64_t batch_size = 1;
  double wall_seconds = 0.0;
  /// Placement domain used: infinite for MaxRS, the dataset bounding box for
  /// the min objective.
  Rect domain{-kInf, kInf, -kInf, kInf};
};

/// The answer to a MaxRS query.
struct MaxRSResult {
  /// An optimal location (any point of the max-region; we return its center).
  Point location;
  /// The maximum range sum: total weight covered by the rectangle at
  /// `location` (Def. 1).
  double total_weight = 0.0;
  /// The max-region: every point in it is an optimal location (Def. 4).
  Rect region;
  MaxRSStats stats;
};

/// A dataset transformed and sorted for one (rect_width, rect_height): the
/// two inputs of the division phase, i.e. everything that survives the sort
/// phase of Algorithm 2. Produced internally by RunExactMaxRS, or assembled
/// without any sorting by the serve layer (serve/dataset_handle.h), which
/// keeps the dataset pre-sorted per x-slab shard and derives both files per
/// query with linear passes — the basis of per-query sort reuse.
struct PreparedInput {
  /// PieceRecords sorted by PieceYLess (the y pre-sort of Theorem 2).
  std::string piece_file;
  /// EdgeRecords sorted by EdgeXLess (the x pre-sort of Theorem 2).
  std::string edge_file;
  /// Record count of `piece_file`.
  uint64_t num_pieces = 0;
  /// Root slab of the recursion; the whole plane for plain MaxRS.
  Interval x_range{-kInf, kInf};
};

/// Validates `options` against an Env's block size without running
/// anything: the same checks every Run* entry point performs first
/// (positive finite rect, budget of at least 4 blocks, fanout and thread
/// bounds). Lets long-lived callers (the serve layer) reject a bad
/// configuration at construction time instead of paying a full derivation
/// pass per doomed query.
Status ValidateMaxRSOptions(const MaxRSOptions& options, size_t block_size);

/// Runs ExactMaxRS against a dataset stored as a record file of
/// SpatialObject in `env`. This is the scalable external-memory entry point.
Result<MaxRSResult> RunExactMaxRS(Env& env, const std::string& object_file,
                                  const MaxRSOptions& options);

/// Runs the division + merge-sweep phases of ExactMaxRS on an
/// already-prepared input, skipping the transform and the two external
/// sorts. Consumes (deletes) both input files once solving starts,
/// mirroring the scratch-file lifecycle of the internal pipeline; if
/// validation rejects the input (InvalidArgument — bad options or a
/// num_pieces that contradicts the piece file) the files are left intact
/// so the caller can correct and retry. `options.rect_width/rect_height`
/// must match the dimensions `input` was transformed with — they are not
/// re-applied, only validated and reported.
Result<MaxRSResult> RunExactMaxRSPrepared(Env& env, const PreparedInput& input,
                                          const MaxRSOptions& options);

/// Convenience wrapper: stages `objects` into a scratch file in `env`, runs
/// the external algorithm, and cleans up.
Result<MaxRSResult> RunExactMaxRS(Env& env,
                                  const std::vector<SpatialObject>& objects,
                                  const MaxRSOptions& options);

/// Pure in-memory variant (no Env, no I/O): transform + PlaneSweep over the
/// whole plane. Suitable when the dataset fits in memory; used as the
/// recursion base case internally.
MaxRSResult ExactMaxRSInMemory(const std::vector<SpatialObject>& objects,
                               double rect_width, double rect_height);

/// One optimal (or k-th best) placement region; see extensions.h for the
/// MaxkRS / MinRS entry points built on top of these.
struct RankedRegion {
  Point location;
  double total_weight = 0.0;
  Rect region;
};

namespace core_internal {

/// The recursive solver of one slab, exposed for callers that assemble the
/// division tree themselves (the serve layer's per-shard solve, where the
/// x-slab shards form the top-level division): runs division + merge-sweep
/// on `input` confined to `input.x_range` and returns the name of the
/// resulting slab-file — the SlabTuple stream of the slab — registered
/// under `temps` (the caller releases it). Consumes (deletes) both input
/// files. All piece x-extents must lie within `input.x_range` and
/// `input.num_pieces` must match the piece file (trusted, not probed).
/// Maximize objective only.
/// A non-null `best_out` receives the maximum tuple sum of the returned
/// slab-file — the best weight achievable inside the slab — computed while
/// the file is written, never by a counted re-scan. The serve layer's
/// index-pruned execution feeds it back as the branch-and-bound incumbent.
Result<std::string> SolveSlab(Env& env, TempFileManager& temps,
                              const PreparedInput& input,
                              const MaxRSOptions& options, MaxRSStats* stats,
                              ThreadPool* pool, SlabBest* best_out = nullptr);

/// Lazily produces the x-sorted edge file of a slab being stream-solved.
/// Invoked at most once, and only if the slab overflows the in-memory base
/// case (a base-case slab needs no edges at all). The file it names is
/// released by its creator, never by the stream solver.
using EdgeFileProvider = std::function<Result<std::string>()>;

/// Zero-materialization counterpart of SolveSlab: solves the slab
/// `x_range` from a *stream* of its y-sorted pieces instead of a piece
/// file, so the caller's routing pass and this solve overlap. The solver
/// buffers up to the base-case threshold; if the stream ends within it the
/// slab is solved in memory with no division I/O at all, otherwise
/// `edge_provider` supplies the edge file and the node divides, feeding
/// its children through per-child channels in turn (recursively streamed).
/// Returns the slab-file name, registered under `temps` (caller releases).
/// Results and stats counters are bit-identical to SolveSlab over a file
/// holding the same stream. Maximize objective only; `options` is
/// validated. `pool` parallelizes child sub-slabs (null = serial).
/// `best_out` as in SolveSlab.
Result<std::string> SolveSlabStream(Env& env, TempFileManager& temps,
                                    RecordSource<PieceRecord>* pieces,
                                    const EdgeFileProvider& edge_provider,
                                    const Interval& x_range,
                                    const MaxRSOptions& options,
                                    MaxRSStats* stats, ThreadPool* pool,
                                    SlabBest* best_out = nullptr);

/// Streams the tuples of the *root* slab-file (y-ascending) produced by a
/// full ExactMaxRS pipeline run to `visit`. This is the shared engine under
/// RunExactMaxRS, RunTopKMaxRS and RunMinRS: the tuple stream contains, for
/// every y-stratum, the max-interval of the whole plane — enough to answer
/// any "best placements" question without re-running the sweep.
Status VisitRootTuples(Env& env, const std::string& object_file,
                       const MaxRSOptions& options, MaxRSStats* stats,
                       const std::function<void(const SlabTuple&)>& visit);

/// Prepared-input counterpart of VisitRootTuples: streams the root tuples of
/// the division + merge-sweep phases run on `input` (see PreparedInput).
/// Consumes both input files.
Status VisitPreparedTuples(Env& env, const PreparedInput& input,
                           const MaxRSOptions& options, MaxRSStats* stats,
                           const std::function<void(const SlabTuple&)>& visit);

/// Streaming tracker of the k best strata (by sum). Feed tuples in y order
/// via Visit(); Finish() returns regions sorted by descending weight.
class TopTupleTracker {
 public:
  /// Tracks the `k` best strata (k == 0 behaves as 1).
  explicit TopTupleTracker(size_t k) : k_(k == 0 ? 1 : k) {}

  /// Feeds the next tuple; must be called in ascending y order. Consecutive
  /// tuples with identical (sum, x-interval) are one stratum split by sweep
  /// events that did not change the max-interval — they are coalesced into
  /// a single run, so the reported region's y-extent depends only on where
  /// the max-interval actually changes, not on how many events subdivided
  /// it. (This is what keeps index-pruned serving bit-identical: pruned
  /// schedules drop events from shards that never held the optimum, which
  /// can merge such splits but never move a run's boundaries.)
  void Visit(const SlabTuple& t);
  /// Closes the stream and returns the k best regions, best first.
  std::vector<RankedRegion> Finish();

 private:
  struct Entry {
    SlabTuple tuple;
    double y_next;
  };

  void Offer(const SlabTuple& t, double y_next);
  static bool SumGreater(const Entry& a, const Entry& b);

  size_t k_;
  std::vector<Entry> heap_;  // min-heap on sum (k best retained)
  SlabTuple pending_{};
  bool have_pending_ = false;
};

/// Extracts the final answer from an in-memory tuple stream.
MaxRSResult ExtractFromTuples(const std::vector<SlabTuple>& tuples);

}  // namespace core_internal

}  // namespace maxrs

#endif  // MAXRS_CORE_EXACT_MAXRS_H_
