// In-memory plane sweep (the PlaneSweep base case of Algorithm 2).
//
// Given the pieces of one slab (guaranteed to fit in memory), sweeps a
// horizontal line bottom-to-top, maintaining location-weights over the
// slab's x-extent in a segment tree, and emits one slab-file tuple
// <y, [x1,x2), sum> per distinct event y — the max-interval of the slab for
// the stratum starting at y (Def. 6). This is the external counterpart of
// Imai & Asano's optimal in-memory algorithm [11] restricted to a slab.
#ifndef MAXRS_CORE_PLANE_SWEEP_H_
#define MAXRS_CORE_PLANE_SWEEP_H_

#include <vector>

#include "core/records.h"
#include "geom/geometry.h"

namespace maxrs {

/// Objective of a sweep: the paper's MaxRS (maximize the covered weight) or
/// the MinRS extension (minimize it; see core/extensions.h).
enum class SweepObjective { kMaximize, kMinimize };

/// Computes the slab-file of `slab` for the given pieces (all x-extents must
/// lie within `slab`). Returns tuples sorted by strictly increasing y; each
/// tuple carries the extremal (max or min, per `objective`) interval of its
/// stratum. Pieces may arrive in any order — the output is a pure function
/// of the piece multiset (events are applied in a canonical total order, so
/// not even floating-point accumulation can see the input order). Purely
/// in-memory: no I/O.
std::vector<SlabTuple> PlaneSweep(
    const std::vector<PieceRecord>& pieces, const Interval& slab,
    SweepObjective objective = SweepObjective::kMaximize);

/// Convenience for standalone use and tests: the best tuple of a slab-file,
/// i.e. the tuple opening the stratum that contains the max-region.
/// Returns tuple index, or SIZE_MAX for an empty file.
size_t BestTupleIndex(const std::vector<SlabTuple>& tuples);

}  // namespace maxrs

#endif  // MAXRS_CORE_PLANE_SWEEP_H_
