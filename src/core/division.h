// Division phase of ExactMaxRS (Sec. 5.2.1).
//
// A recursion node holds two files: the slab's pieces (sorted by y_lo) and
// the slab's real vertical-edge x-coordinates (sorted by x). The division
// cuts the edge file into m chunks of roughly equal edge count — Lemma 1
// partitions *edges*, guaranteeing each child shrinks by a factor of m —
// and routes each piece into child pieces and at most one spanning record.
// Both output piece files inherit y-sortedness (they are subsequences of the
// parent's y-sorted stream), and the edge chunks inherit x-sortedness (they
// are contiguous cuts), so no re-sorting is ever needed after the two
// up-front external sorts: every level costs O(n/B) I/Os.
#ifndef MAXRS_CORE_DIVISION_H_
#define MAXRS_CORE_DIVISION_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/records.h"
#include "geom/geometry.h"
#include "io/env.h"
#include "io/temp_manager.h"
#include "util/status.h"

namespace maxrs {

namespace division_internal {

/// Pass 1 of a division: chooses at most m-1 interior slab boundaries from
/// the (x-sorted) edge file's count quantiles, cutting only where the value
/// strictly increases so routing by value reproduces the chunks exactly.
/// Stores the edge count in *num_edges. An empty result means the file
/// cannot be split (all edges share one x) — callers fall back to their
/// base case.
Result<std::vector<double>> ComputeEdgeBounds(Env& env,
                                              const std::string& edge_file,
                                              size_t m, uint64_t* num_edges);

/// Index of the slab containing coordinate v. `bounds` holds the interior
/// boundaries s_1 < ... < s_{m-1}; slab k covers [s_k, s_{k+1}) with
/// s_0 = -inf / slab.lo and s_m = +inf / slab.hi. The caller clamps to the
/// last slab (values equal to the outer hi are legal for clipped pieces).
inline size_t IndexOf(const std::vector<double>& bounds, double v) {
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

/// Routes one piece of a y-sorted stream across the slabs defined by
/// `bounds`/`ranges` (ranges[k] is slab k's x-interval; ranges.size() ==
/// bounds.size() + 1): emits clipped sub-pieces via emit_piece(slab, piece)
/// and at most one spanning record via emit_span(span) — the Sec. 5.2.1
/// clipping rule shared verbatim by the recursion's division pass, the
/// serve layer's per-query shard routing, and the streaming pipeline, so
/// the three can never diverge. Both emitters return Status.
template <typename EmitPiece, typename EmitSpan>
Status RoutePiece(const std::vector<double>& bounds,
                  const std::vector<Interval>& ranges, const PieceRecord& p,
                  EmitPiece&& emit_piece, EmitSpan&& emit_span) {
  const size_t num_slabs = ranges.size();
  // Slabs touched by the piece: i (contains x_lo) through j. A piece
  // ending exactly at a slab's lower boundary never enters that slab.
  const size_t i = std::min(IndexOf(bounds, p.x_lo), num_slabs - 1);
  size_t j = std::min(IndexOf(bounds, p.x_hi), num_slabs - 1);
  if (j > i && p.x_hi == ranges[j].lo) --j;

  // A part that covers its slab's entire x-range is *spanning* and must
  // not descend (Sec. 5.2.1: spanning rectangles would defeat Lemma 1's
  // termination argument). Slab i is fully covered iff the piece starts
  // at its lower bound; slab j iff the piece ends at its upper bound;
  // every slab strictly between i and j is always fully covered.
  const bool left_full = (p.x_lo == ranges[i].lo);
  const bool right_full = (p.x_hi == ranges[j].hi);

  if (i == j) {
    if (left_full && right_full) {
      SpanRecord span{p.y_lo, p.y_hi, p.w, static_cast<int32_t>(i),
                      static_cast<int32_t>(i)};
      return emit_span(span);
    }
    return emit_piece(i, p);
  }

  const size_t span_lo = left_full ? i : i + 1;
  const size_t span_hi = right_full ? j : j - 1;
  if (!left_full) {
    PieceRecord left = p;  // [x_lo, s_i): keeps a real edge strictly inside
    left.x_hi = ranges[i].hi;
    MAXRS_RETURN_IF_ERROR(emit_piece(i, left));
  }
  if (!right_full) {
    PieceRecord right = p;  // [s_{j-1}, x_hi)
    right.x_lo = ranges[j].lo;
    MAXRS_RETURN_IF_ERROR(emit_piece(j, right));
  }
  if (span_lo <= span_hi) {
    SpanRecord span{p.y_lo, p.y_hi, p.w, static_cast<int32_t>(span_lo),
                    static_cast<int32_t>(span_hi)};
    return emit_span(span);
  }
  return Status::OK();
}

}  // namespace division_internal

/// One child of a division: its slab x-range and its two input files.
struct ChildSlab {
  Interval x_range;
  std::string piece_file;
  std::string edge_file;
  uint64_t num_pieces = 0;
  uint64_t num_edges = 0;
};

/// The complete output of one division pass: the children plus the
/// spanning-record file consumed later by MergeSweep.
struct DivisionResult {
  std::vector<ChildSlab> children;
  std::string span_file;      ///< SpanRecords sorted by y_lo (== y order).
  uint64_t num_spans = 0;
};

/// Computes child slab boundaries by cutting the (x-sorted) edge file into at
/// most `m` chunks at value changes, then routes pieces and edges.
///
/// Returns InvalidArgument if the edge file cannot be cut into at least two
/// chunks (all edges share one x) — callers fall back to the in-memory base
/// case in that degenerate situation.
Result<DivisionResult> DividePieces(TempFileManager& temps,
                                    const std::string& piece_file,
                                    const std::string& edge_file,
                                    const Interval& slab, size_t m);

}  // namespace maxrs

#endif  // MAXRS_CORE_DIVISION_H_
