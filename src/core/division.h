// Division phase of ExactMaxRS (Sec. 5.2.1).
//
// A recursion node holds two files: the slab's pieces (sorted by y_lo) and
// the slab's real vertical-edge x-coordinates (sorted by x). The division
// cuts the edge file into m chunks of roughly equal edge count — Lemma 1
// partitions *edges*, guaranteeing each child shrinks by a factor of m —
// and routes each piece into child pieces and at most one spanning record.
// Both output piece files inherit y-sortedness (they are subsequences of the
// parent's y-sorted stream), and the edge chunks inherit x-sortedness (they
// are contiguous cuts), so no re-sorting is ever needed after the two
// up-front external sorts: every level costs O(n/B) I/Os.
#ifndef MAXRS_CORE_DIVISION_H_
#define MAXRS_CORE_DIVISION_H_

#include <string>
#include <vector>

#include "core/records.h"
#include "geom/geometry.h"
#include "io/temp_manager.h"
#include "util/status.h"

namespace maxrs {

/// One child of a division: its slab x-range and its two input files.
struct ChildSlab {
  Interval x_range;
  std::string piece_file;
  std::string edge_file;
  uint64_t num_pieces = 0;
  uint64_t num_edges = 0;
};

/// The complete output of one division pass: the children plus the
/// spanning-record file consumed later by MergeSweep.
struct DivisionResult {
  std::vector<ChildSlab> children;
  std::string span_file;      ///< SpanRecords sorted by y_lo (== y order).
  uint64_t num_spans = 0;
};

/// Computes child slab boundaries by cutting the (x-sorted) edge file into at
/// most `m` chunks at value changes, then routes pieces and edges.
///
/// Returns InvalidArgument if the edge file cannot be cut into at least two
/// chunks (all edges share one x) — callers fall back to the in-memory base
/// case in that degenerate situation.
Result<DivisionResult> DividePieces(TempFileManager& temps,
                                    const std::string& piece_file,
                                    const std::string& edge_file,
                                    const Interval& slab, size_t m);

}  // namespace maxrs

#endif  // MAXRS_CORE_DIVISION_H_
