#include "core/segment_tree.h"

#include <algorithm>

#include "util/check.h"

namespace maxrs {

SegmentTree::SegmentTree(size_t num_leaves) : num_leaves_(num_leaves) {
  MAXRS_CHECK(num_leaves_ >= 1);
  nodes_.resize(4 * num_leaves_);
}

void SegmentTree::RangeAdd(size_t first, size_t last, double w) {
  MAXRS_DCHECK(first <= last && last < num_leaves_);
  Add(1, 0, num_leaves_ - 1, first, last, w);
}

void SegmentTree::Add(size_t node, size_t lo, size_t hi, size_t first,
                      size_t last, double w) {
  if (first <= lo && hi <= last) {
    nodes_[node].add += w;
    nodes_[node].max += w;
    nodes_[node].min += w;
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  if (first <= mid) Add(2 * node, lo, mid, first, std::min(last, mid), w);
  if (last > mid) Add(2 * node + 1, mid + 1, hi, std::max(first, mid + 1), last, w);
  nodes_[node].max =
      std::max(nodes_[2 * node].max, nodes_[2 * node + 1].max) + nodes_[node].add;
  nodes_[node].min =
      std::min(nodes_[2 * node].min, nodes_[2 * node + 1].min) + nodes_[node].add;
}

double SegmentTree::Max() const { return nodes_[1].max; }
double SegmentTree::Min() const { return nodes_[1].min; }

MaxRun SegmentTree::MaxInterval() const { return ExtremalInterval(true); }
MaxRun SegmentTree::MinInterval() const { return ExtremalInterval(false); }

MaxRun SegmentTree::ExtremalInterval(bool want_max) const {
  const double target = want_max ? nodes_[1].max : nodes_[1].min;
  const size_t first = FindLeftmost(1, 0, num_leaves_ - 1, 0.0, want_max);
  const size_t end = first + 1 >= num_leaves_
                         ? num_leaves_
                         : FindFirstOutside(1, 0, num_leaves_ - 1, 0.0,
                                            first + 1, target, want_max);
  return MaxRun{target, first, end - 1};
}

size_t SegmentTree::FindLeftmost(size_t node, size_t lo, size_t hi, double acc,
                                 bool want_max) const {
  if (lo == hi) return lo;
  // Descend by argmax/argmin comparison of the two children (ties go left)
  // rather than equality against a root-computed target: per-path floating
  // accumulation orders differ, so equality can fail on real-valued weights
  // while the comparison always lands on the true extremal leaf.
  const size_t mid = lo + (hi - lo) / 2;
  const double child_acc = acc + nodes_[node].add;
  const double left = (want_max ? nodes_[2 * node].max : nodes_[2 * node].min);
  const double right =
      (want_max ? nodes_[2 * node + 1].max : nodes_[2 * node + 1].min);
  const bool go_left = want_max ? (left >= right) : (left <= right);
  if (go_left) return FindLeftmost(2 * node, lo, mid, child_acc, want_max);
  return FindLeftmost(2 * node + 1, mid + 1, hi, child_acc, want_max);
}

size_t SegmentTree::FindFirstOutside(size_t node, size_t lo, size_t hi,
                                     double acc, size_t from, double target,
                                     bool want_max) const {
  if (hi < from) return num_leaves_;
  // A subtree can contain an "outside" leaf only if its min dips below the
  // target (max objective) or its max rises above it (min objective).
  if (want_max) {
    if (nodes_[node].min + acc >= target) return num_leaves_;
  } else {
    if (nodes_[node].max + acc <= target) return num_leaves_;
  }
  if (lo == hi) return lo;
  const size_t mid = lo + (hi - lo) / 2;
  const double child_acc = acc + nodes_[node].add;
  size_t res =
      FindFirstOutside(2 * node, lo, mid, child_acc, from, target, want_max);
  if (res != num_leaves_) return res;
  return FindFirstOutside(2 * node + 1, mid + 1, hi, child_acc, from, target,
                          want_max);
}

}  // namespace maxrs
