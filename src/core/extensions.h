// Extensions listed as future work in the paper (Sec. 8): the MaxkRS
// problem (the k best placements instead of one) and the MinRS problem
// (the placement minimizing the covered weight).
//
// Both reuse the full ExactMaxRS pipeline unchanged:
//  * MaxkRS keeps the k best strata of the root slab-file instead of one —
//    the tuple stream already describes, for every y-stratum, the best
//    interval of the whole plane, so selecting k costs no extra I/O.
//  * MinRS runs the same distribution sweep under a min objective (the
//    segment tree tracks min symmetric to max; MergeSweep picks the
//    smallest effective interval) with placements restricted to the dataset
//    bounding box — unrestricted, the minimum is trivially 0 anywhere in
//    empty space. Rectangle centers range over the *open* box
//    (x_lo, x_hi) x (y_lo, y_hi) of the data: values attained only exactly
//    on the box edge lines (a measure-zero set whose cover semantics depend
//    on boundary orientation) are excluded by definition.
#ifndef MAXRS_CORE_EXTENSIONS_H_
#define MAXRS_CORE_EXTENSIONS_H_

#include <string>
#include <vector>

#include "core/exact_maxrs.h"
#include "geom/geometry.h"
#include "io/env.h"
#include "util/status.h"

namespace maxrs {

/// MaxkRS: the k best placement strata, sorted by descending weight.
/// Each returned region realizes its reported weight at every interior
/// point. Regions come from distinct y-strata of the root slab-file (two
/// results may overlap spatially if a hotspot spans several strata).
/// `stats`, if non-null, receives the run's execution statistics.
Result<std::vector<RankedRegion>> RunTopKMaxRS(Env& env,
                                               const std::string& object_file,
                                               const MaxRSOptions& options,
                                               size_t k,
                                               MaxRSStats* stats = nullptr);

/// In-memory MaxkRS.
std::vector<RankedRegion> TopKMaxRSInMemory(
    const std::vector<SpatialObject>& objects, double rect_width,
    double rect_height, size_t k);

/// MinRS: a location (with rectangle center strictly inside the dataset
/// bounding box) whose rectangle covers the *minimum* total weight. The
/// domain used is reported in result.stats.domain.
Result<MaxRSResult> RunMinRS(Env& env, const std::string& object_file,
                             const MaxRSOptions& options);

/// In-memory MinRS.
MaxRSResult MinRSInMemory(const std::vector<SpatialObject>& objects,
                          double rect_width, double rect_height);

/// Greedy object-disjoint MaxkRS: repeatedly solve MaxRS, commit the best
/// placement, remove the objects it covers (one filtering pass), and
/// continue — the standard greedy for placing k non-competing facilities.
/// Result i reports the weight of the objects newly served by placement i;
/// placements may overlap spatially but never share objects, so the weights
/// are non-increasing and their sum never exceeds the dataset total. Stops
/// early when nothing remains to cover. Costs k full ExactMaxRS runs plus k
/// linear filter passes.
Result<std::vector<RankedRegion>> RunGreedyKMaxRS(Env& env,
                                                  const std::string& object_file,
                                                  const MaxRSOptions& options,
                                                  size_t k,
                                                  MaxRSStats* stats = nullptr);

/// In-memory greedy object-disjoint MaxkRS.
std::vector<RankedRegion> GreedyKMaxRSInMemory(
    std::vector<SpatialObject> objects, double rect_width, double rect_height,
    size_t k);

}  // namespace maxrs

#endif  // MAXRS_CORE_EXTENSIONS_H_
