#include "core/brute_force.h"

#include <cmath>

namespace maxrs {

BruteForceResult BruteForceMaxRS(const std::vector<SpatialObject>& objects,
                                 double rect_width, double rect_height) {
  BruteForceResult best;
  for (const SpatialObject& ax : objects) {
    for (const SpatialObject& ay : objects) {
      // Rectangle with left edge at ax.x and bottom edge at ay.y.
      const Rect rect{ax.x, ax.x + rect_width, ay.y, ay.y + rect_height};
      const double sum = CoveredWeight(objects, rect);
      if (sum > best.total_weight) {
        best.total_weight = sum;
        best.location = rect.center();
      }
    }
  }
  return best;
}

BruteForceResult BruteForceMaxCRS(const std::vector<SpatialObject>& objects,
                                  double diameter) {
  const double r = diameter / 2.0;
  BruteForceResult best;

  auto consider = [&](Point center) {
    const Circle circle{center, diameter};
    const double sum = CoveredWeight(objects, circle);
    if (sum > best.total_weight) {
      best.total_weight = sum;
      best.location = center;
    }
  };

  // An optimal disk can be translated until it has two objects on its
  // boundary (or one, or zero). Candidate centers: every object, and both
  // intersection points of the radius-r circles around every object pair.
  // Because the problem excludes boundary objects, we nudge candidate
  // centers by a relative epsilon toward the pair midpoint so that the
  // boundary-defining objects fall strictly inside.
  for (const SpatialObject& o : objects) consider({o.x, o.y});

  for (size_t i = 0; i < objects.size(); ++i) {
    for (size_t j = i + 1; j < objects.size(); ++j) {
      const Point a{objects[i].x, objects[i].y};
      const Point b{objects[j].x, objects[j].y};
      const double d2 = DistanceSquared(a, b);
      if (d2 == 0.0 || d2 > 4.0 * r * r) continue;
      const Point mid{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
      const double half = std::sqrt(d2) / 2.0;
      const double h = std::sqrt(std::max(0.0, r * r - half * half));
      // Unit normal to a->b.
      const double inv = 1.0 / (2.0 * half);
      const double nx = -(b.y - a.y) * inv;
      const double ny = (b.x - a.x) * inv;
      const double shrink = 1.0 - 1e-9;  // pull boundary objects inside
      consider({mid.x + nx * h * shrink, mid.y + ny * h * shrink});
      consider({mid.x - nx * h * shrink, mid.y - ny * h * shrink});
    }
  }
  return best;
}

}  // namespace maxrs
