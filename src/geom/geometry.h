// Planar geometry primitives shared by all algorithms.
//
// Cover semantics: the paper excludes objects on the boundary of the query
// rectangle/circle. We realize this with half-open rectangles
// [x_lo, x_hi) x [y_lo, y_hi) and strict circle interiors, which coincide
// with the open-boundary rule for the purpose of maximization (placements
// where a point sits exactly on a boundary are measure-zero and never
// uniquely optimal) and are exact on integer test data.
#ifndef MAXRS_GEOM_GEOMETRY_H_
#define MAXRS_GEOM_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>

namespace maxrs {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// A weighted spatial object (paper: o in O with weight w(o)).
struct SpatialObject {
  double x = 0.0;
  double y = 0.0;
  double w = 1.0;
};

/// Closed-on-low, open-on-high interval [lo, hi).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double length() const { return hi - lo; }
  bool Contains(double v) const { return v >= lo && v < hi; }
  bool Overlaps(const Interval& other) const {
    return lo < other.hi && other.lo < hi;
  }
  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// Axis-aligned rectangle [x_lo, x_hi) x [y_lo, y_hi).
struct Rect {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double y_lo = 0.0;
  double y_hi = 0.0;

  /// The rectangle of size w x h centered at p (paper: r(p)).
  static Rect Centered(Point p, double w, double h) {
    return {p.x - w / 2.0, p.x + w / 2.0, p.y - h / 2.0, p.y + h / 2.0};
  }

  double width() const { return x_hi - x_lo; }
  double height() const { return y_hi - y_lo; }
  Point center() const { return {(x_lo + x_hi) / 2.0, (y_lo + y_hi) / 2.0}; }

  bool Contains(Point p) const {
    return p.x >= x_lo && p.x < x_hi && p.y >= y_lo && p.y < y_hi;
  }
  bool Contains(const SpatialObject& o) const {
    return Contains(Point{o.x, o.y});
  }

  bool Overlaps(const Rect& other) const {
    return x_lo < other.x_hi && other.x_lo < x_hi && y_lo < other.y_hi &&
           other.y_lo < y_hi;
  }

  /// Intersection; empty (width/height <= 0) if disjoint.
  Rect Intersect(const Rect& other) const {
    return {std::max(x_lo, other.x_lo), std::min(x_hi, other.x_hi),
            std::max(y_lo, other.y_lo), std::min(y_hi, other.y_hi)};
  }

  bool empty() const { return x_lo >= x_hi || y_lo >= y_hi; }

  bool operator==(const Rect& other) const {
    return x_lo == other.x_lo && x_hi == other.x_hi && y_lo == other.y_lo &&
           y_hi == other.y_hi;
  }
};

/// Circle given by center and diameter (the paper parameterizes MaxCRS by
/// diameter d). Cover is the strict interior.
struct Circle {
  Point center;
  double diameter = 0.0;

  double radius() const { return diameter / 2.0; }

  bool Contains(Point p) const {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    return dx * dx + dy * dy < radius() * radius();
  }
  bool Contains(const SpatialObject& o) const {
    return Contains(Point{o.x, o.y});
  }

  /// Minimum bounding rectangle: the d x d square centered at the center.
  Rect Mbr() const { return Rect::Centered(center, diameter, diameter); }
};

inline double DistanceSquared(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(Point a, Point b) { return std::sqrt(DistanceSquared(a, b)); }

/// Total weight of objects covered by `rect` (linear scan; test oracle and
/// candidate evaluation helper).
template <typename Container>
double CoveredWeight(const Container& objects, const Rect& rect) {
  double sum = 0.0;
  for (const auto& o : objects) {
    if (rect.Contains(o)) sum += o.w;
  }
  return sum;
}

/// Total weight of objects covered by `circle`.
template <typename Container>
double CoveredWeight(const Container& objects, const Circle& circle) {
  double sum = 0.0;
  for (const auto& o : objects) {
    if (circle.Contains(o)) sum += o.w;
  }
  return sum;
}

/// Bounding box of a set of objects; returns an empty Rect for no objects.
template <typename Container>
Rect BoundingBox(const Container& objects) {
  Rect box{kInf, -kInf, kInf, -kInf};
  bool any = false;
  for (const auto& o : objects) {
    any = true;
    box.x_lo = std::min(box.x_lo, o.x);
    box.x_hi = std::max(box.x_hi, o.x);
    box.y_lo = std::min(box.y_lo, o.y);
    box.y_hi = std::max(box.y_hi, o.y);
  }
  if (!any) return Rect{};
  return box;
}

}  // namespace maxrs

#endif  // MAXRS_GEOM_GEOMETRY_H_
