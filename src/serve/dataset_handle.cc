#include "serve/dataset_handle.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "io/external_sort.h"
#include "io/prefetch_reader.h"
#include "io/record_io.h"
#include "io/temp_manager.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace maxrs {
namespace {

// Version 2 added the two dataset-extent entries (kinds 2 and 3); version 3
// added the aggregate-index descriptor (kind 4) plus the index file it
// names. Version-1 manifests remain readable and simply carry no bounds;
// version-2 manifests remain readable and simply carry no index.
constexpr uint64_t kManifestFormatVersion = 3;
constexpr size_t kMaxShards = 64;
// Derived sharding aims at this many objects per shard: big enough that the
// per-shard stream overhead (one reader/writer block pair per shard) is
// noise, small enough that shard transforms parallelize on real datasets.
constexpr uint64_t kObjectsPerDerivedShard = 64 * 1024;

std::string ManifestName(const std::string& prefix) {
  return prefix + "/manifest";
}

// The manifest is assembled here and atomically Rename()d into place once
// complete, so a crash mid-ingest leaves at worst this orphan — never a
// partial manifest under the published name.
std::string TempManifestName(const std::string& prefix) {
  return prefix + "/manifest.tmp";
}

std::string AggIndexName(const std::string& prefix) {
  return prefix + "/agg_index";
}

std::string ShardYName(const std::string& prefix, size_t index) {
  return prefix + "/shard_" + std::to_string(index) + "_y";
}

std::string ShardXName(const std::string& prefix, size_t index) {
  return prefix + "/shard_" + std::to_string(index) + "_x";
}

size_t DeriveShardCount(uint64_t num_objects, const DatasetHandleOptions& options,
                        size_t block_size) {
  size_t requested = options.shard_count;
  if (requested == 0) {
    requested = static_cast<size_t>(
        std::max<uint64_t>(1, num_objects / kObjectsPerDerivedShard));
  }
  // The y-routing pass holds one writer block per shard, so the shard count
  // must fit the ingest memory budget's M/B - 1 stream blocks — the same
  // fan-in discipline the external sort obeys. (blocks can be 0 for a
  // sub-block budget; guard the subtraction.)
  const size_t blocks = options.memory_bytes / block_size;
  const size_t memory_cap = blocks > 1 ? blocks - 1 : 1;
  return std::min(std::min<size_t>(std::max<size_t>(1, requested), kMaxShards),
                  memory_cap);
}

// The sort + cut + route pipeline of Ingest; fills `shards` (including the
// on-disk files) and writes the manifest. On failure the caller deletes
// whatever shard files were already created.
Status IngestInto(Env& env, const std::string& object_file,
                  const DatasetHandleOptions& options, uint64_t num_objects,
                  std::vector<ShardInfo>* shards, Rect* bounds,
                  std::vector<ShardAgg>* aggs) {
  const std::string& prefix = options.prefix;
  TempFileManager temps(env, prefix + "_ingest");
  const std::string y_sorted = temps.NewName("objects_y");
  const std::string x_sorted = temps.NewName("objects_x");

  auto body = [&]() -> Status {
    // The two rectangle-independent object sorts — the last external sorts
    // this dataset will ever need. They touch disjoint files, so with a
    // pool they run concurrently and each parallelizes internally.
    std::unique_ptr<ThreadPool> pool;
    if (options.num_threads > 1) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    ExternalSortOptions sort_options{options.memory_bytes, pool.get(),
                                     options.read_ahead};
    {
      TaskGroup sorts(pool.get());
      sorts.Run([&] {
        return ExternalSort<SpatialObject>(env, object_file, y_sorted,
                                           ObjectYLess, sort_options);
      });
      sorts.Run([&] {
        return ExternalSort<SpatialObject>(env, object_file, x_sorted,
                                           ObjectXLess, sort_options);
      });
      MAXRS_RETURN_IF_ERROR(sorts.Wait());
    }

    // Cut the x-sorted stream into up to `requested` equal-count shards.
    // Cuts happen only where the x value changes, so objects with equal x
    // never straddle a boundary and routing by slab is exact.
    const size_t requested =
        DeriveShardCount(num_objects, options, env.block_size());
    const uint64_t target = (num_objects + requested - 1) / requested;
    std::optional<RecordWriter<SpatialObject>> x_writer;
    auto open_shard = [&](double lo_bound) -> Status {
      ShardInfo info;
      info.x_range = Interval{lo_bound, kInf};
      info.y_file = ShardYName(prefix, shards->size());
      info.x_file = ShardXName(prefix, shards->size());
      MAXRS_ASSIGN_OR_RETURN(
          RecordWriter<SpatialObject> writer,
          RecordWriter<SpatialObject>::Make(env, info.x_file,
                                            options.write_behind));
      x_writer = std::move(writer);
      shards->push_back(std::move(info));
      aggs->push_back(ShardAgg{});
      return Status::OK();
    };
    {
      MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                             PrefetchingReader<SpatialObject>::Make(
                                 env, x_sorted, options.read_ahead));
      MAXRS_RETURN_IF_ERROR(open_shard(-kInf));
      SpatialObject o{};
      double prev_x = 0.0;
      bool any = false;
      while (reader.Next(&o)) {
        if (any && shards->back().num_objects >= target &&
            shards->size() < requested &&
            DoubleOrderKey(o.x) != DoubleOrderKey(prev_x)) {
          MAXRS_RETURN_IF_ERROR(x_writer->Finish());
          shards->back().x_range.hi = o.x;
          MAXRS_RETURN_IF_ERROR(open_shard(o.x));
        }
        MAXRS_RETURN_IF_ERROR(x_writer->Append(o));
        ++shards->back().num_objects;
        // The cut pass sees every object exactly once, in x order — the
        // natural place to accumulate the per-shard aggregates the index
        // persists (MBR, count, total and minimum weight).
        aggs->back().Add(o);
        if (!any) bounds->x_lo = o.x;  // x-sorted stream: first = min x
        prev_x = o.x;
        any = true;
      }
      MAXRS_RETURN_IF_ERROR(reader.final_status());
      MAXRS_RETURN_IF_ERROR(x_writer->Finish());
      if (any) bounds->x_hi = prev_x;  // ... and last = max x
    }

    // Route the y-sorted stream into per-shard y files. Appends preserve
    // stream order, so each shard file stays ObjectYLess-sorted.
    {
      std::vector<uint64_t> boundary_keys;  // lower bound of shard i >= 1
      for (size_t i = 1; i < shards->size(); ++i) {
        boundary_keys.push_back(DoubleOrderKey((*shards)[i].x_range.lo));
      }
      std::vector<RecordWriter<SpatialObject>> y_writers;
      y_writers.reserve(shards->size());
      for (const ShardInfo& info : *shards) {
        MAXRS_ASSIGN_OR_RETURN(
            RecordWriter<SpatialObject> writer,
            RecordWriter<SpatialObject>::Make(env, info.y_file,
                                              options.write_behind));
        y_writers.push_back(std::move(writer));
      }
      MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                             PrefetchingReader<SpatialObject>::Make(
                                 env, y_sorted, options.read_ahead));
      SpatialObject o{};
      bool any = false;
      while (reader.Next(&o)) {
        const uint64_t key = DoubleOrderKey(o.x);
        const size_t shard = static_cast<size_t>(
            std::upper_bound(boundary_keys.begin(), boundary_keys.end(), key) -
            boundary_keys.begin());
        MAXRS_RETURN_IF_ERROR(y_writers[shard].Append(o));
        if (!any) bounds->y_lo = o.y;  // y-sorted stream: first = min y
        bounds->y_hi = o.y;            // ... and last = max y
        any = true;
      }
      MAXRS_RETURN_IF_ERROR(reader.final_status());
      for (size_t i = 0; i < y_writers.size(); ++i) {
        MAXRS_RETURN_IF_ERROR(y_writers[i].Finish());
        if (y_writers[i].count() != (*shards)[i].num_objects) {
          return Status::Internal("shard routing mismatch: y/x counts differ");
        }
      }
    }

    // The aggregate index is written (and Finish()ed) *before* the
    // manifest that describes it, so a published manifest never names a
    // missing index — a crash in between leaves an orphan index file under
    // an unpublished prefix, which Drop and re-ingest both clean up.
    MAXRS_RETURN_IF_ERROR(ShardAggIndex::Write(env, AggIndexName(prefix), *aggs));

    // The manifest is the commit point: a dataset without one is invisible
    // to Open and treated as a failed ingest. It is written under a temp
    // name and published by an atomic Rename once fully Finish()ed, so no
    // observer (and no crash) can ever see a half-written manifest under
    // the published name — a torn ingest leaves only the orphan .tmp.
    MAXRS_ASSIGN_OR_RETURN(
        RecordWriter<ShardManifestRecord> manifest,
        RecordWriter<ShardManifestRecord>::Make(env, TempManifestName(prefix),
                                                options.write_behind));
    MAXRS_RETURN_IF_ERROR(manifest.Append(
        ShardManifestRecord{0, kManifestFormatVersion, num_objects, 0.0, 0.0}));
    if (num_objects > 0) {
      MAXRS_RETURN_IF_ERROR(manifest.Append(
          ShardManifestRecord{2, 0, 0, bounds->x_lo, bounds->x_hi}));
      MAXRS_RETURN_IF_ERROR(manifest.Append(
          ShardManifestRecord{3, 0, 0, bounds->y_lo, bounds->y_hi}));
    }
    MAXRS_RETURN_IF_ERROR(manifest.Append(ShardManifestRecord{
        4, kShardAggFormatVersion, shards->size(), 0.0, 0.0}));
    for (size_t i = 0; i < shards->size(); ++i) {
      const ShardInfo& info = (*shards)[i];
      MAXRS_RETURN_IF_ERROR(manifest.Append(ShardManifestRecord{
          1, i, info.num_objects, info.x_range.lo, info.x_range.hi}));
    }
    MAXRS_RETURN_IF_ERROR(manifest.Finish());
    return env.Rename(TempManifestName(prefix), ManifestName(prefix));
  };

  Status st = body();
  temps.Release(y_sorted);
  temps.Release(x_sorted);
  return st;
}

}  // namespace

Result<DatasetHandle> DatasetHandle::Ingest(Env& env,
                                            const std::string& object_file,
                                            const DatasetHandleOptions& options) {
  if (options.prefix.empty()) {
    return Status::InvalidArgument("dataset prefix must not be empty");
  }
  // Same unit-mix-up guard as the core layer (exact_maxrs.cc): a thread
  // count beyond 1024 is bytes-passed-as-threads, not a real machine.
  if (options.num_threads > 1024) {
    return Status::InvalidArgument("num_threads must be at most 1024");
  }
  if (env.Exists(ManifestName(options.prefix))) {
    return Status::InvalidArgument(
        "a dataset already exists under prefix '" + options.prefix +
        "'; datasets are immutable — Drop() it or pick a fresh prefix");
  }
  Stopwatch timer;
  const IoStatsSnapshot io_before = env.stats().Snapshot();

  uint64_t num_objects = 0;
  {
    MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> probe,
                           RecordReader<SpatialObject>::Make(env, object_file));
    num_objects = probe.total();
  }

  DatasetHandle handle;
  handle.env_ = &env;
  handle.prefix_ = options.prefix;
  handle.num_objects_ = num_objects;
  handle.has_bounds_ = num_objects > 0;
  std::vector<ShardAgg> aggs;
  Status st = IngestInto(env, object_file, options, num_objects,
                         &handle.shards_, &handle.bounds_, &aggs);
  if (!st.ok()) {
    // Roll back partially written shard files AND a partially written
    // temp manifest (Create happens before the appends, so the file can
    // exist without being valid). The published name needs no rollback —
    // only a fully Finish()ed manifest is ever Rename()d onto it.
    for (const ShardInfo& info : handle.shards_) {
      Status ignored = env.Delete(info.y_file);
      ignored = env.Delete(info.x_file);
      (void)ignored;
    }
    Status ignored = env.Delete(TempManifestName(options.prefix));
    ignored = env.Delete(AggIndexName(options.prefix));
    (void)ignored;
    return st;
  }
  // The in-memory index is built straight from the aggregates just
  // computed — no counted read-back of the file that was just written.
  handle.agg_index_ = std::make_shared<ShardAggIndex>(std::move(aggs));
  handle.ingest_stats_.io = env.stats().Snapshot() - io_before;
  handle.ingest_stats_.wall_seconds = timer.ElapsedSeconds();
  handle.ComputeShardGeometry();
  return handle;
}

Result<DatasetHandle> DatasetHandle::Open(Env& env, const std::string& prefix) {
  MAXRS_ASSIGN_OR_RETURN(
      std::vector<ShardManifestRecord> records,
      ReadRecordFile<ShardManifestRecord>(env, ManifestName(prefix)));
  if (records.empty() || records[0].kind != 0) {
    return Status::Corruption("manifest of '" + prefix + "' has no header");
  }
  if (records[0].index < 1 || records[0].index > kManifestFormatVersion) {
    return Status::NotSupported("manifest format version " +
                                std::to_string(records[0].index) +
                                " is not supported");
  }
  DatasetHandle handle;
  handle.env_ = &env;
  handle.prefix_ = prefix;
  handle.num_objects_ = records[0].count;

  uint64_t total = 0;
  bool have_x_extent = false, have_y_extent = false;
  bool have_index_descriptor = false;
  uint64_t index_version = 0, index_shards = 0;
  for (size_t i = 1; i < records.size(); ++i) {
    const ShardManifestRecord& r = records[i];
    if (r.kind == 4) {
      have_index_descriptor = true;
      index_version = r.index;
      index_shards = r.count;
      continue;
    }
    if (r.kind == 2) {
      handle.bounds_.x_lo = r.x_lo;
      handle.bounds_.x_hi = r.x_hi;
      have_x_extent = true;
      continue;
    }
    if (r.kind == 3) {
      handle.bounds_.y_lo = r.x_lo;
      handle.bounds_.y_hi = r.x_hi;
      have_y_extent = true;
      continue;
    }
    if (r.kind != 1 || r.index != handle.shards_.size()) {
      return Status::Corruption("manifest of '" + prefix +
                                "' has out-of-order shard entries");
    }
    ShardInfo info;
    info.x_range = Interval{r.x_lo, r.x_hi};
    info.num_objects = r.count;
    info.y_file = ShardYName(prefix, handle.shards_.size());
    info.x_file = ShardXName(prefix, handle.shards_.size());
    if (!env.Exists(info.y_file) || !env.Exists(info.x_file)) {
      return Status::Corruption("manifest of '" + prefix +
                                "' references missing shard files");
    }
    total += r.count;
    handle.shards_.push_back(std::move(info));
  }
  handle.has_bounds_ = have_x_extent && have_y_extent;
  if (handle.shards_.empty() || total != handle.num_objects_) {
    return Status::Corruption("manifest of '" + prefix +
                              "' is inconsistent with its shard counts");
  }
  if (have_index_descriptor) {
    // A promised aggregate index that fails to open or validate degrades
    // the handle, never the dataset: the handle opens with a null index
    // and records why in index_status(), and the server serves un-pruned.
    // Pruning is an optimization; the shard files alone are the truth.
    handle.index_status_ = [&]() -> Status {
      if (index_version != kShardAggFormatVersion) {
        return Status::NotSupported("aggregate index format version " +
                                    std::to_string(index_version) +
                                    " is not supported");
      }
      auto index_or = ShardAggIndex::Open(env, AggIndexName(prefix));
      if (!index_or.ok()) return index_or.status();
      if (index_or->num_shards() != handle.shards_.size() ||
          index_or->num_shards() != index_shards ||
          index_or->total_count() != handle.num_objects_) {
        return Status::Corruption(
            "aggregate index of '" + prefix +
            "' is inconsistent with the manifest's shard layout");
      }
      for (size_t i = 0; i < handle.shards_.size(); ++i) {
        if (index_or->shard(i).count != handle.shards_[i].num_objects) {
          return Status::Corruption("aggregate index of '" + prefix +
                                    "' disagrees with shard " +
                                    std::to_string(i) + "'s object count");
        }
      }
      handle.agg_index_ =
          std::make_shared<ShardAggIndex>(std::move(index_or).value());
      return Status::OK();
    }();
  }
  handle.ComputeShardGeometry();
  return handle;
}

void DatasetHandle::ComputeShardGeometry() {
  interior_bounds_.clear();
  slab_ranges_.clear();
  if (shards_.empty()) return;
  interior_bounds_.reserve(shards_.size() - 1);
  slab_ranges_.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (k > 0) interior_bounds_.push_back(shards_[k].x_range.lo);
    slab_ranges_.push_back(shards_[k].x_range);
  }
}

Status DatasetHandle::Drop() {
  if (env_ == nullptr) return Status::OK();
  Status first;
  auto note = [&first](Status st) {
    if (!st.ok() && st.code() != Status::Code::kNotFound && first.ok()) {
      first = st;
    }
  };
  for (const ShardInfo& info : shards_) {
    note(env_->Delete(info.y_file));
    note(env_->Delete(info.x_file));
  }
  note(env_->Delete(ManifestName(prefix_)));
  note(env_->Delete(AggIndexName(prefix_)));
  // A crashed ingest may have left an unpublished temp manifest behind.
  note(env_->Delete(TempManifestName(prefix_)));
  agg_index_.reset();
  shards_.clear();
  num_objects_ = 0;
  has_bounds_ = false;
  return first;
}

}  // namespace maxrs
