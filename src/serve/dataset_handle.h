// DatasetHandle: the ingest-once half of the serve layer.
//
// ExactMaxRS pays its dominant cost in the two up-front external sorts
// (Theorem 2), yet both sort orders are *rectangle-independent* at the
// object level:
//
//   - every transformed piece has y_lo = o.y - h/2 with one h for all
//     objects, so the PieceYLess order of the pieces IS the (y, x, w) order
//     of the objects;
//   - every vertical edge is o.x -/+ w/2, so the EdgeXLess-sorted edge
//     stream is a 2-way merge of the (x, y, w)-sorted objects shifted by
//     -w/2 and +w/2.
//
// Ingest therefore external-sorts the *objects* twice (by y, by x), cuts
// the x-sorted stream into equal-count x-slab shards, routes the y-sorted
// stream into the same shards (order-preserving), and persists a shard
// manifest via the Env. Afterwards any query rectangle can derive both
// division-phase inputs with linear passes — no external sort ever runs
// again for this dataset. MaxRSServer (maxrs_server.h) is the query half.
//
// See docs/ARCHITECTURE.md ("The serve layer") for the full design.
#ifndef MAXRS_SERVE_DATASET_HANDLE_H_
#define MAXRS_SERVE_DATASET_HANDLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/records.h"
#include "geom/geometry.h"
#include "index/shard_agg_index.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace maxrs {

/// Total order on objects that mirrors PieceYLess on their transformed
/// pieces: for any fixed (w, h), sorting objects this way yields a stream
/// whose pieces are PieceYLess-sorted (the map y -> y - h/2 is monotone).
inline bool ObjectYLess(const SpatialObject& a, const SpatialObject& b) {
  uint64_t ka = DoubleOrderKey(a.y), kb = DoubleOrderKey(b.y);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.x), kb = DoubleOrderKey(b.x);
  if (ka != kb) return ka < kb;
  return DoubleOrderKey(a.w) < DoubleOrderKey(b.w);
}

/// Total order on objects by x (then y, w for canonicality): the source
/// order of the per-query edge streams and of the x-slab shard cut.
inline bool ObjectXLess(const SpatialObject& a, const SpatialObject& b) {
  uint64_t ka = DoubleOrderKey(a.x), kb = DoubleOrderKey(b.x);
  if (ka != kb) return ka < kb;
  ka = DoubleOrderKey(a.y), kb = DoubleOrderKey(b.y);
  if (ka != kb) return ka < kb;
  return DoubleOrderKey(a.w) < DoubleOrderKey(b.w);
}

/// Knobs for DatasetHandle::Ingest.
struct DatasetHandleOptions {
  /// Number of x-slab shards; 0 derives one shard per ~64K objects.
  /// Clamped to [1, 64] and to the ingest budget's M/B - 1 stream blocks
  /// (the routing pass holds one writer block per shard). Fewer shards
  /// than requested may also result when the dataset has few distinct x
  /// values (shards never split equal x).
  size_t shard_count = 0;

  /// Memory budget M in bytes for the two ingest external sorts.
  size_t memory_bytes = 1 << 20;

  /// Worker threads for the ingest sorts (the two sorts run concurrently
  /// and parallelize internally, exactly as in RunExactMaxRS).
  size_t num_threads = 1;

  /// Double-buffered read-ahead (io/prefetch_reader.h) on the ingest's
  /// sequential scans: both external sorts plus the shard cut and routing
  /// passes. Shard files, manifest, and block counts are bit-identical
  /// either way.
  bool read_ahead = false;

  /// Write-behind (io/record_io.h) on the ingest's output streams: the
  /// shard x/y files and the manifest flush their data blocks on the
  /// shared IoExecutor while the routing pass keeps running — the
  /// write-side dual of read_ahead, with the same bit-identity guarantee
  /// for file contents and block counts.
  bool write_behind = false;

  /// Env namespace the shard files and manifest live under. Also the
  /// dataset's identity for DatasetHandle::Open.
  std::string prefix = "maxrs_dataset";
};

/// One x-slab shard: the objects whose x lies in `x_range`, stored twice —
/// once in ObjectYLess order (piece-stream source) and once in ObjectXLess
/// order (edge-stream source).
struct ShardInfo {
  /// Half-open slab [lo, hi); the first shard's lo is -inf and the last
  /// shard's hi is +inf, so every finite x routes to exactly one shard.
  Interval x_range{-kInf, kInf};
  /// Record file of the shard's objects in ObjectYLess order.
  std::string y_file;
  /// Record file of the shard's objects in ObjectXLess order.
  std::string x_file;
  /// Object count of the shard (identical in both files).
  uint64_t num_objects = 0;
};

/// Cost accounting of one Ingest call (all zeros on an Open()ed handle).
struct IngestStats {
  /// Block transfers of the ingest (two sorts + shard routing + manifest).
  IoStatsSnapshot io;
  /// Wall-clock duration of the ingest.
  double wall_seconds = 0.0;
};

/// On-disk manifest entry. The manifest record file holds one header entry
/// (kind 0: format version in `index`, total objects in `count`), since
/// format version 2 two extent entries (kind 2: dataset x-extent, kind 3:
/// dataset y-extent, both in `x_lo`/`x_hi`; omitted for an empty dataset),
/// since format version 3 one aggregate-index descriptor (kind 4: index
/// format version in `index`, indexed shard count in `count`; the index
/// data itself lives in a separate file next to the manifest, so a damaged
/// index can be detected and bypassed without condemning the manifest),
/// and one entry per shard (kind 1: shard index, object count, slab
/// bounds). Shard file names are derived from the prefix, not stored.
/// Version-1 manifests (no extent entries) still Open; their handles just
/// report has_bounds() == false. Version-2 manifests (no index descriptor)
/// still Open and serve; their handles report agg_index() == nullptr.
struct ShardManifestRecord {
  uint64_t kind;   ///< 0 = header, 1 = shard, 2/3 = x/y extent, 4 = index.
  uint64_t index;  ///< Header: format version. Shard: shard index.
  uint64_t count;  ///< Header: total objects. Shard: shard object count.
  double x_lo;     ///< Shard slab / extent lower bound.
  double x_hi;     ///< Shard slab / extent upper bound.
};

/// An immutable ingested dataset: sorted, sharded, and manifest-backed.
/// Create with Ingest (runs the sorts) or Open (re-attaches to a manifest
/// persisted by an earlier Ingest in the same Env). The handle itself is a
/// lightweight description; the data lives in the Env. Movable, not
/// copyable-by-design-needed (copies would alias the same files, which is
/// harmless but pointless).
class DatasetHandle {
 public:
  /// Sorts and shards the SpatialObject record file `object_file`, writes
  /// the shard files and manifest under `options.prefix`, and returns the
  /// handle. The input file is left untouched. Fails with InvalidArgument
  /// if a manifest already exists under the prefix (datasets are
  /// immutable; use a fresh prefix or Drop() the old one).
  static Result<DatasetHandle> Ingest(Env& env, const std::string& object_file,
                                      const DatasetHandleOptions& options);

  /// Re-attaches to a dataset ingested earlier under `prefix` in `env` by
  /// reading its manifest. Verifies the shard files exist.
  static Result<DatasetHandle> Open(Env& env, const std::string& prefix);

  /// Deletes the shard files and the manifest. The handle is dead after.
  Status Drop();

  /// The x-slab shards, in ascending x order.
  const std::vector<ShardInfo>& shards() const { return shards_; }

  /// The S-1 interior shard boundaries (shards()[k].x_range.lo for k >= 1),
  /// precomputed once at Ingest/Open: every per-query routing pass needs
  /// them, and batched execution hands one copy to many queries at once.
  const std::vector<double>& interior_bounds() const {
    return interior_bounds_;
  }

  /// The S shard slabs (shards()[k].x_range), precomputed once — the
  /// `ranges` argument of routing and the cross-shard MergeSweep.
  const std::vector<Interval>& slab_ranges() const { return slab_ranges_; }

  /// Total object count across all shards.
  uint64_t num_objects() const { return num_objects_; }

  /// The Env namespace / identity of this dataset.
  const std::string& prefix() const { return prefix_; }

  /// Cost of the Ingest that produced this handle (zeros after Open).
  const IngestStats& ingest_stats() const { return ingest_stats_; }

  /// Whether the dataset's bounding box is known: false for an empty
  /// dataset and for handles Open()ed from a version-1 manifest (written
  /// before the extent entries existed).
  bool has_bounds() const { return has_bounds_; }

  /// The dataset's bounding box (min/max object coordinates, a degenerate
  /// zero-extent box for a single point). Meaningful only while
  /// has_bounds(); the basis of the server's cache admission policy.
  const Rect& bounds() const { return bounds_; }

  /// The aggregate shard index (per-shard MBR + weight aggregates), or
  /// nullptr when the dataset has none: pre-v3 manifests, and v3 datasets
  /// whose index file failed to open or validate. A null index only costs
  /// pruning — MaxRSServer degrades to un-pruned serving and the answers
  /// are unchanged.
  const ShardAggIndex* agg_index() const { return agg_index_.get(); }

  /// Why agg_index() is null when the manifest promised one: kCorruption /
  /// kNotFound / kNotSupported from opening the index file. OK when the
  /// index is present, and OK for pre-v3 manifests (nothing was promised).
  const Status& index_status() const { return index_status_; }

 private:
  DatasetHandle() = default;

  /// Fills interior_bounds_ / slab_ranges_ from shards_; called once at the
  /// end of Ingest and Open (the handle is immutable afterwards).
  void ComputeShardGeometry();

  Env* env_ = nullptr;
  std::string prefix_;
  uint64_t num_objects_ = 0;
  std::vector<ShardInfo> shards_;
  std::vector<double> interior_bounds_;
  std::vector<Interval> slab_ranges_;
  IngestStats ingest_stats_;
  bool has_bounds_ = false;
  Rect bounds_;
  std::shared_ptr<ShardAggIndex> agg_index_;
  Status index_status_;
};

}  // namespace maxrs

#endif  // MAXRS_SERVE_DATASET_HANDLE_H_
