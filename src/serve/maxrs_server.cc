#include "serve/maxrs_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <numeric>
#include <optional>
#include <thread>

#include <condition_variable>

#include "core/division.h"
#include "core/merge_sweep.h"
#include "core/records.h"
#include "io/external_sort.h"
#include "io/prefetch_reader.h"
#include "io/record_io.h"
#include "io/record_stream.h"
#include "io/temp_manager.h"
#include "util/stopwatch.h"

namespace maxrs {
namespace {

// ---------------------------------------------------------------------------
// Global-merge mode (ServeSolveMode::kGlobalMerge): derive per-shard sorted
// streams, k-way-merge them into one global prepared input, divide from the
// top. This is the PR-3 path, kept because it reproduces the one-shot
// division tree bit-for-bit even for non-integer weights.
// ---------------------------------------------------------------------------

// Emits the transformed piece stream of one shard: a linear pass over the
// shard's ObjectYLess-sorted objects. The output is PieceYLess-sorted by
// construction on all but pathological inputs — y -> y - h/2 and
// x -> x -/+ w/2 are monotone, so the object order IS the piece order
// (dataset_handle.h, header comment). The one exception: objects whose
// coordinates differ by less than one ulp *of the shifted value* collapse
// onto equal piece keys, which can reorder the PieceYLess tie-break
// fields. `*canonical` reports whether the emitted stream is verifiably
// PieceYLess-sorted; when false the caller restores the canonical order
// with a real sort (correctness over speed on degenerate data).
Status TransformShardPieces(Env& env, const ShardInfo& shard, double width,
                            double height, const std::string& out,
                            bool* canonical, bool read_ahead,
                            const CancelToken* cancel) {
  MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                         PrefetchingReader<SpatialObject>::Make(
                             env, shard.y_file, read_ahead));
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<PieceRecord> writer,
                         RecordWriter<PieceRecord>::Make(env, out));
  *canonical = true;
  PieceRecord prev{};
  bool have_prev = false;
  SpatialObject o{};
  while (reader.Next(&o)) {
    MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
    const PieceRecord piece = TransformObject(o, width, height);
    if (have_prev && PieceYLess(piece, prev)) *canonical = false;
    prev = piece;
    have_prev = true;
    MAXRS_RETURN_IF_ERROR(writer.Append(piece));
  }
  MAXRS_RETURN_IF_ERROR(reader.final_status());
  return writer.Finish();
}

// Emits the sorted vertical-edge stream of one shard for rectangle width
// `width`: a 2-way merge of the shard's ObjectXLess-sorted objects shifted
// by -w/2 (left edges) and +w/2 (right edges). Both shifted streams are
// individually sorted (the shift is monotone), so one merge pass replaces
// the per-query edge sort of the one-shot pipeline. Unlike pieces, no
// canonical-order fallback is needed: EdgeRecord has a single field, so
// colliding values are byte-identical and every merge order yields the
// same file.
Status BuildShardEdges(Env& env, const ShardInfo& shard, double width,
                       const std::string& out, bool read_ahead,
                       const CancelToken* cancel) {
  MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> left,
                         PrefetchingReader<SpatialObject>::Make(
                             env, shard.x_file, read_ahead));
  MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> right,
                         PrefetchingReader<SpatialObject>::Make(
                             env, shard.x_file, read_ahead));
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<EdgeRecord> writer,
                         RecordWriter<EdgeRecord>::Make(env, out));
  const double half_w = width / 2.0;
  SpatialObject lo{}, hi{};
  bool have_lo = left.Next(&lo);
  bool have_hi = right.Next(&hi);
  while (have_lo || have_hi) {
    MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
    bool take_lo = have_lo;
    if (have_lo && have_hi) {
      take_lo = DoubleOrderKey(lo.x - half_w) <= DoubleOrderKey(hi.x + half_w);
    }
    if (take_lo) {
      MAXRS_RETURN_IF_ERROR(writer.Append(EdgeRecord{lo.x - half_w}));
      have_lo = left.Next(&lo);
    } else {
      MAXRS_RETURN_IF_ERROR(writer.Append(EdgeRecord{hi.x + half_w}));
      have_hi = right.Next(&hi);
    }
  }
  MAXRS_RETURN_IF_ERROR(left.final_status());
  MAXRS_RETURN_IF_ERROR(right.final_status());
  return writer.Finish();
}

// ---------------------------------------------------------------------------
// Per-shard mode (ServeSolveMode::kPerShard): the x-slab shards are the
// top-level division. One routing pass per source shard scatters clipped
// pieces / edges / spans to target shards; each target shard merges its
// (typically 2-3) incoming streams and solves independently; one
// cross-shard MergeSweep combines the shard slab-files. The global k-way
// piece merge and the root division pass never run.
// ---------------------------------------------------------------------------

// Fan-in of every per-query k-way merge (piece parts, edge parts, span
// parts, and the global-merge mode's stream merge): the external sort's
// M/B - 1 input-block budget, floored at 2. Guards the subtraction —
// blocks can be 0 for a sub-block budget (ValidateOptions rejects such
// budgets later, but the fan-in must not wrap to SIZE_MAX meanwhile). One
// definition keeps all merge sites on the same policy; diverging fan-ins
// would break the bit-identity-across-modes contract.
size_t QueryMergeFanIn(size_t memory_bytes, size_t block_size) {
  const size_t blocks = memory_bytes / block_size;
  return std::max<size_t>(2, blocks > 1 ? blocks - 1 : 1);
}

// Index of the shard whose half-open x-range contains `v`. `bounds` holds
// the S-1 interior shard boundaries; callers clamp into the last shard for
// values at/above its lower bound (mirroring division.cc's ChildOf —
// clipped extents may end exactly on a slab's upper bound).
size_t ShardOf(const std::vector<double>& bounds, double v) {
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

// Lazily-opened per-target record writers of one routing pass: target t's
// part file is created the moment the first record routes there, so a
// source shard touching three targets pays for three files, not one per
// shard in the dataset.
template <typename T>
class TargetWriters {
 public:
  TargetWriters(Env& env, TempFileManager& temps, std::string tag,
                size_t num_targets)
      : env_(env),
        temps_(temps),
        tag_(std::move(tag)),
        writers_(num_targets),
        names_(num_targets),
        counts_(num_targets, 0) {}

  Status Append(size_t target, const T& record) {
    if (!writers_[target].has_value()) {
      names_[target] = temps_.NewName(tag_ + "_" + std::to_string(target));
      MAXRS_ASSIGN_OR_RETURN(RecordWriter<T> writer,
                             RecordWriter<T>::Make(env_, names_[target]));
      writers_[target] = std::move(writer);
    }
    ++counts_[target];
    return writers_[target]->Append(record);
  }

  Status FinishAll() {
    for (std::optional<RecordWriter<T>>& writer : writers_) {
      if (writer.has_value()) MAXRS_RETURN_IF_ERROR(writer->Finish());
    }
    return Status::OK();
  }

  // Per-target part file names; empty string where nothing was routed.
  std::vector<std::string>& names() { return names_; }
  std::vector<uint64_t>& counts() { return counts_; }

 private:
  Env& env_;
  TempFileManager& temps_;
  std::string tag_;
  std::vector<std::optional<RecordWriter<T>>> writers_;
  std::vector<std::string> names_;
  std::vector<uint64_t> counts_;
};

// Routing output of one source shard for one query. Every stream inherits
// sortedness from its source: piece parts are y_lo-ordered (subsequences of
// the y-sorted object stream under a monotone transform), edge parts are
// x-ordered, the span part is y_lo-ordered.
struct RoutedSource {
  std::vector<std::string> piece_parts;  // per target; "" when none routed
  std::vector<uint64_t> piece_counts;
  std::vector<std::string> edge_parts;   // per target; "" when none routed
  std::string span_part;                 // "" when the source spans nothing
  uint64_t span_count = 0;
};

// Phase A of the per-shard path: routes source shard `source`'s streams to
// target shards. Pieces follow division.cc pass-3 semantics with the shard
// grid as the cut: a piece covering shards [i, j] contributes a clipped
// part to i (unless it starts exactly on i's lower bound) and to j (unless
// it ends exactly on j's upper bound), and one SpanRecord for the fully
// covered shards between. Edges route by value. Two linear passes (one
// over the y-file, one 2-way self-merge over the x-file) — no sorting.
Status RouteSourceShard(Env& env, TempFileManager& temps,
                        const std::vector<ShardInfo>& shards,
                        const std::vector<double>& bounds, size_t source,
                        double width, double height, bool read_ahead,
                        const CancelToken* cancel, RoutedSource* out) {
  const size_t num_shards = shards.size();
  const std::string source_tag = std::to_string(source);

  // Pieces + spans: one pass over the shard's ObjectYLess-sorted objects.
  {
    TargetWriters<PieceRecord> pieces(env, temps, "q_p" + source_tag,
                                      num_shards);
    std::optional<RecordWriter<SpanRecord>> spans;
    auto append_span = [&](const SpanRecord& span) -> Status {
      if (!spans.has_value()) {
        out->span_part = temps.NewName("q_s" + source_tag);
        MAXRS_ASSIGN_OR_RETURN(RecordWriter<SpanRecord> writer,
                               RecordWriter<SpanRecord>::Make(env,
                                                              out->span_part));
        spans = std::move(writer);
      }
      ++out->span_count;
      return spans->Append(span);
    };

    // The clipping rule is division.cc pass 3 with the shard grid as the
    // cut — shared via division_internal::RoutePiece so the recursion, this
    // pass, and the streaming routing pass can never diverge.
    std::vector<Interval> ranges;
    ranges.reserve(num_shards);
    for (const ShardInfo& shard : shards) ranges.push_back(shard.x_range);
    auto emit_piece = [&](size_t target, const PieceRecord& piece) {
      return pieces.Append(target, piece);
    };
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].y_file, read_ahead));
    SpatialObject o{};
    while (reader.Next(&o)) {
      MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
      const PieceRecord p = TransformObject(o, width, height);
      MAXRS_RETURN_IF_ERROR(division_internal::RoutePiece(
          bounds, ranges, p, emit_piece, append_span));
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
    MAXRS_RETURN_IF_ERROR(pieces.FinishAll());
    if (spans.has_value()) MAXRS_RETURN_IF_ERROR(spans->Finish());
    out->piece_parts = std::move(pieces.names());
    out->piece_counts = std::move(pieces.counts());
  }

  // Edges: the BuildShardEdges 2-way self-merge, with each emitted value
  // routed to the shard containing it instead of one output file. Edges of
  // this shard's objects can land in any shard (a rect half-width shifts
  // them arbitrarily far), and each target's stream stays x-sorted because
  // it is a filtered subsequence of this sorted merge.
  {
    TargetWriters<EdgeRecord> edges(env, temps, "q_e" + source_tag,
                                    num_shards);
    auto route_edge = [&](double x) -> Status {
      return edges.Append(std::min(ShardOf(bounds, x), num_shards - 1),
                          EdgeRecord{x});
    };
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> left,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].x_file, read_ahead));
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> right,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].x_file, read_ahead));
    const double half_w = width / 2.0;
    SpatialObject lo{}, hi{};
    bool have_lo = left.Next(&lo);
    bool have_hi = right.Next(&hi);
    while (have_lo || have_hi) {
      MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
      bool take_lo = have_lo;
      if (have_lo && have_hi) {
        take_lo =
            DoubleOrderKey(lo.x - half_w) <= DoubleOrderKey(hi.x + half_w);
      }
      if (take_lo) {
        MAXRS_RETURN_IF_ERROR(route_edge(lo.x - half_w));
        have_lo = left.Next(&lo);
      } else {
        MAXRS_RETURN_IF_ERROR(route_edge(hi.x + half_w));
        have_hi = right.Next(&hi);
      }
    }
    MAXRS_RETURN_IF_ERROR(left.final_status());
    MAXRS_RETURN_IF_ERROR(right.final_status());
    MAXRS_RETURN_IF_ERROR(edges.FinishAll());
    out->edge_parts = std::move(edges.names());
  }
  return Status::OK();
}

// Phase B of the per-shard path: assembles target shard `target`'s two
// division-phase inputs from the routed parts — deterministic fan-in, parts
// in ascending source order — and solves the shard down to its slab-file.
// The piece merge keys on PieceYLess, whose primary key y_lo is truly
// sorted in every part, so the merged stream is y_lo-ordered (all the
// division phase needs) and a deterministic function of the parts; clipped
// tie-break fields need not be globally PieceYLess-sorted.
// A non-null `best_out` receives the shard slab-file's maximum tuple sum
// (core/records.h SlabBest) — the pruned execution's incumbent.
Result<std::string> SolveTargetShard(Env& env, TempFileManager& temps,
                                     const std::vector<RoutedSource>& routed,
                                     const Interval& slab, size_t target,
                                     const MaxRSOptions& options,
                                     MaxRSStats* stats,
                                     SlabBest* best_out = nullptr) {
  std::vector<std::string> piece_parts;
  std::vector<std::string> edge_parts;
  uint64_t num_pieces = 0;
  for (const RoutedSource& source : routed) {
    if (!source.piece_parts[target].empty()) {
      piece_parts.push_back(source.piece_parts[target]);
      num_pieces += source.piece_counts[target];
    }
    if (!source.edge_parts[target].empty()) {
      edge_parts.push_back(source.edge_parts[target]);
    }
  }

  if (piece_parts.empty()) {
    // No piece overlaps this shard for this rect (fully spanned shards are
    // handled by the cross-shard sweep's upSum): its slab-file is empty.
    for (const std::string& edge_part : edge_parts) temps.Release(edge_part);
    std::string out = temps.NewName("q_slab");
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<SlabTuple> writer,
                           RecordWriter<SlabTuple>::Make(env, out));
    MAXRS_RETURN_IF_ERROR(writer.Finish());
    return {std::move(out)};
  }

  const size_t fan_in = QueryMergeFanIn(options.memory_bytes,
                                        env.block_size());
  PreparedInput input;
  input.num_pieces = num_pieces;
  input.x_range = slab;
  if (piece_parts.size() == 1) {
    input.piece_file = piece_parts[0];  // already sorted: skip the copy pass
  } else {
    input.piece_file = temps.NewName("q_pieces");
    MAXRS_RETURN_IF_ERROR(MergeSortedParts<PieceRecord>(
        env, temps, piece_parts, input.piece_file, PieceYLess, fan_in,
        /*pool=*/nullptr, /*passes_out=*/nullptr, options.read_ahead));
  }
  if (edge_parts.size() == 1) {
    input.edge_file = edge_parts[0];
  } else {
    input.edge_file = temps.NewName("q_edges");
    if (edge_parts.empty()) {
      // Unreachable for well-formed routing (a clipped part always keeps a
      // real edge inside its shard), but an empty edge file degrades to the
      // base case instead of corrupting the division.
      MAXRS_ASSIGN_OR_RETURN(RecordWriter<EdgeRecord> writer,
                             RecordWriter<EdgeRecord>::Make(env,
                                                            input.edge_file));
      MAXRS_RETURN_IF_ERROR(writer.Finish());
    } else {
      MAXRS_RETURN_IF_ERROR(MergeSortedParts<EdgeRecord>(
          env, temps, edge_parts, input.edge_file, EdgeXLess, fan_in,
          /*pool=*/nullptr, /*passes_out=*/nullptr, options.read_ahead));
    }
  }
  return core_internal::SolveSlab(env, temps, input, options, stats,
                                  /*pool=*/nullptr, best_out);
}

// ---------------------------------------------------------------------------
// Streaming per-shard routing (ServeRoutingMode::kStreaming): the routing
// passes above, but every routed record travels through a RecordChannel
// (io/record_stream.h) instead of an Env part file, and each target solve
// (core_internal::SolveSlabStream) starts the moment the piece channels of
// its column have their first heads — while the source routing passes are
// still running. Liveness protocol (record_stream.h, "Threading"): channel
// producers never block and are submitted to the FIFO pool BEFORE every
// consumer, so a parked consumer always has running producers destined to
// close its channels. Producers are raw pool submissions joined by a latch,
// NOT TaskGroup tasks: a group no-ops queued tasks after its first error,
// and a no-op'd producer would never close its channels, hanging every
// consumer already running.
// ---------------------------------------------------------------------------

// One-shot join latch for the raw producer submissions of one query.
class JoinLatch {
 public:
  explicit JoinLatch(size_t count) : remaining_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

// All channels of one streaming query: piece and edge channels form S x S
// grids (producer-major: source s feeds row s, target t drains column t),
// spans one channel per source (drained by the query worker after the
// joins). Created eagerly on the submitting thread so the spill names are
// allocated in a deterministic order.
struct StreamingChannels {
  StreamingChannels(Env& env, TempFileManager& temps, size_t num_shards,
                    size_t cap_bytes, bool write_behind)
      : num_shards(num_shards) {
    pieces.reserve(num_shards * num_shards);
    edges.reserve(num_shards * num_shards);
    spans.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      const std::string tag = std::to_string(s);
      for (size_t t = 0; t < num_shards; ++t) {
        const std::string cell = tag + "_" + std::to_string(t);
        pieces.push_back(std::make_unique<RecordChannel<PieceRecord>>(
            env, temps.NewName("q_chp" + cell), cap_bytes, write_behind));
        edges.push_back(std::make_unique<RecordChannel<EdgeRecord>>(
            env, temps.NewName("q_che" + cell), cap_bytes, write_behind));
      }
      spans.push_back(std::make_unique<RecordChannel<SpanRecord>>(
          env, temps.NewName("q_chs" + tag), cap_bytes, write_behind));
    }
  }

  RecordChannel<PieceRecord>* piece(size_t s, size_t t) {
    return pieces[s * num_shards + t].get();
  }
  RecordChannel<EdgeRecord>* edge(size_t s, size_t t) {
    return edges[s * num_shards + t].get();
  }

  size_t num_shards;
  std::vector<std::unique_ptr<RecordChannel<PieceRecord>>> pieces;
  std::vector<std::unique_ptr<RecordChannel<EdgeRecord>>> edges;
  std::vector<std::unique_ptr<RecordChannel<SpanRecord>>> spans;
};

// Streaming Phase A for source shard `source`: the RouteSourceShard passes
// with channels as the targets. The piece/span pass runs first and closes
// its sinks before the edge pass starts, so target solves whose piece
// streams are complete can probe and begin solving while this source is
// still routing edges. Every sink of row `source` is closed exactly once on
// every path — an unclosed channel would park its consumer forever.
Status RouteSourceShardStreaming(Env& env, StreamingChannels& channels,
                                 const std::vector<ShardInfo>& shards,
                                 const std::vector<double>& bounds,
                                 const std::vector<Interval>& ranges,
                                 size_t source, double width, double height,
                                 bool read_ahead, const CancelToken* cancel) {
  const size_t num_shards = shards.size();

  // Pieces + spans: one pass over the shard's ObjectYLess-sorted objects.
  Status piece_status = [&]() -> Status {
    auto emit_piece = [&](size_t target, const PieceRecord& piece) {
      return channels.piece(source, target)->Append(piece);
    };
    auto emit_span = [&](const SpanRecord& span) {
      return channels.spans[source]->Append(span);
    };
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].y_file, read_ahead));
    SpatialObject o{};
    while (reader.Next(&o)) {
      // An expired deadline unwinds through the close-on-error protocol
      // below, so every consumer blocked on this row's channels observes
      // kDeadlineExceeded instead of hanging.
      MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
      const PieceRecord p = TransformObject(o, width, height);
      MAXRS_RETURN_IF_ERROR(division_internal::RoutePiece(
          bounds, ranges, p, emit_piece, emit_span));
    }
    return reader.final_status();
  }();
  for (size_t t = 0; t < num_shards; ++t) {
    Status close_st = channels.piece(source, t)->Close(piece_status);
    if (piece_status.ok()) piece_status = close_st;
  }
  {
    Status close_st = channels.spans[source]->Close(piece_status);
    if (piece_status.ok()) piece_status = close_st;
  }
  if (!piece_status.ok()) {
    // The edge pass is pointless now, but its sinks still must close so
    // consumers blocked on edge heads observe the error instead of hanging.
    for (size_t t = 0; t < num_shards; ++t) {
      (void)channels.edge(source, t)->Close(piece_status);
    }
    return piece_status;
  }

  // Edges: the BuildShardEdges 2-way self-merge, routed by value.
  Status edge_status = [&]() -> Status {
    auto route_edge = [&](double x) -> Status {
      const size_t target = std::min(ShardOf(bounds, x), num_shards - 1);
      return channels.edge(source, target)->Append(EdgeRecord{x});
    };
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> left,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].x_file, read_ahead));
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> right,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].x_file, read_ahead));
    const double half_w = width / 2.0;
    SpatialObject lo{}, hi{};
    bool have_lo = left.Next(&lo);
    bool have_hi = right.Next(&hi);
    while (have_lo || have_hi) {
      MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
      bool take_lo = have_lo;
      if (have_lo && have_hi) {
        take_lo = DoubleOrderKey(lo.x - half_w) <= DoubleOrderKey(hi.x + half_w);
      }
      if (take_lo) {
        MAXRS_RETURN_IF_ERROR(route_edge(lo.x - half_w));
        have_lo = left.Next(&lo);
      } else {
        MAXRS_RETURN_IF_ERROR(route_edge(hi.x + half_w));
        have_hi = right.Next(&hi);
      }
    }
    MAXRS_RETURN_IF_ERROR(left.final_status());
    return right.final_status();
  }();
  for (size_t t = 0; t < num_shards; ++t) {
    Status close_st = channels.edge(source, t)->Close(edge_status);
    if (edge_status.ok()) edge_status = close_st;
  }
  return edge_status;
}

// Streaming Phase B for one target shard: merge the piece channels of its
// column on the fly (MergingSource selects heads exactly like the
// materialized MergeSortedParts chain, so the merged stream is
// byte-identical) and solve the shard via the streaming recursion. The
// edge stream is claimed lazily: only a shard that overflows its base case
// ever drains its edge column (into one scratch file, since the division's
// bounds pass reads the edges twice); a base-case shard abandons the
// column untouched — what those channels buffered or spilled is a pure
// function of the routed records, so block counts stay deterministic.
// Callers pass exactly the rows they actually routed (the pruned execution
// drops never-routed rows — their channels never close, waiting on them
// would hang, and by construction they could only have carried empty
// streams, so dropping them leaves the merged stream byte-identical; the
// batched execution passes each query's two sorted edge half-streams per
// row, whose 2S-way merge is byte-identical to the serial S-way merge of
// pre-merged pairs). `best_out` as in SolveTargetShard.
Status SolveTargetShardColumns(Env& env, TempFileManager& temps,
                               std::vector<RecordSource<PieceRecord>*>
                                   piece_column,
                               std::vector<RecordSource<EdgeRecord>*>
                                   edge_column,
                               const Interval& slab,
                               const MaxRSOptions& options, MaxRSStats* stats,
                               bool write_behind, std::string* slab_file_out,
                               SlabBest* best_out = nullptr) {
  MergingSource<PieceRecord, decltype(&PieceYLess)> pieces(
      std::move(piece_column), &PieceYLess);

  // Probe the first record: a shard no piece overlaps (fully spanned
  // shards are handled by the cross-shard sweep's upSum) produces an empty
  // slab-file without ever invoking the solver — same as the materialized
  // path, which also leaves its stats block untouched in that case.
  PieceRecord first{};
  Status probe = pieces.Read(&first);
  if (probe.code() == Status::Code::kNotFound) {
    std::string out = temps.NewName("q_slab");
    MAXRS_ASSIGN_OR_RETURN(RecordWriter<SlabTuple> writer,
                           RecordWriter<SlabTuple>::Make(env, out));
    MAXRS_RETURN_IF_ERROR(writer.Finish());
    *slab_file_out = std::move(out);
    return Status::OK();
  }
  MAXRS_RETURN_IF_ERROR(probe);
  PrependedSource<PieceRecord> stream(first, &pieces);

  std::string edge_file;  // set iff the provider runs (base-case overflow)
  core_internal::EdgeFileProvider edge_provider =
      [&]() -> Result<std::string> {
    MergingSource<EdgeRecord, decltype(&EdgeXLess)> edges(
        std::move(edge_column), &EdgeXLess);
    edge_file = temps.NewName("q_edges");
    MAXRS_ASSIGN_OR_RETURN(
        RecordWriter<EdgeRecord> writer,
        RecordWriter<EdgeRecord>::Make(env, edge_file, write_behind));
    EdgeRecord e{};
    while (edges.Next(&e)) {
      MAXRS_RETURN_IF_ERROR(CheckCancel(options.cancel));
      MAXRS_RETURN_IF_ERROR(writer.Append(e));
    }
    MAXRS_RETURN_IF_ERROR(edges.final_status());
    MAXRS_RETURN_IF_ERROR(writer.Finish());
    return {edge_file};
  };

  auto slab_or = core_internal::SolveSlabStream(env, temps, &stream,
                                                edge_provider, slab, options,
                                                stats, /*pool=*/nullptr,
                                                best_out);
  // The provider's creator owns the drained edge file (exact_maxrs.h).
  if (!edge_file.empty()) temps.Release(edge_file);
  if (!slab_or.ok()) return slab_or.status();
  *slab_file_out = std::move(slab_or).value();
  return Status::OK();
}

// The single-query column assembly over a StreamingChannels grid: piece and
// edge columns are the `sources` rows of column `target`, in ascending
// source order (the canonical merge order).
Status SolveTargetShardStreaming(Env& env, TempFileManager& temps,
                                 StreamingChannels& channels,
                                 const std::vector<size_t>& sources,
                                 const Interval& slab, size_t target,
                                 const MaxRSOptions& options,
                                 MaxRSStats* stats, bool write_behind,
                                 std::string* slab_file_out,
                                 SlabBest* best_out = nullptr) {
  std::vector<RecordSource<PieceRecord>*> piece_column;
  std::vector<RecordSource<EdgeRecord>*> edge_column;
  piece_column.reserve(sources.size());
  edge_column.reserve(sources.size());
  for (size_t s : sources) {
    piece_column.push_back(channels.piece(s, target));
    edge_column.push_back(channels.edge(s, target));
  }
  return SolveTargetShardColumns(env, temps, std::move(piece_column),
                                 std::move(edge_column), slab, options, stats,
                                 write_behind, slab_file_out, best_out);
}

// ---------------------------------------------------------------------------
// Batched shared-scan execution (MaxRSServerOptions::batch_max > 1): k
// distinct queries drained from the queue execute off ONE routing pass per
// source shard. The y-file scan computes all k transforms per object; the
// x-file scan emits all k queries' left (x - w/2) and right (x + w/2)
// edges. Per query the record streams a target consumer merges are exactly
// the serial streams: piece rows are filtered subsequences of the y-sorted
// scan under each query's monotone transform, and the two edge half-rows
// are each monotone shifts of the x-sorted scan — their 2S-way EdgeXLess
// merge is byte-identical to the serial S-way merge of pre-merged pairs
// because EdgeRecord is a single double under a total order (cmp-equal =>
// byte-equal, and min-of-heads merging is associative). So every query's
// answer is bit-identical to serial submission; only the scan I/O is paid
// once and reported per query as an amortized equal share
// (docs/IO_MODEL.md, "Batched shared scans").
// ---------------------------------------------------------------------------

// One query of a batch, in batch order.
struct BatchQuery {
  double width = 0.0;
  double height = 0.0;
};

// All channels of one k-query batch: per query an S x S piece grid, TWO
// S x S edge grids — the shared x-file scan emits left and right edges
// into separate channels because their interleaving in scan order is not
// sorted, while each half on its own is — and S span channels. Created
// eagerly on the batch worker so spill names are allocated in one
// deterministic order (query-major, then the StreamingChannels layout).
class BatchChannels {
 public:
  BatchChannels(Env& env, TempFileManager& temps, size_t num_queries,
                size_t num_shards, size_t cap_bytes, bool write_behind)
      : num_shards_(num_shards) {
    pieces_.reserve(num_queries * num_shards * num_shards);
    edges_left_.reserve(num_queries * num_shards * num_shards);
    edges_right_.reserve(num_queries * num_shards * num_shards);
    spans_.reserve(num_queries * num_shards);
    for (size_t q = 0; q < num_queries; ++q) {
      const std::string qtag = "b" + std::to_string(q) + "_";
      for (size_t s = 0; s < num_shards; ++s) {
        const std::string tag = std::to_string(s);
        for (size_t t = 0; t < num_shards; ++t) {
          const std::string cell = tag + "_" + std::to_string(t);
          pieces_.push_back(std::make_unique<RecordChannel<PieceRecord>>(
              env, temps.NewName(qtag + "chp" + cell), cap_bytes,
              write_behind));
          edges_left_.push_back(std::make_unique<RecordChannel<EdgeRecord>>(
              env, temps.NewName(qtag + "chl" + cell), cap_bytes,
              write_behind));
          edges_right_.push_back(std::make_unique<RecordChannel<EdgeRecord>>(
              env, temps.NewName(qtag + "chr" + cell), cap_bytes,
              write_behind));
        }
        spans_.push_back(std::make_unique<RecordChannel<SpanRecord>>(
            env, temps.NewName(qtag + "chs" + tag), cap_bytes, write_behind));
      }
    }
  }

  RecordChannel<PieceRecord>* piece(size_t q, size_t s, size_t t) {
    return pieces_[(q * num_shards_ + s) * num_shards_ + t].get();
  }
  RecordChannel<EdgeRecord>* edge_left(size_t q, size_t s, size_t t) {
    return edges_left_[(q * num_shards_ + s) * num_shards_ + t].get();
  }
  RecordChannel<EdgeRecord>* edge_right(size_t q, size_t s, size_t t) {
    return edges_right_[(q * num_shards_ + s) * num_shards_ + t].get();
  }
  RecordChannel<SpanRecord>* span(size_t q, size_t s) {
    return spans_[q * num_shards_ + s].get();
  }

 private:
  size_t num_shards_;
  std::vector<std::unique_ptr<RecordChannel<PieceRecord>>> pieces_;
  std::vector<std::unique_ptr<RecordChannel<EdgeRecord>>> edges_left_;
  std::vector<std::unique_ptr<RecordChannel<EdgeRecord>>> edges_right_;
  std::vector<std::unique_ptr<RecordChannel<SpanRecord>>> spans_;
};

// The batched streaming Phase A for source shard `source`: ONE pass over
// the shard's y-file routes every query's pieces and spans, then ONE pass
// over its x-file emits every query's left and right edges into their
// half-row channels (each a monotone shift of the x-sorted scan, so
// individually sorted; ShardOf routes each value). Every channel of this
// source's rows — k * (S piece + 2S edge + 1 span) — is closed exactly
// once on every path, via the multi-sink close helper. No per-query
// CancelToken is polled here: the scan is shared property of the whole
// batch, so one query's deadline must not abort its batch-mates' routing —
// deadlines stay enforced in each query's consumers and combine phase.
Status RouteSourceShardStreamingBatch(Env& env, BatchChannels& channels,
                                      const std::vector<ShardInfo>& shards,
                                      const std::vector<double>& bounds,
                                      const std::vector<Interval>& ranges,
                                      size_t source,
                                      const std::vector<BatchQuery>& queries,
                                      bool read_ahead) {
  const size_t num_shards = shards.size();
  const size_t k = queries.size();

  auto close_edges = [&](Status st) {
    std::vector<RecordSink<EdgeRecord>*> sinks;
    sinks.reserve(2 * k * num_shards);
    for (size_t q = 0; q < k; ++q) {
      for (size_t t = 0; t < num_shards; ++t) {
        sinks.push_back(channels.edge_left(q, source, t));
        sinks.push_back(channels.edge_right(q, source, t));
      }
    }
    return CloseAllSinks<EdgeRecord>(sinks, std::move(st));
  };

  // Pass 1: the shared y-file scan — all k transforms per object.
  Status piece_status = [&]() -> Status {
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].y_file, read_ahead));
    SpatialObject o{};
    while (reader.Next(&o)) {
      for (size_t q = 0; q < k; ++q) {
        auto emit_piece = [&](size_t target, const PieceRecord& piece) {
          return channels.piece(q, source, target)->Append(piece);
        };
        auto emit_span = [&](const SpanRecord& span) {
          return channels.span(q, source)->Append(span);
        };
        const PieceRecord p =
            TransformObject(o, queries[q].width, queries[q].height);
        MAXRS_RETURN_IF_ERROR(division_internal::RoutePiece(
            bounds, ranges, p, emit_piece, emit_span));
      }
    }
    return reader.final_status();
  }();
  {
    std::vector<RecordSink<PieceRecord>*> piece_sinks;
    std::vector<RecordSink<SpanRecord>*> span_sinks;
    piece_sinks.reserve(k * num_shards);
    span_sinks.reserve(k);
    for (size_t q = 0; q < k; ++q) {
      for (size_t t = 0; t < num_shards; ++t) {
        piece_sinks.push_back(channels.piece(q, source, t));
      }
      span_sinks.push_back(channels.span(q, source));
    }
    piece_status = CloseAllSinks<PieceRecord>(piece_sinks, piece_status);
    piece_status = CloseAllSinks<SpanRecord>(span_sinks, piece_status);
  }
  if (!piece_status.ok()) {
    (void)close_edges(piece_status);
    return piece_status;
  }

  // Pass 2: the shared x-file scan — every query's two edge shifts per
  // object, routed by value.
  Status edge_status = [&]() -> Status {
    MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SpatialObject> reader,
                           PrefetchingReader<SpatialObject>::Make(
                               env, shards[source].x_file, read_ahead));
    SpatialObject o{};
    while (reader.Next(&o)) {
      for (size_t q = 0; q < k; ++q) {
        const double half_w = queries[q].width / 2.0;
        const double left = o.x - half_w;
        const double right = o.x + half_w;
        MAXRS_RETURN_IF_ERROR(
            channels
                .edge_left(q, source,
                           std::min(ShardOf(bounds, left), num_shards - 1))
                ->Append(EdgeRecord{left}));
        MAXRS_RETURN_IF_ERROR(
            channels
                .edge_right(q, source,
                            std::min(ShardOf(bounds, right), num_shards - 1))
                ->Append(EdgeRecord{right}));
      }
    }
    return reader.final_status();
  }();
  return close_edges(edge_status);
}

// The amortized per-query share of a batch's I/O delta: every counter is
// split into k equal integer shares with the remainder spread one block at
// a time over the first (counter mod k) queries in `rank` order — ranks
// are assigned by ascending canonical cache key, so the split is
// independent of batch formation order and the shares sum exactly to the
// batch total (docs/IO_MODEL.md, "Batched shared scans").
IoStatsSnapshot BatchIoShare(const IoStatsSnapshot& total, uint64_t k,
                             uint64_t rank) {
  auto share = [&](uint64_t v) { return v / k + (rank < v % k ? 1 : 0); };
  IoStatsSnapshot out;
  out.blocks_read = share(total.blocks_read);
  out.blocks_written = share(total.blocks_written);
  out.reads_retried = share(total.reads_retried);
  out.writes_retried = share(total.writes_retried);
  out.shards_pruned = share(total.shards_pruned);
  out.bound_skips = share(total.bound_skips);
  out.scans_shared = share(total.scans_shared);
  return out;
}

// Stamps every successful result of a batch with its amortized stats: the
// BatchIoShare of the batch's I/O delta (ranked by ascending canonical
// dimension bits), the batch wall time, and batch_size = k. Failed slots
// are left untouched — their queries re-run solo and account solo.
void ApplyBatchShares(const std::vector<BatchQuery>& queries,
                      const IoStatsSnapshot& delta, double wall_seconds,
                      std::vector<Result<MaxRSResult>>* results) {
  const size_t k = queries.size();
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const uint64_t wa = CanonicalDimensionBits(queries[a].width);
    const uint64_t wb = CanonicalDimensionBits(queries[b].width);
    if (wa != wb) return wa < wb;
    return CanonicalDimensionBits(queries[a].height) <
           CanonicalDimensionBits(queries[b].height);
  });
  std::vector<uint64_t> rank(k, 0);
  for (size_t i = 0; i < k; ++i) rank[order[i]] = i;
  for (size_t q = 0; q < k; ++q) {
    if (!(*results)[q].ok()) continue;
    MaxRSStats& stats = (*results)[q].value().stats;
    stats.io = BatchIoShare(delta, k, rank[q]);
    stats.batch_size = k;
    stats.wall_seconds = wall_seconds;
  }
}

// ---------------------------------------------------------------------------
// Index-pruned per-shard execution (ServePruningMode::kAuto): the aggregate
// shard index (index/shard_agg_index.h) turns the per-shard mode into a
// branch-and-bound. For each target shard t, UB(t) — the total weight of
// all objects a rectangle centered in t's slab could possibly cover — is an
// upper bound on any placement in t, computed from the index with zero I/O.
// The execution is phased: route only the sources the most promising shard
// (the seed) needs, solve the seed to get an achievable incumbent weight,
// discard every shard whose bound cannot beat it, route the remaining
// sources the survivors need, and solve the survivors best-bound-first,
// re-checking each bound against the growing incumbent. The final
// cross-shard MergeSweep runs over ALL shard ranges with "" (known-empty)
// children standing in for skipped shards.
//
// Soundness (why answers are bit-identical to the un-pruned path):
//   - UB(t) counts every object within w/2 of t's slab — a superset of
//     anything a placement in t covers — so with non-negative weights
//     (pruning_safe()) no placement in t can weigh more than UB(t).
//   - The incumbent is a shard slab-file's best tuple sum: a real,
//     achievable placement weight (an UNDER-estimate of the true total,
//     which may add non-negative boundary-span weight on top).
//   - A shard is skipped only when UB(t) < incumbent STRICTLY, so a shard
//     that could tie the winner always survives — tie-breaking (first
//     maximum in root-stream order) is preserved exactly.
//   - A surviving shard's solve sees every source whose expanded x-MBR
//     reaches its slab — all sources that could route anything to it — so
//     its slab-file is byte-identical to the un-pruned one, and every
//     boundary span covering a surviving shard comes from a routed source.
//   - Skipped shards contribute no root tuples, but all of their placements
//     weigh strictly less than the incumbent (≤ final max), so the winning
//     tuple — and, with TopTupleTracker's stratum coalescing, its full
//     winning run — is unchanged.
// I/O never exceeds the un-pruned path: routing a source and solving a
// shard read/write exactly what the un-pruned execution would, and pruning
// only removes whole routes/solves.
// ---------------------------------------------------------------------------

// Weight upper bound of every target shard for rect width `width`: the
// index-aggregated weight of all objects whose x lies within w/2 of the
// shard's slab (closed window — boundary objects count; over-approximating
// is sound, under-approximating would not be).
std::vector<double> ShardUpperBounds(const ShardAggIndex& index,
                                     const std::vector<ShardInfo>& shards,
                                     double width) {
  const double half_w = width / 2.0;
  std::vector<double> ub;
  ub.reserve(shards.size());
  for (const ShardInfo& shard : shards) {
    ub.push_back(index.WindowWeight(shard.x_range.lo - half_w,
                                    shard.x_range.hi + half_w));
  }
  return ub;
}

// Seed choice: the shard with the largest bound, ties to the lowest index
// (deterministic; any choice is sound, the largest bound tends to hold the
// winner and thus prunes the most).
size_t ArgMaxUpperBound(const std::vector<double>& ub) {
  size_t best = 0;
  for (size_t i = 1; i < ub.size(); ++i) {
    if (ub[i] > ub[best]) best = i;
  }
  return best;
}

// Whether source shard `s` can route anything (pieces, edges, or spans) to
// a target with slab `slab`: its object x-MBR expanded by w/2 must reach
// the slab. Closed-interval test — conservatively routes boundary-touching
// sources (an empty routed part costs no blocks).
bool SourceFeedsTarget(const ShardAggIndex& index, size_t s,
                       const Interval& slab, double width) {
  const double half_w = width / 2.0;
  return index.Intersects(s, slab.lo - half_w, slab.hi + half_w);
}

// Shared tail of the pruned executors: scan the root slab-file stream,
// assemble the result, and fold the per-shard stats exactly like the
// un-pruned executors (skipped shards' untouched stats blocks fold as
// zeros, mirroring empty shards on the un-pruned path).
Result<MaxRSResult> ExtractRootResult(Env& env, TempFileManager& temps,
                                      const std::string& root_file,
                                      bool read_ahead, uint64_t input_objects,
                                      const std::vector<MaxRSStats>& stats,
                                      size_t num_shards, uint64_t num_spans,
                                      const CancelToken* cancel) {
  core_internal::TopTupleTracker tracker(1);
  {
    MAXRS_ASSIGN_OR_RETURN(
        PrefetchingReader<SlabTuple> reader,
        PrefetchingReader<SlabTuple>::Make(env, root_file, read_ahead));
    SlabTuple t{};
    while (reader.Next(&t)) {
      MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
      tracker.Visit(t);
    }
    MAXRS_RETURN_IF_ERROR(reader.final_status());
  }
  temps.Release(root_file);

  MaxRSResult result;
  auto best = tracker.Finish();
  if (best.empty()) {
    result.region = Rect{-kInf, kInf, -kInf, kInf};
  } else {
    result.location = best[0].location;
    result.total_weight = best[0].total_weight;
    result.region = best[0].region;
  }
  result.stats.input_objects = input_objects;
  for (const MaxRSStats& s : stats) {
    result.stats.base_cases += s.base_cases;
    result.stats.merges += s.merges;
    result.stats.total_spans += s.total_spans;
    result.stats.recursion_levels =
        std::max(result.stats.recursion_levels,
                 s.recursion_levels + (num_shards > 1 ? 1 : 0));
  }
  if (num_shards > 1) {
    ++result.stats.merges;  // the cross-shard MergeSweep
    result.stats.total_spans += num_spans;
  }
  return {std::move(result)};
}

}  // namespace

MaxRSServer::MaxRSServer(Env& env, const DatasetHandle& dataset,
                         const MaxRSServerOptions& options)
    : env_(env),
      dataset_(dataset),
      options_(options),
      queue_(options.queue_capacity),
      // Clamped to [1, 1024]: constructors have no Status path, and a
      // worker count beyond that is a unit mix-up, not a real machine
      // (same rationale as the core layer's num_threads validation).
      pool_(std::make_unique<ThreadPool>(std::min<size_t>(
          std::max<size_t>(1, options.num_workers), 1024))) {
  // Shared buffer pool over the dataset's immutable files, before the
  // workers start: they read exec_env_ unsynchronized.
  if (options_.buffer_pool_bytes > 0) {
    pooled_env_ = std::make_unique<PooledEnv>(
        env_, options_.buffer_pool_bytes, options_.buffer_pool_pin_wait_ms);
    pooled_env_->AddPooledPrefix(dataset_.prefix());
  }
  exec_env_ = pooled_env_ != nullptr ? static_cast<Env*>(pooled_env_.get())
                                     : &env_;
  // Reject a bad configuration now (stored; every Submit returns it),
  // rather than paying a full per-shard derivation pass per doomed query
  // before the core validation finally fires.
  config_status_ =
      ValidateMaxRSOptions(MakeQueryOptions(1.0, 1.0), env_.block_size());
  worker_threads_.reserve(pool_->num_threads());
  for (size_t i = 0; i < pool_->num_threads(); ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
}

MaxRSServer::~MaxRSServer() { Shutdown(); }

void MaxRSServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  for (std::thread& t : worker_threads_) t.join();
}

ServerCounters MaxRSServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

MaxRSOptions MaxRSServer::MakeQueryOptions(double width, double height,
                                           const CancelToken* cancel) const {
  MaxRSOptions query_options;
  query_options.rect_width = width;
  query_options.rect_height = height;
  query_options.cancel = cancel;
  query_options.memory_bytes = options_.memory_bytes;
  query_options.fanout = options_.fanout;
  query_options.base_case_max_pieces = options_.base_case_max_pieces;
  query_options.work_prefix = options_.work_prefix;
  // Queries parallelize across workers and across shard subtasks, not
  // inside one slab solve: the serial path is the deterministic one, and
  // it keeps per-query memory at one M (plus one extra block per open
  // stream while a read-ahead fetch is in flight — see IO_MODEL.md).
  query_options.num_threads = 1;
  query_options.read_ahead = options_.read_ahead;
  query_options.write_behind = options_.write_behind;
  query_options.stream_channel_bytes = options_.stream_channel_bytes;
  return query_options;
}

MaxRSServer::CacheKey MaxRSServer::MakeKey(double width, double height) {
  return CacheKey{CanonicalDimensionBits(width),
                  CanonicalDimensionBits(height)};
}

std::optional<MaxRSResult> MaxRSServer::CacheLookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void MaxRSServer::CacheInsert(const CacheKey& key, const MaxRSResult& result) {
  if (options_.cache_entries == 0) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    // Concurrent duplicate miss: both executions computed the identical
    // (deterministic) result; keep the existing entry, refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  cache_index_[key] = lru_.begin();
  while (lru_.size() > options_.cache_entries) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

bool MaxRSServer::AdmitKeyToCache(const CacheKey& key) const {
  if (!dataset_.has_bounds()) return true;
  // Reconstruct the canonical dimension values the key stores. Deciding on
  // these — never on a caller's raw doubles — makes admission a pure
  // function of the cache key: -0.0 has already been folded to +0.0 and
  // NaN payloads collapsed, so two submissions that share a cache entry
  // can never be admitted differently.
  double width = 0.0, height = 0.0;
  std::memcpy(&width, &key.width_bits, sizeof(width));
  std::memcpy(&height, &key.height_bits, sizeof(height));
  const double extent_w = dataset_.bounds().width();
  const double extent_h = dataset_.bounds().height();
  if (!(extent_w > 0.0) || !(extent_h > 0.0)) return true;  // degenerate box
  const double covered = (std::min(width, extent_w) / extent_w) *
                         (std::min(height, extent_h) / extent_h);
  return covered <= options_.cache_max_extent_fraction;
}

bool MaxRSServer::AdmitsToCache(double width, double height) const {
  return AdmitKeyToCache(MakeKey(width, height));
}

Status MaxRSServer::ValidateSpec(const QuerySpec& spec) {
  if (!std::isfinite(spec.width) || !std::isfinite(spec.height) ||
      !(spec.width > 0.0) || !(spec.height > 0.0)) {
    return Status::InvalidArgument(
        "rectangle dimensions must be positive and finite");
  }
  if (spec.deadline_ms.has_value() && *spec.deadline_ms < 0) {
    return Status::InvalidArgument(
        "deadline_ms override must be non-negative (0 disables)");
  }
  return Status::OK();
}

QueryResponse MaxRSServer::MakeResponse(MaxRSResult result, ServedFrom served) {
  QueryResponse response;
  response.batch_size = result.stats.batch_size;
  if (served == ServedFrom::kExecuted) response.io = result.stats.io;
  response.served_from = served;
  response.result = std::move(result);
  return response;
}

namespace {
// An already-completed future — the zero-thread path for validation
// errors, cache hits, and refused admissions.
std::future<Result<QueryResponse>> ReadyFuture(Result<QueryResponse> value) {
  std::promise<Result<QueryResponse>> promise;
  std::future<Result<QueryResponse>> future = promise.get_future();
  promise.set_value(std::move(value));
  return future;
}
}  // namespace

std::future<Result<QueryResponse>> MaxRSServer::SubmitInternal(
    const QuerySpec& spec, bool* dedup, int64_t* deadline_ms) {
  *dedup = false;
  *deadline_ms = spec.deadline_ms.value_or(options_.deadline_ms);
  const Status valid = ValidateSpec(spec);
  if (!valid.ok()) return ReadyFuture(valid);
  if (!config_status_.ok()) return ReadyFuture(config_status_);
  const CacheKey key = MakeKey(spec.width, spec.height);
  if (std::optional<MaxRSResult> hit = CacheLookup(key)) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submitted;
    ++counters_.cache_hits;
    return ReadyFuture(MakeResponse(*std::move(hit), ServedFrom::kCache));
  }

  // In-flight dedup: become a follower of an executing leader, or claim
  // the leader slot. The worker publishes to the cache *before* erasing
  // the pending entry, so a missing entry here means a second cache lookup
  // is authoritative — without it, a duplicate arriving in the gap between
  // the leader's cache insert and promise fulfillment would re-execute.
  // Mode overrides are NOT part of the key: they never change the answer,
  // so a leader running under different modes still serves this caller.
  std::future<Result<QueryResponse>> future;
  std::shared_ptr<Request> request;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(key);
    if (it != pending_.end()) {
      // Attach a waiter promise while the entry exists — CompleteRequest
      // moves the list out under this same lock, so the promise cannot be
      // orphaned. Queue-jump signal for the batch former: this leader now
      // has one more caller waiting on it.
      it->second->waiters.emplace_back();
      future = it->second->waiters.back().get_future();
      it->second->followers.fetch_add(1, std::memory_order_relaxed);
      *dedup = true;
    } else {
      if (std::optional<MaxRSResult> hit = CacheLookup(key)) {
        std::lock_guard<std::mutex> counters_lock(counters_mu_);
        ++counters_.submitted;
        ++counters_.cache_hits;
        return ReadyFuture(MakeResponse(*std::move(hit), ServedFrom::kCache));
      }
      request = std::make_shared<Request>(
          spec.width, spec.height,
          std::chrono::milliseconds(std::max<int64_t>(0, *deadline_ms)),
          spec.routing.value_or(options_.routing_mode),
          spec.pruning.value_or(options_.pruning_mode));
      future = request->promise.get_future();
      pending_.emplace(key, request);
    }
  }
  if (request == nullptr) {  // follower: its future completes with the leader
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submitted;
    ++counters_.dedup_hits;
    return future;
  }

  // Bounded admission: wait at most the admission budget for queue room.
  // Blocking forever would wedge every submitter behind one slow query;
  // past the budget the request is shed with kUnavailable — a retryable
  // signal the caller may back off on. kClosed stays the distinct
  // shutdown status so clients can tell overload from termination.
  const PushResult pushed = queue_.PushFor(
      request, std::chrono::milliseconds(
                   std::max<int64_t>(0, options_.admission_timeout_ms)));
  if (pushed != PushResult::kAccepted) {
    FailRequest(request,
                pushed == PushResult::kClosed
                    ? Status::NotSupported("MaxRSServer is shut down")
                    : Status::Unavailable(
                          "MaxRSServer overloaded: queue full past the "
                          "admission budget"));
    if (pushed == PushResult::kTimedOut) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.shed;
    }
    return future;
  }
  {
    // submitted and the queue-depth accounting move under one lock
    // acquisition so counters() and queue_depth() snapshots are mutually
    // consistent (queue_depth() never exceeds submitted - executed). A
    // worker that popped this request before we get here only makes
    // queue_depth() under-report transiently — the safe direction.
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submitted;
    ++queued_enqueued_;
  }
  return future;
}

std::future<Result<QueryResponse>> MaxRSServer::SubmitAsync(
    const QuerySpec& spec) {
  bool dedup = false;
  int64_t deadline_ms = 0;
  return SubmitInternal(spec, &dedup, &deadline_ms);
}

Result<QueryResponse> MaxRSServer::Submit(const QuerySpec& spec) {
  bool dedup = false;
  int64_t deadline_ms = 0;
  std::future<Result<QueryResponse>> future =
      SubmitInternal(spec, &dedup, &deadline_ms);
  if (dedup && deadline_ms > 0) {
    // The follower's own deadline, measured from ITS Submit — never the
    // leader's token, whose clock started earlier (and which must not be
    // cancelled: other callers may still be waiting on it). A leader stuck
    // in a long queue past this follower's budget fails THIS caller with
    // kDeadlineExceeded while the leader runs on undisturbed.
    if (future.wait_for(std::chrono::milliseconds(deadline_ms)) ==
        std::future_status::timeout) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.deadlines;
      }
      return Status::DeadlineExceeded(
          "deduplicated query exceeded its deadline waiting on the "
          "in-flight leader");
    }
  }
  return future.get();
}

Result<MaxRSResult> MaxRSServer::Submit(double rect_width, double rect_height) {
  QuerySpec spec;
  spec.width = rect_width;
  spec.height = rect_height;
  MAXRS_ASSIGN_OR_RETURN(QueryResponse response, Submit(spec));
  return {std::move(response.result)};
}

void MaxRSServer::WorkerLoop() {
  while (true) {
    std::vector<std::shared_ptr<Request>> batch = FormBatch();
    if (batch.empty()) return;  // queue closed and drained
    ExecuteBatch(std::move(batch));
  }
}

bool MaxRSServer::ShapeCompatible(const Request& anchor,
                                  const Request& candidate) {
  // A batch executes under one (routing, pruning) mode pair — its shared
  // scan is a streaming construct and its prune plan is computed once — so
  // requests carrying different effective overrides never share a batch.
  if (candidate.routing != anchor.routing ||
      candidate.pruning != anchor.pruning) {
    return false;
  }
  // Rects within this aspect band share a scan profitably: a batch-mate
  // whose width dwarfs the anchor's would route most of its pieces across
  // many shards while the anchor's stay local, and the shared channels
  // would mostly carry one query's traffic.
  constexpr double kBatchShapeRatio = 8.0;
  return candidate.width <= anchor.width * kBatchShapeRatio &&
         anchor.width <= candidate.width * kBatchShapeRatio &&
         candidate.height <= anchor.height * kBatchShapeRatio &&
         anchor.height <= candidate.height * kBatchShapeRatio;
}

std::vector<std::shared_ptr<MaxRSServer::Request>> MaxRSServer::FormBatch() {
  const size_t batch_max =
      std::min<size_t>(std::max<size_t>(1, options_.batch_max), 64);
  std::vector<std::shared_ptr<Request>> candidates;

  auto take_staged = [&] {
    std::lock_guard<std::mutex> lock(staging_mu_);
    while (!staged_.empty() && candidates.size() < 2 * batch_max) {
      candidates.push_back(std::move(staged_.front()));
      staged_.pop_front();
    }
  };
  auto try_pop = [&]() -> bool {
    std::shared_ptr<Request> request;
    if (!queue_.TryPop(&request)) return false;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++queued_dequeued_;
    }
    candidates.push_back(std::move(request));
    return true;
  };

  take_staged();
  if (candidates.empty()) {
    // Nothing deferred from an earlier formation: block for the next
    // request. Pop returning false means closed AND drained — but a peer
    // worker may have re-staged requests after our check above, so sweep
    // the staging deque once more before declaring shutdown.
    std::shared_ptr<Request> request;
    if (queue_.Pop(&request)) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++queued_dequeued_;
      }
      candidates.push_back(std::move(request));
    } else {
      take_staged();
      if (candidates.empty()) return {};
    }
  }

  if (batch_max > 1) {
    // Drain whatever is instantaneously queued (up to twice the batch size
    // so the priority sort below has alternatives), then wait out the
    // batch window for late arrivals. Polling keeps the MPMC queue's
    // simple contract; 500us is far below any real query's runtime.
    const auto window_end =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            std::max<int64_t>(0, options_.batch_window_ms));
    while (candidates.size() < 2 * batch_max) {
      if (try_pop()) continue;
      if (candidates.size() >= batch_max) break;
      if (std::chrono::steady_clock::now() >= window_end) break;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
  if (candidates.size() == 1) return candidates;

  // Leaders with followers jump the queue: every follower is a caller
  // blocked on that leader's future, so serving it first unblocks the
  // most work. stable_sort keeps FIFO order among equals.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const std::shared_ptr<Request>& a,
                      const std::shared_ptr<Request>& b) {
                     return a->followers.load(std::memory_order_relaxed) >
                            b->followers.load(std::memory_order_relaxed);
                   });
  std::vector<std::shared_ptr<Request>> batch;
  std::vector<std::shared_ptr<Request>> deferred;
  batch.push_back(candidates[0]);
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (batch.size() < batch_max && ShapeCompatible(*batch[0], *candidates[i])) {
      batch.push_back(std::move(candidates[i]));
    } else {
      deferred.push_back(std::move(candidates[i]));
    }
  }
  if (!deferred.empty()) {
    // Back to the FRONT of the staging deque in their drained order:
    // deferred requests are older than anything still in the MPMC queue,
    // so the next formation must see them first.
    std::lock_guard<std::mutex> lock(staging_mu_);
    for (size_t i = deferred.size(); i-- > 0;) {
      staged_.push_front(std::move(deferred[i]));
    }
  }
  return batch;
}

void MaxRSServer::CompleteRequest(const std::shared_ptr<Request>& request,
                                  Result<MaxRSResult> result) {
  const CacheKey key = MakeKey(request->width, request->height);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.executed;
    if (!result.ok()) {
      ++counters_.failed;
      if (result.status().code() == Status::Code::kDeadlineExceeded) {
        ++counters_.deadlines;
      } else if (result.status().code() == Status::Code::kCorruption) {
        ++counters_.corruptions;
      }
    }
  }
  if (result.ok()) {
    if (AdmitKeyToCache(key)) {
      CacheInsert(key, result.value());
    } else {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.cache_rejects;
    }
  }
  // Publish-then-erase: see SubmitInternal — a duplicate that misses the
  // pending table after this erase must find the result in the cache. The
  // waiter list moves out under the same lock, so no follower can attach
  // after it is drained.
  std::vector<std::promise<Result<QueryResponse>>> waiters;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    waiters = std::move(request->waiters);
    pending_.erase(key);
  }
  for (std::promise<Result<QueryResponse>>& waiter : waiters) {
    waiter.set_value(result.ok()
                         ? Result<QueryResponse>(MakeResponse(
                               result.value(), ServedFrom::kDedup))
                         : Result<QueryResponse>(result.status()));
  }
  request->promise.set_value(
      result.ok() ? Result<QueryResponse>(MakeResponse(std::move(result).value(),
                                                       ServedFrom::kExecuted))
                  : Result<QueryResponse>(result.status()));
}

void MaxRSServer::FailRequest(const std::shared_ptr<Request>& request,
                              const Status& refused) {
  // Collect-then-fail under one pending_mu_ hold: a follower attaching
  // between a promise failure and the erase would wait forever.
  std::vector<std::promise<Result<QueryResponse>>> waiters;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    waiters = std::move(request->waiters);
    pending_.erase(MakeKey(request->width, request->height));
  }
  for (std::promise<Result<QueryResponse>>& waiter : waiters) {
    waiter.set_value(Result<QueryResponse>(refused));
  }
  request->promise.set_value(Result<QueryResponse>(refused));
}

void MaxRSServer::ExecuteBatch(std::vector<std::shared_ptr<Request>> batch) {
  // A request whose deadline elapsed while it queued fails now, before it
  // can claim a slot in the shared scan.
  std::vector<std::shared_ptr<Request>> live;
  live.reserve(batch.size());
  for (std::shared_ptr<Request>& request : batch) {
    const Status expired = CheckCancel(&request->cancel);
    if (!expired.ok()) {
      CompleteRequest(request, expired);
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  // The shared scan exists only for the streaming per-shard path; the
  // materialized and global-merge modes execute a formed batch as a plain
  // sequence (their per-query file pipelines have no shareable pass), and
  // a single-query batch IS the legacy path — bit-identical baselines.
  // ShapeCompatible keeps batches mode-homogeneous, so live[0]'s effective
  // modes speak for every batch member.
  const bool shared_scan =
      live.size() > 1 && options_.solve_mode == ServeSolveMode::kPerShard &&
      live[0]->routing == ServeRoutingMode::kStreaming &&
      !dataset_.shards().empty();
  if (!shared_scan) {
    for (const std::shared_ptr<Request>& request : live) {
      CompleteRequest(request,
                      ExecuteQuery(request->width, request->height,
                                   &request->cancel, request->routing,
                                   request->pruning));
    }
    return;
  }

  const bool pruned = PruningActiveFor(live[0]->pruning);
  if (!pruned && live[0]->pruning == ServePruningMode::kAuto &&
      dataset_.shards().size() > 1) {
    // Same degradation accounting as ExecuteQuery, once per batched query.
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.unpruned += live.size();
  }

  std::vector<Result<MaxRSResult>> results(
      live.size(), Result<MaxRSResult>(Status::Unavailable("batch slot unset")));
  if (pruned) {
    ExecuteBatchStreamingPruned(live, &results);
  } else {
    ExecuteBatchStreaming(live, &results);
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.batches;
    counters_.batched_queries += live.size();
  }
  for (size_t q = 0; q < live.size(); ++q) {
    if (!results[q].ok() && results[q].status().is_retryable()) {
      // Per-query graceful degradation, one shot, exactly as on the serial
      // streaming path: the failed query re-runs ALONE on the materialized
      // path (its batch-mates' results are unaffected), and its stats are
      // the solo rerun's — batch_size 1, un-amortized I/O.
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.degraded;
      }
      results[q] = pruned
                       ? ExecutePerShardMaterializedPruned(
                             live[q]->width, live[q]->height, &live[q]->cancel)
                       : ExecutePerShardMaterialized(
                             live[q]->width, live[q]->height, &live[q]->cancel);
    }
    CompleteRequest(live[q], std::move(results[q]));
  }
}

void MaxRSServer::ExecuteBatchStreaming(
    const std::vector<std::shared_ptr<Request>>& batch,
    std::vector<Result<MaxRSResult>>* results) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  Stopwatch timer;

  const std::vector<ShardInfo>& shards = dataset_.shards();
  const size_t num_shards = shards.size();
  const std::vector<double>& bounds = dataset_.interior_bounds();
  const std::vector<Interval>& ranges = dataset_.slab_ranges();
  const size_t k = batch.size();
  std::vector<BatchQuery> queries(k);
  std::vector<MaxRSOptions> query_options(k);
  for (size_t q = 0; q < k; ++q) {
    queries[q] = BatchQuery{batch[q]->width, batch[q]->height};
    query_options[q] =
        MakeQueryOptions(batch[q]->width, batch[q]->height, &batch[q]->cancel);
  }

  std::vector<Status> per_query(k, Status::OK());
  std::vector<std::vector<std::string>> slab_files(
      k, std::vector<std::string>(num_shards));
  std::vector<std::vector<MaxRSStats>> shard_stats(
      k, std::vector<MaxRSStats>(num_shards));
  {
    // Channels, then producers, then consumers — the usual liveness order
    // (record_stream.h, "Threading"), with k columns per target instead of
    // one. The latch is waited on before `channels` leaves scope on every
    // path: producers hold raw pointers into it.
    BatchChannels channels(env, temps, k, num_shards,
                           options_.stream_channel_bytes,
                           options_.write_behind);
    std::vector<Status> producer_status(num_shards);
    JoinLatch producers_done(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      pool_->Submit([&, s] {
        producer_status[s] = RouteSourceShardStreamingBatch(
            env, channels, shards, bounds, ranges, s, queries,
            options_.read_ahead);
        producers_done.CountDown();
      });
    }
    // Each of the S source scans runs once instead of k times.
    env.stats().RecordScansShared((k - 1) * num_shards);

    // Consumers: ONE TaskGroup PER QUERY, not one for the batch — a group
    // no-ops its queued tasks after the first error, and one query's
    // deadline must only stop ITS solves, never a batch-mate's.
    {
      std::vector<std::unique_ptr<TaskGroup>> groups;
      groups.reserve(k);
      for (size_t q = 0; q < k; ++q) {
        groups.push_back(std::make_unique<TaskGroup>(pool_.get()));
        for (size_t t = 0; t < num_shards; ++t) {
          groups[q]->Run([&, q, t]() -> Status {
            std::vector<RecordSource<PieceRecord>*> piece_column;
            std::vector<RecordSource<EdgeRecord>*> edge_column;
            piece_column.reserve(num_shards);
            edge_column.reserve(2 * num_shards);
            for (size_t s = 0; s < num_shards; ++s) {
              piece_column.push_back(channels.piece(q, s, t));
              edge_column.push_back(channels.edge_left(q, s, t));
              edge_column.push_back(channels.edge_right(q, s, t));
            }
            return SolveTargetShardColumns(
                env, temps, std::move(piece_column), std::move(edge_column),
                shards[t].x_range, query_options[q], &shard_stats[q][t],
                options_.write_behind, &slab_files[q][t]);
          });
        }
      }
      for (size_t q = 0; q < k; ++q) per_query[q] = groups[q]->Wait();
    }
    // Join the producers unconditionally: consumers done does not imply
    // producers done (base-case consumers abandon their edge columns).
    producers_done.Wait();
    Status routing;
    for (const Status& st : producer_status) {
      if (!st.ok()) {
        routing = st;
        break;
      }
    }
    if (!routing.ok()) {
      // A routing failure poisons the whole batch — the scan was shared,
      // so every query genuinely read from the failed pass.
      for (Status& st : per_query) {
        if (st.ok()) st = routing;
      }
    }

    // Phase C per query, sequential on the batch worker: span drain,
    // cross-shard MergeSweep, answer extraction — all per-query state.
    for (size_t q = 0; q < k; ++q) {
      if (!per_query[q].ok()) {
        (*results)[q] = per_query[q];
        continue;
      }
      (*results)[q] = [&]() -> Result<MaxRSResult> {
        uint64_t num_spans = 0;
        std::string root_file;
        if (num_shards == 1) {
          root_file = std::move(slab_files[q][0]);
          slab_files[q][0].clear();
        } else {
          std::string span_file = temps.NewName("b_spans");
          {
            std::vector<RecordSource<SpanRecord>*> span_sources;
            span_sources.reserve(num_shards);
            for (size_t s = 0; s < num_shards; ++s) {
              span_sources.push_back(channels.span(q, s));
            }
            MergingSource<SpanRecord, decltype(&SpanYLess)> spans(
                std::move(span_sources), &SpanYLess);
            MAXRS_ASSIGN_OR_RETURN(
                RecordWriter<SpanRecord> writer,
                RecordWriter<SpanRecord>::Make(env, span_file,
                                               options_.write_behind));
            SpanRecord span{};
            while (spans.Next(&span)) {
              MAXRS_RETURN_IF_ERROR(CheckCancel(&batch[q]->cancel));
              MAXRS_RETURN_IF_ERROR(writer.Append(span));
            }
            MAXRS_RETURN_IF_ERROR(spans.final_status());
            MAXRS_RETURN_IF_ERROR(writer.Finish());
            num_spans = writer.count();
          }
          std::string root = temps.NewName("b_root");
          MAXRS_RETURN_IF_ERROR(MergeSweep(
              env, ranges, slab_files[q], span_file, root,
              SweepObjective::kMaximize, options_.read_ahead,
              options_.write_behind, &batch[q]->cancel));
          for (std::string& slab_file : slab_files[q]) {
            if (!slab_file.empty()) temps.Release(slab_file);
          }
          temps.Release(span_file);
          root_file = std::move(root);
        }
        return ExtractRootResult(env, temps, root_file, options_.read_ahead,
                                 dataset_.num_objects(), shard_stats[q],
                                 num_shards, num_spans, &batch[q]->cancel);
      }();
    }
  }  // joins and destroys the channels

  const IoStatsSnapshot delta = env.stats().Snapshot() - io_before;
  ApplyBatchShares(queries, delta, timer.ElapsedSeconds(), results);
  bool any_failed = false;
  for (const Result<MaxRSResult>& r : *results) any_failed |= !r.ok();
  if (any_failed) {
    // Failed queries abandoned scratch mid-pipeline; sweep everything this
    // batch's manager named (successful queries already released theirs).
    temps.ReleaseAll();
  }
}

void MaxRSServer::ExecuteBatchStreamingPruned(
    const std::vector<std::shared_ptr<Request>>& batch,
    std::vector<Result<MaxRSResult>>* results) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  Stopwatch timer;

  const ShardAggIndex& index = *dataset_.agg_index();
  const std::vector<ShardInfo>& shards = dataset_.shards();
  const size_t num_shards = shards.size();  // >= 2 (PruningActive)
  const std::vector<double>& bounds = dataset_.interior_bounds();
  const std::vector<Interval>& ranges = dataset_.slab_ranges();
  const size_t k = batch.size();
  std::vector<BatchQuery> queries(k);
  std::vector<MaxRSOptions> query_options(k);
  for (size_t q = 0; q < k; ++q) {
    queries[q] = BatchQuery{batch[q]->width, batch[q]->height};
    query_options[q] =
        MakeQueryOptions(batch[q]->width, batch[q]->height, &batch[q]->cancel);
  }

  // Per-query plans (zero I/O), then TWO routing waves over the UNIONS of
  // the per-query source sets. Soundness of the union: a routed source the
  // serial pruned execution would NOT have routed for query q routes
  // nothing to any of q's consumed targets (SourceFeedsTarget is exactly
  // the can-route-anything test), so q's merged streams — and its
  // incumbents, skips, and answer — are byte-identical to serial; the
  // extra sources' boundary spans can only cover q's pruned (known-empty)
  // children, adding no root tuples (only the total_spans stat may grow).
  std::vector<std::vector<double>> ub(k);
  std::vector<size_t> seed(k);
  for (size_t q = 0; q < k; ++q) {
    ub[q] = ShardUpperBounds(index, shards, queries[q].width);
    seed[q] = ArgMaxUpperBound(ub[q]);
  }

  std::vector<Status> per_query(k, Status::OK());
  std::vector<std::vector<std::string>> slab_files(
      k, std::vector<std::string>(num_shards));
  std::vector<std::vector<MaxRSStats>> shard_stats(
      k, std::vector<MaxRSStats>(num_shards));
  std::vector<SlabBest> incumbents(k);
  {
    BatchChannels channels(env, temps, k, num_shards,
                           options_.stream_channel_bytes,
                           options_.write_behind);
    std::vector<Status> producer_status(num_shards);
    std::vector<char> is_routed(num_shards, 0);
    auto submit_producers = [&](const std::vector<size_t>& wave,
                                JoinLatch* latch) {
      for (size_t s : wave) {
        pool_->Submit([&, s, latch] {
          producer_status[s] = RouteSourceShardStreamingBatch(
              env, channels, shards, bounds, ranges, s, queries,
              options_.read_ahead);
          latch->CountDown();
        });
      }
      if (!wave.empty() && k > 1) {
        env.stats().RecordScansShared((k - 1) * wave.size());
      }
    };
    // Poison every still-OK query with a wave's routing failure: the scan
    // was shared, so all of them read from the failed pass.
    auto fold_producers = [&](const std::vector<size_t>& wave) {
      for (size_t s : wave) {
        if (producer_status[s].ok()) continue;
        for (Status& st : per_query) {
          if (st.ok()) st = producer_status[s];
        }
        break;
      }
    };

    // Wave 1: the union of the sources any query's seed shard needs.
    std::vector<size_t> wave1;
    for (size_t s = 0; s < num_shards; ++s) {
      for (size_t q = 0; q < k; ++q) {
        if (SourceFeedsTarget(index, s, shards[seed[q]].x_range,
                              queries[q].width)) {
          wave1.push_back(s);
          is_routed[s] = 1;
          break;
        }
      }
    }
    JoinLatch wave1_done(wave1.size());
    submit_producers(wave1, &wave1_done);

    // Per-query seed solves, concurrent across queries (their incumbents
    // are independent), one TaskGroup per query for error isolation.
    {
      std::vector<std::unique_ptr<TaskGroup>> groups;
      groups.reserve(k);
      for (size_t q = 0; q < k; ++q) {
        groups.push_back(std::make_unique<TaskGroup>(pool_.get()));
        groups[q]->Run([&, q]() -> Status {
          std::vector<RecordSource<PieceRecord>*> piece_column;
          std::vector<RecordSource<EdgeRecord>*> edge_column;
          piece_column.reserve(wave1.size());
          edge_column.reserve(2 * wave1.size());
          for (size_t s : wave1) {
            piece_column.push_back(channels.piece(q, s, seed[q]));
            edge_column.push_back(channels.edge_left(q, s, seed[q]));
            edge_column.push_back(channels.edge_right(q, s, seed[q]));
          }
          return SolveTargetShardColumns(
              env, temps, std::move(piece_column), std::move(edge_column),
              shards[seed[q]].x_range, query_options[q],
              &shard_stats[q][seed[q]], options_.write_behind,
              &slab_files[q][seed[q]], &incumbents[q]);
        });
      }
      for (size_t q = 0; q < k; ++q) per_query[q] = groups[q]->Wait();
    }
    wave1_done.Wait();
    fold_producers(wave1);

    // Per-query prune against the seed incumbent (strict — ties survive).
    std::vector<std::vector<char>> survives(k,
                                            std::vector<char>(num_shards, 0));
    uint64_t pruned_count = 0;
    for (size_t q = 0; q < k; ++q) {
      survives[q][seed[q]] = 1;
      if (!per_query[q].ok()) continue;
      for (size_t t = 0; t < num_shards; ++t) {
        if (t == seed[q]) continue;
        if (incumbents[q].has_value && ub[q][t] < incumbents[q].sum) {
          ++pruned_count;
        } else {
          survives[q][t] = 1;
        }
      }
    }
    if (pruned_count > 0) env.stats().RecordShardsPruned(pruned_count);

    // Wave 2: the union of the remaining sources any query's survivors
    // need. A query already failed routes nothing extra on its behalf.
    std::vector<size_t> wave2;
    for (size_t s = 0; s < num_shards; ++s) {
      if (is_routed[s]) continue;
      bool needed = false;
      for (size_t q = 0; q < k && !needed; ++q) {
        if (!per_query[q].ok()) continue;
        for (size_t t = 0; t < num_shards; ++t) {
          if (survives[q][t] &&
              SourceFeedsTarget(index, s, shards[t].x_range,
                                queries[q].width)) {
            needed = true;
            break;
          }
        }
      }
      if (needed) {
        wave2.push_back(s);
        is_routed[s] = 1;
      }
    }
    std::vector<size_t> routed_list;  // ascending — canonical merge order
    for (size_t s = 0; s < num_shards; ++s) {
      if (is_routed[s]) routed_list.push_back(s);
    }
    JoinLatch wave2_done(wave2.size());
    submit_producers(wave2, &wave2_done);

    // Phase B: per query, survivors sequentially, best bound first, bound
    // re-checked against the incumbent the previous solves grew — the
    // serial pruned order exactly. Queries run concurrently with each
    // other (again one single-task group per query).
    std::vector<uint64_t> bound_skips(k, 0);
    {
      std::vector<std::unique_ptr<TaskGroup>> groups;
      groups.reserve(k);
      for (size_t q = 0; q < k; ++q) {
        groups.push_back(std::make_unique<TaskGroup>(pool_.get()));
        if (!per_query[q].ok()) continue;
        groups[q]->Run([&, q]() -> Status {
          std::vector<size_t> order;
          for (size_t t = 0; t < num_shards; ++t) {
            if (t != seed[q] && survives[q][t]) order.push_back(t);
          }
          std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            if (ub[q][a] != ub[q][b]) return ub[q][a] > ub[q][b];
            return a < b;
          });
          for (size_t t : order) {
            if (incumbents[q].has_value && ub[q][t] < incumbents[q].sum) {
              ++bound_skips[q];
              survives[q][t] = 0;  // skipped mid-solve: "" combine child
              continue;
            }
            std::vector<RecordSource<PieceRecord>*> piece_column;
            std::vector<RecordSource<EdgeRecord>*> edge_column;
            piece_column.reserve(routed_list.size());
            edge_column.reserve(2 * routed_list.size());
            for (size_t s : routed_list) {
              piece_column.push_back(channels.piece(q, s, t));
              edge_column.push_back(channels.edge_left(q, s, t));
              edge_column.push_back(channels.edge_right(q, s, t));
            }
            MAXRS_RETURN_IF_ERROR(SolveTargetShardColumns(
                env, temps, std::move(piece_column), std::move(edge_column),
                shards[t].x_range, query_options[q], &shard_stats[q][t],
                options_.write_behind, &slab_files[q][t], &incumbents[q]));
          }
          return Status::OK();
        });
      }
      for (size_t q = 0; q < k; ++q) {
        const Status st = groups[q]->Wait();
        if (per_query[q].ok()) per_query[q] = st;
      }
    }
    wave2_done.Wait();
    fold_producers(wave2);
    uint64_t total_skips = 0;
    for (uint64_t s : bound_skips) total_skips += s;
    if (total_skips > 0) env.stats().RecordBoundSkip(total_skips);

    // Phase C per query: drain the routed rows' span channels (closed by
    // now) and combine over ALL shard ranges with "" children standing in
    // for skipped shards.
    for (size_t q = 0; q < k; ++q) {
      if (!per_query[q].ok()) {
        (*results)[q] = per_query[q];
        continue;
      }
      (*results)[q] = [&]() -> Result<MaxRSResult> {
        uint64_t num_spans = 0;
        std::string span_file = temps.NewName("b_spans");
        {
          std::vector<RecordSource<SpanRecord>*> span_sources;
          span_sources.reserve(routed_list.size());
          for (size_t s : routed_list) {
            span_sources.push_back(channels.span(q, s));
          }
          MergingSource<SpanRecord, decltype(&SpanYLess)> spans(
              std::move(span_sources), &SpanYLess);
          MAXRS_ASSIGN_OR_RETURN(
              RecordWriter<SpanRecord> writer,
              RecordWriter<SpanRecord>::Make(env, span_file,
                                             options_.write_behind));
          SpanRecord span{};
          while (spans.Next(&span)) {
            MAXRS_RETURN_IF_ERROR(CheckCancel(&batch[q]->cancel));
            MAXRS_RETURN_IF_ERROR(writer.Append(span));
          }
          MAXRS_RETURN_IF_ERROR(spans.final_status());
          MAXRS_RETURN_IF_ERROR(writer.Finish());
          num_spans = writer.count();
        }
        std::string root_file = temps.NewName("b_root");
        MAXRS_RETURN_IF_ERROR(MergeSweep(
            env, ranges, slab_files[q], span_file, root_file,
            SweepObjective::kMaximize, options_.read_ahead,
            options_.write_behind, &batch[q]->cancel));
        for (std::string& slab_file : slab_files[q]) {
          if (!slab_file.empty()) temps.Release(slab_file);
        }
        temps.Release(span_file);
        return ExtractRootResult(env, temps, root_file, options_.read_ahead,
                                 dataset_.num_objects(), shard_stats[q],
                                 num_shards, num_spans, &batch[q]->cancel);
      }();
    }
  }  // joins and destroys the channels

  const IoStatsSnapshot delta = env.stats().Snapshot() - io_before;
  ApplyBatchShares(queries, delta, timer.ElapsedSeconds(), results);
  bool any_failed = false;
  for (const Result<MaxRSResult>& r : *results) any_failed |= !r.ok();
  if (any_failed) temps.ReleaseAll();
}

bool MaxRSServer::PruningActiveFor(ServePruningMode mode) const {
  if (mode == ServePruningMode::kOff) return false;
  if (options_.solve_mode != ServeSolveMode::kPerShard) return false;
  if (dataset_.shards().size() < 2) return false;
  const ShardAggIndex* index = dataset_.agg_index();
  return index != nullptr && index->pruning_safe();
}

bool MaxRSServer::PruningActive() const {
  return PruningActiveFor(options_.pruning_mode);
}

Result<MaxRSResult> MaxRSServer::ExecuteQuery(double width, double height,
                                              const CancelToken* cancel,
                                              ServeRoutingMode routing,
                                              ServePruningMode pruning) {
  // A request whose deadline elapsed while it sat in the queue fails here
  // without touching the Env at all.
  MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
  if (options_.solve_mode == ServeSolveMode::kGlobalMerge) {
    return ExecuteGlobalMerge(width, height, cancel);
  }
  const bool pruned = PruningActiveFor(pruning);
  if (!pruned && pruning == ServePruningMode::kAuto &&
      dataset_.shards().size() > 1) {
    // Pruning was wanted but the dataset cannot support it (no usable
    // aggregate index, or weights unsafe to bound): count the degradation.
    // Only the shard skipping is lost — answers are unchanged.
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.unpruned;
  }
  if (routing == ServeRoutingMode::kMaterialized) {
    return pruned ? ExecutePerShardMaterializedPruned(width, height, cancel)
                  : ExecutePerShardMaterialized(width, height, cancel);
  }
  Result<MaxRSResult> result =
      pruned ? ExecutePerShardStreamingPruned(width, height, cancel)
             : ExecutePerShardStreaming(width, height, cancel);
  if (!result.ok() && result.status().is_retryable()) {
    // Graceful degradation, one shot: a streaming query that failed with a
    // retryable (transient) error — Env retries already exhausted — re-runs
    // once on the materialized file-based path before the failure reaches
    // the client. Terminal errors (kCorruption, kDeadlineExceeded) are
    // never re-run: the rerun would read the same bad bytes or re-exceed
    // the same deadline.
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.degraded;
    }
    result = pruned ? ExecutePerShardMaterializedPruned(width, height, cancel)
                    : ExecutePerShardMaterialized(width, height, cancel);
  }
  return result;
}

Result<MaxRSResult> MaxRSServer::ExecutePerShardStreaming(
    double width, double height, const CancelToken* cancel) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  Stopwatch timer;

  auto body = [&]() -> Result<MaxRSResult> {
    const std::vector<ShardInfo>& shards = dataset_.shards();
    const size_t num_shards = shards.size();
    std::vector<double> bounds;  // interior shard boundaries
    bounds.reserve(num_shards - 1);
    for (size_t k = 1; k < num_shards; ++k) {
      bounds.push_back(shards[k].x_range.lo);
    }
    std::vector<Interval> ranges;
    ranges.reserve(num_shards);
    for (const ShardInfo& shard : shards) ranges.push_back(shard.x_range);
    const MaxRSOptions query_options =
        MakeQueryOptions(width, height, cancel);

    // Channels first (deterministic spill-name order), then the producers
    // as raw pool submissions, then the consumers as a TaskGroup — the
    // FIFO-before order the liveness protocol requires. The latch is
    // waited on before `channels` goes out of scope on EVERY path below:
    // producers hold raw pointers into it.
    StreamingChannels channels(env, temps, num_shards,
                               options_.stream_channel_bytes,
                               options_.write_behind);
    std::vector<Status> producer_status(num_shards);
    JoinLatch producers_done(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      pool_->Submit([&, s] {
        producer_status[s] = RouteSourceShardStreaming(
            env, channels, shards, bounds, ranges, s, width, height,
            options_.read_ahead, cancel);
        producers_done.CountDown();
      });
    }

    std::vector<size_t> all_sources(num_shards);
    std::iota(all_sources.begin(), all_sources.end(), size_t{0});
    std::vector<std::string> slab_files(num_shards);
    std::vector<MaxRSStats> shard_stats(num_shards);
    Status consumers_status;
    {
      TaskGroup group(pool_.get());
      for (size_t t = 0; t < num_shards; ++t) {
        group.Run([&, t]() -> Status {
          return SolveTargetShardStreaming(
              env, temps, channels, all_sources, shards[t].x_range, t,
              query_options, &shard_stats[t], options_.write_behind,
              &slab_files[t]);
        });
      }
      consumers_status = group.Wait();
    }
    // Join the producers unconditionally — consumers done does not imply
    // producers done (a base-case consumer abandons its edge column), and
    // an early return would destroy the channels under their feet.
    producers_done.Wait();
    MAXRS_RETURN_IF_ERROR(consumers_status);
    for (const Status& st : producer_status) MAXRS_RETURN_IF_ERROR(st);

    // Phase C: cross-shard combine, identical to the materialized path
    // except the merged span file is drained from the span channels (all
    // closed by now — they act as deterministic buffers) instead of
    // k-way-merging span part files.
    uint64_t num_spans = 0;
    std::string root_file;
    if (num_shards == 1) {
      root_file = std::move(slab_files[0]);
    } else {
      std::string span_file = temps.NewName("q_spans");
      {
        std::vector<RecordSource<SpanRecord>*> span_sources;
        span_sources.reserve(num_shards);
        for (auto& ch : channels.spans) span_sources.push_back(ch.get());
        MergingSource<SpanRecord, decltype(&SpanYLess)> spans(
            std::move(span_sources), &SpanYLess);
        MAXRS_ASSIGN_OR_RETURN(
            RecordWriter<SpanRecord> writer,
            RecordWriter<SpanRecord>::Make(env, span_file,
                                           options_.write_behind));
        SpanRecord span{};
        while (spans.Next(&span)) {
          MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
          MAXRS_RETURN_IF_ERROR(writer.Append(span));
        }
        MAXRS_RETURN_IF_ERROR(spans.final_status());
        MAXRS_RETURN_IF_ERROR(writer.Finish());
        num_spans = writer.count();
      }
      root_file = temps.NewName("q_root");
      MAXRS_RETURN_IF_ERROR(MergeSweep(env, ranges, slab_files, span_file,
                                       root_file, SweepObjective::kMaximize,
                                       options_.read_ahead,
                                       options_.write_behind, cancel));
      for (const std::string& slab_file : slab_files) {
        temps.Release(slab_file);
      }
      temps.Release(span_file);
    }

    // Extract the answer from the root slab-file stream.
    core_internal::TopTupleTracker tracker(1);
    {
      MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SlabTuple> reader,
                             PrefetchingReader<SlabTuple>::Make(
                                 env, root_file, options_.read_ahead));
      SlabTuple t{};
      while (reader.Next(&t)) {
        MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
        tracker.Visit(t);
      }
      MAXRS_RETURN_IF_ERROR(reader.final_status());
    }
    temps.Release(root_file);

    MaxRSResult result;
    auto best = tracker.Finish();
    if (best.empty()) {
      result.region = Rect{-kInf, kInf, -kInf, kInf};
    } else {
      result.location = best[0].location;
      result.total_weight = best[0].total_weight;
      result.region = best[0].region;
    }
    result.stats.input_objects = dataset_.num_objects();
    for (const MaxRSStats& s : shard_stats) {
      result.stats.base_cases += s.base_cases;
      result.stats.merges += s.merges;
      result.stats.total_spans += s.total_spans;
      result.stats.recursion_levels =
          std::max(result.stats.recursion_levels,
                   s.recursion_levels + (num_shards > 1 ? 1 : 0));
    }
    if (num_shards > 1) {
      ++result.stats.merges;  // the cross-shard MergeSweep
      result.stats.total_spans += num_spans;
    }
    return {std::move(result)};
  };

  Result<MaxRSResult> result = body();
  if (result.ok()) {
    result.value().stats.io = env.stats().Snapshot() - io_before;
    result.value().stats.wall_seconds = timer.ElapsedSeconds();
  } else {
    // Sweep every scratch file this query's manager named so repeated
    // failing queries cannot grow the Env without bound. (The channels'
    // spill files were already deleted by their destructors.)
    temps.ReleaseAll();
  }
  return result;
}

Result<MaxRSResult> MaxRSServer::ExecutePerShardMaterialized(
    double width, double height, const CancelToken* cancel) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  Stopwatch timer;

  auto body = [&]() -> Result<MaxRSResult> {
    const std::vector<ShardInfo>& shards = dataset_.shards();
    const size_t num_shards = shards.size();
    std::vector<double> bounds;  // interior shard boundaries
    bounds.reserve(num_shards - 1);
    for (size_t k = 1; k < num_shards; ++k) {
      bounds.push_back(shards[k].x_range.lo);
    }
    const MaxRSOptions query_options =
        MakeQueryOptions(width, height, cancel);

    // Phase A: route every source shard. Subtasks write into slots indexed
    // by source, so the fan-in is deterministic regardless of schedule;
    // when all pool threads sit in worker loops, the submitting worker
    // drains its own subtasks via TaskGroup's help-while-wait.
    std::vector<RoutedSource> routed(num_shards);
    {
      TaskGroup group(pool_.get());
      for (size_t s = 0; s < num_shards; ++s) {
        group.Run([&, s]() -> Status {
          return RouteSourceShard(env, temps, shards, bounds, s, width,
                                  height, options_.read_ahead, cancel,
                                  &routed[s]);
        });
      }
      MAXRS_RETURN_IF_ERROR(group.Wait());
    }

    // Phase B: solve each target shard independently (slots by target).
    std::vector<std::string> slab_files(num_shards);
    std::vector<MaxRSStats> shard_stats(num_shards);
    {
      TaskGroup group(pool_.get());
      for (size_t t = 0; t < num_shards; ++t) {
        group.Run([&, t]() -> Status {
          auto slab_or =
              SolveTargetShard(env, temps, routed, shards[t].x_range, t,
                               query_options, &shard_stats[t]);
          if (!slab_or.ok()) return slab_or.status();
          slab_files[t] = std::move(slab_or).value();
          return Status::OK();
        });
      }
      MAXRS_RETURN_IF_ERROR(group.Wait());
    }

    // Phase C: cross-shard combine — merge the boundary span streams
    // (ascending source order; SpanYLess makes the k-way merge canonical)
    // and run one MergeSweep over the shard slab-files.
    uint64_t num_spans = 0;
    std::string root_file;
    if (num_shards == 1) {
      root_file = std::move(slab_files[0]);
    } else {
      std::vector<std::string> span_parts;
      for (const RoutedSource& source : routed) {
        if (!source.span_part.empty()) span_parts.push_back(source.span_part);
        num_spans += source.span_count;
      }
      std::string span_file;
      if (span_parts.empty()) {
        span_file = temps.NewName("q_spans");
        MAXRS_ASSIGN_OR_RETURN(RecordWriter<SpanRecord> writer,
                               RecordWriter<SpanRecord>::Make(env, span_file));
        MAXRS_RETURN_IF_ERROR(writer.Finish());
      } else if (span_parts.size() == 1) {
        span_file = span_parts[0];
      } else {
        const size_t fan_in = QueryMergeFanIn(options_.memory_bytes,
                                              env.block_size());
        span_file = temps.NewName("q_spans");
        MAXRS_RETURN_IF_ERROR(MergeSortedParts<SpanRecord>(
            env, temps, span_parts, span_file, SpanYLess, fan_in,
            /*pool=*/nullptr, /*passes_out=*/nullptr, options_.read_ahead));
      }
      std::vector<Interval> ranges;
      ranges.reserve(num_shards);
      for (const ShardInfo& shard : shards) ranges.push_back(shard.x_range);
      root_file = temps.NewName("q_root");
      MAXRS_RETURN_IF_ERROR(MergeSweep(env, ranges, slab_files, span_file,
                                       root_file, SweepObjective::kMaximize,
                                       options_.read_ahead,
                                       options_.write_behind, cancel));
      for (const std::string& slab_file : slab_files) {
        temps.Release(slab_file);
      }
      temps.Release(span_file);
    }

    // Extract the answer from the root slab-file stream.
    core_internal::TopTupleTracker tracker(1);
    {
      MAXRS_ASSIGN_OR_RETURN(PrefetchingReader<SlabTuple> reader,
                             PrefetchingReader<SlabTuple>::Make(
                                 env, root_file, options_.read_ahead));
      SlabTuple t{};
      while (reader.Next(&t)) {
        MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
        tracker.Visit(t);
      }
      MAXRS_RETURN_IF_ERROR(reader.final_status());
    }
    temps.Release(root_file);

    MaxRSResult result;
    auto best = tracker.Finish();
    if (best.empty()) {
      result.region = Rect{-kInf, kInf, -kInf, kInf};
    } else {
      result.location = best[0].location;
      result.total_weight = best[0].total_weight;
      result.region = best[0].region;
    }
    result.stats.input_objects = dataset_.num_objects();
    for (const MaxRSStats& s : shard_stats) {
      result.stats.base_cases += s.base_cases;
      result.stats.merges += s.merges;
      result.stats.total_spans += s.total_spans;
      result.stats.recursion_levels =
          std::max(result.stats.recursion_levels,
                   s.recursion_levels + (num_shards > 1 ? 1 : 0));
    }
    if (num_shards > 1) {
      ++result.stats.merges;  // the cross-shard MergeSweep
      result.stats.total_spans += num_spans;
    }
    return {std::move(result)};
  };

  Result<MaxRSResult> result = body();
  if (result.ok()) {
    result.value().stats.io = env.stats().Snapshot() - io_before;
    result.value().stats.wall_seconds = timer.ElapsedSeconds();
  } else {
    // Sweep every scratch file this query's manager named so repeated
    // failing queries cannot grow the Env without bound.
    temps.ReleaseAll();
  }
  return result;
}

Result<MaxRSResult> MaxRSServer::ExecuteGlobalMerge(
    double width, double height, const CancelToken* cancel) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);

  auto body = [&]() -> Result<MaxRSResult> {
    const std::vector<ShardInfo>& shards = dataset_.shards();
    const size_t num_shards = shards.size();
    const MaxRSOptions query_options =
        MakeQueryOptions(width, height, cancel);

    // Per-shard rect-dependent derivation: linear passes over the
    // pre-sorted shard files, no sorting.
    std::vector<std::string> piece_parts(num_shards);
    std::vector<std::string> edge_parts(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      piece_parts[i] = temps.NewName("q_pieces");
      edge_parts[i] = temps.NewName("q_edges");
      bool canonical = true;
      MAXRS_RETURN_IF_ERROR(TransformShardPieces(
          env, shards[i], width, height, piece_parts[i], &canonical,
          options_.read_ahead, cancel));
      if (!canonical) {
        // Sub-ulp coordinate collapse (see TransformShardPieces) broke the
        // derived order; fall back to a real sort for this shard so the
        // stream is canonical and bit-identity with one-shot runs holds
        // even on degenerate data. Never taken for ordinarily-spaced input.
        const std::string resorted = temps.NewName("q_pieces_resort");
        ExternalSortOptions sort_options{options_.memory_bytes, nullptr,
                                         options_.read_ahead};
        MAXRS_RETURN_IF_ERROR(ExternalSort<PieceRecord>(
            env, piece_parts[i], resorted, PieceYLess, sort_options));
        temps.Release(piece_parts[i]);
        piece_parts[i] = resorted;
      }
      MAXRS_RETURN_IF_ERROR(BuildShardEdges(env, shards[i], width,
                                            edge_parts[i],
                                            options_.read_ahead, cancel));
    }

    // Assemble the two global division-phase inputs. Shards partition the
    // objects, every per-shard stream is sorted, and both comparators are
    // total orders — so the (possibly multi-pass) MergeSortedParts run
    // reproduces byte-for-byte the files the one-shot pipeline's external
    // sorts would have produced, within the query's M/B - 1 fan-in budget.
    std::string piece_file, edge_file;
    if (num_shards == 1) {
      piece_file = piece_parts[0];
      edge_file = edge_parts[0];
    } else {
      const size_t fan_in = QueryMergeFanIn(options_.memory_bytes,
                                            env.block_size());
      piece_file = temps.NewName("q_pieces_sorted");
      edge_file = temps.NewName("q_edges_sorted");
      MAXRS_RETURN_IF_ERROR(MergeSortedParts<PieceRecord>(
          env, temps, piece_parts, piece_file, PieceYLess, fan_in,
          /*pool=*/nullptr, /*passes_out=*/nullptr, options_.read_ahead));
      MAXRS_RETURN_IF_ERROR(MergeSortedParts<EdgeRecord>(
          env, temps, edge_parts, edge_file, EdgeXLess, fan_in,
          /*pool=*/nullptr, /*passes_out=*/nullptr, options_.read_ahead));
    }

    PreparedInput input;
    input.piece_file = piece_file;
    input.edge_file = edge_file;
    input.num_pieces = dataset_.num_objects();
    input.x_range = Interval{-kInf, kInf};
    return RunExactMaxRSPrepared(env, input, query_options);
  };

  Result<MaxRSResult> result = body();
  if (!result.ok()) {
    // Sweep every scratch file this query's manager named — including
    // multi-pass merge intermediates — so repeated failing queries cannot
    // grow the Env without bound. (Scratch the Driver recursion allocates
    // under its own manager can still leak on a mid-recursion error; that
    // matches the one-shot pipeline's behavior.)
    temps.ReleaseAll();
  }
  return result;
}

Result<MaxRSResult> MaxRSServer::ExecutePerShardMaterializedPruned(
    double width, double height, const CancelToken* cancel) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  Stopwatch timer;

  auto body = [&]() -> Result<MaxRSResult> {
    const ShardAggIndex& index = *dataset_.agg_index();
    const std::vector<ShardInfo>& shards = dataset_.shards();
    const size_t num_shards = shards.size();  // >= 2 (PruningActive)
    std::vector<double> bounds;  // interior shard boundaries
    bounds.reserve(num_shards - 1);
    for (size_t k = 1; k < num_shards; ++k) {
      bounds.push_back(shards[k].x_range.lo);
    }
    const MaxRSOptions query_options = MakeQueryOptions(width, height, cancel);

    // Plan: per-shard weight upper bounds from the index — zero I/O.
    const std::vector<double> ub = ShardUpperBounds(index, shards, width);
    const size_t seed = ArgMaxUpperBound(ub);

    // Every entry is pre-sized so SolveTargetShard can index the part
    // vectors of sources that were never routed (all-empty = routed
    // nothing, exactly like a routed source that emitted nothing).
    std::vector<RoutedSource> routed(num_shards);
    for (RoutedSource& r : routed) {
      r.piece_parts.assign(num_shards, std::string());
      r.piece_counts.assign(num_shards, 0);
      r.edge_parts.assign(num_shards, std::string());
    }
    std::vector<char> is_routed(num_shards, 0);
    auto route_sources = [&](const std::vector<size_t>& sources) -> Status {
      TaskGroup group(pool_.get());
      for (size_t s : sources) {
        group.Run([&, s]() -> Status {
          return RouteSourceShard(env, temps, shards, bounds, s, width,
                                  height, options_.read_ahead, cancel,
                                  &routed[s]);
        });
      }
      return group.Wait();
    };

    // Phase A1: route only the sources the seed shard needs.
    std::vector<size_t> a1;
    for (size_t s = 0; s < num_shards; ++s) {
      if (SourceFeedsTarget(index, s, shards[seed].x_range, width)) {
        a1.push_back(s);
        is_routed[s] = 1;
      }
    }
    MAXRS_RETURN_IF_ERROR(route_sources(a1));

    // Seed solve, inline on this worker thread: its slab-file's best tuple
    // sum is the branch-and-bound incumbent.
    std::vector<std::string> slab_files(num_shards);
    std::vector<MaxRSStats> shard_stats(num_shards);
    SlabBest incumbent;
    MAXRS_ASSIGN_OR_RETURN(
        slab_files[seed],
        SolveTargetShard(env, temps, routed, shards[seed].x_range, seed,
                         query_options, &shard_stats[seed], &incumbent));

    // Prune: only shards whose bound can still match or beat the incumbent
    // survive. Strictly-less comparison — a shard that could TIE must
    // survive, or the first-maximum tie-break would shift.
    std::vector<char> survives(num_shards, 0);
    survives[seed] = 1;
    uint64_t pruned_count = 0;
    for (size_t t = 0; t < num_shards; ++t) {
      if (t == seed) continue;
      if (incumbent.has_value && ub[t] < incumbent.sum) {
        ++pruned_count;
      } else {
        survives[t] = 1;
      }
    }
    if (pruned_count > 0) env.stats().RecordShardsPruned(pruned_count);

    // Phase A2: route the remaining sources any surviving target needs.
    std::vector<size_t> a2;
    for (size_t s = 0; s < num_shards; ++s) {
      if (is_routed[s]) continue;
      for (size_t t = 0; t < num_shards; ++t) {
        if (survives[t] &&
            SourceFeedsTarget(index, s, shards[t].x_range, width)) {
          a2.push_back(s);
          is_routed[s] = 1;
          break;
        }
      }
    }
    MAXRS_RETURN_IF_ERROR(route_sources(a2));

    // Phase B: solve the survivors sequentially, best bound first (ties to
    // the lowest index), re-checking each bound against the incumbent the
    // previous solves grew. Sequential on purpose: parallel solves would
    // race the incumbent and make the set of skipped shards — and with it
    // the per-query block count — schedule-dependent.
    std::vector<size_t> order;
    for (size_t t = 0; t < num_shards; ++t) {
      if (t != seed && survives[t]) order.push_back(t);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (ub[a] != ub[b]) return ub[a] > ub[b];
      return a < b;
    });
    uint64_t bound_skips = 0;
    for (size_t t : order) {
      if (incumbent.has_value && ub[t] < incumbent.sum) {
        ++bound_skips;
        survives[t] = 0;  // skipped mid-solve: "" child in the combine
        continue;
      }
      MAXRS_ASSIGN_OR_RETURN(
          slab_files[t],
          SolveTargetShard(env, temps, routed, shards[t].x_range, t,
                           query_options, &shard_stats[t], &incumbent));
    }
    if (bound_skips > 0) env.stats().RecordBoundSkip(bound_skips);

    // Phase C: cross-shard combine over ALL shard ranges; skipped shards
    // keep their "" names — MergeSweep treats them as known-empty children
    // (zero I/O), keeping the adjacent-ranges contract and the span child
    // indices intact. Spans come from routed sources only; every span
    // covering a surviving shard is from a routed source by construction.
    uint64_t num_spans = 0;
    std::vector<std::string> span_parts;
    for (const RoutedSource& source : routed) {
      if (!source.span_part.empty()) span_parts.push_back(source.span_part);
      num_spans += source.span_count;
    }
    std::string span_file;
    if (span_parts.empty()) {
      span_file = temps.NewName("q_spans");
      MAXRS_ASSIGN_OR_RETURN(RecordWriter<SpanRecord> writer,
                             RecordWriter<SpanRecord>::Make(env, span_file));
      MAXRS_RETURN_IF_ERROR(writer.Finish());
    } else if (span_parts.size() == 1) {
      span_file = span_parts[0];
    } else {
      const size_t fan_in =
          QueryMergeFanIn(options_.memory_bytes, env.block_size());
      span_file = temps.NewName("q_spans");
      MAXRS_RETURN_IF_ERROR(MergeSortedParts<SpanRecord>(
          env, temps, span_parts, span_file, SpanYLess, fan_in,
          /*pool=*/nullptr, /*passes_out=*/nullptr, options_.read_ahead));
    }
    std::vector<Interval> ranges;
    ranges.reserve(num_shards);
    for (const ShardInfo& shard : shards) ranges.push_back(shard.x_range);
    std::string root_file = temps.NewName("q_root");
    MAXRS_RETURN_IF_ERROR(MergeSweep(env, ranges, slab_files, span_file,
                                     root_file, SweepObjective::kMaximize,
                                     options_.read_ahead,
                                     options_.write_behind, cancel));
    for (const std::string& slab_file : slab_files) {
      if (!slab_file.empty()) temps.Release(slab_file);
    }
    temps.Release(span_file);

    return ExtractRootResult(env, temps, root_file, options_.read_ahead,
                             dataset_.num_objects(), shard_stats, num_shards,
                             num_spans, cancel);
  };

  Result<MaxRSResult> result = body();
  if (result.ok()) {
    result.value().stats.io = env.stats().Snapshot() - io_before;
    result.value().stats.wall_seconds = timer.ElapsedSeconds();
  } else {
    temps.ReleaseAll();
  }
  return result;
}

Result<MaxRSResult> MaxRSServer::ExecutePerShardStreamingPruned(
    double width, double height, const CancelToken* cancel) {
  Env& env = *exec_env_;
  TempFileManager temps(env, options_.work_prefix);
  const IoStatsSnapshot io_before = env.stats().Snapshot();
  Stopwatch timer;

  auto body = [&]() -> Result<MaxRSResult> {
    const ShardAggIndex& index = *dataset_.agg_index();
    const std::vector<ShardInfo>& shards = dataset_.shards();
    const size_t num_shards = shards.size();  // >= 2 (PruningActive)
    std::vector<double> bounds;  // interior shard boundaries
    bounds.reserve(num_shards - 1);
    for (size_t k = 1; k < num_shards; ++k) {
      bounds.push_back(shards[k].x_range.lo);
    }
    std::vector<Interval> ranges;
    ranges.reserve(num_shards);
    for (const ShardInfo& shard : shards) ranges.push_back(shard.x_range);
    const MaxRSOptions query_options = MakeQueryOptions(width, height, cancel);

    // Plan (zero I/O), as in the materialized pruned path.
    const std::vector<double> ub = ShardUpperBounds(index, shards, width);
    const size_t seed = ArgMaxUpperBound(ub);

    // The full S x S channel grid is created eagerly even though some rows
    // may never route: spill names must be allocated in the same
    // deterministic order as the un-pruned path. Unused channels allocate
    // no files. Producers of rows that never route also never close their
    // channels — consumers only ever merge routed rows, so nobody waits on
    // them, and the destructors reclaim whatever state exists.
    StreamingChannels channels(env, temps, num_shards,
                               options_.stream_channel_bytes,
                               options_.write_behind);
    std::vector<Status> producer_status(num_shards);
    std::vector<char> is_routed(num_shards, 0);
    auto submit_producer = [&](size_t s, JoinLatch* latch) {
      pool_->Submit([&, s, latch] {
        producer_status[s] = RouteSourceShardStreaming(
            env, channels, shards, bounds, ranges, s, width, height,
            options_.read_ahead, cancel);
        latch->CountDown();
      });
    };

    // Phase A1: producers for the sources the seed needs, then the seed
    // solve inline on this worker thread — consuming while they produce.
    // Producers never block, so the inline consumer cannot deadlock them.
    std::vector<size_t> a1;
    for (size_t s = 0; s < num_shards; ++s) {
      if (SourceFeedsTarget(index, s, shards[seed].x_range, width)) {
        a1.push_back(s);
        is_routed[s] = 1;
      }
    }
    JoinLatch a1_done(a1.size());
    for (size_t s : a1) submit_producer(s, &a1_done);

    std::vector<std::string> slab_files(num_shards);
    std::vector<MaxRSStats> shard_stats(num_shards);
    SlabBest incumbent;
    Status seed_status = SolveTargetShardStreaming(
        env, temps, channels, a1, shards[seed].x_range, seed, query_options,
        &shard_stats[seed], options_.write_behind, &slab_files[seed],
        &incumbent);
    // Join the A1 producers before any return — they hold references into
    // `channels` (the seed consumer finishing does not imply the rows
    // finished: rows close their piece channels before routing edges).
    a1_done.Wait();
    MAXRS_RETURN_IF_ERROR(seed_status);
    for (size_t s : a1) MAXRS_RETURN_IF_ERROR(producer_status[s]);

    // Prune against the incumbent (strict — ties must survive).
    std::vector<char> survives(num_shards, 0);
    survives[seed] = 1;
    uint64_t pruned_count = 0;
    for (size_t t = 0; t < num_shards; ++t) {
      if (t == seed) continue;
      if (incumbent.has_value && ub[t] < incumbent.sum) {
        ++pruned_count;
      } else {
        survives[t] = 1;
      }
    }
    if (pruned_count > 0) env.stats().RecordShardsPruned(pruned_count);

    // Phase A2: producers for the remaining sources any survivor needs.
    std::vector<size_t> a2;
    for (size_t s = 0; s < num_shards; ++s) {
      if (is_routed[s]) continue;
      for (size_t t = 0; t < num_shards; ++t) {
        if (survives[t] &&
            SourceFeedsTarget(index, s, shards[t].x_range, width)) {
          a2.push_back(s);
          is_routed[s] = 1;
          break;
        }
      }
    }
    std::vector<size_t> routed_list;  // ascending — canonical merge order
    for (size_t s = 0; s < num_shards; ++s) {
      if (is_routed[s]) routed_list.push_back(s);
    }
    JoinLatch a2_done(a2.size());
    for (size_t s : a2) submit_producer(s, &a2_done);

    // Phase B: survivors inline, sequentially, best bound first — same
    // order and bound re-check as the materialized pruned path (parallel
    // consumers would race the incumbent and make skips nondeterministic).
    // Each solve overlaps whatever A2 producers are still routing.
    uint64_t bound_skips = 0;
    Status phase_b = [&]() -> Status {
      std::vector<size_t> order;
      for (size_t t = 0; t < num_shards; ++t) {
        if (t != seed && survives[t]) order.push_back(t);
      }
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (ub[a] != ub[b]) return ub[a] > ub[b];
        return a < b;
      });
      for (size_t t : order) {
        if (incumbent.has_value && ub[t] < incumbent.sum) {
          ++bound_skips;
          survives[t] = 0;  // skipped mid-solve: "" child in the combine
          continue;
        }
        MAXRS_RETURN_IF_ERROR(SolveTargetShardStreaming(
            env, temps, channels, routed_list, shards[t].x_range, t,
            query_options, &shard_stats[t], options_.write_behind,
            &slab_files[t], &incumbent));
      }
      return Status::OK();
    }();
    // Join the A2 producers before any return, as with A1 above.
    a2_done.Wait();
    MAXRS_RETURN_IF_ERROR(phase_b);
    for (size_t s : a2) MAXRS_RETURN_IF_ERROR(producer_status[s]);
    if (bound_skips > 0) env.stats().RecordBoundSkip(bound_skips);

    // Phase C: drain the routed rows' span channels (closed by now) and
    // combine over ALL shard ranges with "" children for skipped shards.
    uint64_t num_spans = 0;
    std::string span_file = temps.NewName("q_spans");
    {
      std::vector<RecordSource<SpanRecord>*> span_sources;
      span_sources.reserve(routed_list.size());
      for (size_t s : routed_list) {
        span_sources.push_back(channels.spans[s].get());
      }
      MergingSource<SpanRecord, decltype(&SpanYLess)> spans(
          std::move(span_sources), &SpanYLess);
      MAXRS_ASSIGN_OR_RETURN(
          RecordWriter<SpanRecord> writer,
          RecordWriter<SpanRecord>::Make(env, span_file,
                                         options_.write_behind));
      SpanRecord span{};
      while (spans.Next(&span)) {
        MAXRS_RETURN_IF_ERROR(CheckCancel(cancel));
        MAXRS_RETURN_IF_ERROR(writer.Append(span));
      }
      MAXRS_RETURN_IF_ERROR(spans.final_status());
      MAXRS_RETURN_IF_ERROR(writer.Finish());
      num_spans = writer.count();
    }
    std::string root_file = temps.NewName("q_root");
    MAXRS_RETURN_IF_ERROR(MergeSweep(env, ranges, slab_files, span_file,
                                     root_file, SweepObjective::kMaximize,
                                     options_.read_ahead,
                                     options_.write_behind, cancel));
    for (const std::string& slab_file : slab_files) {
      if (!slab_file.empty()) temps.Release(slab_file);
    }
    temps.Release(span_file);

    return ExtractRootResult(env, temps, root_file, options_.read_ahead,
                             dataset_.num_objects(), shard_stats, num_shards,
                             num_spans, cancel);
  };

  Result<MaxRSResult> result = body();
  if (result.ok()) {
    result.value().stats.io = env.stats().Snapshot() - io_before;
    result.value().stats.wall_seconds = timer.ElapsedSeconds();
  } else {
    temps.ReleaseAll();
  }
  return result;
}

}  // namespace maxrs
