#include "serve/maxrs_server.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/records.h"
#include "io/external_sort.h"
#include "io/record_io.h"
#include "io/temp_manager.h"

namespace maxrs {
namespace {

// Emits the transformed piece stream of one shard: a linear pass over the
// shard's ObjectYLess-sorted objects. The output is PieceYLess-sorted by
// construction on all but pathological inputs — y -> y - h/2 and
// x -> x -/+ w/2 are monotone, so the object order IS the piece order
// (dataset_handle.h, header comment). The one exception: objects whose
// coordinates differ by less than one ulp *of the shifted value* collapse
// onto equal piece keys, which can reorder the PieceYLess tie-break
// fields. `*canonical` reports whether the emitted stream is verifiably
// PieceYLess-sorted; when false the caller restores the canonical order
// with a real sort (correctness over speed on degenerate data).
Status TransformShardPieces(Env& env, const ShardInfo& shard, double width,
                            double height, const std::string& out,
                            bool* canonical) {
  MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> reader,
                         RecordReader<SpatialObject>::Make(env, shard.y_file));
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<PieceRecord> writer,
                         RecordWriter<PieceRecord>::Make(env, out));
  *canonical = true;
  PieceRecord prev{};
  bool have_prev = false;
  SpatialObject o{};
  while (reader.Next(&o)) {
    const PieceRecord piece = TransformObject(o, width, height);
    if (have_prev && PieceYLess(piece, prev)) *canonical = false;
    prev = piece;
    have_prev = true;
    MAXRS_RETURN_IF_ERROR(writer.Append(piece));
  }
  MAXRS_RETURN_IF_ERROR(reader.final_status());
  return writer.Finish();
}

// Emits the sorted vertical-edge stream of one shard for rectangle width
// `width`: a 2-way merge of the shard's ObjectXLess-sorted objects shifted
// by -w/2 (left edges) and +w/2 (right edges). Both shifted streams are
// individually sorted (the shift is monotone), so one merge pass replaces
// the per-query edge sort of the one-shot pipeline. Unlike pieces, no
// canonical-order fallback is needed: EdgeRecord has a single field, so
// colliding values are byte-identical and every merge order yields the
// same file.
Status BuildShardEdges(Env& env, const ShardInfo& shard, double width,
                       const std::string& out) {
  MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> left,
                         RecordReader<SpatialObject>::Make(env, shard.x_file));
  MAXRS_ASSIGN_OR_RETURN(RecordReader<SpatialObject> right,
                         RecordReader<SpatialObject>::Make(env, shard.x_file));
  MAXRS_ASSIGN_OR_RETURN(RecordWriter<EdgeRecord> writer,
                         RecordWriter<EdgeRecord>::Make(env, out));
  const double half_w = width / 2.0;
  SpatialObject lo{}, hi{};
  bool have_lo = left.Next(&lo);
  bool have_hi = right.Next(&hi);
  while (have_lo || have_hi) {
    bool take_lo = have_lo;
    if (have_lo && have_hi) {
      take_lo = DoubleOrderKey(lo.x - half_w) <= DoubleOrderKey(hi.x + half_w);
    }
    if (take_lo) {
      MAXRS_RETURN_IF_ERROR(writer.Append(EdgeRecord{lo.x - half_w}));
      have_lo = left.Next(&lo);
    } else {
      MAXRS_RETURN_IF_ERROR(writer.Append(EdgeRecord{hi.x + half_w}));
      have_hi = right.Next(&hi);
    }
  }
  MAXRS_RETURN_IF_ERROR(left.final_status());
  MAXRS_RETURN_IF_ERROR(right.final_status());
  return writer.Finish();
}

}  // namespace

MaxRSServer::MaxRSServer(Env& env, const DatasetHandle& dataset,
                         const MaxRSServerOptions& options)
    : env_(env),
      dataset_(dataset),
      options_(options),
      queue_(options.queue_capacity),
      // Clamped to [1, 1024]: constructors have no Status path, and a
      // worker count beyond that is a unit mix-up, not a real machine
      // (same rationale as the core layer's num_threads validation).
      pool_(std::make_unique<ThreadPool>(std::min<size_t>(
          std::max<size_t>(1, options.num_workers), 1024))),
      workers_(std::make_unique<TaskGroup>(pool_.get())) {
  // Reject a bad configuration now (stored; every Submit returns it),
  // rather than paying a full per-shard derivation pass per doomed query
  // before the core validation finally fires.
  config_status_ =
      ValidateMaxRSOptions(MakeQueryOptions(1.0, 1.0), env_.block_size());
  for (size_t i = 0; i < pool_->num_threads(); ++i) {
    workers_->Run([this]() -> Status {
      WorkerLoop();
      return Status::OK();
    });
  }
}

MaxRSServer::~MaxRSServer() { Shutdown(); }

void MaxRSServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  Status st = workers_->Wait();
  (void)st;  // workers always return OK; per-request errors go via promises
}

ServerCounters MaxRSServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

MaxRSOptions MaxRSServer::MakeQueryOptions(double width, double height) const {
  MaxRSOptions query_options;
  query_options.rect_width = width;
  query_options.rect_height = height;
  query_options.memory_bytes = options_.memory_bytes;
  query_options.fanout = options_.fanout;
  query_options.base_case_max_pieces = options_.base_case_max_pieces;
  query_options.work_prefix = options_.work_prefix;
  // Queries parallelize across workers, not within: the serial path is
  // the deterministic one, and it keeps per-query memory at one M.
  query_options.num_threads = 1;
  return query_options;
}

MaxRSServer::CacheKey MaxRSServer::MakeKey(double width, double height) {
  CacheKey key;
  std::memcpy(&key.width_bits, &width, sizeof(width));
  std::memcpy(&key.height_bits, &height, sizeof(height));
  return key;
}

std::optional<MaxRSResult> MaxRSServer::CacheLookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void MaxRSServer::CacheInsert(const CacheKey& key, const MaxRSResult& result) {
  if (options_.cache_entries == 0) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    // Concurrent duplicate miss: both executions computed the identical
    // (deterministic) result; keep the existing entry, refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  cache_index_[key] = lru_.begin();
  while (lru_.size() > options_.cache_entries) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

Result<MaxRSResult> MaxRSServer::Submit(double rect_width, double rect_height) {
  if (!std::isfinite(rect_width) || !std::isfinite(rect_height) ||
      !(rect_width > 0.0) || !(rect_height > 0.0)) {
    return Status::InvalidArgument(
        "rectangle dimensions must be positive and finite");
  }
  if (!config_status_.ok()) return config_status_;
  const CacheKey key = MakeKey(rect_width, rect_height);
  if (std::optional<MaxRSResult> hit = CacheLookup(key)) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submitted;
    ++counters_.cache_hits;
    return *std::move(hit);
  }

  auto request = std::make_unique<Request>();
  request->width = rect_width;
  request->height = rect_height;
  std::future<Result<MaxRSResult>> future = request->promise.get_future();
  if (!queue_.Push(std::move(request))) {
    return Status::NotSupported("MaxRSServer is shut down");
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.submitted;
  }
  return future.get();
}

void MaxRSServer::WorkerLoop() {
  std::unique_ptr<Request> request;
  while (queue_.Pop(&request)) {
    Result<MaxRSResult> result =
        ExecuteQuery(request->width, request->height);
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.executed;
      if (!result.ok()) ++counters_.failed;
    }
    if (result.ok()) {
      CacheInsert(MakeKey(request->width, request->height), result.value());
    }
    request->promise.set_value(std::move(result));
  }
}

Result<MaxRSResult> MaxRSServer::ExecuteQuery(double width, double height) {
  TempFileManager temps(env_, options_.work_prefix);

  auto body = [&]() -> Result<MaxRSResult> {
    const std::vector<ShardInfo>& shards = dataset_.shards();
    const size_t num_shards = shards.size();

    // Per-shard rect-dependent derivation: linear passes over the
    // pre-sorted shard files, no sorting.
    std::vector<std::string> piece_parts(num_shards);
    std::vector<std::string> edge_parts(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      piece_parts[i] = temps.NewName("q_pieces");
      edge_parts[i] = temps.NewName("q_edges");
      bool canonical = true;
      MAXRS_RETURN_IF_ERROR(TransformShardPieces(
          env_, shards[i], width, height, piece_parts[i], &canonical));
      if (!canonical) {
        // Sub-ulp coordinate collapse (see TransformShardPieces) broke the
        // derived order; fall back to a real sort for this shard so the
        // stream is canonical and bit-identity with one-shot runs holds
        // even on degenerate data. Never taken for ordinarily-spaced input.
        const std::string resorted = temps.NewName("q_pieces_resort");
        ExternalSortOptions sort_options{options_.memory_bytes, nullptr};
        MAXRS_RETURN_IF_ERROR(ExternalSort<PieceRecord>(
            env_, piece_parts[i], resorted, PieceYLess, sort_options));
        temps.Release(piece_parts[i]);
        piece_parts[i] = resorted;
      }
      MAXRS_RETURN_IF_ERROR(
          BuildShardEdges(env_, shards[i], width, edge_parts[i]));
    }

    // Assemble the two global division-phase inputs. Shards partition the
    // objects, every per-shard stream is sorted, and both comparators are
    // total orders — so the (possibly multi-pass) MergeSortedParts run
    // reproduces byte-for-byte the files the one-shot pipeline's external
    // sorts would have produced, within the query's M/B - 1 fan-in budget.
    std::string piece_file, edge_file;
    if (num_shards == 1) {
      piece_file = piece_parts[0];
      edge_file = edge_parts[0];
    } else {
      // Guard the subtraction: blocks can be 0 for a sub-block budget
      // (ValidateOptions rejects such budgets later, but fan_in must not
      // wrap to SIZE_MAX meanwhile).
      const size_t blocks = options_.memory_bytes / env_.block_size();
      const size_t fan_in = std::max<size_t>(2, blocks > 1 ? blocks - 1 : 1);
      piece_file = temps.NewName("q_pieces_sorted");
      edge_file = temps.NewName("q_edges_sorted");
      MAXRS_RETURN_IF_ERROR(MergeSortedParts<PieceRecord>(
          env_, temps, piece_parts, piece_file, PieceYLess, fan_in));
      MAXRS_RETURN_IF_ERROR(MergeSortedParts<EdgeRecord>(
          env_, temps, edge_parts, edge_file, EdgeXLess, fan_in));
    }

    PreparedInput input;
    input.piece_file = piece_file;
    input.edge_file = edge_file;
    input.num_pieces = dataset_.num_objects();
    input.x_range = Interval{-kInf, kInf};
    return RunExactMaxRSPrepared(env_, input, MakeQueryOptions(width, height));
  };

  Result<MaxRSResult> result = body();
  if (!result.ok()) {
    // Sweep every scratch file this query's manager named — including
    // multi-pass merge intermediates — so repeated failing queries cannot
    // grow the Env without bound. (Scratch the Driver recursion allocates
    // under its own manager can still leak on a mid-recursion error; that
    // matches the one-shot pipeline's behavior.)
    temps.ReleaseAll();
  }
  return result;
}

}  // namespace maxrs
