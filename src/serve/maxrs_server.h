// MaxRSServer: the query half of the serve layer — a long-lived server that
// owns one ingested DatasetHandle and answers MaxRS queries of varying
// rectangle sizes concurrently.
//
// Request path: Submit(w, h) consults a small LRU result cache keyed by the
// exact (w, h) bit patterns (a warm hit performs zero I/O), otherwise
// enqueues the request on a bounded MPMC queue (util/mpmc_queue.h) and
// blocks on its future. `num_workers` long-running worker tasks — a
// TaskGroup on the PR-2 ThreadPool — pop requests and execute them:
//
//   per shard   transform the y-sorted objects into the (already sorted)
//               piece stream; 2-way-merge the x-sorted objects -/+ w/2 into
//               the (already sorted) edge stream        — linear passes
//   global      k-way-merge the per-shard streams                — one pass
//   solve       RunExactMaxRSPrepared: division + merge-sweep    — as usual
//
// No external sort runs per query; only the rect-dependent transform,
// merge, and division/merge-sweep work does. Each query executes on the
// serial deterministic code path (num_threads = 1), so results are
// bit-identical to a one-shot RunExactMaxRS at any thread count and
// independent of worker count, schedule, and cache state; concurrency
// comes from overlapping *queries*, not from splitting one query.
//
// See docs/ARCHITECTURE.md ("The serve layer") for the design rationale.
#ifndef MAXRS_SERVE_MAXRS_SERVER_H_
#define MAXRS_SERVE_MAXRS_SERVER_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/exact_maxrs.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "util/mpmc_queue.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace maxrs {

/// Knobs for MaxRSServer.
struct MaxRSServerOptions {
  /// Concurrent query workers (= ThreadPool size). Each in-flight query
  /// occupies one worker end to end. Clamped to [1, 1024].
  size_t num_workers = 1;

  /// Memory budget M in bytes per query (fan-out, base case, merge fan-in).
  size_t memory_bytes = 1 << 20;

  /// Fan-out override for tests; 0 derives from the memory budget.
  size_t fanout = 0;

  /// Base-case threshold override (#pieces) for tests; 0 derives from M.
  uint64_t base_case_max_pieces = 0;

  /// LRU result-cache entries keyed by exact (w, h); 0 disables caching.
  size_t cache_entries = 16;

  /// Bound on queued (not yet executing) requests; submitters beyond it
  /// block — backpressure instead of unbounded queue growth.
  size_t queue_capacity = 64;

  /// Env namespace prefix for per-query scratch files.
  std::string work_prefix = "maxrs_serve";
};

/// Monotonic counters describing server traffic so far.
struct ServerCounters {
  uint64_t submitted = 0;       ///< Submit() calls accepted.
  uint64_t cache_hits = 0;      ///< Served from the LRU without any I/O.
  uint64_t executed = 0;        ///< Ran the full per-query pipeline.
  uint64_t failed = 0;          ///< Executions that returned an error.
};

/// A long-lived MaxRS query server over one immutable ingested dataset.
/// Thread-safe: Submit may be called from any number of threads. The
/// DatasetHandle (and the Env) must outlive the server.
class MaxRSServer {
 public:
  /// Starts `options.num_workers` workers immediately. The server holds a
  /// reference to `dataset` — keep the handle alive.
  MaxRSServer(Env& env, const DatasetHandle& dataset,
              const MaxRSServerOptions& options = {});

  /// Shuts down (drains in-flight queries) if Shutdown was not called.
  ~MaxRSServer();

  MaxRSServer(const MaxRSServer&) = delete;
  MaxRSServer& operator=(const MaxRSServer&) = delete;

  /// Answers one MaxRS query for a `rect_width` x `rect_height` rectangle.
  /// Blocks until the result is available; safe to call concurrently from
  /// many threads. Returns InvalidArgument for non-positive/non-finite
  /// dimensions. After Shutdown, already-cached rects remain servable
  /// (zero I/O); queries that would need execution return NotSupported.
  Result<MaxRSResult> Submit(double rect_width, double rect_height);

  /// Stops accepting new queries, waits for in-flight ones, and joins the
  /// workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Traffic counters (point-in-time copy).
  ServerCounters counters() const;

  /// Number of requests queued but not yet picked up by a worker.
  size_t queue_depth() const { return queue_.size(); }

 private:
  /// One queued query: its dimensions and the promise Submit waits on.
  struct Request {
    double width = 0.0;
    double height = 0.0;
    std::promise<Result<MaxRSResult>> promise;
  };

  /// Exact-bit-pattern cache key; queries are cached per distinct (w, h).
  struct CacheKey {
    uint64_t width_bits = 0;
    uint64_t height_bits = 0;
    bool operator==(const CacheKey& other) const {
      return width_bits == other.width_bits &&
             height_bits == other.height_bits;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      // Splitmix-style mix; the key space is tiny so quality hardly matters.
      uint64_t h = k.width_bits * 0x9e3779b97f4a7c15ULL ^ k.height_bits;
      h ^= h >> 31;
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  static CacheKey MakeKey(double width, double height);

  MaxRSOptions MakeQueryOptions(double width, double height) const;
  void WorkerLoop();
  Result<MaxRSResult> ExecuteQuery(double width, double height);
  std::optional<MaxRSResult> CacheLookup(const CacheKey& key);
  void CacheInsert(const CacheKey& key, const MaxRSResult& result);

  Env& env_;
  const DatasetHandle& dataset_;
  MaxRSServerOptions options_;
  Status config_status_;  // from construction; every Submit fails fast on it

  MpmcQueue<std::unique_ptr<Request>> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TaskGroup> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mu_;

  mutable std::mutex cache_mu_;
  std::list<std::pair<CacheKey, MaxRSResult>> lru_;  // front = most recent
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash>
      cache_index_;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;
};

}  // namespace maxrs

#endif  // MAXRS_SERVE_MAXRS_SERVER_H_
