// MaxRSServer: the query half of the serve layer — a long-lived server that
// owns one ingested DatasetHandle and answers MaxRS queries of varying
// rectangle sizes concurrently.
//
// Request path: Submit(QuerySpec) — and its async twin SubmitAsync —
// consults a small LRU result cache keyed by the canonicalized (w, h) bit
// patterns (a warm hit performs zero I/O), then an in-flight table (a
// duplicate of a query already executing attaches to the leader's pending
// slot instead of executing again), otherwise enqueues the request on a
// bounded MPMC queue (util/mpmc_queue.h) and blocks on (or returns) its
// future. A QuerySpec may override the deadline, routing mode, and pruning
// mode per query; overrides never change the answer, only how it is
// computed. `num_workers` long-running worker tasks — a TaskGroup on the PR-2
// ThreadPool — pop requests and execute them. Two solve modes exist:
//
// kPerShard (default) — the x-slab shards ARE the top-level division:
//
//   route       per source shard, transform the y-sorted objects and route
//               each piece by extent: clipped parts into the (at most two)
//               partially covered shards, one SpanRecord for the fully
//               covered shards between; route each vertical edge by value
//                                                         — linear passes
//   solve       per target shard, merge its (few, typically 2-3) incoming
//               part streams and run division + plane-sweep *inside the
//               shard* (core_internal::SolveSlab)     — O(shard) per task
//   combine     one cross-shard MergeSweep over the shard slab-files and
//               the boundary span file                — one linear sweep
//
// Under the default ServeRoutingMode::kStreaming the route and solve
// stages overlap: routed records travel through bounded in-memory channels
// (io/record_stream.h) instead of Env part files, each target solve starts
// on its first arriving block, and the Env is touched only when a channel
// exceeds its memory cap. kMaterialized keeps the PR-4 file-based handoff
// as the equivalence oracle.
//
// kGlobalMerge (the PR-3 path, kept for comparison) — k-way-merge all
// per-shard streams into one global prepared input, then run the whole
// division from the top (RunExactMaxRSPrepared).
//
// No external sort runs per query in either mode; only rect-dependent
// transform, merge, and division/merge-sweep work does. Per-shard solves
// are scheduled as TaskGroup subtasks with a deterministic fan-in (results
// land in slots indexed by shard), so answers are independent of worker
// count, schedule, and cache state. The per-shard mode skips the global
// piece merge and the root division pass entirely: answers are
// bit-identical to one-shot RunExactMaxRS for any shard count whenever
// weight sums are exact in double arithmetic (integer-valued weights —
// the common case); with arbitrary real weights the per-shard division
// tree may group floating-point additions differently than the one-shot
// tree, so sums can differ in the last ulp (kGlobalMerge reproduces the
// one-shot tree bit-for-bit unconditionally).
//
// See docs/ARCHITECTURE.md ("The serve layer") for the design rationale
// and docs/IO_MODEL.md for the per-query I/O accounting of both modes.
#ifndef MAXRS_SERVE_MAXRS_SERVER_H_
#define MAXRS_SERVE_MAXRS_SERVER_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <future>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/exact_maxrs.h"
#include "io/env.h"
#include "io/pooled_env.h"
#include "serve/dataset_handle.h"
#include "util/cancel.h"
#include "util/mpmc_queue.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace maxrs {

/// How a worker executes one query against the sharded dataset.
enum class ServeSolveMode {
  /// Solve each x-slab shard independently (the shards are the top-level
  /// division) and combine the shard slab-files with one cross-shard
  /// MergeSweep; the global piece merge never runs. The default.
  kPerShard,
  /// K-way-merge all per-shard streams into one global prepared input and
  /// divide from the top — the PR-3 path; reproduces the one-shot division
  /// tree bit-for-bit for arbitrary (including non-integer) weights.
  kGlobalMerge,
};

/// How the per-shard mode moves routed records from source-shard routing
/// passes into target-shard solves.
enum class ServeRoutingMode {
  /// Zero-materialization streaming: each source shard's routing pass feeds
  /// per-target bounded SPSC channels (io/record_stream.h) and each target
  /// solve starts the moment its first routed block arrives, while routing
  /// is still running. Records touch the Env only when a channel exceeds
  /// its memory cap (it spills to a part file) or a target overflows its
  /// base case. Answers are bit-identical to kMaterialized, and per-query
  /// I/O never exceeds it. The default.
  kStreaming,
  /// Materialize every routed stream as Env part files, then merge them per
  /// target after all routing completes — the PR-4 path, kept as the
  /// equivalence oracle for the streaming pipeline.
  kMaterialized,
};

/// Whether the per-shard mode consults the dataset's aggregate shard index
/// (index/shard_agg_index.h) to skip shards that provably cannot contain
/// the optimal placement.
enum class ServePruningMode {
  /// Prune whenever it is provably answer-preserving: the dataset has a
  /// valid aggregate index, every weight is non-negative and finite (an
  /// index property), the solve mode is kPerShard, and there is more than
  /// one shard. Anything else silently degrades to the un-pruned path
  /// (counted by ServerCounters::unpruned) — answers are identical either
  /// way, pruning only skips work. The default: on a query where nothing
  /// prunes, the phased pruned execution performs exactly the same I/O as
  /// the un-pruned path, so enabling kAuto never costs blocks.
  kAuto,
  /// Never prune; every shard is routed and solved. The equivalence oracle
  /// for kAuto.
  kOff,
};

/// Canonical bit pattern of one cache-key dimension. Semantically equal
/// dimensions must map onto one key, so -0.0 folds onto +0.0 and every NaN
/// payload onto the canonical quiet NaN. (Submit rejects non-positive and
/// non-finite dimensions today, so neither value reaches the cache — but
/// the key derivation must not silently depend on that validation: raw bit
/// patterns would split semantically equal queries into distinct entries.)
inline uint64_t CanonicalDimensionBits(double v) {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  if (v == 0.0) v = 0.0;  // folds -0.0 (compares equal to +0.0)
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Knobs for MaxRSServer.
struct MaxRSServerOptions {
  /// Concurrent query workers (= ThreadPool size). Each in-flight query
  /// occupies one worker end to end. Clamped to [1, 1024].
  size_t num_workers = 1;

  /// Memory budget M in bytes per query (fan-out, base case, merge fan-in).
  size_t memory_bytes = 1 << 20;

  /// Fan-out override for tests; 0 derives from the memory budget.
  size_t fanout = 0;

  /// Base-case threshold override (#pieces) for tests; 0 derives from M.
  uint64_t base_case_max_pieces = 0;

  /// LRU result-cache entries keyed by canonical (w, h); 0 disables caching.
  size_t cache_entries = 16;

  /// Cache admission policy: a result is cached only if its rectangle
  /// covers at most this fraction of the dataset extent's area (rect
  /// dimensions clamped to the extent first, so an infinite-looking rect
  /// counts as full cover). Huge analytical one-off rects otherwise evict
  /// the steady-state working set. >= 1 admits everything; ignored when
  /// the dataset's bounds are unknown (empty dataset, version-1 manifest).
  double cache_max_extent_fraction = 0.5;

  /// Bound on queued (not yet executing) requests; submitters beyond it
  /// wait up to `admission_timeout_ms` — backpressure instead of unbounded
  /// queue growth.
  size_t queue_capacity = 64;

  /// Admission budget: how long Submit may wait for room in a full queue
  /// before shedding the query with kUnavailable (a retryable signal —
  /// callers may back off and resubmit). 0 sheds immediately when the
  /// queue is full. Bounded by design: an unbounded wait wedges every
  /// submitter thread behind one slow query (docs/ROBUSTNESS.md).
  int64_t admission_timeout_ms = 10'000;

  /// Per-query deadline measured from Submit (queue wait included); past
  /// it the query's CancelToken expires and every routing / merge / sweep
  /// loop it reaches aborts with kDeadlineExceeded — a terminal error
  /// (re-running would re-exceed it). 0 disables deadlines. Cooperative:
  /// a query may still finish successfully if it completes between polls.
  int64_t deadline_ms = 0;

  /// Per-query execution strategy; see ServeSolveMode.
  ServeSolveMode solve_mode = ServeSolveMode::kPerShard;

  /// How routed records travel from routing passes to shard solves in
  /// kPerShard mode (ignored by kGlobalMerge); see ServeRoutingMode.
  ServeRoutingMode routing_mode = ServeRoutingMode::kStreaming;

  /// Per-channel in-memory byte cap for kStreaming routing: a channel
  /// holding more than this spills the excess to one Env part file. 0
  /// forces every record through a spill file (the materialization
  /// worst case); SIZE_MAX never spills. The spill decision is a pure
  /// function of the bytes produced, never of consumer timing, so block
  /// counts stay schedule-independent.
  size_t stream_channel_bytes = 1 << 20;

  /// Write-behind (io/record_io.h) on per-query output streams: spill
  /// writers, per-shard scratch, and the cross-shard merge output flush
  /// their data blocks on the shared IoExecutor while the producer keeps
  /// running — the write-side dual of read_ahead. Answers and block
  /// counts are bit-identical either way.
  bool write_behind = false;

  /// Double-buffered read-ahead (io/prefetch_reader.h) on every sequential
  /// per-query stream: shard routing scans, per-shard part merges, the
  /// cross-shard MergeSweep inputs, and the root slab-file scan (plus the
  /// global-merge mode's stream merges). Answers and per-query block
  /// counts are bit-identical either way at any shard/worker count.
  bool read_ahead = false;

  /// Shard skipping via the dataset's aggregate index (kPerShard mode
  /// only); see ServePruningMode. Branch-and-bound over the per-shard
  /// weight upper bounds: shards whose bound cannot beat the best
  /// placement found so far are never routed or solved at all.
  ServePruningMode pruning_mode = ServePruningMode::kAuto;

  /// Maximum number of distinct in-flight queries one worker may drain
  /// from the queue and execute as a single shared-scan batch: one pass
  /// over each source shard's object order routes pieces and edges for
  /// every query in the batch at once, so the scan I/O is paid once and
  /// reported per query as an amortized equal share (docs/IO_MODEL.md,
  /// "Batched shared scans"). Answers are bit-identical to submitting the
  /// same queries serially. 1 (the default) disables batching entirely —
  /// the legacy one-query-per-worker path runs, and every committed
  /// serial baseline is unaffected. Effective only for the streaming
  /// per-shard mode; kMaterialized and kGlobalMerge execute a formed
  /// batch as a plain sequence. Clamped to [1, 64].
  size_t batch_max = 1;

  /// How long a forming batch may wait for the queue to supply up to
  /// `batch_max` queries before executing what it has. 0 (the default)
  /// never waits: the worker takes whatever is instantaneously queued, so
  /// an idle server still serves single queries at unbatched latency. A
  /// positive window trades first-query latency for batch fullness —
  /// tests and the bench use it to make batch composition deterministic.
  int64_t batch_window_ms = 0;

  /// Shared read cache over the dataset's immutable files (shard files,
  /// manifest, aggregate index): when > 0, all query workers fetch those
  /// blocks through one BufferPool of this many bytes (io/pooled_env.h).
  /// A pool hit performs no counted I/O, so hot shard-header and index
  /// blocks are read from storage once — not once per query. 0 (the
  /// default) bypasses the pool entirely: every read is a counted Env
  /// block transfer, preserving the exact per-query I/O accounting the
  /// committed baselines and equivalence tests pin down.
  size_t buffer_pool_bytes = 0;

  /// Forwarded to the shared BufferPool: how long one block fetch may wait
  /// for a frame when every frame is momentarily pinned by other workers
  /// (io/buffer_pool.h). Past the bound the fetch — and the query — fails
  /// with ResourceExhausted, which signals an undersized pool.
  uint64_t buffer_pool_pin_wait_ms = 1000;

  /// Env namespace prefix for per-query scratch files.
  std::string work_prefix = "maxrs_serve";
};

/// Monotonic counters describing server traffic so far.
struct ServerCounters {
  uint64_t submitted = 0;       ///< Submit() calls accepted.
  uint64_t cache_hits = 0;      ///< Served from the LRU without any I/O.
  uint64_t dedup_hits = 0;      ///< Attached to an in-flight leader's slot.
  uint64_t executed = 0;        ///< Ran the full per-query pipeline.
  uint64_t failed = 0;          ///< Executions that returned an error.
  uint64_t cache_rejects = 0;   ///< Results refused by the admission policy.
  uint64_t shed = 0;            ///< Refused with kUnavailable: queue full
                                ///< past the admission budget.
  uint64_t degraded = 0;        ///< Streaming queries re-run once on the
                                ///< materialized path after a retryable
                                ///< failure (graceful degradation).
  uint64_t deadlines = 0;       ///< Queries that returned kDeadlineExceeded:
                                ///< executions aborted by an expired token,
                                ///< and deduplicated followers whose own
                                ///< deadline elapsed while the leader was
                                ///< still in flight.
  uint64_t corruptions = 0;     ///< Executions aborted by kCorruption
                                ///< (checksum mismatch, truncated file).
  uint64_t batches = 0;         ///< Shared-scan batches executed (two or
                                ///< more distinct queries off one routing
                                ///< scan per source shard).
  uint64_t batched_queries = 0; ///< Queries executed inside those batches.
  uint64_t unpruned = 0;        ///< Multi-shard per-shard executions that
                                ///< wanted index pruning (kAuto) but ran
                                ///< un-pruned: the dataset has no usable
                                ///< aggregate index (pre-v3 manifest,
                                ///< corrupt index file) or its weights are
                                ///< unsafe to bound (negative/non-finite).
                                ///< Answers are unaffected.
};

/// One MaxRS query as submitted by a caller: the rectangle dimensions plus
/// optional per-query overrides of the server-wide execution knobs. An
/// unset override inherits the corresponding MaxRSServerOptions value, so
/// `QuerySpec{w, h}` behaves exactly like the legacy positional Submit.
/// Validated in one place (Submit/SubmitAsync): dimensions must be positive
/// and finite, a set deadline must be non-negative. Overrides never change
/// the answer — streaming and materialized routing, pruned and un-pruned
/// execution are bit-identical by contract — which is what keeps the
/// result cache and in-flight dedup keyed on (width, height) alone sound
/// even when two callers ask for the same rect under different modes.
struct QuerySpec {
  /// Query rectangle width; must be positive and finite.
  double width = 0.0;
  /// Query rectangle height; must be positive and finite.
  double height = 0.0;
  /// Per-query deadline override in milliseconds, measured from Submit
  /// (queue wait included). Unset inherits MaxRSServerOptions::deadline_ms;
  /// 0 disables the deadline for this query.
  std::optional<int64_t> deadline_ms;
  /// Per-query pruning override; unset inherits
  /// MaxRSServerOptions::pruning_mode.
  std::optional<ServePruningMode> pruning;
  /// Per-query routing override (kPerShard mode only); unset inherits
  /// MaxRSServerOptions::routing_mode.
  std::optional<ServeRoutingMode> routing;
};

/// Where a QueryResponse's answer came from.
enum class ServedFrom {
  /// Served from the LRU result cache — zero I/O, no execution.
  kCache,
  /// Attached to an in-flight duplicate's leader and served its result.
  kDedup,
  /// Ran the full per-query pipeline.
  kExecuted,
};

/// One answered query: the MaxRS result plus the serving metadata the
/// legacy Result<MaxRSResult> surface could not express.
struct QueryResponse {
  /// The answer, bit-identical at any shard/worker/batch/cache/mode
  /// configuration (result.stats describes the execution that produced it).
  MaxRSResult result;
  /// Block I/O performed on behalf of THIS submission: the execution's
  /// per-query (batch-amortized) share for kExecuted, all zeros for kCache
  /// and kDedup — a cache hit or follower attach transfers no blocks.
  IoStatsSnapshot io;
  /// Shared-scan batch size of the execution that produced the answer
  /// (1 = unbatched); carried from result.stats for cache/dedup serves.
  uint64_t batch_size = 1;
  /// How this submission was served; see ServedFrom.
  ServedFrom served_from = ServedFrom::kExecuted;
};

/// A long-lived MaxRS query server over one immutable ingested dataset.
/// Thread-safe: Submit may be called from any number of threads. The
/// DatasetHandle (and the Env) must outlive the server.
class MaxRSServer {
 public:
  /// Starts `options.num_workers` workers immediately. The server holds a
  /// reference to `dataset` — keep the handle alive.
  MaxRSServer(Env& env, const DatasetHandle& dataset,
              const MaxRSServerOptions& options = {});

  /// Shuts down (drains in-flight queries) if Shutdown was not called.
  ~MaxRSServer();

  MaxRSServer(const MaxRSServer&) = delete;
  MaxRSServer& operator=(const MaxRSServer&) = delete;

  /// Answers one MaxRS query, blocking until the response is available —
  /// the canonical entry point; safe to call concurrently from any number
  /// of threads. Returns InvalidArgument for an invalid spec (non-positive
  /// or non-finite dimensions, negative deadline override); kUnavailable
  /// (retryable) when the queue stays full past the admission budget;
  /// kDeadlineExceeded when the effective deadline elapses before the
  /// query finishes. After Shutdown, already-cached rects remain servable
  /// (zero I/O); queries that would need execution return NotSupported.
  Result<QueryResponse> Submit(const QuerySpec& spec);

  /// Submit without blocking: returns the future the server holds
  /// internally, so callers (the net layer, batch-hungry clients) can
  /// pipeline many in-flight queries without one thread each. Completion
  /// contract: EVERY returned future completes — with the response, with
  /// the spec/admission error (an invalid spec or a shed query yields an
  /// already-completed future), or with NotSupported once Shutdown stops
  /// accepting work; Shutdown() drains all accepted requests before
  /// returning, so no future outlives the server. One caveat vs the
  /// blocking Submit: a query deduplicated onto an in-flight leader
  /// completes when the LEADER completes — the blocking call enforces the
  /// follower's own deadline with a timed wait, an async caller who needs
  /// that must bound future.wait_for itself.
  std::future<Result<QueryResponse>> SubmitAsync(const QuerySpec& spec);

  /// Legacy positional surface: answers one `rect_width` x `rect_height`
  /// query with all per-query overrides unset. A thin delegating wrapper
  /// over Submit(QuerySpec) that unwraps QueryResponse::result.
  Result<MaxRSResult> Submit(double rect_width, double rect_height);

  /// Stops accepting new queries, waits for in-flight ones, and joins the
  /// workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Traffic counters (point-in-time copy).
  ServerCounters counters() const;

  /// Shared buffer-pool statistics; all zeros when buffer_pool_bytes == 0
  /// (no pool exists).
  BufferPoolStats pool_stats() const {
    return pooled_env_ != nullptr ? pooled_env_->pool_stats()
                                  : BufferPoolStats{};
  }

  /// The cache admission predicate, decided on the *canonical* dimension
  /// values the cache key stores (CanonicalDimensionBits), never on the
  /// caller's raw bit patterns — so the decision is a pure function of the
  /// cache key and two semantically equal rects can never be admitted
  /// differently. True when a result for this rect would be cached.
  bool AdmitsToCache(double width, double height) const;

  /// Number of requests queued but not yet picked up by a worker. Counted
  /// under the same mutex as counters(), so a (counters, queue_depth) pair
  /// read back-to-back is consistent: queue_depth never exceeds
  /// submitted - executed. (Reading queue_.size() directly raced the
  /// counter updates and could transiently over-report.)
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(counters_mu_);
    return queued_enqueued_ >= queued_dequeued_
               ? static_cast<size_t>(queued_enqueued_ - queued_dequeued_)
               : 0;
  }

 private:
  /// One queued query: its dimensions, its EFFECTIVE execution modes
  /// (per-query overrides already resolved against the server options at
  /// submit time), its cancellation token, and the promise the leader's
  /// Submit waits on. The worker fulfills the promise exactly once. The
  /// token's deadline starts at Submit, so time spent queued counts
  /// against it.
  struct Request {
    Request(double w, double h, std::chrono::milliseconds deadline,
            ServeRoutingMode r, ServePruningMode p)
        : width(w),
          height(h),
          routing(r),
          pruning(p),
          cancel(CancelToken::WithTimeout(deadline)) {}
    double width;
    double height;
    ServeRoutingMode routing;
    ServePruningMode pruning;
    CancelToken cancel;
    std::promise<Result<QueryResponse>> promise;
    // Promises of deduplicated followers attached to this leader. Guarded
    // by pending_mu_: a follower attaches only while the pending entry
    // exists, and CompleteRequest moves the list out under the same lock
    // when it erases the entry — so no attach can race a fulfillment.
    std::vector<std::promise<Result<QueryResponse>>> waiters;
    // Deduplicated submissions attached to this leader so far: the batch
    // former's queue-jump priority (a leader many callers wait on is
    // served before a leader nobody joined). Atomic: bumped by follower
    // Submits while the batch former reads it.
    std::atomic<uint64_t> followers{0};
  };

  /// Canonical-bit-pattern cache key; queries are cached per distinct
  /// semantic (w, h) — see CanonicalDimensionBits.
  struct CacheKey {
    uint64_t width_bits = 0;
    uint64_t height_bits = 0;
    bool operator==(const CacheKey& other) const {
      return width_bits == other.width_bits &&
             height_bits == other.height_bits;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      // Splitmix-style mix; the key space is tiny so quality hardly matters.
      uint64_t h = k.width_bits * 0x9e3779b97f4a7c15ULL ^ k.height_bits;
      h ^= h >> 31;
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  static CacheKey MakeKey(double width, double height);

  /// The one validation point for every submission path.
  static Status ValidateSpec(const QuerySpec& spec);
  /// Builds the response for a result served a given way: io is the
  /// execution's per-query share for kExecuted and zeroed otherwise,
  /// batch_size is carried from the result's stats.
  static QueryResponse MakeResponse(MaxRSResult result, ServedFrom served);
  /// The shared submission path behind Submit/SubmitAsync: validation,
  /// cache lookup, dedup attach-or-lead, bounded admission. Reports
  /// whether the caller became a dedup follower and the query's effective
  /// deadline so the blocking Submit can enforce the follower-side wait.
  std::future<Result<QueryResponse>> SubmitInternal(const QuerySpec& spec,
                                                    bool* dedup,
                                                    int64_t* deadline_ms);
  MaxRSOptions MakeQueryOptions(double width, double height,
                                const CancelToken* cancel = nullptr) const;
  void WorkerLoop();
  /// Batch former: takes one request from the staging deque or the queue
  /// (blocking), then — when batch_max > 1 — drains further distinct
  /// in-flight requests, waiting up to batch_window_ms to fill the batch.
  /// Candidates are ordered by attached-follower count (a leader many
  /// callers wait on jumps the queue, FIFO among ties) and the batch keeps
  /// only rects shape-compatible with the highest-priority one; the rest
  /// are staged for the next batch. Empty result = shut down and drained.
  std::vector<std::shared_ptr<Request>> FormBatch();
  /// Whether `candidate` may share a batch with `anchor`: identical
  /// effective routing and pruning modes (a batch executes under ONE mode
  /// pair), and width and height each within kBatchShapeRatio of the
  /// anchor's, so pruning bounds and routing fan-out stay comparable
  /// across the batch.
  static bool ShapeCompatible(const Request& anchor, const Request& candidate);
  /// Runs one formed batch end to end and fulfills every promise:
  /// shared-scan execution for the streaming per-shard mode, a serial
  /// per-query loop otherwise, plus per-query retryable degradation and
  /// the counters/cache/pending bookkeeping of the serial path.
  void ExecuteBatch(std::vector<std::shared_ptr<Request>> batch);
  /// Shared-scan execution of `batch` (all k >= 2 queries off one routing
  /// pass per source shard), un-pruned / index-pruned. Results land in
  /// `results` slots parallel to `batch`.
  void ExecuteBatchStreaming(
      const std::vector<std::shared_ptr<Request>>& batch,
      std::vector<Result<MaxRSResult>>* results);
  void ExecuteBatchStreamingPruned(
      const std::vector<std::shared_ptr<Request>>& batch,
      std::vector<Result<MaxRSResult>>* results);
  /// Post-execution bookkeeping shared by the serial and batched paths:
  /// counters, cache admission (on the canonical key), publish-then-erase
  /// of the pending slot, and fulfillment of the leader promise (served_from
  /// kExecuted) and every attached follower promise (kDedup).
  void CompleteRequest(const std::shared_ptr<Request>& request,
                       Result<MaxRSResult> result);
  /// Fails the leader promise and every attached follower promise with
  /// `refused` and retires the pending slot — the shed/shutdown path.
  void FailRequest(const std::shared_ptr<Request>& request,
                   const Status& refused);
  /// Executes one query under the EFFECTIVE (already-resolved) routing and
  /// pruning modes carried by its request.
  Result<MaxRSResult> ExecuteQuery(double width, double height,
                                   const CancelToken* cancel,
                                   ServeRoutingMode routing,
                                   ServePruningMode pruning);
  Result<MaxRSResult> ExecuteGlobalMerge(double width, double height,
                                         const CancelToken* cancel);
  Result<MaxRSResult> ExecutePerShardStreaming(double width, double height,
                                               const CancelToken* cancel);
  Result<MaxRSResult> ExecutePerShardMaterialized(double width, double height,
                                                  const CancelToken* cancel);
  Result<MaxRSResult> ExecutePerShardStreamingPruned(
      double width, double height, const CancelToken* cancel);
  Result<MaxRSResult> ExecutePerShardMaterializedPruned(
      double width, double height, const CancelToken* cancel);
  /// Whether a query with effective pruning mode `mode` runs the
  /// index-pruned phased execution: the mode is kAuto, the solve mode is
  /// kPerShard with more than one shard, and the dataset's aggregate index
  /// exists and is pruning-safe.
  bool PruningActiveFor(ServePruningMode mode) const;
  /// PruningActiveFor under the server-wide default pruning mode.
  bool PruningActive() const;
  std::optional<MaxRSResult> CacheLookup(const CacheKey& key);
  void CacheInsert(const CacheKey& key, const MaxRSResult& result);
  /// The admission decision on a canonical cache key (AdmitsToCache after
  /// key derivation): reconstructs the canonical dimension values from the
  /// key's bits and applies the extent-fraction policy to those.
  bool AdmitKeyToCache(const CacheKey& key) const;

  Env& env_;
  const DatasetHandle& dataset_;
  MaxRSServerOptions options_;
  Status config_status_;  // from construction; every Submit fails fast on it

  // Set iff buffer_pool_bytes > 0: wraps env_ so dataset-file reads go
  // through the shared pool. exec_env_ is what every executor uses — the
  // pooled wrapper when present, env_ otherwise (scratch-file traffic
  // passes through the wrapper untouched either way).
  std::unique_ptr<PooledEnv> pooled_env_;
  Env* exec_env_ = nullptr;

  // shared_ptr, not unique_ptr: on a Push refused by a closed queue the
  // queue drops its copy, but the submitting leader still owns the request
  // and can fail the promise — otherwise deduplicated followers waiting on
  // the shared future would see a broken promise.
  MpmcQueue<std::shared_ptr<Request>> queue_;
  // Workers are dedicated threads, NOT pool tasks: the pool is reserved
  // for per-query shard subtasks. A worker loop parked in queue_.Pop on
  // the pool would deadlock help-while-wait (a query's Wait could steal a
  // not-yet-claimed worker-loop task and park inside it forever), and
  // separating them lets idle pool threads run another query's shard
  // subtasks instead of sitting in Pop.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::thread> worker_threads_;
  bool shut_down_ = false;
  std::mutex shutdown_mu_;

  mutable std::mutex cache_mu_;
  std::list<std::pair<CacheKey, MaxRSResult>> lru_;  // front = most recent
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash>
      cache_index_;

  // In-flight dedup: one entry per distinct rect currently queued or
  // executing — the leader request. Followers attach a fresh promise to
  // the leader's waiter list under pending_mu_ and wait on its future
  // (bounded by their own deadline — a follower never inherits the
  // leader's token); the worker erases the entry (after publishing to the
  // cache) and moves the waiter list out under the same lock before
  // fulfilling any promise, so late duplicates hit the cache instead and
  // no attach can race a fulfillment. Two specs with the same rect but
  // different mode overrides share one leader: overrides never change the
  // answer, so dedup on (width, height) stays sound.
  mutable std::mutex pending_mu_;
  std::unordered_map<CacheKey, std::shared_ptr<Request>, CacheKeyHash>
      pending_;

  // Requests drained from the queue during batch formation but deferred
  // (shape-incompatible with their batch's anchor, or past batch_max):
  // served first, FIFO, by the next FormBatch on any worker.
  std::mutex staging_mu_;
  std::deque<std::shared_ptr<Request>> staged_;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;
  // Queue accounting under counters_mu_ (not queue_.size()) so counters()
  // and queue_depth() snapshots are mutually consistent; see queue_depth().
  uint64_t queued_enqueued_ = 0;
  uint64_t queued_dequeued_ = 0;
};

}  // namespace maxrs

#endif  // MAXRS_SERVE_MAXRS_SERVER_H_
