// CHECK macros for internal invariants. A failed CHECK indicates a bug in the
// library (not a recoverable condition), so it aborts with a diagnostic.
#ifndef MAXRS_UTIL_CHECK_H_
#define MAXRS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define MAXRS_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define MAXRS_CHECK_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define MAXRS_CHECK_OK(expr)                                             \
  do {                                                                   \
    ::maxrs::Status _st = (expr);                                        \
    if (!_st.ok()) {                                                     \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, _st.ToString().c_str());                    \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define MAXRS_DCHECK(cond) MAXRS_CHECK(cond)
#else
#define MAXRS_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // MAXRS_UTIL_CHECK_H_
