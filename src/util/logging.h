// Lightweight leveled logging to stderr. Benchmarks and examples use this for
// progress reporting; the library itself only logs at kWarn and above.
#ifndef MAXRS_UTIL_LOGGING_H_
#define MAXRS_UTIL_LOGGING_H_

#include <string>

namespace maxrs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style logging; a newline is appended.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace maxrs

#define MAXRS_LOG_DEBUG(...) ::maxrs::Logf(::maxrs::LogLevel::kDebug, __VA_ARGS__)
#define MAXRS_LOG_INFO(...) ::maxrs::Logf(::maxrs::LogLevel::kInfo, __VA_ARGS__)
#define MAXRS_LOG_WARN(...) ::maxrs::Logf(::maxrs::LogLevel::kWarn, __VA_ARGS__)
#define MAXRS_LOG_ERROR(...) ::maxrs::Logf(::maxrs::LogLevel::kError, __VA_ARGS__)

#endif  // MAXRS_UTIL_LOGGING_H_
