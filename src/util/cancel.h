// Cooperative cancellation: a CancelToken is created per query (with an
// optional deadline), handed down through MaxRSOptions / the serve routing
// loops, and polled at loop granularity. Cancellation is advisory — a loop
// that observes an expired token returns Status::DeadlineExceeded through
// the ordinary error paths, so channels close, temp files are released, and
// the worker frees up exactly as on any other failure (docs/ROBUSTNESS.md,
// "Deadlines").
#ifndef MAXRS_UTIL_CANCEL_H_
#define MAXRS_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <optional>

#include "util/status.h"

namespace maxrs {

/// Shared cancellation state for one query. Thread-safe: any thread may
/// Cancel(), every worker touching the query polls Expired(). The deadline
/// check throttles its steady_clock read to every 64th poll, so per-record
/// polling in hot routing loops stays cheap.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_(deadline) {}

  /// A token whose deadline is `timeout` from now; no deadline if zero.
  static CancelToken WithTimeout(std::chrono::milliseconds timeout) {
    if (timeout.count() <= 0) return CancelToken();
    return CancelToken(std::chrono::steady_clock::now() + timeout);
  }

  /// Marks the token cancelled; every subsequent Expired() returns true.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. The clock is sampled on the
  /// first call and every 64th thereafter; once expiry is observed it
  /// latches, so Expired() never reverts to false.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!deadline_.has_value()) return false;
    if (polls_.fetch_add(1, std::memory_order_relaxed) % 64 != 0) return false;
    if (std::chrono::steady_clock::now() < *deadline_) return false;
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool has_deadline() const { return deadline_.has_value(); }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<uint64_t> polls_{0};
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

/// Poll helper for Status-returning loops. A null token never cancels, so
/// call sites don't branch on configuration.
inline Status CheckCancel(const CancelToken* token) {
  if (token != nullptr && token->Expired()) {
    return Status::DeadlineExceeded("query cancelled or past its deadline");
  }
  return Status::OK();
}

}  // namespace maxrs

#endif  // MAXRS_UTIL_CANCEL_H_
