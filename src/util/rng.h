// Deterministic pseudo-random number generation. We ship our own generators
// (SplitMix64 seeding + xoshiro256** stream, Box-Muller normals) so that every
// dataset and every test is bit-reproducible across platforms and standard
// library versions, unlike std::normal_distribution.
#ifndef MAXRS_UTIL_RNG_H_
#define MAXRS_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace maxrs {

/// SplitMix64: used to expand a single user seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformU64(uint64_t n) {
    // Lemire's multiply-shift rejection method, bias-free.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (deterministic, platform-independent).
  double Normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    have_spare_ = true;
    return mag * std::cos(two_pi * u2);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace maxrs

#endif  // MAXRS_UTIL_RNG_H_
