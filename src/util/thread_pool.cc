#include "util/thread_pool.h"

#include <algorithm>

namespace maxrs {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::TryRunOneHere() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  Status st = Wait();
  (void)st;  // destructor join: the error (if any) was already observable
}

void TaskGroup::Run(std::function<Status()> task) {
  // Short-circuit after the first error: later tasks are not started (and
  // already-queued ones degrade to no-ops below), matching the serial
  // early-return a plain MAXRS_RETURN_IF_ERROR loop would do — an IOError
  // on child 0 must not let seven sibling subtrees grind on.
  if (pool_ == nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_.ok()) return;
    }
    Finish(task());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_.ok()) return;
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    bool skip;
    {
      std::lock_guard<std::mutex> lock(mu_);
      skip = !first_error_.ok();
    }
    Finish(skip ? Status::OK() : task());
  });
}

Status TaskGroup::Wait() {
  // Help drain the pool while our tasks are pending: a waiter that parked
  // with queued work outstanding could deadlock nested groups on a
  // saturated pool (every worker blocked in a Wait of its own).
  while (pool_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) return first_error_;
    }
    if (!pool_->TryRunOneHere()) break;
  }
  // Queue empty: every remaining task of this group is running on some
  // other thread; sleep until the last completion notifies us.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  return first_error_;
}

void TaskGroup::Finish(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!st.ok() && first_error_.ok()) first_error_ = st;
  if (pool_ == nullptr) return;  // inline task: nothing pending to count down
  if (--pending_ == 0) done_cv_.notify_all();
}

Status ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<Status(size_t)>& body) {
  TaskGroup group(pool);
  for (size_t i = begin; i < end; ++i) {
    group.Run([&body, i] { return body(i); });
  }
  return group.Wait();
}

}  // namespace maxrs
