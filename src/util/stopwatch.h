// Monotonic wall-clock stopwatch used by the benchmark harness.
#ifndef MAXRS_UTIL_STOPWATCH_H_
#define MAXRS_UTIL_STOPWATCH_H_

#include <chrono>

namespace maxrs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace maxrs

#endif  // MAXRS_UTIL_STOPWATCH_H_
