// Bounded multi-producer multi-consumer blocking queue: the submission
// channel of the serve layer (serve/maxrs_server.h). Producers block while
// the queue is full (backpressure instead of unbounded memory growth),
// consumers block while it is empty, and Close() releases everyone: pending
// items still drain, new pushes are refused. Plain mutex + two condition
// variables — the queue carries a handful of requests per second, not a
// per-block hot path, so contention is irrelevant and simplicity wins.
#ifndef MAXRS_UTIL_MPMC_QUEUE_H_
#define MAXRS_UTIL_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace maxrs {

/// Outcome of a bounded-wait push (MpmcQueue::PushFor).
enum class PushResult {
  kAccepted,  ///< Enqueued.
  kClosed,    ///< Queue closed; item dropped.
  kTimedOut,  ///< Still full after the admission budget; item dropped.
};

/// A bounded FIFO shared by any number of producer and consumer threads.
/// T must be movable; move-only types (e.g. std::unique_ptr) are supported.
template <typename T>
class MpmcQueue {
 public:
  /// `capacity` bounds the number of queued items (clamped to at least 1).
  explicit MpmcQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until there is room (or the queue is closed), then enqueues.
  /// Returns false — and drops `item` — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Bounded-wait Push: waits at most `timeout` for room. The load-shedding
  /// primitive — a caller that gets kTimedOut can refuse the work with
  /// kUnavailable instead of blocking its thread indefinitely, and kClosed
  /// stays distinguishable from overload (serve/maxrs_server.cc, Submit).
  PushResult PushFor(T item, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [this] {
          return closed_ || items_.size() < capacity_;
        })) {
      return PushResult::kTimedOut;
    }
    if (closed_) return PushResult::kClosed;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks until an item is available (or the queue is closed and drained),
  /// then dequeues into *out. Returns false iff closed and empty — the
  /// consumer-loop termination signal.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking Pop: returns false immediately when nothing is available.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: subsequent pushes are refused, blocked producers and
  /// consumers wake, already-queued items remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// True once Close() has been called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Number of currently queued items (instantaneous; for tests/telemetry).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// The capacity bound the queue was constructed with.
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace maxrs

#endif  // MAXRS_UTIL_MPMC_QUEUE_H_
