// Fixed-size thread pool with structured task groups: the parallel execution
// engine of the library. Design constraints, in order:
//
//   1. Determinism. The pool never decides *what* work happens, only *when*:
//      callers pre-allocate output slots (and temp-file names) in a fixed
//      order and tasks fill them by index, so results are bit-identical for
//      any thread count, including the serial fallback.
//   2. Nested waits must not deadlock. Recursive algorithms (the ExactMaxRS
//      distribution sweep) spawn task groups from inside pool tasks. A
//      TaskGroup::Wait() therefore never parks while the pool has queued
//      work: the waiter helps drain the queue first, so a saturated pool
//      always makes progress.
//   3. Graceful serial fallback. Every API accepts a null pool and then runs
//      inline on the calling thread with zero synchronization overhead —
//      num_threads=1 executes the exact serial code path.
#ifndef MAXRS_UTIL_THREAD_POOL_H_
#define MAXRS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace maxrs {

/// A fixed-size pool of worker threads sharing one FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1; pass
  /// std::thread::hardware_concurrency() yourself if you want "all cores").
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: joins workers after the queue empties. All TaskGroups
  /// using this pool must be waited on before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs one queued task on the *calling* thread, if any is pending.
  /// Returns false when the queue was empty. This is the help-while-waiting
  /// primitive that makes nested TaskGroup waits deadlock-free.
  bool TryRunOneHere();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// A batch of Status-returning tasks joined by one Wait(). Collects the
/// first non-OK status (by completion order). With a null pool every Run()
/// executes inline, making the group a plain serial loop.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Joins any still-pending tasks; a group must never outlive work that
  /// references the caller's stack.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` (or runs it inline without a pool). Once a task has
  /// failed, subsequently Run() tasks are skipped and already-queued ones
  /// become no-ops — the error-path analogue of a serial loop's early
  /// return. Tasks that did start always run to completion.
  void Run(std::function<Status()> task);

  /// Blocks until every task scheduled so far has finished, helping to
  /// execute queued pool tasks while waiting. Returns the first error.
  /// The group is reusable after Wait() (the error, if any, is sticky).
  Status Wait();

 private:
  void Finish(const Status& st);

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  uint64_t pending_ = 0;
  Status first_error_;
};

/// Runs body(i) for i in [begin, end), one task per index, and returns the
/// first error. Serial (in index order) when `pool` is null.
Status ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<Status(size_t)>& body);

}  // namespace maxrs

#endif  // MAXRS_UTIL_THREAD_POOL_H_
