// Minimal command-line flag parser for the bench and example binaries.
// Supports --name=value, --name value, and boolean --name / --no-name.
#ifndef MAXRS_UTIL_FLAGS_H_
#define MAXRS_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace maxrs {

class Flags {
 public:
  /// Parses argv. Unrecognized positional arguments are collected in
  /// positional(). Returns false (and prints to stderr) on malformed input.
  bool Parse(int argc, char** argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace maxrs

#endif  // MAXRS_UTIL_FLAGS_H_
