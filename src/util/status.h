// Status and Result<T>: exception-free error propagation, in the style of
// RocksDB/Arrow. All fallible operations in the library return one of these.
#ifndef MAXRS_UTIL_STATUS_H_
#define MAXRS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace maxrs {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIOError,
    kNotFound,
    kCorruption,
    kNotSupported,
    kResourceExhausted,
    kInternal,
    kUnavailable,        ///< Transient failure; retrying may succeed.
    kDeadlineExceeded,   ///< The operation ran past its deadline.
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) { return Status(Code::kIOError, msg); }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) { return Status(Code::kInternal, msg); }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }

  /// The retry taxonomy (docs/ROBUSTNESS.md): kUnavailable marks transient
  /// faults a bounded retry may clear. Everything else is terminal — in
  /// particular kCorruption (a re-read returns the same bad bytes),
  /// kDeadlineExceeded (retrying cannot un-spend the deadline), and plain
  /// kIOError (permanent by default; an Env wrapper that knows its storage
  /// returns transient errors maps them to kUnavailable, or RetryEnv can be
  /// told to treat kIOError as transient — io/retry_env.h).
  static bool IsRetryable(Code code) { return code == Code::kUnavailable; }
  bool is_retryable() const { return IsRetryable(code_); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "IOError: short read".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Never both.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace maxrs

/// Propagates a non-OK Status out of the current function.
#define MAXRS_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::maxrs::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, otherwise propagates the error Status.
#define MAXRS_ASSIGN_OR_RETURN(lhs, expr)               \
  MAXRS_ASSIGN_OR_RETURN_IMPL_(                         \
      MAXRS_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)

#define MAXRS_STATUS_CONCAT_INNER_(a, b) a##b
#define MAXRS_STATUS_CONCAT_(a, b) MAXRS_STATUS_CONCAT_INNER_(a, b)
#define MAXRS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)    \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // MAXRS_UTIL_STATUS_H_
