// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the checksum guarding every
// data block in the record framing (io/record_io.h). Software table-driven
// implementation — fast enough for block-granular verification, and fully
// portable. The standard check value is Crc32c("123456789", 9) == 0xE3069283.
#ifndef MAXRS_UTIL_CRC32C_H_
#define MAXRS_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace maxrs {

/// Extends `crc` (a previous Crc32c result, or 0 for a fresh computation)
/// over `n` bytes at `data`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of a single buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace maxrs

#endif  // MAXRS_UTIL_CRC32C_H_
