#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace maxrs {

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg + 2;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (body.rfind("no-", 0) == 0) {
      values_[body.substr(3)] = "false";
      continue;
    }
    // "--name value" if the next token does not look like a flag, else a
    // bare boolean "--name".
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return !(v == "false" || v == "0" || v == "no");
}

}  // namespace maxrs
