// The TCP front door of the serving stack: a loopback listener speaking
// the line-delimited protocol in net/query_protocol.h on top of
// MaxRSServer's structured Submit API.
//
// Threading: one acceptor thread polls the listener; each accepted
// connection becomes one task on an internal ThreadPool of
// `num_io_threads` readers. A reader parses lines, dispatches MAXRS
// commands through MaxRSServer::SubmitAsync, and answers strictly in
// command order (clients may pipeline up to `max_pipeline` queries on one
// connection before the reader stops consuming input).
//
// Backpressure, end to end: a flooded client first fills its own
// connection's pipeline window (the reader stops reading, TCP flow
// control pushes back on the sender), and what does get through meets the
// bounded admission queue inside MaxRSServer — whose timed PushFor sheds
// with kUnavailable rather than wedging, surfacing on the wire as
// `ERR unavailable` the client can back off and retry. No layer blocks
// unboundedly, so overload degrades into explicit shed responses instead
// of frozen sockets.
//
// Shutdown() is graceful: the acceptor stops, every open connection
// drains the queries it already dispatched (each gets its response or
// error), then sockets close. Safe to call from any thread; idempotent;
// the destructor calls it.
#ifndef MAXRS_NET_NET_SERVER_H_
#define MAXRS_NET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "io/env.h"
#include "net/socket.h"
#include "serve/maxrs_server.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace maxrs {

/// Tuning knobs for the network front-end.
struct NetServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with port() after Start — the pattern every test and bench uses).
  uint16_t port = 0;
  /// Reader threads, i.e. the max number of concurrently served
  /// connections; further accepted connections wait for a free reader.
  size_t num_io_threads = 4;
  /// A line longer than this (no newline seen) is a garbage frame: the
  /// server answers `ERR invalid` and closes the connection.
  size_t max_line_bytes = 4096;
  /// In-flight queries one connection may pipeline before the reader
  /// stops consuming input (TCP flow control then pushes back).
  size_t max_pipeline = 64;
  /// Poll granularity for stop-flag checks on idle sockets.
  int poll_interval_ms = 50;
};

/// The TCP listener + connection reader pool. Owns no query logic: every
/// MAXRS command becomes a MaxRSServer::SubmitAsync call, so answers over
/// the wire are bit-identical to in-process Submit.
class NetServer {
 public:
  /// Wires the front-end to a server (query execution) and its Env
  /// (aggregate I/O counters for STATS). Both must outlive the NetServer.
  NetServer(MaxRSServer& server, Env& env, NetServerOptions options);
  /// Calls Shutdown().
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the listener and starts the acceptor thread. Call once;
  /// returns IOError when the bind fails (port taken).
  Status Start();

  /// The bound port — the kernel-assigned one when options.port was 0.
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  /// Stops accepting, drains every open connection's in-flight queries,
  /// closes all sockets, and joins all threads. Idempotent.
  void Shutdown();

  /// Connections accepted since Start (monotonic; includes closed ones).
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Connections currently open (accepted and not yet closed).
  uint64_t active_connections() const {
    std::lock_guard<std::mutex> lock(active_mu_);
    return active_;
  }

 private:
  // Acceptor-thread body: poll + accept until stop_, handing each
  // connection to the reader pool.
  void AcceptLoop();
  // Reader-task body: serve one connection until QUIT/EOF/error/stop_.
  void ServeConnection(const std::shared_ptr<Socket>& conn);
  // Bookkeeping around ServeConnection so Shutdown can wait for drain.
  void ConnectionDone();

  MaxRSServer& server_;
  Env& env_;
  const NetServerOptions options_;

  Socket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> accepted_{0};
  // Serializes Shutdown bodies so concurrent callers don't double-join.
  std::mutex shutdown_mu_;

  // Open-connection count; Shutdown waits on the cv until it hits zero.
  mutable std::mutex active_mu_;
  std::condition_variable active_cv_;
  uint64_t active_ = 0;
};

}  // namespace maxrs

#endif  // MAXRS_NET_NET_SERVER_H_
