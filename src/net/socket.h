// Minimal RAII wrappers over POSIX loopback TCP sockets — just enough
// surface for the line-delimited query protocol (net/net_server.h) and its
// tests/benches: bind-listen on 127.0.0.1 (ephemeral port supported),
// accept, connect, poll-with-timeout, send-all, recv-some. Everything
// reports through the repo's Status/Result model instead of errno, and
// every descriptor is owned by a move-only Socket so no path can leak an
// fd. Deliberately loopback-only: the serving stack's front door binds
// 127.0.0.1 — exposing it beyond the host is a deployment concern
// (reverse proxy, mTLS sidecar), not this layer's.
#ifndef MAXRS_NET_SOCKET_H_
#define MAXRS_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace maxrs {

/// A move-only owner of one socket file descriptor; closes it on
/// destruction. A default-constructed Socket owns nothing (valid() false).
class Socket {
 public:
  /// Owns nothing.
  Socket() = default;
  /// Takes ownership of `fd` (-1 = nothing).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  /// Moves ownership; the source is left empty.
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  /// Move-assigns; any descriptor this socket held is closed first.
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// The raw descriptor (-1 when empty).
  int fd() const { return fd_; }
  /// Whether this socket owns a descriptor.
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port — query it back with LocalPort). SO_REUSEADDR is set so
/// rapid rebinding in tests does not trip TIME_WAIT.
Result<Socket> ListenLoopback(uint16_t port);

/// The local port a bound socket ended up on — the way to discover an
/// ephemeral port after ListenLoopback(0).
Result<uint16_t> LocalPort(const Socket& socket);

/// Accepts one pending connection from a listener. Call only after
/// PollReadable reported the listener readable; a racing hangup surfaces
/// as kUnavailable (retryable — poll again).
Result<Socket> Accept(const Socket& listener);

/// Connects to 127.0.0.1:`port` (blocking).
Result<Socket> ConnectLoopback(uint16_t port);

/// Waits up to `timeout_ms` for the socket to become readable (data,
/// pending connection, or EOF/hangup — both must wake a reader). False =
/// timed out with nothing to read; the caller's stop-flag poll loop spins
/// on that.
Result<bool> PollReadable(const Socket& socket, int timeout_ms);

/// Writes all of `data`, retrying partial sends. SIGPIPE is suppressed
/// (MSG_NOSIGNAL): a peer that hung up surfaces as an IOError status, not
/// a process signal.
Status SendAll(const Socket& socket, const std::string& data);

/// Reads at most `len` bytes into `buf`; returns the byte count, 0 when
/// the peer closed its write side. Call after PollReadable to avoid
/// blocking indefinitely.
Result<size_t> RecvSome(const Socket& socket, char* buf, size_t len);

}  // namespace maxrs

#endif  // MAXRS_NET_SOCKET_H_
