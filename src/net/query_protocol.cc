#include "net/query_protocol.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

namespace maxrs {
namespace {

// Splits on single spaces; empty tokens (doubled spaces, leading space)
// are parse errors surfaced by the callers' arity checks.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string::size_type start = 0;
  while (start <= line.size()) {
    const std::string::size_type space = line.find(' ', start);
    if (space == std::string::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    tokens.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseInt64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* ServedFromName(ServedFrom served) {
  switch (served) {
    case ServedFrom::kCache:
      return "cache";
    case ServedFrom::kDedup:
      return "dedup";
    case ServedFrom::kExecuted:
      return "executed";
  }
  return "executed";
}

// The wire class of a Status code: the coarse grouping a client acts on.
const char* ErrorClass(Status::Code code) {
  switch (code) {
    case Status::Code::kInvalidArgument:
      return "invalid";
    case Status::Code::kUnavailable:
      return "unavailable";
    case Status::Code::kDeadlineExceeded:
      return "deadline";
    case Status::Code::kNotSupported:
      return "shutdown";
    case Status::Code::kCorruption:
      return "corruption";
    default:
      return "internal";
  }
}

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("bad command: " + what);
}

}  // namespace

Result<Command> ParseCommand(const std::string& line) {
  std::string trimmed = line;
  if (!trimmed.empty() && trimmed.back() == '\r') trimmed.pop_back();
  const std::vector<std::string> tokens = Tokenize(trimmed);
  if (tokens.empty() || tokens[0].empty()) return Invalid("empty line");

  Command command;
  if (tokens[0] == "STATS" || tokens[0] == "PING" || tokens[0] == "QUIT") {
    if (tokens.size() != 1) return Invalid(tokens[0] + " takes no arguments");
    command.type = tokens[0] == "STATS"  ? CommandType::kStats
                   : tokens[0] == "PING" ? CommandType::kPing
                                         : CommandType::kQuit;
    return {command};
  }
  if (tokens[0] != "MAXRS") return Invalid("unknown verb '" + tokens[0] + "'");
  if (tokens.size() < 3) return Invalid("MAXRS needs width and height");

  command.type = CommandType::kMaxRS;
  if (!ParseDouble(tokens[1], &command.spec.width)) {
    return Invalid("width '" + tokens[1] + "' is not a number");
  }
  if (!ParseDouble(tokens[2], &command.spec.height)) {
    return Invalid("height '" + tokens[2] + "' is not a number");
  }
  for (size_t i = 3; i < tokens.size(); ++i) {
    const std::string& option = tokens[i];
    const std::string::size_type eq = option.find('=');
    if (eq == std::string::npos) {
      return Invalid("option '" + option + "' is not key=value");
    }
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    if (key == "deadline_ms") {
      int64_t deadline = 0;
      if (!ParseInt64(value, &deadline) || deadline < 0) {
        return Invalid("deadline_ms '" + value +
                       "' is not a non-negative integer");
      }
      command.spec.deadline_ms = deadline;
    } else if (key == "pruning") {
      if (value == "auto") {
        command.spec.pruning = ServePruningMode::kAuto;
      } else if (value == "off") {
        command.spec.pruning = ServePruningMode::kOff;
      } else {
        return Invalid("pruning must be auto|off, got '" + value + "'");
      }
    } else if (key == "routing") {
      if (value == "streaming") {
        command.spec.routing = ServeRoutingMode::kStreaming;
      } else if (value == "materialized") {
        command.spec.routing = ServeRoutingMode::kMaterialized;
      } else {
        return Invalid("routing must be streaming|materialized, got '" +
                       value + "'");
      }
    } else {
      return Invalid("unknown option '" + key + "'");
    }
  }
  return {command};
}

std::string FormatResponse(const QueryResponse& response) {
  std::string out = "OK ";
  out += FormatDouble(response.result.location.x);
  out += ' ';
  out += FormatDouble(response.result.location.y);
  out += ' ';
  out += FormatDouble(response.result.total_weight);
  out += ' ';
  out += ServedFromName(response.served_from);
  out += ' ';
  out += std::to_string(response.batch_size);
  out += '\n';
  return out;
}

std::string FormatError(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return std::string("ERR ") + ErrorClass(status.code()) + " " + message +
         "\n";
}

std::string FormatStats(const ServerCounters& counters,
                        const IoStatsSnapshot& io) {
  std::ostringstream out;
  out << "STATS"
      << " submitted=" << counters.submitted
      << " cache_hits=" << counters.cache_hits
      << " dedup_hits=" << counters.dedup_hits
      << " executed=" << counters.executed << " failed=" << counters.failed
      << " cache_rejects=" << counters.cache_rejects
      << " shed=" << counters.shed << " degraded=" << counters.degraded
      << " deadlines=" << counters.deadlines
      << " corruptions=" << counters.corruptions
      << " batches=" << counters.batches
      << " batched_queries=" << counters.batched_queries
      << " unpruned=" << counters.unpruned
      << " blocks_read=" << io.blocks_read
      << " blocks_written=" << io.blocks_written
      << " reads_retried=" << io.reads_retried
      << " writes_retried=" << io.writes_retried
      << " shards_pruned=" << io.shards_pruned
      << " bound_skips=" << io.bound_skips
      << " scans_shared=" << io.scans_shared << "\n";
  return out.str();
}

Status ParseStats(const std::string& line, ServerCounters* counters,
                  IoStatsSnapshot* io) {
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r')) {
    trimmed.pop_back();
  }
  const std::vector<std::string> tokens = Tokenize(trimmed);
  if (tokens.empty() || tokens[0] != "STATS") {
    return Status::InvalidArgument("not a STATS frame");
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string::size_type eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("STATS field '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string key = tokens[i].substr(0, eq);
    int64_t value = 0;
    if (!ParseInt64(tokens[i].substr(eq + 1), &value) || value < 0) {
      return Status::InvalidArgument("STATS field '" + tokens[i] +
                                     "' has a bad value");
    }
    const uint64_t v = static_cast<uint64_t>(value);
    if (key == "submitted") counters->submitted = v;
    else if (key == "cache_hits") counters->cache_hits = v;
    else if (key == "dedup_hits") counters->dedup_hits = v;
    else if (key == "executed") counters->executed = v;
    else if (key == "failed") counters->failed = v;
    else if (key == "cache_rejects") counters->cache_rejects = v;
    else if (key == "shed") counters->shed = v;
    else if (key == "degraded") counters->degraded = v;
    else if (key == "deadlines") counters->deadlines = v;
    else if (key == "corruptions") counters->corruptions = v;
    else if (key == "batches") counters->batches = v;
    else if (key == "batched_queries") counters->batched_queries = v;
    else if (key == "unpruned") counters->unpruned = v;
    else if (key == "blocks_read") io->blocks_read = v;
    else if (key == "blocks_written") io->blocks_written = v;
    else if (key == "reads_retried") io->reads_retried = v;
    else if (key == "writes_retried") io->writes_retried = v;
    else if (key == "shards_pruned") io->shards_pruned = v;
    else if (key == "bound_skips") io->bound_skips = v;
    else if (key == "scans_shared") io->scans_shared = v;
    // Unknown keys: ignored on purpose (forward compatibility).
  }
  return Status::OK();
}

std::string FormatPong() { return "PONG\n"; }

std::string FormatBye() { return "BYE\n"; }

}  // namespace maxrs
