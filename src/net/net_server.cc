#include "net/net_server.h"

#include <chrono>
#include <deque>
#include <future>
#include <string>
#include <utility>

#include "net/query_protocol.h"

namespace maxrs {

NetServer::NetServer(MaxRSServer& server, Env& env, NetServerOptions options)
    : server_(server), env_(env), options_(options) {}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("NetServer::Start called twice");
  }
  Result<Socket> listener = ListenLoopback(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();
  pool_ = std::make_unique<ThreadPool>(options_.num_io_threads);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  {
    // Every accepted connection (even ones still queued for a reader)
    // runs to completion; readers see stop_ and drain their pipelines.
    std::unique_lock<std::mutex> alock(active_mu_);
    active_cv_.wait(alock, [this] { return active_ == 0; });
  }
  pool_.reset();
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Result<bool> readable = PollReadable(listener_, options_.poll_interval_ms);
    if (!readable.ok()) return;  // listener broken; Shutdown still drains
    if (!readable.value()) continue;
    Result<Socket> accepted = Accept(listener_);
    if (!accepted.ok()) continue;  // racing hangup — just poll again
    auto conn = std::make_shared<Socket>(std::move(accepted).value());
    accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      ++active_;
    }
    // ThreadPool::Submit takes a copyable std::function, so the move-only
    // Socket rides in a shared_ptr.
    pool_->Submit([this, conn] {
      ServeConnection(conn);
      ConnectionDone();
    });
  }
}

void NetServer::ConnectionDone() {
  std::lock_guard<std::mutex> lock(active_mu_);
  --active_;
  active_cv_.notify_all();
}

void NetServer::ServeConnection(const std::shared_ptr<Socket>& conn) {
  std::string buffer;
  // MAXRS responses outstanding on this connection, oldest first. All
  // other frames (STATS/PONG/BYE/parse errors) drain this queue before
  // they go out, so response order always matches command order.
  std::deque<std::future<Result<QueryResponse>>> pending;

  // Blocks on one future and sends its response; false = peer gone.
  const auto send_front = [&]() {
    Result<QueryResponse> result = pending.front().get();
    pending.pop_front();
    const std::string frame = result.ok() ? FormatResponse(result.value())
                                          : FormatError(result.status());
    return SendAll(*conn, frame).ok();
  };
  // Flushes every outstanding response; false = peer gone.
  const auto drain = [&]() {
    while (!pending.empty()) {
      if (!send_front()) return false;
    }
    return true;
  };
  // Protocol violations that close the connection still answer first so
  // the client learns why.
  const auto reject_and_close = [&](const std::string& why) {
    if (drain()) (void)SendAll(*conn, FormatError(Status::InvalidArgument(why)));
  };

  while (true) {
    // Flush whatever already completed, strictly FIFO.
    while (!pending.empty() &&
           pending.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      if (!send_front()) return;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Graceful drain: dispatched queries get their answers, then close.
      (void)drain();
      return;
    }
    if (pending.size() >= options_.max_pipeline) {
      // Pipeline window full: stop reading input and wait on the oldest
      // query. TCP flow control now pushes back on the client.
      if (!send_front()) return;
      continue;
    }
    Result<bool> readable = PollReadable(*conn, options_.poll_interval_ms);
    if (!readable.ok()) return;
    if (!readable.value()) continue;

    char chunk[1024];
    Result<size_t> n = RecvSome(*conn, chunk, sizeof(chunk));
    if (!n.ok()) return;
    if (n.value() == 0) {
      // EOF: the client finished sending; answer what it already asked.
      (void)drain();
      return;
    }
    buffer.append(chunk, n.value());
    if (buffer.find('\0') != std::string::npos) {
      reject_and_close("binary garbage on a text connection");
      return;
    }

    std::string::size_type newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.size() > options_.max_line_bytes) {
        reject_and_close("command line exceeds max_line_bytes");
        return;
      }
      Result<Command> command = ParseCommand(line);
      if (!command.ok()) {
        // Malformed command: answer ERR invalid and keep the connection
        // alive — one typo should not cost the client its pipeline.
        if (!drain()) return;
        if (!SendAll(*conn, FormatError(command.status())).ok()) return;
        continue;
      }
      switch (command.value().type) {
        case CommandType::kMaxRS:
          pending.push_back(server_.SubmitAsync(command.value().spec));
          break;
        case CommandType::kStats: {
          if (!drain()) return;
          const std::string frame =
              FormatStats(server_.counters(), env_.stats().Snapshot());
          if (!SendAll(*conn, frame).ok()) return;
          break;
        }
        case CommandType::kPing:
          if (!drain()) return;
          if (!SendAll(*conn, FormatPong()).ok()) return;
          break;
        case CommandType::kQuit:
          (void)(drain() && SendAll(*conn, FormatBye()).ok());
          return;
      }
    }
    if (buffer.size() > options_.max_line_bytes) {
      // A "line" this long with no newline in sight is a garbage frame.
      reject_and_close("command line exceeds max_line_bytes");
      return;
    }
  }
}

}  // namespace maxrs
