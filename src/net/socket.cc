#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace maxrs {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenLoopback(uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IOError(Errno("socket"));
  const int one = 1;
  // Rapid rebinds in tests must not trip TIME_WAIT; best-effort.
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(Errno("bind"));
  }
  if (::listen(sock.fd(), 128) != 0) {
    return Status::IOError(Errno("listen"));
  }
  return {std::move(sock)};
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(Errno("getsockname"));
  }
  return {static_cast<uint16_t>(ntohs(addr.sin_port))};
}

Result<Socket> Accept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    // A connection that reset between poll and accept is not an error of
    // the listener — report retryable so the accept loop just polls again.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == EINTR) {
      return Status::Unavailable(Errno("accept"));
    }
    return Status::IOError(Errno("accept"));
  }
  return {Socket(fd)};
}

Result<Socket> ConnectLoopback(uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IOError(Errno("socket"));
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::IOError(Errno("connect"));
  }
  const int one = 1;
  // Query lines are tiny; Nagle would add 40ms to every pipelined
  // request/response turn. Best-effort.
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return {std::move(sock)};
}

Result<bool> PollReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return {false};  // spurious wake; caller re-polls
    return Status::IOError(Errno("poll"));
  }
  // POLLHUP/POLLERR count as readable: the next recv observes EOF/reset
  // instead of the loop spinning on a dead peer.
  return {n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0};
}

Status SendAll(const Socket& socket, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(const Socket& socket, char* buf, size_t len) {
  while (true) {
    const ssize_t n = ::recv(socket.fd(), buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("recv"));
    }
    return {static_cast<size_t>(n)};
  }
}

}  // namespace maxrs
