// The wire grammar of the network front-end: a line-delimited text
// protocol over TCP (one '\n'-terminated command per line, one
// '\n'-terminated response line per command, strictly in command order).
//
//   MAXRS <w> <h> [deadline_ms=N] [pruning=auto|off]
//                 [routing=streaming|materialized]
//       -> OK <x> <y> <weight> <served_from> <batch_size>
//   STATS -> STATS k=v k=v ...      (ServerCounters + aggregate IoStats)
//   PING  -> PONG
//   QUIT  -> BYE                    (then the server closes the connection)
//
// Any failure maps onto `ERR <class> <message>` where <class> is one of
// invalid | unavailable | deadline | shutdown | corruption | internal —
// the Status-code classes a client can act on (back off and retry on
// `unavailable`, give up on the rest). Doubles are printed with %.17g so
// a client parsing them back recovers the exact bit pattern — the
// bit-identity contract survives the wire.
//
// This header is pure parse/format (no sockets, no Env): the protocol is
// unit-testable without a server and reusable by the workload driver.
#ifndef MAXRS_NET_QUERY_PROTOCOL_H_
#define MAXRS_NET_QUERY_PROTOCOL_H_

#include <string>

#include "io/io_stats.h"
#include "serve/maxrs_server.h"
#include "util/status.h"

namespace maxrs {

/// The four commands a client may send.
enum class CommandType {
  /// `MAXRS w h [k=v ...]` — submit one query.
  kMaxRS,
  /// `STATS` — serialize the server's traffic counters + aggregate I/O.
  kStats,
  /// `PING` — liveness probe.
  kPing,
  /// `QUIT` — drain this connection's in-flight queries and close it.
  kQuit,
};

/// One parsed command line; `spec` is meaningful only for kMaxRS.
struct Command {
  /// Which command the line carried.
  CommandType type = CommandType::kPing;
  /// The parsed query (kMaxRS only): dimensions plus any per-query
  /// overrides the client supplied.
  QuerySpec spec;
};

/// Parses one command line (without its trailing newline; a trailing '\r'
/// is tolerated). Returns InvalidArgument — mapped to `ERR invalid` by the
/// server, which keeps the connection open — for an unknown verb, a
/// malformed number, an unknown option key or value, or trailing garbage.
/// Dimension-positivity is NOT checked here: that is the server's single
/// validation point (MaxRSServer::ValidateSpec).
Result<Command> ParseCommand(const std::string& line);

/// Formats a successful query response:
/// `OK <x> <y> <weight> <served_from> <batch_size>\n` with %.17g doubles
/// (round-trip exact) and served_from spelled cache|dedup|executed.
std::string FormatResponse(const QueryResponse& response);

/// Formats a failure as `ERR <class> <message>\n`; embedded newlines in
/// the message are flattened so the frame stays one line.
std::string FormatError(const Status& status);

/// Formats the STATS response: one `STATS k=v ...` line carrying every
/// ServerCounters field plus the aggregate Env I/O counters.
std::string FormatStats(const ServerCounters& counters,
                        const IoStatsSnapshot& io);

/// Parses a `STATS k=v ...` line back into the two structs (unknown keys
/// are ignored for forward compatibility). Returns InvalidArgument when
/// the line is not a STATS frame.
Status ParseStats(const std::string& line, ServerCounters* counters,
                  IoStatsSnapshot* io);

/// The PONG liveness response frame.
std::string FormatPong();

/// The BYE connection-close acknowledgment frame.
std::string FormatBye();

}  // namespace maxrs

#endif  // MAXRS_NET_QUERY_PROTOCOL_H_
