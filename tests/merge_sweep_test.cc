#include "core/merge_sweep.h"

#include <gtest/gtest.h>

#include "core/plane_sweep.h"
#include "core/records.h"
#include "io/env.h"
#include "io/record_io.h"
#include "test_util.h"

namespace maxrs {
namespace {

/// End-to-end white-box check: manually divide pieces into two slabs plus a
/// spanning set, produce slab-files via PlaneSweep, merge, and compare with
/// a single global PlaneSweep.
class MergeSweepTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv(512);

  /// Returns the best (sum, y) over a tuple stream.
  static std::pair<double, double> Best(const std::vector<SlabTuple>& tuples) {
    double best = 0, y = 0;
    for (const SlabTuple& t : tuples) {
      if (t.sum > best) {
        best = t.sum;
        y = t.y;
      }
    }
    return {best, y};
  }
};

TEST_F(MergeSweepTest, TwoSlabsNoSpans) {
  // Slab 0: x in [0, 100); slab 1: x in [100, 200).
  std::vector<PieceRecord> left = {{10, 60, 0, 10, 1.0}, {30, 90, 5, 15, 1.0}};
  std::vector<PieceRecord> right = {{110, 160, 2, 12, 1.0}};
  std::vector<ChildSlab> children(2);
  children[0].x_range = {0, 100};
  children[1].x_range = {100, 200};

  ASSERT_TRUE(
      WriteRecordFile(*env_, "s0", PlaneSweep(left, children[0].x_range)).ok());
  ASSERT_TRUE(
      WriteRecordFile(*env_, "s1", PlaneSweep(right, children[1].x_range)).ok());
  ASSERT_TRUE(WriteRecordFile(*env_, "spans", std::vector<SpanRecord>{}).ok());

  ASSERT_TRUE(MergeSweep(*env_, children, {"s0", "s1"}, "spans", "out").ok());
  auto merged = ReadRecordFile<SlabTuple>(*env_, "out");
  ASSERT_TRUE(merged.ok());

  // Global reference.
  auto all = left;
  all.insert(all.end(), right.begin(), right.end());
  auto global = PlaneSweep(all, Interval{0, 200});
  EXPECT_EQ(Best(*merged).first, Best(global).first);
  // Overlap of the two left pieces gives sum 2 in stratum [5,10).
  EXPECT_EQ(Best(*merged).first, 2.0);
  EXPECT_EQ(Best(*merged).second, 5.0);
}

TEST_F(MergeSweepTest, SpanningWeightLiftsAChild) {
  // A span over child 1 must raise its tuples by the span weight while
  // active, including at span-only event ys.
  std::vector<PieceRecord> in_child = {{120, 150, 10, 20, 1.0}};
  std::vector<ChildSlab> children(2);
  children[0].x_range = {0, 100};
  children[1].x_range = {100, 200};
  ASSERT_TRUE(WriteRecordFile(
                  *env_, "s0", PlaneSweep({}, children[0].x_range))
                  .ok());
  ASSERT_TRUE(WriteRecordFile(*env_, "s1",
                              PlaneSweep(in_child, children[1].x_range))
                  .ok());
  // Span covers child 1 for y in [15, 25): overlaps the piece on [15, 20).
  std::vector<SpanRecord> spans = {{15, 25, 3.0, 1, 1}};
  ASSERT_TRUE(WriteRecordFile(*env_, "spans", spans).ok());

  ASSERT_TRUE(MergeSweep(*env_, children, {"s0", "s1"}, "spans", "out").ok());
  auto merged = ReadRecordFile<SlabTuple>(*env_, "out");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Best(*merged).first, 4.0);  // 1 (piece) + 3 (span)
  EXPECT_EQ(Best(*merged).second, 15.0);

  // The span-only bottom event at y=15 must itself produce a tuple.
  bool has_y15 = false;
  for (const SlabTuple& t : *merged) has_y15 |= (t.y == 15.0);
  EXPECT_TRUE(has_y15);
}

TEST_F(MergeSweepTest, AdjacentEqualIntervalsMerge) {
  // Two children each fully covered by the same spanning weight and nothing
  // else: their max-intervals touch at the boundary and merge.
  std::vector<ChildSlab> children(2);
  children[0].x_range = {0, 100};
  children[1].x_range = {100, 200};
  ASSERT_TRUE(WriteRecordFile(*env_, "s0", PlaneSweep({}, children[0].x_range)).ok());
  ASSERT_TRUE(WriteRecordFile(*env_, "s1", PlaneSweep({}, children[1].x_range)).ok());
  std::vector<SpanRecord> spans = {{0, 10, 2.0, 0, 1}};
  ASSERT_TRUE(WriteRecordFile(*env_, "spans", spans).ok());
  ASSERT_TRUE(MergeSweep(*env_, children, {"s0", "s1"}, "spans", "out").ok());
  auto merged = ReadRecordFile<SlabTuple>(*env_, "out");
  ASSERT_TRUE(merged.ok());
  ASSERT_FALSE(merged->empty());
  const SlabTuple& first = (*merged)[0];
  EXPECT_EQ(first.y, 0.0);
  EXPECT_EQ(first.sum, 2.0);
  EXPECT_EQ(first.x_lo, 0.0);
  EXPECT_EQ(first.x_hi, 200.0);  // extended across the boundary
}

TEST_F(MergeSweepTest, OutputSortedByYWithOneTuplePerEvent) {
  auto objects = testing::RandomIntObjects(100, 300, 17);
  std::vector<PieceRecord> left, right;
  std::vector<SpanRecord> spans;
  std::vector<ChildSlab> children(2);
  children[0].x_range = {0, 150};
  children[1].x_range = {150, 400};
  for (const auto& o : objects) {
    PieceRecord p{o.x, o.x + 20, o.y, o.y + 20, 1.0};
    if (p.x_hi <= 150) {
      left.push_back(p);
    } else if (p.x_lo >= 150) {
      right.push_back(p);
    } else {
      left.push_back({p.x_lo, 150, p.y_lo, p.y_hi, p.w});
      right.push_back({150, p.x_hi, p.y_lo, p.y_hi, p.w});
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.y_lo < b.y_lo;
                   });
  ASSERT_TRUE(WriteRecordFile(*env_, "s0", PlaneSweep(left, children[0].x_range)).ok());
  ASSERT_TRUE(WriteRecordFile(*env_, "s1", PlaneSweep(right, children[1].x_range)).ok());
  ASSERT_TRUE(WriteRecordFile(*env_, "spans", spans).ok());
  ASSERT_TRUE(MergeSweep(*env_, children, {"s0", "s1"}, "spans", "out").ok());
  auto merged = ReadRecordFile<SlabTuple>(*env_, "out");
  ASSERT_TRUE(merged.ok());
  for (size_t i = 1; i < merged->size(); ++i) {
    EXPECT_LT((*merged)[i - 1].y, (*merged)[i].y);
  }
  // Result matches the unsplit global sweep (x-splitting at 150 preserves
  // location-weights).
  auto all = left;
  all.insert(all.end(), right.begin(), right.end());
  auto global = PlaneSweep(all, Interval{0, 400});
  EXPECT_EQ(Best(*merged).first, Best(global).first);
}

TEST_F(MergeSweepTest, MinObjectivePicksSmallestEffectiveInterval) {
  // Child 0 has a piece (weight 5); child 1 is empty; a span of weight 2
  // covers child 0 only. Under the min objective the merged tuples must
  // track the *least* covered interval: child 1's zero.
  std::vector<PieceRecord> left = {{10, 60, 0, 10, 5.0}};
  std::vector<ChildSlab> children(2);
  children[0].x_range = {0, 100};
  children[1].x_range = {100, 200};
  ASSERT_TRUE(WriteRecordFile(*env_, "s0",
                              PlaneSweep(left, children[0].x_range,
                                         SweepObjective::kMinimize))
                  .ok());
  ASSERT_TRUE(WriteRecordFile(*env_, "s1",
                              PlaneSweep({}, children[1].x_range,
                                         SweepObjective::kMinimize))
                  .ok());
  std::vector<SpanRecord> spans = {{2, 8, 2.0, 0, 0}};
  ASSERT_TRUE(WriteRecordFile(*env_, "spans", spans).ok());
  ASSERT_TRUE(MergeSweep(*env_, children, {"s0", "s1"}, "spans", "out",
                         SweepObjective::kMinimize)
                  .ok());
  auto merged = ReadRecordFile<SlabTuple>(*env_, "out");
  ASSERT_TRUE(merged.ok());
  // Every stratum's minimum is 0 (child 1 is empty everywhere).
  for (const SlabTuple& t : *merged) {
    EXPECT_EQ(t.sum, 0.0) << "y=" << t.y;
  }

  // Same layout, but now a span covers BOTH children: while it is active,
  // the minimum must rise to the span weight.
  std::vector<SpanRecord> wide_spans = {{2, 8, 2.0, 0, 1}};
  ASSERT_TRUE(WriteRecordFile(*env_, "spans2", wide_spans).ok());
  ASSERT_TRUE(MergeSweep(*env_, children, {"s0", "s1"}, "spans2", "out2",
                         SweepObjective::kMinimize)
                  .ok());
  auto merged2 = ReadRecordFile<SlabTuple>(*env_, "out2");
  ASSERT_TRUE(merged2.ok());
  bool saw_two = false;
  for (const SlabTuple& t : *merged2) {
    if (t.y >= 2 && t.y < 8) {
      EXPECT_EQ(t.sum, 2.0) << "y=" << t.y;
      saw_two = true;
    }
  }
  EXPECT_TRUE(saw_two);
}

TEST_F(MergeSweepTest, EmptyEverything) {
  std::vector<ChildSlab> children(3);
  children[0].x_range = {0, 10};
  children[1].x_range = {10, 20};
  children[2].x_range = {20, 30};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(WriteRecordFile(*env_, "s" + std::to_string(i),
                                std::vector<SlabTuple>{})
                    .ok());
  }
  ASSERT_TRUE(WriteRecordFile(*env_, "spans", std::vector<SpanRecord>{}).ok());
  ASSERT_TRUE(
      MergeSweep(*env_, children, {"s0", "s1", "s2"}, "spans", "out").ok());
  auto merged = ReadRecordFile<SlabTuple>(*env_, "out");
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->empty());
}

}  // namespace
}  // namespace maxrs
