#include "io/io_stats.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "io/buffer_pool.h"
#include "io/env.h"

namespace maxrs {
namespace {

TEST(IoStatsTest, CountersAccumulateAndReset) {
  IoStats stats;
  EXPECT_EQ(stats.Snapshot().blocks_read, 0u);
  EXPECT_EQ(stats.Snapshot().blocks_written, 0u);

  stats.RecordRead(3);
  stats.RecordWrite(2);
  stats.RecordRead(1);
  EXPECT_EQ(stats.Snapshot().blocks_read, 4u);
  EXPECT_EQ(stats.Snapshot().blocks_written, 2u);
  EXPECT_EQ(stats.Snapshot().total(), 6u);

  stats.Reset();
  EXPECT_EQ(stats.Snapshot().total(), 0u);
}

TEST(IoStatsTest, SnapshotDifferenceIsolatesAPhase) {
  IoStats stats;
  stats.RecordRead(10);
  stats.RecordWrite(5);
  const IoStatsSnapshot before = stats.Snapshot();

  stats.RecordRead(7);
  stats.RecordWrite(1);
  const IoStatsSnapshot delta = stats.Snapshot() - before;
  EXPECT_EQ(delta.blocks_read, 7u);
  EXPECT_EQ(delta.blocks_written, 1u);
  EXPECT_EQ(delta.total(), 8u);
}

TEST(IoStatsTest, RetryCountersAreSeparateFromTransferCounters) {
  IoStats stats;
  // A retried read reaching the base Env counts once in blocks_read AND
  // once in reads_retried — the retry counters say how many transfers were
  // repeat attempts, they never replace the transfer count.
  stats.RecordRead(2);
  stats.RecordReadRetry(1);
  stats.RecordWrite(3);
  stats.RecordWriteRetry(2);
  const IoStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.blocks_read, 2u);
  EXPECT_EQ(snap.reads_retried, 1u);
  EXPECT_EQ(snap.blocks_written, 3u);
  EXPECT_EQ(snap.writes_retried, 2u);
  EXPECT_EQ(snap.total(), 5u);  // retries are not extra "blocks"

  const IoStatsSnapshot delta = stats.Snapshot() - snap;
  EXPECT_EQ(delta.reads_retried, 0u);
  EXPECT_EQ(delta.writes_retried, 0u);

  stats.Reset();
  EXPECT_EQ(stats.Snapshot().reads_retried, 0u);
  EXPECT_EQ(stats.Snapshot().writes_retried, 0u);
}

TEST(IoStatsTest, SnapshotIsAPointInTimeCopy) {
  IoStats stats;
  stats.RecordRead(1);
  const IoStatsSnapshot snap = stats.Snapshot();
  stats.RecordRead(100);
  EXPECT_EQ(snap.blocks_read, 1u);  // unaffected by later traffic
}

class IoStatsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(4096);
    auto file_or = env_->Create("f");
    ASSERT_TRUE(file_or.ok());
    file_ = std::move(file_or).value();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockFile> file_;
};

TEST_F(IoStatsEnvTest, MemEnvCountsEveryBlockTransfer) {
  std::vector<char> buf(env_->block_size(), 'x');
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(file_->WriteBlock(b, buf.data()).ok());
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 8u);
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 0u);

  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(file_->ReadBlock(b, buf.data()).ok());
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 3u);
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 8u);
  EXPECT_EQ(env_->stats().Snapshot().total(), 11u);
}

TEST_F(IoStatsEnvTest, StatsAreSharedAcrossFilesOfOneEnv) {
  auto other_or = env_->Create("g");
  ASSERT_TRUE(other_or.ok());
  auto other = std::move(other_or).value();

  std::vector<char> buf(env_->block_size(), 'y');
  ASSERT_TRUE(file_->WriteBlock(0, buf.data()).ok());
  ASSERT_TRUE(other->WriteBlock(0, buf.data()).ok());
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 2u);
}

TEST_F(IoStatsEnvTest, BufferPoolHitsCostNoEnvIo) {
  std::vector<char> buf(env_->block_size());
  std::memset(buf.data(), 'a', buf.size());
  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(file_->WriteBlock(b, buf.data()).ok());
  }
  env_->stats().Reset();

  BufferPool pool(*env_, 4 * env_->block_size());
  // Cold fetches: one counted read each, one pool miss each.
  for (int b = 0; b < 4; ++b) {
    auto page = pool.Fetch(*file_, b);
    ASSERT_TRUE(page.ok());
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 4u);
  EXPECT_EQ(pool.pool_stats().misses, 4u);
  EXPECT_EQ(pool.pool_stats().hits, 0u);

  // Warm fetches: pool hits, zero additional Env traffic.
  for (int b = 0; b < 4; ++b) {
    auto page = pool.Fetch(*file_, b);
    ASSERT_TRUE(page.ok());
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 4u);
  EXPECT_EQ(pool.pool_stats().hits, 4u);
}

TEST_F(IoStatsEnvTest, BufferPoolMissAndWritebackAccounting) {
  std::vector<char> buf(env_->block_size(), 'b');
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(file_->WriteBlock(b, buf.data()).ok());
  }
  env_->stats().Reset();

  // Single-frame pool: every distinct fetch is a miss; dirty blocks are
  // written back exactly once on eviction.
  BufferPool pool(*env_, env_->block_size());
  for (int b = 0; b < 8; ++b) {
    auto page = pool.Fetch(*file_, b);
    ASSERT_TRUE(page.ok());
    page->data()[0] = 'c';
    page->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  const IoStatsSnapshot snap = env_->stats().Snapshot();
  EXPECT_EQ(snap.blocks_read, 8u);     // 8 misses
  EXPECT_EQ(snap.blocks_written, 8u);  // 7 evictions + final flush
  EXPECT_EQ(pool.pool_stats().misses, 8u);
  EXPECT_EQ(pool.pool_stats().writebacks, 8u);
}

}  // namespace
}  // namespace maxrs
