#include "baseline/baseline.h"

#include <gtest/gtest.h>

#include "baseline/asb_tree.h"
#include "core/brute_force.h"
#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "test_util.h"

namespace maxrs {
namespace {

struct BaselineCase {
  size_t n;
  uint64_t extent;
  double rect;
  bool weights;
};

class BaselineOracleTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineOracleTest, NaiveMatchesBruteForce) {
  const BaselineCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto env = NewMemEnv(512);
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed, c.weights);
    ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
    BaselineOptions options;
    options.rect_width = c.rect;
    options.rect_height = c.rect;
    options.memory_bytes = 1 << 12;  // force the external path
    auto got = RunNaivePlaneSweep(*env, "data", options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const BruteForceResult want = BruteForceMaxRS(objects, c.rect, c.rect);
    ASSERT_EQ(got->total_weight, want.total_weight) << "seed=" << seed;
    // The witness is a point of the transformed (center) space; its y sits on
    // the stratum's lower edge, so nudge strictly inside (integer-coordinate
    // data keeps all strata at least 0.5 tall).
    const Rect r = Rect::Centered(
        Point{got->location.x, got->location.y + 0.25}, c.rect, c.rect);
    EXPECT_EQ(CoveredWeight(objects, r), got->total_weight) << "seed=" << seed;
  }
}

TEST_P(BaselineOracleTest, ASBTreeMatchesBruteForce) {
  const BaselineCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto env = NewMemEnv(512);
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed, c.weights);
    ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
    BaselineOptions options;
    options.rect_width = c.rect;
    options.rect_height = c.rect;
    options.memory_bytes = 1 << 12;
    auto got = RunASBTreeSweep(*env, "data", options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const BruteForceResult want = BruteForceMaxRS(objects, c.rect, c.rect);
    ASSERT_EQ(got->total_weight, want.total_weight) << "seed=" << seed;
    // The witness (leaf-cell midpoint in x, stratum lower edge in y) must
    // realize the optimum after an interior nudge in y.
    const Rect r = Rect::Centered(
        Point{got->location.x, got->location.y + 0.25}, c.rect, c.rect);
    EXPECT_EQ(CoveredWeight(objects, r), got->total_weight) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BaselineOracleTest,
    ::testing::Values(BaselineCase{50, 40, 8, false},
                      BaselineCase{120, 100, 10, false},
                      BaselineCase{120, 100, 10, true},
                      BaselineCase{200, 60, 6, true},
                      BaselineCase{80, 2000, 150, false},
                      BaselineCase{150, 30, 4, false}));

TEST(BaselineAgreementTest, AllThreeAlgorithmsAgreeOnLargerData) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(3000, 2000, 5);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());

  MaxRSOptions exact_options;
  exact_options.rect_width = 50;
  exact_options.rect_height = 50;
  exact_options.memory_bytes = 1 << 14;
  auto exact = RunExactMaxRS(*env, "data", exact_options);
  ASSERT_TRUE(exact.ok());

  BaselineOptions options;
  options.rect_width = 50;
  options.rect_height = 50;
  options.memory_bytes = 1 << 14;
  auto naive = RunNaivePlaneSweep(*env, "data", options);
  ASSERT_TRUE(naive.ok());
  auto asb = RunASBTreeSweep(*env, "data", options);
  ASSERT_TRUE(asb.ok());

  EXPECT_EQ(naive->total_weight, exact->total_weight);
  EXPECT_EQ(asb->total_weight, exact->total_weight);
}

TEST(BaselineIoTest, ExactIsFarCheaperThanBaselines) {
  // The paper's headline: ExactMaxRS is orders of magnitude cheaper in I/O
  // than the adapted plane-sweep methods once data exceeds memory.
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(5000, 20000, 7);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());

  MaxRSOptions exact_options;
  exact_options.rect_width = 2000;
  exact_options.rect_height = 2000;
  exact_options.memory_bytes = 1 << 13;
  auto exact = RunExactMaxRS(*env, "data", exact_options);
  ASSERT_TRUE(exact.ok());

  BaselineOptions options;
  options.rect_width = 2000;
  options.rect_height = 2000;
  options.memory_bytes = 1 << 13;
  auto naive = RunNaivePlaneSweep(*env, "data", options);
  ASSERT_TRUE(naive.ok());
  auto asb = RunASBTreeSweep(*env, "data", options);
  ASSERT_TRUE(asb.ok());

  EXPECT_EQ(naive->total_weight, exact->total_weight);
  EXPECT_EQ(asb->total_weight, exact->total_weight);
  EXPECT_GT(naive->io.total(), 10 * exact->stats.io.total());
  EXPECT_GT(asb->io.total(), 2 * exact->stats.io.total());
}

TEST(BaselineShortcutTest, NaiveLoadsDatasetWhenItFits) {
  // Fig. 15(a): once the dataset fits in the buffer, the naive sweep does
  // one linear scan and nothing else.
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(1000, 5000, 3);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  BaselineOptions options;
  options.rect_width = 100;
  options.rect_height = 100;
  options.memory_bytes = 1 << 20;  // dataset (24KB) fits easily
  env->stats().Reset();
  auto got = RunNaivePlaneSweep(*env, "data", options);
  ASSERT_TRUE(got.ok());
  const uint64_t data_blocks = (1000 * sizeof(SpatialObject)) / 512 + 2;
  EXPECT_LE(got->io.total(), data_blocks + 2);
  // And it is still correct.
  const BruteForceResult want = BruteForceMaxRS(objects, 100, 100);
  EXPECT_EQ(got->total_weight, want.total_weight);
}

TEST(BaselineBufferTest, ASBTreeIoShrinksWithLargerBuffer) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(4000, 30000, 13);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  BaselineOptions small;
  small.rect_width = small.rect_height = 300;
  small.memory_bytes = 1 << 12;
  BaselineOptions large = small;
  large.memory_bytes = 1 << 18;
  auto io_small = RunASBTreeSweep(*env, "data", small);
  ASSERT_TRUE(io_small.ok());
  auto io_large = RunASBTreeSweep(*env, "data", large);
  ASSERT_TRUE(io_large.ok());
  EXPECT_LT(io_large->io.total(), io_small->io.total());
  EXPECT_EQ(io_large->total_weight, io_small->total_weight);
}

TEST(BaselineRangeTest, NaiveIoGrowsWithRangeSize) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(3000, 20000, 21);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  BaselineOptions narrow;
  narrow.rect_width = narrow.rect_height = 100;
  narrow.memory_bytes = 1 << 12;
  BaselineOptions wide = narrow;
  wide.rect_width = wide.rect_height = 2000;
  auto io_narrow = RunNaivePlaneSweep(*env, "data", narrow);
  ASSERT_TRUE(io_narrow.ok());
  auto io_wide = RunNaivePlaneSweep(*env, "data", wide);
  ASSERT_TRUE(io_wide.ok());
  EXPECT_GT(io_wide->io.total(), io_narrow->io.total());
}

TEST(ExternalAggTreeTest, EmptyTreeBehaves) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(
      WriteRecordFile(*env, "edges", std::vector<EdgeRecord>{{5.0}, {5.0}}).ok());
  auto reader = RecordReader<EdgeRecord>::Make(*env, "edges");
  ASSERT_TRUE(reader.ok());
  auto tree = ExternalAggTree::Build(*env, "tree", *reader);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->empty());
  BufferPool pool(*env, 1 << 12);
  EXPECT_TRUE(tree->RangeAdd(pool, 0, 10, 1.0).ok());
  auto max = tree->MaxValue(pool);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, 0.0);
}

TEST(ExternalAggTreeTest, MultiLevelTreeMatchesReference) {
  // Enough distinct coordinates to force >= 2 levels with 512B blocks
  // (leaf fanout = (512-24)/16 = 30).
  auto env = NewMemEnv(512);
  const size_t num_coords = 500;
  std::vector<EdgeRecord> edges;
  for (size_t i = 0; i < num_coords; ++i) {
    edges.push_back({static_cast<double>(i * 3)});
  }
  ASSERT_TRUE(WriteRecordFile(*env, "edges", edges).ok());
  auto reader = RecordReader<EdgeRecord>::Make(*env, "edges");
  ASSERT_TRUE(reader.ok());
  auto tree = ExternalAggTree::Build(*env, "tree", *reader);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->height(), 2u);

  BufferPool pool(*env, 1 << 13);
  std::vector<double> reference(num_coords - 1, 0.0);
  Rng rng(99);
  for (int step = 0; step < 300; ++step) {
    size_t a = rng.UniformU64(num_coords - 1);
    size_t b = a + 1 + rng.UniformU64(num_coords - 1 - a);
    const double w = static_cast<double>(1 + rng.UniformU64(4)) *
                     (rng.NextDouble() < 0.3 ? -1.0 : 1.0);
    ASSERT_TRUE(tree->RangeAdd(pool, a * 3.0, b * 3.0, w).ok());
    for (size_t i = a; i < b; ++i) reference[i] += w;
    auto got = tree->MaxValue(pool);
    ASSERT_TRUE(got.ok());
    const double want = *std::max_element(reference.begin(), reference.end());
    ASSERT_EQ(*got, want) << "step " << step;
  }
}

}  // namespace
}  // namespace maxrs
