// Network front-end tests: the wire grammar (parse/format round-trips),
// protocol errors (malformed commands answer ERR invalid without touching
// the Env; oversized/binary frames close the connection cleanly), STATS
// round-tripping the server's counters, bit-identical answers over TCP vs
// in-process Submit under concurrent clients, and graceful drain on
// Shutdown with connections still open.
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "net/net_server.h"
#include "net/query_protocol.h"
#include "net/socket.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";

// Shared setup mirroring serve_test: a fixed-seed dataset in a MemEnv,
// small enough that every suite in this file runs in well under a second.
std::unique_ptr<Env> MakeEnvWithDataset(size_t n = 800) {
  auto env = NewMemEnv(4096);
  std::vector<SpatialObject> objects =
      testing::RandomIntObjects(n, /*extent=*/1000, /*seed=*/7,
                                /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  return env;
}

DatasetHandleOptions IngestOptions(size_t shards) {
  DatasetHandleOptions options;
  options.shard_count = shards;
  options.memory_bytes = 64 * 1024;
  return options;
}

MaxRSServerOptions ServerOptions(size_t workers) {
  MaxRSServerOptions options;
  options.num_workers = workers;
  options.memory_bytes = 64 * 1024;
  return options;
}

// A blocking line-protocol client: sends commands, reads '\n'-framed
// responses (carrying partial reads across calls).
class LineClient {
 public:
  explicit LineClient(uint16_t port) {
    auto sock = ConnectLoopback(port);
    EXPECT_TRUE(sock.ok()) << sock.status().ToString();
    if (sock.ok()) sock_ = std::move(sock).value();
  }

  bool Send(const std::string& data) { return SendAll(sock_, data).ok(); }

  // One response frame without its newline; empty string = EOF/error.
  std::string ReadFrame() {
    while (true) {
      const std::string::size_type nl = carry_.find('\n');
      if (nl != std::string::npos) {
        std::string line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return line;
      }
      char chunk[512];
      auto n = RecvSome(sock_, chunk, sizeof(chunk));
      if (!n.ok() || n.value() == 0) return std::string();
      carry_.append(chunk, n.value());
    }
  }

  // True iff the server closed the connection (EOF with nothing buffered).
  bool AtEof() {
    if (!carry_.empty()) return false;
    char chunk[64];
    auto n = RecvSome(sock_, chunk, sizeof(chunk));
    return n.ok() && n.value() == 0;
  }

  Socket& socket() { return sock_; }

 private:
  Socket sock_;
  std::string carry_;
};

// --- Wire grammar (pure parse/format; no server involved) ---

TEST(QueryProtocolTest, ParsesMaxRSWithOverrides) {
  auto cmd = ParseCommand(
      "MAXRS 120.5 80 deadline_ms=250 pruning=off routing=materialized");
  ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
  EXPECT_EQ(cmd->type, CommandType::kMaxRS);
  EXPECT_EQ(cmd->spec.width, 120.5);
  EXPECT_EQ(cmd->spec.height, 80.0);
  ASSERT_TRUE(cmd->spec.deadline_ms.has_value());
  EXPECT_EQ(*cmd->spec.deadline_ms, 250);
  ASSERT_TRUE(cmd->spec.pruning.has_value());
  EXPECT_EQ(*cmd->spec.pruning, ServePruningMode::kOff);
  ASSERT_TRUE(cmd->spec.routing.has_value());
  EXPECT_EQ(*cmd->spec.routing, ServeRoutingMode::kMaterialized);
}

TEST(QueryProtocolTest, BareMaxRSLeavesOverridesUnset) {
  auto cmd = ParseCommand("MAXRS 10 20");
  ASSERT_TRUE(cmd.ok());
  EXPECT_FALSE(cmd->spec.deadline_ms.has_value());
  EXPECT_FALSE(cmd->spec.pruning.has_value());
  EXPECT_FALSE(cmd->spec.routing.has_value());
}

TEST(QueryProtocolTest, ToleratesTrailingCarriageReturn) {
  EXPECT_TRUE(ParseCommand("PING\r").ok());
  EXPECT_TRUE(ParseCommand("MAXRS 10 20\r").ok());
}

TEST(QueryProtocolTest, RejectsMalformedCommands) {
  const char* bad[] = {
      "",                             // empty line
      "FOO 1 2",                      // unknown verb
      "MAXRS",                        // missing dimensions
      "MAXRS 10",                     // missing height
      "MAXRS ten 20",                 // non-numeric width
      "MAXRS 10 20x",                 // trailing garbage in a number
      "MAXRS 10 20 30",               // stray positional argument
      "MAXRS 10 20 deadline_ms=-5",   // negative deadline
      "MAXRS 10 20 deadline_ms=abc",  // non-integer deadline
      "MAXRS 10 20 pruning=maybe",    // unknown enum value
      "MAXRS 10 20 routing=magic",    // unknown enum value
      "MAXRS 10 20 color=red",        // unknown option key
      "PING now",                     // arity violation
      "STATS please",                 // arity violation
  };
  for (const char* line : bad) {
    auto cmd = ParseCommand(line);
    EXPECT_FALSE(cmd.ok()) << "accepted: '" << line << "'";
    EXPECT_EQ(cmd.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(QueryProtocolTest, ResponseDoublesRoundTripExactly) {
  QueryResponse response;
  response.result.location = {1.0 / 3.0, 123456.789012345678};
  response.result.total_weight = 0.1 + 0.2;  // famously inexact
  response.served_from = ServedFrom::kExecuted;
  response.batch_size = 3;
  const std::string frame = FormatResponse(response);
  ASSERT_EQ(frame.rfind("OK ", 0), 0u);
  double x = 0, y = 0, w = 0;
  char served[16];
  unsigned long long batch = 0;
  ASSERT_EQ(std::sscanf(frame.c_str(), "OK %lf %lf %lf %15s %llu", &x, &y, &w,
                        served, &batch),
            5);
  EXPECT_EQ(x, response.result.location.x);  // bit-identical, not approximate
  EXPECT_EQ(y, response.result.location.y);
  EXPECT_EQ(w, response.result.total_weight);
  EXPECT_STREQ(served, "executed");
  EXPECT_EQ(batch, 3u);
}

TEST(QueryProtocolTest, ErrorFramesAreOneLine) {
  const std::string frame =
      FormatError(Status::InvalidArgument("first\nsecond"));
  EXPECT_EQ(frame.rfind("ERR invalid ", 0), 0u);
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);  // only the terminator
  EXPECT_EQ(FormatError(Status::Unavailable("q full")).rfind("ERR unavailable", 0),
            0u);
  EXPECT_EQ(FormatError(Status::DeadlineExceeded("late")).rfind("ERR deadline", 0),
            0u);
  EXPECT_EQ(FormatError(Status::NotSupported("down")).rfind("ERR shutdown", 0),
            0u);
}

TEST(QueryProtocolTest, StatsRoundTripIgnoringUnknownKeys) {
  ServerCounters counters;
  counters.submitted = 42;
  counters.cache_hits = 7;
  counters.dedup_hits = 3;
  counters.executed = 32;
  counters.shed = 5;
  counters.batches = 4;
  counters.batched_queries = 9;
  IoStatsSnapshot io{};
  io.blocks_read = 1234;
  io.blocks_written = 567;
  io.scans_shared = 8;
  std::string frame = FormatStats(counters, io);
  frame.insert(frame.size() - 1, " future_key=99");  // forward compat
  ServerCounters parsed_counters;
  IoStatsSnapshot parsed_io{};
  ASSERT_TRUE(ParseStats(frame, &parsed_counters, &parsed_io).ok());
  EXPECT_EQ(parsed_counters.submitted, counters.submitted);
  EXPECT_EQ(parsed_counters.cache_hits, counters.cache_hits);
  EXPECT_EQ(parsed_counters.dedup_hits, counters.dedup_hits);
  EXPECT_EQ(parsed_counters.executed, counters.executed);
  EXPECT_EQ(parsed_counters.shed, counters.shed);
  EXPECT_EQ(parsed_counters.batches, counters.batches);
  EXPECT_EQ(parsed_counters.batched_queries, counters.batched_queries);
  EXPECT_EQ(parsed_io.blocks_read, io.blocks_read);
  EXPECT_EQ(parsed_io.blocks_written, io.blocks_written);
  EXPECT_EQ(parsed_io.scans_shared, io.scans_shared);
  ServerCounters ignored;
  IoStatsSnapshot ignored_io{};
  EXPECT_FALSE(ParseStats("PONG", &ignored, &ignored_io).ok());
}

// --- The server over real sockets ---

TEST(NetServerTest, PingStatsQuitLifecycle) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  LineClient client(net.port());
  ASSERT_TRUE(client.Send("PING\n"));
  EXPECT_EQ(client.ReadFrame(), "PONG");
  ASSERT_TRUE(client.Send("STATS\n"));
  ServerCounters counters;
  IoStatsSnapshot io{};
  EXPECT_TRUE(ParseStats(client.ReadFrame(), &counters, &io).ok());
  EXPECT_EQ(counters.submitted, 0u);
  ASSERT_TRUE(client.Send("QUIT\n"));
  EXPECT_EQ(client.ReadFrame(), "BYE");
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(net.accepted(), 1u);
}

TEST(NetServerTest, ParseErrorsAnswerInvalidWithoutTouchingTheEnv) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  const IoStatsSnapshot before = env->stats().Snapshot();
  LineClient client(net.port());
  const char* bad[] = {"FOO\n", "MAXRS\n", "MAXRS ten 20\n",
                       "MAXRS 10 20 color=red\n"};
  for (const char* line : bad) {
    ASSERT_TRUE(client.Send(line));
    EXPECT_EQ(client.ReadFrame().rfind("ERR invalid", 0), 0u) << line;
  }
  // Spec-level rejection (negative width) also stays off the I/O path: the
  // ERR comes from ValidateSpec, not from an execution attempt.
  ASSERT_TRUE(client.Send("MAXRS -5 10\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR invalid", 0), 0u);
  // The connection survived every rejection.
  ASSERT_TRUE(client.Send("PING\n"));
  EXPECT_EQ(client.ReadFrame(), "PONG");

  const IoStatsSnapshot after = env->stats().Snapshot();
  EXPECT_EQ(after.total() - before.total(), 0u);
  EXPECT_EQ(server.counters().submitted, 0u);
}

TEST(NetServerTest, OversizedLineClosesConnectionCleanly) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));
  NetServerOptions options;
  options.max_line_bytes = 128;
  NetServer net(server, *env, options);
  ASSERT_TRUE(net.Start().ok());

  LineClient client(net.port());
  ASSERT_TRUE(client.Send(std::string(512, 'A')));  // no newline in sight
  EXPECT_EQ(client.ReadFrame().rfind("ERR invalid", 0), 0u);
  EXPECT_TRUE(client.AtEof());

  // Same for a completed line over the cap.
  LineClient second(net.port());
  ASSERT_TRUE(second.Send(std::string(256, 'B') + "\n"));
  EXPECT_EQ(second.ReadFrame().rfind("ERR invalid", 0), 0u);
  EXPECT_TRUE(second.AtEof());
}

TEST(NetServerTest, BinaryGarbageClosesConnectionCleanly) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  LineClient client(net.port());
  const std::string frame("MAXRS 10\0 20\n", 13);  // embedded NUL
  ASSERT_TRUE(client.Send(frame));
  EXPECT_EQ(client.ReadFrame().rfind("ERR invalid", 0), 0u);
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(server.counters().submitted, 0u);
}

TEST(NetServerTest, StatsReflectsServedTraffic) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  LineClient client(net.port());
  ASSERT_TRUE(client.Send("MAXRS 100 100\nMAXRS 100 100\nMAXRS 80 60\n"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.ReadFrame().rfind("OK ", 0), 0u);
  }
  ASSERT_TRUE(client.Send("STATS\n"));
  ServerCounters wire;
  IoStatsSnapshot wire_io{};
  ASSERT_TRUE(ParseStats(client.ReadFrame(), &wire, &wire_io).ok());

  const ServerCounters direct = server.counters();
  EXPECT_EQ(wire.submitted, direct.submitted);
  EXPECT_EQ(wire.executed, direct.executed);
  EXPECT_EQ(wire.cache_hits, direct.cache_hits);
  EXPECT_EQ(wire.dedup_hits, direct.dedup_hits);
  EXPECT_EQ(wire.submitted, 3u);
  // The repeat of (100,100) was a cache or dedup hit, never a third run.
  EXPECT_EQ(wire.executed, 2u);
  EXPECT_EQ(wire.cache_hits + wire.dedup_hits, 1u);
  EXPECT_EQ(wire_io.blocks_read, env->stats().Snapshot().blocks_read);
}

TEST(NetServerTest, ConcurrentClientsMatchInProcessSubmitBitExactly) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(4));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  const std::vector<std::pair<double, double>> rects = {
      {100, 100}, {60, 340}, {250, 40}, {85, 85}, {140, 220}};

  // The oracle: in-process answers through the canonical structured API.
  std::vector<MaxRSResult> expected;
  for (const auto& rect : rects) {
    QuerySpec spec;
    spec.width = rect.first;
    spec.height = rect.second;
    auto response = server.Submit(spec);
    ASSERT_TRUE(response.ok());
    expected.push_back(response->result);
  }

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<bool> passed(kClients, false);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client(net.port());
      bool all_ok = true;
      for (size_t i = 0; i < rects.size(); ++i) {
        char command[96];
        std::snprintf(command, sizeof(command), "MAXRS %.17g %.17g\n",
                      rects[i].first, rects[i].second);
        all_ok = all_ok && client.Send(command);
        const std::string frame = client.ReadFrame();
        double x = 0, y = 0, w = 0;
        all_ok = all_ok &&
                 std::sscanf(frame.c_str(), "OK %lf %lf %lf", &x, &y, &w) == 3;
        // %.17g on the wire: equality here is bit-equality, the same
        // contract every in-process equivalence suite pins.
        all_ok = all_ok && x == expected[i].location.x &&
                 y == expected[i].location.y && w == expected[i].total_weight;
      }
      passed[static_cast<size_t>(c)] = all_ok;
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(passed[static_cast<size_t>(c)]) << "client " << c;
  }
}

TEST(NetServerTest, PipeliningPreservesResponseOrder) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(4));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  // Distinct rects pipelined in one write; responses must come back in
  // command order even though the queries execute concurrently.
  const std::vector<std::pair<double, double>> rects = {
      {30, 470}, {470, 30}, {111, 111}, {222, 55}};
  std::vector<double> expected_weight;
  for (const auto& rect : rects) {
    QuerySpec spec;
    spec.width = rect.first;
    spec.height = rect.second;
    auto response = server.Submit(spec);
    ASSERT_TRUE(response.ok());
    expected_weight.push_back(response->result.total_weight);
  }

  LineClient client(net.port());
  std::string burst;
  for (const auto& rect : rects) {
    char command[96];
    std::snprintf(command, sizeof(command), "MAXRS %.17g %.17g\n", rect.first,
                  rect.second);
    burst += command;
  }
  burst += "PING\n";
  ASSERT_TRUE(client.Send(burst));
  for (size_t i = 0; i < rects.size(); ++i) {
    double x = 0, y = 0, w = 0;
    const std::string frame = client.ReadFrame();
    ASSERT_EQ(std::sscanf(frame.c_str(), "OK %lf %lf %lf", &x, &y, &w), 3);
    EXPECT_EQ(w, expected_weight[i]) << "response " << i << " out of order";
  }
  EXPECT_EQ(client.ReadFrame(), "PONG");  // and the trailer stayed last
}

TEST(NetServerTest, ShutdownWithOpenConnectionsDrainsWithoutHanging) {
  auto env = MakeEnvWithDataset();
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));
  NetServer net(server, *env, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  // Three connections left open on purpose — no QUIT, no EOF.
  LineClient a(net.port());
  LineClient b(net.port());
  LineClient c(net.port());
  ASSERT_TRUE(a.Send("MAXRS 90 90\n"));
  ASSERT_TRUE(b.Send("MAXRS 45 180\n"));
  EXPECT_EQ(a.ReadFrame().rfind("OK ", 0), 0u);
  EXPECT_EQ(b.ReadFrame().rfind("OK ", 0), 0u);

  net.Shutdown();  // the test would time out if this wedged
  EXPECT_EQ(net.active_connections(), 0u);
  EXPECT_TRUE(a.AtEof());
  EXPECT_TRUE(b.AtEof());
  EXPECT_TRUE(c.AtEof());
  // Shutdown is idempotent.
  net.Shutdown();
}

}  // namespace
}  // namespace maxrs
