#include "io/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "io/env.h"
#include "util/rng.h"

namespace maxrs {
namespace {

struct KeyRec {
  uint64_t key;
  uint64_t payload;
};

bool KeyLess(const KeyRec& a, const KeyRec& b) { return a.key < b.key; }

// Total order: the comparator shape ExternalSort's determinism contract
// asks callers to provide (run formation is an unstable std::sort).
bool KeyPayloadLess(const KeyRec& a, const KeyRec& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.payload < b.payload;
}

std::vector<KeyRec> RandomRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyRec> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) records.push_back({rng.NextU64() % 1000, i});
  return records;
}

class ExternalSortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExternalSortTest, SortsPermutationAtVariousMemoryBudgets) {
  const size_t memory = GetParam();
  auto env = NewMemEnv(512);  // small blocks force multi-block files
  auto records = RandomRecords(5000, 7);
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());

  sort_internal::SortRunInfo info;
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess,
                                   ExternalSortOptions{memory}, &info)
                  .ok());

  auto out = ReadRecordFile<KeyRec>(*env, "out");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), records.size());
  // Sorted by key.
  EXPECT_TRUE(std::is_sorted(out->begin(), out->end(), KeyLess));
  // Same multiset of (key, payload): ExternalSort is not stable, so compare
  // under the total order, where the sorted sequence is unique.
  auto expected = records;
  std::sort(expected.begin(), expected.end(), KeyPayloadLess);
  auto got = *out;
  std::sort(got.begin(), got.end(), KeyPayloadLess);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].key, expected[i].key) << "at " << i;
    EXPECT_EQ(got[i].payload, expected[i].payload) << "at " << i;
  }
}

TEST_P(ExternalSortTest, TotalOrderComparatorYieldsCanonicalOutput) {
  // With a total-order comparator the output is one canonical sequence —
  // equal to std::sort of the whole input — at any memory budget (i.e. any
  // run/merge structure) and any thread count.
  const size_t memory = GetParam();
  auto records = RandomRecords(5000, 7);
  auto expected = records;
  std::sort(expected.begin(), expected.end(), KeyPayloadLess);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto env = NewMemEnv(512);
    ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
    ThreadPool pool(threads);
    ExternalSortOptions options{memory, threads > 1 ? &pool : nullptr};
    ASSERT_TRUE(
        ExternalSort<KeyRec>(*env, "in", "out", KeyPayloadLess, options).ok());
    auto out = ReadRecordFile<KeyRec>(*env, "out");
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ((*out)[i].key, expected[i].key) << "threads=" << threads;
      ASSERT_EQ((*out)[i].payload, expected[i].payload) << "threads=" << threads;
    }
  }
}

TEST(ExternalSortReadAheadTest, ReadAheadMatchesSynchronousSortExactly) {
  // The async prefetch layer reschedules fetches, never the work: with
  // read_ahead on, the sorted output, the run/pass structure, and the
  // block transfers are all bit-identical to the synchronous sort — at a
  // multi-pass budget so run formation, every merge pass, and the fan-in
  // readers all go through PrefetchingReader.
  auto records = RandomRecords(4000, 23);

  sort_internal::SortRunInfo sync_info, ra_info;
  auto sync_env = NewMemEnv(512);
  ASSERT_TRUE(WriteRecordFile(*sync_env, "in", records).ok());
  ASSERT_TRUE(ExternalSort<KeyRec>(*sync_env, "in", "out", KeyPayloadLess,
                                   ExternalSortOptions{1 << 10}, &sync_info)
                  .ok());

  auto ra_env = NewMemEnv(512);
  ASSERT_TRUE(WriteRecordFile(*ra_env, "in", records).ok());
  ExternalSortOptions ra_options{1 << 10};
  ra_options.read_ahead = true;
  ASSERT_TRUE(ExternalSort<KeyRec>(*ra_env, "in", "out", KeyPayloadLess,
                                   ra_options, &ra_info)
                  .ok());

  EXPECT_EQ(ra_info.initial_runs, sync_info.initial_runs);
  EXPECT_EQ(ra_info.merge_passes, sync_info.merge_passes);
  EXPECT_EQ(ra_env->stats().Snapshot().blocks_read,
            sync_env->stats().Snapshot().blocks_read);
  EXPECT_EQ(ra_env->stats().Snapshot().blocks_written,
            sync_env->stats().Snapshot().blocks_written);

  auto sync_out = ReadRecordFile<KeyRec>(*sync_env, "out");
  auto ra_out = ReadRecordFile<KeyRec>(*ra_env, "out");
  ASSERT_TRUE(sync_out.ok());
  ASSERT_TRUE(ra_out.ok());
  ASSERT_EQ(sync_out->size(), ra_out->size());
  for (size_t i = 0; i < sync_out->size(); ++i) {
    ASSERT_EQ((*sync_out)[i].key, (*ra_out)[i].key) << i;
    ASSERT_EQ((*sync_out)[i].payload, (*ra_out)[i].payload) << i;
  }
}

TEST(ExternalSortParallelTest, PoolMatchesSerialRunAndPassCounts) {
  // The pool reschedules the sort; it must not change the run/pass structure
  // or the I/O. 1KB memory over 4000 records forces multi-pass merging.
  auto records = RandomRecords(4000, 11);

  sort_internal::SortRunInfo serial_info, pooled_info;
  auto serial_env = NewMemEnv(512);
  ASSERT_TRUE(WriteRecordFile(*serial_env, "in", records).ok());
  ASSERT_TRUE(ExternalSort<KeyRec>(*serial_env, "in", "out", KeyPayloadLess,
                                   ExternalSortOptions{1 << 10}, &serial_info)
                  .ok());

  auto pooled_env = NewMemEnv(512);
  ASSERT_TRUE(WriteRecordFile(*pooled_env, "in", records).ok());
  ThreadPool pool(4);
  ASSERT_TRUE(ExternalSort<KeyRec>(*pooled_env, "in", "out", KeyPayloadLess,
                                   ExternalSortOptions{1 << 10, &pool},
                                   &pooled_info)
                  .ok());

  EXPECT_EQ(pooled_info.initial_runs, serial_info.initial_runs);
  EXPECT_EQ(pooled_info.merge_passes, serial_info.merge_passes);
  EXPECT_EQ(pooled_env->stats().Snapshot().blocks_read,
            serial_env->stats().Snapshot().blocks_read);
  EXPECT_EQ(pooled_env->stats().Snapshot().blocks_written,
            serial_env->stats().Snapshot().blocks_written);

  auto serial_out = ReadRecordFile<KeyRec>(*serial_env, "out");
  auto pooled_out = ReadRecordFile<KeyRec>(*pooled_env, "out");
  ASSERT_TRUE(serial_out.ok());
  ASSERT_TRUE(pooled_out.ok());
  ASSERT_EQ(serial_out->size(), pooled_out->size());
  for (size_t i = 0; i < serial_out->size(); ++i) {
    ASSERT_EQ((*serial_out)[i].key, (*pooled_out)[i].key);
    ASSERT_EQ((*serial_out)[i].payload, (*pooled_out)[i].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(MemoryBudgets, ExternalSortTest,
                         ::testing::Values(1 << 10, 1 << 12, 1 << 14, 1 << 20));

TEST(ExternalSortBasicTest, EmptyInput) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteRecordFile(*env, "in", std::vector<KeyRec>{}).ok());
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess).ok());
  auto out = ReadRecordFile<KeyRec>(*env, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ExternalSortBasicTest, SingleRun) {
  auto env = NewMemEnv(512);
  auto records = RandomRecords(10, 3);
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
  sort_internal::SortRunInfo info;
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess,
                                   ExternalSortOptions{1 << 20}, &info)
                  .ok());
  EXPECT_EQ(info.initial_runs, 1u);
  EXPECT_EQ(info.merge_passes, 0u);
  auto out = ReadRecordFile<KeyRec>(*env, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::is_sorted(out->begin(), out->end(), KeyLess));
}

TEST(ExternalSortBasicTest, MultiPassMergeHappensUnderTinyMemory) {
  auto env = NewMemEnv(512);
  auto records = RandomRecords(4000, 11);
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
  sort_internal::SortRunInfo info;
  // 1KB memory, 512B blocks: fan-in 2, run of 64 records -> several passes.
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess,
                                   ExternalSortOptions{1 << 10}, &info)
                  .ok());
  EXPECT_GT(info.initial_runs, 1u);
  EXPECT_GT(info.merge_passes, 1u);
  auto out = ReadRecordFile<KeyRec>(*env, "out");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), records.size());
  EXPECT_TRUE(std::is_sorted(out->begin(), out->end(), KeyLess));
}

TEST(ExternalSortBasicTest, LeavesInputIntact) {
  auto env = NewMemEnv(512);
  auto records = RandomRecords(100, 5);
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess).ok());
  auto in_again = ReadRecordFile<KeyRec>(*env, "in");
  ASSERT_TRUE(in_again.ok());
  ASSERT_EQ(in_again->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*in_again)[i].payload, records[i].payload);
  }
}

TEST(ExternalSortBasicTest, CleansUpTempFiles) {
  auto env = NewMemEnv(512);
  auto records = RandomRecords(2000, 13);
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess,
                                   ExternalSortOptions{1 << 10})
                  .ok());
  for (const std::string& name : env->ListFiles()) {
    EXPECT_TRUE(name == "in" || name == "out") << "leftover: " << name;
  }
}

TEST(ExternalSortComplexityTest, IoWithinSortBound) {
  // Measured I/O should be O((N/B) log_{M/B}(N/B)) with a small constant.
  auto env = NewMemEnv(512);
  auto records = RandomRecords(20000, 17);  // 20000*16B = 625 blocks
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
  const size_t memory = 8 << 10;  // 16 blocks
  const IoStatsSnapshot before = env->stats().Snapshot();
  ASSERT_TRUE(ExternalSort<KeyRec>(*env, "in", "out", KeyLess,
                                   ExternalSortOptions{memory})
                  .ok());
  const IoStatsSnapshot after = env->stats().Snapshot();
  const double n_blocks = 20000.0 * sizeof(KeyRec) / 512.0;
  const double fan = memory / 512.0;
  const double levels =
      1.0 + std::ceil(std::log(n_blocks / fan) / std::log(fan - 1));
  // Each level reads and writes the data once; allow 3x slack for headers
  // and partial blocks.
  EXPECT_LT(static_cast<double>(after.total() - before.total()),
            3.0 * 2.0 * n_blocks * (levels + 1));
}

}  // namespace
}  // namespace maxrs
