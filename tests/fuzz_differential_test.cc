// Differential fuzzing: many randomized configurations, each checking that
// every implementation of the same problem agrees. Configurations are
// generated deterministically from the fuzz index so failures reproduce.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "baseline/baseline.h"
#include "core/brute_force.h"
#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"
#include "util/rng.h"

namespace maxrs {
namespace {

struct FuzzConfig {
  size_t n;
  uint64_t extent;
  double rect_w;
  double rect_h;
  bool weights;
  size_t memory_bytes;
  size_t fanout;
  uint64_t base_max;
  uint64_t data_seed;
};

FuzzConfig MakeConfig(uint64_t index) {
  Rng rng(0xF0220000 + index);
  FuzzConfig c;
  c.n = 20 + rng.UniformU64(280);
  c.extent = 8 + rng.UniformU64(400);
  // Rect sizes: even integers, occasionally huge relative to the domain.
  c.rect_w = 2.0 * static_cast<double>(1 + rng.UniformU64(
                       std::max<uint64_t>(2, c.extent / 3)));
  c.rect_h = 2.0 * static_cast<double>(1 + rng.UniformU64(
                       std::max<uint64_t>(2, c.extent / 3)));
  c.weights = rng.NextDouble() < 0.5;
  c.memory_bytes = (4 + rng.UniformU64(28)) << 10;
  c.fanout = 2 + rng.UniformU64(7);
  c.base_max = 4 + rng.UniformU64(60);
  c.data_seed = rng.NextU64();
  return c;
}

// Runs every implementation on `objects` and asserts they agree with the
// brute-force oracle. `tag` names the failing configuration in diagnostics.
void CheckAllImplementationsAgree(const std::vector<SpatialObject>& objects,
                                  const FuzzConfig& c, const std::string& tag) {
  // Ground truth.
  const BruteForceResult oracle = BruteForceMaxRS(objects, c.rect_w, c.rect_h);

  // In-memory sweep.
  const MaxRSResult mem = ExactMaxRSInMemory(objects, c.rect_w, c.rect_h);
  ASSERT_EQ(mem.total_weight, oracle.total_weight)
      << "in-memory sweep diverged, config " << tag;

  // External pipeline under the fuzzed memory/fan-out knobs.
  auto env = NewMemEnv(512);
  MaxRSOptions options;
  options.rect_width = c.rect_w;
  options.rect_height = c.rect_h;
  options.memory_bytes = c.memory_bytes;
  options.fanout = c.fanout;
  options.base_case_max_pieces = c.base_max;
  auto external = RunExactMaxRS(*env, objects, options);
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  ASSERT_EQ(external->total_weight, oracle.total_weight)
      << "external pipeline diverged, config " << tag
      << " (n=" << c.n << " extent=" << c.extent << " rect=" << c.rect_w << "x"
      << c.rect_h << " fanout=" << c.fanout << " base=" << c.base_max << ")";
  // Witness realizes the optimum.
  ASSERT_EQ(CoveredWeight(objects,
                          Rect::Centered(external->location, c.rect_w, c.rect_h)),
            oracle.total_weight)
      << "external witness wrong, config " << tag;

  // Streaming division: the same recursion fed through channels instead of
  // materialized part files, once with a cap small enough that every
  // division spills mid-stream and once with the pure in-memory hand-off.
  for (size_t cap : {size_t{256}, size_t{1} << 20}) {
    MaxRSOptions streaming = options;
    streaming.streaming_division = true;
    streaming.stream_channel_bytes = cap;
    auto streamed = RunExactMaxRS(*env, objects, streaming);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    ASSERT_EQ(streamed->total_weight, oracle.total_weight)
        << "streaming division diverged, config " << tag << " (cap " << cap
        << ")";
    ASSERT_EQ(streamed->location, external->location)
        << "streaming division witness moved, config " << tag << " (cap "
        << cap << ")";
  }

  // Baselines (cheap enough at fuzz sizes).
  ASSERT_TRUE(WriteDataset(*env, "fuzz_data", objects).ok());
  BaselineOptions baseline_options;
  baseline_options.rect_width = c.rect_w;
  baseline_options.rect_height = c.rect_h;
  baseline_options.memory_bytes = c.memory_bytes;
  auto naive = RunNaivePlaneSweep(*env, "fuzz_data", baseline_options);
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(naive->total_weight, oracle.total_weight)
      << "naive diverged, config " << tag;
  auto asb = RunASBTreeSweep(*env, "fuzz_data", baseline_options);
  ASSERT_TRUE(asb.ok());
  ASSERT_EQ(asb->total_weight, oracle.total_weight)
      << "aSB-tree diverged, config " << tag;

  // Prepared/sharded serve path: per-shard solve with a cross-shard
  // MergeSweep, under the same fuzzed memory/fan-out/base-case knobs as
  // the external pipeline — a completely different division tree (the
  // shards are the top-level cut), so agreement with the oracle is a
  // genuine differential. The shard count varies with the data seed and
  // is clamped by the ingest budget's stream-block cap.
  {
    DatasetHandleOptions ingest_options;
    ingest_options.shard_count = 1 + c.data_seed % 7;
    ingest_options.memory_bytes = c.memory_bytes;
    ingest_options.prefix = "fuzz_sharded";
    auto handle = DatasetHandle::Ingest(*env, "fuzz_data", ingest_options);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    // Five serve legs of the same per-shard solve: materialized part files,
    // streaming channels (the default), and streaming with a cap of zero so
    // every routed record takes the spill path — all with index pruning
    // active (kAuto, the default) — plus both routings with pruning forced
    // off, so pruned and un-pruned serving are fuzzed against the same
    // oracle on every configuration.
    struct ServeRouting {
      const char* name;
      ServeRoutingMode mode;
      size_t channel_bytes;
      ServePruningMode pruning;
    };
    const ServeRouting routings[] = {
        {"materialized", ServeRoutingMode::kMaterialized, 1 << 20,
         ServePruningMode::kAuto},
        {"streaming", ServeRoutingMode::kStreaming, 1 << 20,
         ServePruningMode::kAuto},
        {"streaming/spill", ServeRoutingMode::kStreaming, 0,
         ServePruningMode::kAuto},
        {"materialized/no-prune", ServeRoutingMode::kMaterialized, 1 << 20,
         ServePruningMode::kOff},
        {"streaming/no-prune", ServeRoutingMode::kStreaming, 1 << 20,
         ServePruningMode::kOff},
    };
    for (const ServeRouting& routing : routings) {
      MaxRSServerOptions server_options;
      server_options.memory_bytes = c.memory_bytes;
      server_options.fanout = c.fanout;
      server_options.base_case_max_pieces = c.base_max;
      server_options.solve_mode = ServeSolveMode::kPerShard;
      server_options.routing_mode = routing.mode;
      server_options.stream_channel_bytes = routing.channel_bytes;
      server_options.pruning_mode = routing.pruning;
      MaxRSServer server(*env, *handle, server_options);
      auto served = server.Submit(c.rect_w, c.rect_h);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ASSERT_EQ(served->total_weight, oracle.total_weight)
          << "sharded serve (" << routing.name << ") diverged, config " << tag
          << " (" << handle->shards().size() << " shards)";
      ASSERT_EQ(CoveredWeight(objects, Rect::Centered(served->location,
                                                      c.rect_w, c.rect_h)),
                oracle.total_weight)
          << "sharded serve (" << routing.name << ") witness wrong, config "
          << tag;
    }
    ASSERT_TRUE(handle->Drop().ok());
  }
}

class MaxRSFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxRSFuzzTest, AllImplementationsAgree) {
  const FuzzConfig c = MakeConfig(GetParam());
  auto objects = testing::RandomIntObjects(c.n, c.extent, c.data_seed, c.weights);
  CheckAllImplementationsAgree(objects, c,
                               "fuzz index " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Configs, MaxRSFuzzTest, ::testing::Range<uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// Fixed-seed regression corpus.
//
// Each entry pins one configuration forever, so a differential failure found
// by fuzzing (or by hand) reproduces deterministically from its seed alone.
// The corpus deliberately stresses the two classic sweep edge cases:
//   - duplicate coordinates: a tiny extent plus a re-appended prefix forces
//     many objects onto identical points (coincident interval endpoints);
//   - zero-weight objects: every third object contributes w = 0, which must
//     not perturb any implementation's optimum.
// ---------------------------------------------------------------------------

std::vector<SpatialObject> MakeRegressionObjects(uint64_t seed, size_t n,
                                                 uint64_t extent) {
  auto objects = testing::RandomIntObjects(n, extent, seed, /*random_weights=*/true);
  for (size_t i = 2; i < n; i += 3) objects[i].w = 0.0;
  // Duplicate the first quarter verbatim: exact coordinate collisions.
  objects.reserve(n + n / 4);
  for (size_t i = 0; i < n / 4; ++i) objects.push_back(objects[i]);
  return objects;
}

struct RegressionCase {
  uint64_t seed;
  size_t n;
  uint64_t extent;
  double rect_w;
  double rect_h;
  size_t fanout;
  uint64_t base_max;
};

class MaxRSRegressionTest : public ::testing::TestWithParam<RegressionCase> {};

TEST_P(MaxRSRegressionTest, CorpusReproducesDeterministically) {
  const RegressionCase rc = GetParam();
  const auto objects = MakeRegressionObjects(rc.seed, rc.n, rc.extent);

  FuzzConfig c;
  c.n = objects.size();
  c.extent = rc.extent;
  c.rect_w = rc.rect_w;
  c.rect_h = rc.rect_h;
  c.weights = true;
  c.memory_bytes = 8 << 10;
  c.fanout = rc.fanout;
  c.base_max = rc.base_max;
  c.data_seed = rc.seed;
  CheckAllImplementationsAgree(objects, c,
                               "regression seed " + std::to_string(rc.seed));

  // The corpus only has value if it actually exercises the edge cases:
  // assert the generated dataset contains duplicates and zero weights.
  size_t zero_weight = 0;
  std::map<std::pair<double, double>, size_t> at;
  for (const auto& o : objects) {
    if (o.w == 0.0) ++zero_weight;
    ++at[{o.x, o.y}];
  }
  size_t duplicated_points = 0;
  for (const auto& [point, count] : at) {
    (void)point;
    if (count > 1) ++duplicated_points;
  }
  EXPECT_GE(zero_weight, objects.size() / 4) << "seed " << rc.seed;
  EXPECT_GE(duplicated_points, 5u) << "seed " << rc.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MaxRSRegressionTest,
    ::testing::Values(
        // seed, n, extent, rect_w, rect_h, fanout, base_max
        RegressionCase{0xC0FFEE01, 120, 12, 4, 4, 2, 8},
        RegressionCase{0xC0FFEE02, 200, 16, 6, 2, 3, 16},
        RegressionCase{0xC0FFEE03, 80, 6, 2, 2, 5, 4},     // dense collisions
        RegressionCase{0xC0FFEE04, 256, 24, 10, 10, 2, 32},
        RegressionCase{0xC0FFEE05, 150, 10, 30, 30, 4, 8},  // rect covers all
        RegressionCase{0xC0FFEE06, 60, 4, 3, 5, 7, 6}));    // tiny domain

// ---------------------------------------------------------------------------
// Pruned-serving corpus.
//
// The generic fuzz data is near-uniform, so the aggregate-index bound
// rarely fires there (equal-count shards all look alike). This leg fuzzes
// the configurations pruning exists for: a heavy strip holds most of the
// mass and is wide in x relative to the rect, so slab-local tuples see it
// and whole background shards fall below the incumbent. Pruned (kAuto) and
// un-pruned (kOff) serving must agree bit-for-bit with the brute-force
// oracle on every draw, pruned I/O must never exceed un-pruned, and the
// sweep must actually prune somewhere or the corpus is vacuous.
// ---------------------------------------------------------------------------

TEST(MaxRSPrunedServeFuzzTest, PrunedAndUnprunedAgreeOnSkewedCorpus) {
  uint64_t total_pruned = 0;
  for (uint64_t index = 0; index < 8; ++index) {
    SCOPED_TRACE("pruned-serve index " + std::to_string(index));
    Rng rng(0xF0221000 + index);
    const size_t n = 600 + rng.UniformU64(600);
    const uint64_t extent = 4000 + rng.UniformU64(4000);
    const double rect_w = 2.0 * static_cast<double>(40 + rng.UniformU64(80));
    const double rect_h = 2.0 * static_cast<double>(40 + rng.UniformU64(80));
    const size_t shards = 8 + rng.UniformU64(17);

    // Heavy strip: two thirds of the points, weight 40, in the top third
    // of x and a rect-height band of y.
    auto objects = testing::RandomIntObjects(n, extent, rng.NextU64());
    const double strip_x = std::floor(2.0 * static_cast<double>(extent) / 3.0);
    for (size_t i = 0; i < objects.size(); ++i) {
      if (i % 3 == 0) continue;
      objects[i].x = strip_x + std::floor(objects[i].x / 3.0);
      objects[i].y = std::floor(objects[i].y / 4.0);
      objects[i].w = 40.0;
    }

    const BruteForceResult oracle = BruteForceMaxRS(objects, rect_w, rect_h);

    auto env = NewMemEnv(512);
    ASSERT_TRUE(WriteDataset(*env, "pruned_fuzz", objects).ok());
    DatasetHandleOptions ingest_options;
    ingest_options.shard_count = shards;
    ingest_options.memory_bytes = 32 << 10;
    ingest_options.prefix = "pruned_fuzz_ds";
    auto handle = DatasetHandle::Ingest(*env, "pruned_fuzz", ingest_options);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();

    for (ServeRoutingMode routing :
         {ServeRoutingMode::kStreaming, ServeRoutingMode::kMaterialized}) {
      uint64_t unpruned_io = 0;
      for (const ServePruningMode pruning :
           {ServePruningMode::kOff, ServePruningMode::kAuto}) {
        MaxRSServerOptions server_options;
        server_options.memory_bytes = 32 << 10;
        server_options.routing_mode = routing;
        server_options.pruning_mode = pruning;
        MaxRSServer server(*env, *handle, server_options);
        auto served = server.Submit(rect_w, rect_h);
        ASSERT_TRUE(served.ok()) << served.status().ToString();
        ASSERT_EQ(served->total_weight, oracle.total_weight)
            << (pruning == ServePruningMode::kAuto ? "pruned" : "un-pruned")
            << " serving diverged (" << handle->shards().size() << " shards)";
        ASSERT_EQ(
            CoveredWeight(objects,
                          Rect::Centered(served->location, rect_w, rect_h)),
            oracle.total_weight)
            << "serve witness wrong";
        if (pruning == ServePruningMode::kOff) {
          unpruned_io = served->stats.io.total();
        } else {
          EXPECT_LE(served->stats.io.total(), unpruned_io)
              << "pruning must never add block transfers";
          total_pruned += served->stats.io.shards_pruned;
        }
      }
    }
    ASSERT_TRUE(handle->Drop().ok());
  }
  EXPECT_GT(total_pruned, 0u)
      << "the skewed corpus never pruned a shard - the leg is vacuous";
}

}  // namespace
}  // namespace maxrs
