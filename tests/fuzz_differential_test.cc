// Differential fuzzing: many randomized configurations, each checking that
// every implementation of the same problem agrees. Configurations are
// generated deterministically from the fuzz index so failures reproduce.
#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/brute_force.h"
#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "test_util.h"
#include "util/rng.h"

namespace maxrs {
namespace {

struct FuzzConfig {
  size_t n;
  uint64_t extent;
  double rect_w;
  double rect_h;
  bool weights;
  size_t memory_bytes;
  size_t fanout;
  uint64_t base_max;
  uint64_t data_seed;
};

FuzzConfig MakeConfig(uint64_t index) {
  Rng rng(0xF0220000 + index);
  FuzzConfig c;
  c.n = 20 + rng.UniformU64(280);
  c.extent = 8 + rng.UniformU64(400);
  // Rect sizes: even integers, occasionally huge relative to the domain.
  c.rect_w = 2.0 * static_cast<double>(1 + rng.UniformU64(
                       std::max<uint64_t>(2, c.extent / 3)));
  c.rect_h = 2.0 * static_cast<double>(1 + rng.UniformU64(
                       std::max<uint64_t>(2, c.extent / 3)));
  c.weights = rng.NextDouble() < 0.5;
  c.memory_bytes = (4 + rng.UniformU64(28)) << 10;
  c.fanout = 2 + rng.UniformU64(7);
  c.base_max = 4 + rng.UniformU64(60);
  c.data_seed = rng.NextU64();
  return c;
}

class MaxRSFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxRSFuzzTest, AllImplementationsAgree) {
  const FuzzConfig c = MakeConfig(GetParam());
  auto objects = testing::RandomIntObjects(c.n, c.extent, c.data_seed, c.weights);

  // Ground truth.
  const BruteForceResult oracle = BruteForceMaxRS(objects, c.rect_w, c.rect_h);

  // In-memory sweep.
  const MaxRSResult mem = ExactMaxRSInMemory(objects, c.rect_w, c.rect_h);
  ASSERT_EQ(mem.total_weight, oracle.total_weight)
      << "in-memory sweep diverged, fuzz index " << GetParam();

  // External pipeline under the fuzzed memory/fan-out knobs.
  auto env = NewMemEnv(512);
  MaxRSOptions options;
  options.rect_width = c.rect_w;
  options.rect_height = c.rect_h;
  options.memory_bytes = c.memory_bytes;
  options.fanout = c.fanout;
  options.base_case_max_pieces = c.base_max;
  auto external = RunExactMaxRS(*env, objects, options);
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  ASSERT_EQ(external->total_weight, oracle.total_weight)
      << "external pipeline diverged, fuzz index " << GetParam()
      << " (n=" << c.n << " extent=" << c.extent << " rect=" << c.rect_w << "x"
      << c.rect_h << " fanout=" << c.fanout << " base=" << c.base_max << ")";
  // Witness realizes the optimum.
  ASSERT_EQ(CoveredWeight(objects,
                          Rect::Centered(external->location, c.rect_w, c.rect_h)),
            oracle.total_weight)
      << "external witness wrong, fuzz index " << GetParam();

  // Baselines (cheap enough at fuzz sizes).
  ASSERT_TRUE(WriteDataset(*env, "fuzz_data", objects).ok());
  BaselineOptions baseline_options;
  baseline_options.rect_width = c.rect_w;
  baseline_options.rect_height = c.rect_h;
  baseline_options.memory_bytes = c.memory_bytes;
  auto naive = RunNaivePlaneSweep(*env, "fuzz_data", baseline_options);
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(naive->total_weight, oracle.total_weight)
      << "naive diverged, fuzz index " << GetParam();
  auto asb = RunASBTreeSweep(*env, "fuzz_data", baseline_options);
  ASSERT_TRUE(asb.ok());
  ASSERT_EQ(asb->total_weight, oracle.total_weight)
      << "aSB-tree diverged, fuzz index " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Configs, MaxRSFuzzTest, ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace maxrs
