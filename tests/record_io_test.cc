#include "io/record_io.h"

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"

namespace maxrs {
namespace {

struct Rec {
  uint64_t id;
  double value;
};

TEST(RecordIoTest, RoundTrip) {
  auto env = NewMemEnv(4096);
  std::vector<Rec> records;
  for (uint64_t i = 0; i < 1000; ++i) records.push_back({i, i * 1.5});
  ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());

  auto back = ReadRecordFile<Rec>(*env, "f");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].id, records[i].id);
    EXPECT_EQ((*back)[i].value, records[i].value);
  }
}

TEST(RecordIoTest, EmptyFile) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteRecordFile(*env, "empty", std::vector<Rec>{}).ok());
  auto back = ReadRecordFile<Rec>(*env, "empty");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(RecordIoTest, PartialFinalBlock) {
  auto env = NewMemEnv(4096);
  // 4096/16 = 256 per block; 300 records -> one full block + 44 in the next.
  std::vector<Rec> records;
  for (uint64_t i = 0; i < 300; ++i) records.push_back({i, 0.0});
  ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());
  auto back = ReadRecordFile<Rec>(*env, "f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 300u);
  EXPECT_EQ(back->back().id, 299u);
}

TEST(RecordIoTest, ReaderReportsTotalsAndEnd) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteRecordFile(*env, "f", std::vector<Rec>{{1, 1}, {2, 2}}).ok());
  auto reader_or = RecordReader<Rec>::Make(*env, "f");
  ASSERT_TRUE(reader_or.ok());
  RecordReader<Rec> reader = std::move(reader_or).value();
  EXPECT_EQ(reader.total(), 2u);
  Rec r;
  EXPECT_TRUE(reader.Next(&r));
  EXPECT_EQ(reader.remaining(), 1u);
  EXPECT_TRUE(reader.Next(&r));
  EXPECT_FALSE(reader.Next(&r));
  EXPECT_EQ(reader.Read(&r).code(), Status::Code::kNotFound);
}

TEST(RecordIoTest, OpenMissingFileIsNotFound) {
  auto env = NewMemEnv(4096);
  auto reader_or = RecordReader<Rec>::Make(*env, "nope");
  EXPECT_FALSE(reader_or.ok());
  EXPECT_EQ(reader_or.status().code(), Status::Code::kNotFound);
}

TEST(RecordIoTest, RecordSizeMismatchIsCorruption) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteRecordFile(*env, "f", std::vector<Rec>{{1, 1}}).ok());
  struct Other {
    uint32_t x;
  };
  auto reader_or = RecordReader<Other>::Make(*env, "f");
  EXPECT_FALSE(reader_or.ok());
  EXPECT_EQ(reader_or.status().code(), Status::Code::kCorruption);
}

TEST(RecordIoTest, IoIsCountedPerBlock) {
  auto env = NewMemEnv(4096);
  std::vector<Rec> records(1024);  // 4 data blocks of 256
  for (uint64_t i = 0; i < records.size(); ++i) records[i] = {i, 0.0};

  const IoStatsSnapshot before = env->stats().Snapshot();
  ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());
  const IoStatsSnapshot after_write = env->stats().Snapshot();
  // 4 data blocks + header block reservation + final header write.
  EXPECT_EQ(after_write.blocks_written - before.blocks_written, 6u);
  EXPECT_EQ(after_write.blocks_read, before.blocks_read);

  auto back = ReadRecordFile<Rec>(*env, "f");
  ASSERT_TRUE(back.ok());
  const IoStatsSnapshot after_read = env->stats().Snapshot();
  // Header + 4 data blocks.
  EXPECT_EQ(after_read.blocks_read - after_write.blocks_read, 5u);
}

TEST(RecordIoTest, WriteBehindMatchesSynchronousContentAndBlockCounts) {
  // The deferred block schedule must be invisible at every quiescent point:
  // same bytes on disk, same counter deltas as the synchronous writer.
  auto env = NewMemEnv(4096);
  std::vector<Rec> records(1000);  // 3 full data blocks + a partial fourth
  for (uint64_t i = 0; i < records.size(); ++i) records[i] = {i, i * 0.25};

  IoStatsSnapshot before = env->stats().Snapshot();
  {
    auto writer_or = RecordWriter<Rec>::Make(*env, "sync");
    ASSERT_TRUE(writer_or.ok());
    for (const Rec& r : records) ASSERT_TRUE(writer_or->Append(r).ok());
    ASSERT_TRUE(writer_or->Finish().ok());
  }
  const IoStatsSnapshot sync_io = env->stats().Snapshot() - before;

  before = env->stats().Snapshot();
  {
    auto writer_or = RecordWriter<Rec>::Make(*env, "behind",
                                             /*write_behind=*/true);
    ASSERT_TRUE(writer_or.ok());
    for (const Rec& r : records) ASSERT_TRUE(writer_or->Append(r).ok());
    ASSERT_TRUE(writer_or->Finish().ok());
  }
  const IoStatsSnapshot behind_io = env->stats().Snapshot() - before;
  EXPECT_EQ(behind_io.blocks_written, sync_io.blocks_written);
  EXPECT_EQ(behind_io.blocks_read, sync_io.blocks_read);

  auto sync_back = ReadRecordFile<Rec>(*env, "sync");
  auto behind_back = ReadRecordFile<Rec>(*env, "behind");
  ASSERT_TRUE(sync_back.ok());
  ASSERT_TRUE(behind_back.ok());
  ASSERT_EQ(behind_back->size(), sync_back->size());
  for (size_t i = 0; i < sync_back->size(); ++i) {
    EXPECT_EQ((*behind_back)[i].id, (*sync_back)[i].id);
    EXPECT_EQ((*behind_back)[i].value, (*sync_back)[i].value);
  }
}

TEST(RecordIoTest, WriteBehindFaultSurfacesBeforeFinishSucceeds) {
  // A fault on a deferred flush parks in the in-flight slot and must
  // surface at the join — a later Append or, at the latest, Finish. It
  // must never be swallowed into a "successful" file.
  auto base = NewMemEnv(512);
  FaultEnv env(*base);
  auto writer_or = RecordWriter<Rec>::Make(env, "f", /*write_behind=*/true);
  ASSERT_TRUE(writer_or.ok());
  env.ArmAfter(2);  // header reservation is op 1; fault the first data flush
  Status st = Status::OK();
  for (uint64_t i = 0; i < 512 && st.ok(); ++i) st = writer_or->Append({i, 0});
  if (st.ok()) st = writer_or->Finish();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_EQ(env.faults_delivered(), 1u);
}

// Flips one bit of one stored block in place, via raw BlockFile access.
void FlipBit(Env& env, const std::string& name, uint64_t block, size_t bit) {
  auto file_or = env.Open(name);
  ASSERT_TRUE(file_or.ok());
  std::vector<char> buf((*file_or)->block_size());
  ASSERT_TRUE((*file_or)->ReadBlock(block, buf.data()).ok());
  buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  ASSERT_TRUE((*file_or)->WriteBlock(block, buf.data()).ok());
}

TEST(RecordIoChecksumTest, DataBlockBitFlipIsCorruption) {
  auto env = NewMemEnv(4096);
  std::vector<Rec> records(1000);
  for (uint64_t i = 0; i < records.size(); ++i) records[i] = {i, 1.0 * i};
  ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());

  FlipBit(*env, "f", /*block=*/2, /*bit=*/12345);
  auto back = ReadRecordFile<Rec>(*env, "f");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), Status::Code::kCorruption);
  EXPECT_NE(back.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST(RecordIoChecksumTest, HeaderBitFlipIsCorruption) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteRecordFile(*env, "f", std::vector<Rec>{{1, 1}}).ok());
  // Inside the inline CRC table: the header's own CRC catches it before any
  // data block is trusted.
  FlipBit(*env, "f", /*block=*/0, /*bit=*/40 * 8);
  auto back = ReadRecordFile<Rec>(*env, "f");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), Status::Code::kCorruption);
  EXPECT_NE(back.status().message().find("header checksum mismatch"),
            std::string::npos);
}

TEST(RecordIoChecksumTest, TruncatedFileIsCorruptionAtOpen) {
  auto env = NewMemEnv(4096);
  std::vector<Rec> records(1000);  // 4 data blocks
  for (uint64_t i = 0; i < records.size(); ++i) records[i] = {i, 0.0};
  ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());

  // A crash-truncated copy: header + 2 of the 4 promised data blocks.
  auto src = env->Open("f");
  auto dst = env->Create("trunc");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  std::vector<char> buf(env->block_size());
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE((*src)->ReadBlock(b, buf.data()).ok());
    ASSERT_TRUE((*dst)->WriteBlock(b, buf.data()).ok());
  }
  auto back = ReadRecordFile<Rec>(*env, "trunc");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), Status::Code::kCorruption);
  EXPECT_NE(back.status().message().find("truncated"), std::string::npos);
}

TEST(RecordIoChecksumTest, LegacyV1FilesStillOpenUnverified) {
  // Hand-crafted v1 file: old header, no checksum table. It must keep
  // reading (old datasets stay usable) — but without verification, so a
  // bit flip goes undetected. That asymmetry is the point of v2.
  auto env = NewMemEnv(4096);
  auto file_or = env->Create("v1");
  ASSERT_TRUE(file_or.ok());
  std::vector<char> block(env->block_size(), 0);
  record_internal::Header header{record_internal::kMagic, sizeof(Rec), 2};
  std::memcpy(block.data(), &header, sizeof(header));
  ASSERT_TRUE((*file_or)->WriteBlock(0, block.data()).ok());
  const Rec data[2] = {{7, 7.5}, {8, 8.5}};
  std::fill(block.begin(), block.end(), 0);
  std::memcpy(block.data(), data, sizeof(data));
  ASSERT_TRUE((*file_or)->WriteBlock(1, block.data()).ok());

  auto back = ReadRecordFile<Rec>(*env, "v1");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].id, 7u);
  EXPECT_EQ((*back)[1].value, 8.5);

  FlipBit(*env, "v1", /*block=*/1, /*bit=*/3);
  EXPECT_TRUE(ReadRecordFile<Rec>(*env, "v1").ok());  // silently accepted
}

TEST(RecordIoChecksumTest, TrailerBlocksCoverLargeFilesExactly) {
  // 512-byte blocks: 120 CRCs fit inline, 127 per trailer block. 5000
  // records of 16 bytes = 157 data blocks -> exactly one trailer block.
  auto env = NewMemEnv(512);
  std::vector<Rec> records(5000);
  for (uint64_t i = 0; i < records.size(); ++i) records[i] = {i, 2.0 * i};

  const IoStatsSnapshot before = env->stats().Snapshot();
  ASSERT_TRUE(WriteRecordFile(*env, "big", records).ok());
  const IoStatsSnapshot after_write = env->stats().Snapshot();
  // Header reservation + 157 data + 1 trailer + final header = 160.
  EXPECT_EQ(after_write.blocks_written - before.blocks_written, 160u);

  auto back = ReadRecordFile<Rec>(*env, "big");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 5000u);
  EXPECT_EQ(back->back().id, 4999u);
  // Header + 1 trailer at open + 157 data while draining = 159.
  EXPECT_EQ(env->stats().Snapshot().blocks_read - after_write.blocks_read,
            159u);

  // A torn trailer is caught by its self-CRC before any data is trusted.
  FlipBit(*env, "big", /*block=*/158, /*bit=*/77);
  auto corrupt = ReadRecordFile<Rec>(*env, "big");
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), Status::Code::kCorruption);
  EXPECT_NE(corrupt.status().message().find("trailer"), std::string::npos);
}

TEST(RecordIoTest, WorksOnPosixEnv) {
  auto env = NewPosixEnv(::testing::TempDir() + "/maxrs_posix_env", 4096);
  std::vector<Rec> records;
  for (uint64_t i = 0; i < 500; ++i) records.push_back({i, -1.0 * i});
  ASSERT_TRUE(WriteRecordFile(*env, "f", records).ok());
  auto back = ReadRecordFile<Rec>(*env, "f");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 500u);
  EXPECT_EQ((*back)[499].id, 499u);
  ASSERT_TRUE(env->Delete("f").ok());
  EXPECT_FALSE(env->Exists("f"));
}

TEST(MemEnvTest, CreateOpenDeleteList) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(env->Create("a").ok());
  ASSERT_TRUE(env->Create("b").ok());
  EXPECT_TRUE(env->Exists("a"));
  EXPECT_EQ(env->ListFiles().size(), 2u);
  ASSERT_TRUE(env->Delete("a").ok());
  EXPECT_FALSE(env->Exists("a"));
  EXPECT_EQ(env->Delete("a").code(), Status::Code::kNotFound);
  EXPECT_FALSE(env->Open("a").ok());
}

TEST(MemEnvTest, ReadPastEndFails) {
  auto env = NewMemEnv(4096);
  auto file_or = env->Create("f");
  ASSERT_TRUE(file_or.ok());
  std::vector<char> buf(4096);
  EXPECT_EQ((*file_or)->ReadBlock(0, buf.data()).code(),
            Status::Code::kIOError);
  ASSERT_TRUE((*file_or)->WriteBlock(0, buf.data()).ok());
  EXPECT_TRUE((*file_or)->ReadBlock(0, buf.data()).ok());
  // Write may extend by exactly one block, not beyond.
  EXPECT_EQ((*file_or)->WriteBlock(5, buf.data()).code(),
            Status::Code::kIOError);
}

}  // namespace
}  // namespace maxrs
