// Shard-count invariance property battery for the per-shard solve path
// (serve/maxrs_server.h, ServeSolveMode::kPerShard).
//
// The x-slab shards form the top-level division of the query, so changing
// the shard count changes the whole division tree — yet the answer must
// not move: every slab-file tuple carries the true max of its stratum and
// the leftmost maximal argmax interval, both pure functions of the piece
// multiset whenever weight sums are exact in double arithmetic (integer
// weights here). The battery checks bit-identical best-point/best-sum
// against the one-shot pipeline at shard counts {1, 2, 7, 16, 64} x worker
// counts {1, 2, 8}, and that the per-query I/O stays in the linear
// no-sort/no-global-merge class: a bounded envelope across shard counts,
// strictly below the sort-paying one-shot run, and ordered
// streaming-routing < materialized-routing < global-merge on the same
// server (the acceptance criteria that part-file materialization and the
// global piece merge are each absent from their cheaper pipeline's I/O
// profile). The streaming-vs-materialized equivalence matrix itself lives
// in streaming_equivalence_test.cc.
#include <algorithm>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr size_t kShardCounts[] = {1, 2, 7, 16, 64};
constexpr size_t kWorkerCounts[] = {1, 2, 8};
// Ingest budget: 64 shards need 65 in-flight stream blocks at ingest (one
// writer block per shard + the reader), comfortably inside 512KB / 4KB.
constexpr size_t kIngestMemoryBytes = 512 * 1024;
// Query budget: 64KB derives a ~1638-piece base case, so the one-shot
// reference and the global-merge mode actually divide at these
// cardinalities instead of shortcutting into the in-memory sweep.
constexpr size_t kQueryMemoryBytes = 64 * 1024;

std::unique_ptr<Env> MakeEnv(uint64_t seed, size_t n,
                             std::vector<SpatialObject>* out = nullptr) {
  auto env = NewMemEnv(4096);
  // Integer coordinates over a wide extent: enough distinct x values that
  // the equal-count cut realizes all 64 shards, and integer weights so
  // weight sums are exact under any division tree.
  std::vector<SpatialObject> objects = testing::RandomIntObjects(
      n, /*extent=*/6000, seed, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  if (out != nullptr) *out = objects;
  return env;
}

MaxRSOptions OneShotOptions(double w, double h) {
  MaxRSOptions options;
  options.rect_width = w;
  options.rect_height = h;
  options.memory_bytes = kQueryMemoryBytes;
  return options;
}

DatasetHandleOptions IngestOptions(size_t shards) {
  DatasetHandleOptions options;
  options.shard_count = shards;
  options.memory_bytes = kIngestMemoryBytes;
  return options;
}

MaxRSServerOptions ServerOptions(size_t workers, ServeSolveMode mode =
                                                     ServeSolveMode::kPerShard) {
  MaxRSServerOptions options;
  options.num_workers = workers;
  options.memory_bytes = kQueryMemoryBytes;
  options.solve_mode = mode;
  return options;
}

void ExpectBitIdentical(const MaxRSResult& a, const MaxRSResult& b) {
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.location, b.location);
  EXPECT_EQ(a.region, b.region);
}

TEST(ShardPropertyTest, BitIdenticalAcrossShardAndWorkerCounts) {
  const double kRects[][2] = {{260, 140}, {800, 800}};
  // 2816 objects = 64 shards x ~44: the equal-count cut (which only
  // advances on x-value changes and absorbs the remainder into the last
  // shard) reliably realizes all 64 requested shards.
  constexpr size_t kN = 2816;
  for (uint64_t seed : {3u, 71u}) {
    // One-shot references on a fresh env per seed.
    std::vector<SpatialObject> objects;
    auto reference_env = MakeEnv(seed, kN, &objects);
    std::vector<MaxRSResult> reference;
    for (const auto& rect : kRects) {
      auto r = RunExactMaxRS(*reference_env, kDatasetFile,
                             OneShotOptions(rect[0], rect[1]));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      // The answer is a real cover weight, not just self-consistent.
      EXPECT_EQ(r->total_weight,
                CoveredWeight(objects, Rect::Centered(r->location, rect[0],
                                                      rect[1])));
      reference.push_back(*r);
    }

    for (size_t shards : kShardCounts) {
      auto env = MakeEnv(seed, kN);
      auto handle =
          DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(shards));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      // The property is vacuous if the cut produced fewer shards.
      ASSERT_EQ(handle->shards().size(), shards);
      for (size_t workers : kWorkerCounts) {
        MaxRSServer server(*env, *handle, ServerOptions(workers));
        for (size_t q = 0; q < 2; ++q) {
          auto served = server.Submit(kRects[q][0], kRects[q][1]);
          ASSERT_TRUE(served.ok())
              << served.status().ToString() << " (seed " << seed << ", "
              << shards << " shards, " << workers << " workers)";
          ExpectBitIdentical(*served, reference[q]);
        }
      }
    }
  }
}

TEST(ShardPropertyTest, ReadAheadBitIdenticalAndIoIdenticalAcrossShards) {
  // The async read-ahead layer must be invisible in everything but wall
  // time: per query, the answer AND the IoStats block counts match the
  // synchronous server bit-for-bit at every shard and worker count (the
  // prefetch layer's acceptance criterion on the serve path, pinning the
  // shard routing scans, part merges, cross-shard MergeSweep, and root
  // scan all at once).
  constexpr size_t kN = 2816;
  const double kRects[][2] = {{260, 140}, {800, 800}};
  const uint64_t kSeed = 3;
  for (size_t shards : {size_t{1}, size_t{7}, size_t{16}}) {
    // Synchronous reference answers + per-query I/O on a fresh env.
    std::vector<MaxRSResult> reference;
    {
      auto env = MakeEnv(kSeed, kN);
      auto handle =
          DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(shards));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      ASSERT_EQ(handle->shards().size(), shards);
      MaxRSServerOptions options = ServerOptions(1);
      options.cache_entries = 0;  // every submit pays its full pipeline
      MaxRSServer server(*env, *handle, options);
      for (const auto& rect : kRects) {
        auto r = server.Submit(rect[0], rect[1]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        reference.push_back(*r);
      }
    }

    for (size_t workers : kWorkerCounts) {
      auto env = MakeEnv(kSeed, kN);
      DatasetHandleOptions ingest = IngestOptions(shards);
      ingest.read_ahead = true;  // ingest passes double-buffer too
      auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      ASSERT_EQ(handle->shards().size(), shards);
      MaxRSServerOptions options = ServerOptions(workers);
      options.cache_entries = 0;
      options.read_ahead = true;
      MaxRSServer server(*env, *handle, options);
      for (size_t q = 0; q < 2; ++q) {
        auto served = server.Submit(kRects[q][0], kRects[q][1]);
        ASSERT_TRUE(served.ok())
            << served.status().ToString() << " (" << shards << " shards, "
            << workers << " workers, read_ahead)";
        ExpectBitIdentical(*served, reference[q]);
        EXPECT_EQ(served->stats.io.blocks_read,
                  reference[q].stats.io.blocks_read)
            << shards << " shards, " << workers << " workers, query " << q;
        EXPECT_EQ(served->stats.io.blocks_written,
                  reference[q].stats.io.blocks_written)
            << shards << " shards, " << workers << " workers, query " << q;
      }
    }
  }
}

TEST(ShardPropertyTest, PerQueryIoStaysInTheLinearClass) {
  // 12000 objects: large enough that data volume (not per-file block
  // constants) carries the comparison, small enough for a unit test. The
  // 96KB query budget derives a ~2457-piece base case, so shard counts
  // >= 7 put every shard on the one-sweep path (the production shape:
  // shards sized to the memory budget) while the one-shot reference and
  // the 1-2 shard configs still divide.
  constexpr size_t kN = 12000;
  constexpr size_t kQueryMemory = 96 * 1024;
  const double kW = 300, kH = 200;
  auto one_shot_env = MakeEnv(5, kN);
  MaxRSOptions one_shot_options = OneShotOptions(kW, kH);
  one_shot_options.memory_bytes = kQueryMemory;
  auto one_shot = RunExactMaxRS(*one_shot_env, kDatasetFile, one_shot_options);
  ASSERT_TRUE(one_shot.ok());
  // The reference must be on the external path (it pays the sorts the
  // serve layer amortized away), or the comparison below is vacuous.
  ASSERT_GT(one_shot->stats.merges, 0u);

  std::vector<uint64_t> per_query_io;
  for (size_t shards : kShardCounts) {
    auto env = MakeEnv(5, kN);
    auto handle =
        DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(shards));
    ASSERT_TRUE(handle.ok());
    ASSERT_EQ(handle->shards().size(), shards);
    MaxRSServerOptions options = ServerOptions(1);
    options.memory_bytes = kQueryMemory;
    options.cache_entries = 0;  // every submit must pay its full pipeline
    MaxRSServer server(*env, *handle, options);

    const IoStatsSnapshot before = env->stats().Snapshot();
    ASSERT_TRUE(server.Submit(kW, kH).ok());
    const uint64_t io = (env->stats().Snapshot() - before).total();
    per_query_io.push_back(io);
    EXPECT_GT(io, 0u);

    // No sort phase and no global merge: when the shards fit the base
    // case, the per-query cost sits strictly below the one-shot run of
    // the same rect and budget, which pays the two external sorts plus
    // the root division pass. (At 1-2 shards the within-shard division
    // re-runs what sharding would have pre-paid, and at 64 shards the
    // ~190-object shards make per-file block constants dominate — those
    // configs are covered by the envelope below instead.)
    if (shards == 7 || shards == 16) {
      EXPECT_LT(io, one_shot->stats.io.total()) << shards << " shards";
    }
  }

  // Same complexity class at every shard count: a bounded number of
  // linear passes plus a per-shard file constant. The envelope — a small
  // multiple of the 1-shard cost plus a 70-block-per-shard allowance —
  // tolerates a division level shifting into or out of the shards as the
  // shard size crosses the base-case threshold (that moves one ~full-pass
  // term, bounded by the 3x factor) but fails on anything super-linear:
  // an accidental extra pass *per shard* would cost ~N/B = 115+ blocks
  // per shard, well past the allowance.
  const uint64_t base = per_query_io.front();  // shard count 1
  for (size_t i = 0; i < per_query_io.size(); ++i) {
    EXPECT_LE(per_query_io[i], 3 * base + 70 * kShardCounts[i])
        << kShardCounts[i] << " shards";
  }
}

TEST(ShardPropertyTest, PerQueryIoOrdersStreamingBelowMaterializedBelowGlobal) {
  // Acceptance ladder of the three per-query pipelines over one dataset,
  // handle, and budget — only the execution strategy differs, so each I/O
  // gap IS the work the cheaper pipeline skips:
  //
  //   streaming per-shard  <  materialized per-shard:  the gap is the part
  //     files — routed pieces/edges/spans travel through in-memory channels
  //     and are written at most once (spill) instead of always;
  //   materialized per-shard  <  global-merge:  the gap is the global
  //     k-way piece merge and the root division pass it feeds.
  //
  // The rect and budget put the global mode on the dividing path (12000
  // pieces over a ~1638-piece base case) while each of the 8 shards (1500
  // objects) solves in one in-memory sweep.
  constexpr size_t kN = 12000;
  const double kW = 420, kH = 260;
  auto env = MakeEnv(9, kN);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(8));
  ASSERT_TRUE(handle.ok());
  ASSERT_EQ(handle->shards().size(), 8u);

  struct Config {
    ServeSolveMode solve;
    ServeRoutingMode routing;
    const char* name;
  };
  const Config kConfigs[] = {
      {ServeSolveMode::kPerShard, ServeRoutingMode::kStreaming, "streaming"},
      {ServeSolveMode::kPerShard, ServeRoutingMode::kMaterialized,
       "materialized"},
      {ServeSolveMode::kGlobalMerge, ServeRoutingMode::kStreaming, "global"},
  };
  uint64_t io_by_mode[3] = {0, 0, 0};
  MaxRSResult results[3];
  for (int m = 0; m < 3; ++m) {
    MaxRSServerOptions options = ServerOptions(1, kConfigs[m].solve);
    options.routing_mode = kConfigs[m].routing;
    options.cache_entries = 0;
    MaxRSServer server(*env, *handle, options);
    const IoStatsSnapshot before = env->stats().Snapshot();
    auto r = server.Submit(kW, kH);
    ASSERT_TRUE(r.ok()) << kConfigs[m].name << ": " << r.status().ToString();
    io_by_mode[m] = (env->stats().Snapshot() - before).total();
    results[m] = *r;
  }
  ExpectBitIdentical(results[0], results[1]);
  ExpectBitIdentical(results[0], results[2]);
  EXPECT_LT(io_by_mode[0], io_by_mode[1])
      << "streaming routing must beat materialized part files";
  EXPECT_LT(io_by_mode[1], io_by_mode[2])
      << "per-shard must beat the global merge";
}

}  // namespace
}  // namespace maxrs
