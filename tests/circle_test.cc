#include <gtest/gtest.h>

#include <cmath>

#include "circle/approx_maxcrs.h"
#include "circle/exact_maxcrs.h"
#include "circle/grid_index.h"
#include "core/brute_force.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "test_util.h"

namespace maxrs {
namespace {

// --- GridIndex -------------------------------------------------------------

TEST(GridIndexTest, FindsAllNeighborsWithinRadius) {
  auto objects = testing::RandomIntObjects(500, 1000, 3);
  GridIndex grid(objects, 50.0);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Point c{static_cast<double>(rng.UniformU64(1000)),
                  static_cast<double>(rng.UniformU64(1000))};
    const double r = 30.0 + rng.NextDouble() * 200.0;
    double got = 0;
    grid.ForEachWithin(c, r, [&](const SpatialObject& o) { got += o.w; });
    double want = 0;
    for (const auto& o : objects) {
      if (DistanceSquared({o.x, o.y}, c) <= r * r) want += o.w;
    }
    ASSERT_EQ(got, want) << "trial " << trial;
  }
}

TEST(GridIndexTest, WeightInsideUsesStrictPredicate) {
  std::vector<SpatialObject> objects = {{0, 0, 1}, {5, 0, 1}, {10, 0, 1}};
  GridIndex grid(objects, 5.0);
  // Circle centered at 5,0 with radius 5: endpoints on the boundary excluded.
  EXPECT_EQ(grid.WeightInside(Circle{{5, 0}, 10}), 1.0);
}

TEST(GridIndexTest, EmptySet) {
  GridIndex grid({}, 10.0);
  EXPECT_EQ(grid.WeightInside(Circle{{0, 0}, 100}), 0.0);
  EXPECT_EQ(grid.size(), 0u);
}

// --- Shifted points / Lemma 5 ----------------------------------------------

TEST(ShiftedPointsTest, Lemma5MbrCoveredByShiftedCircles) {
  // For any sigma in ((sqrt(2)-1) d/2, d/2), the MBR of the circle at p0 is
  // covered by the union of the four shifted circles. Verify on a dense
  // point lattice for several sigma values.
  const double d = 100.0;
  const Point p0{0, 0};
  for (double fraction : {0.45, 0.7, 0.99}) {
    const double sigma = fraction * d / 2.0;
    const auto shifted = circle_internal::ShiftedPoints(p0, sigma);
    const Rect mbr = Rect::Centered(p0, d, d);
    for (double x = mbr.x_lo + 0.25; x < mbr.x_hi; x += 0.5) {
      for (double y = mbr.y_lo + 0.25; y < mbr.y_hi; y += 0.5) {
        bool covered = false;
        for (const Point& p : shifted) {
          covered |= Circle{p, d}.Contains(Point{x, y});
        }
        ASSERT_TRUE(covered) << "uncovered at (" << x << "," << y
                             << ") sigma=" << sigma;
      }
    }
  }
}

TEST(ShiftedPointsTest, SigmaOutsideRangeLeavesGaps) {
  // Below the lower bound the MBR corners escape the union: the bound in
  // Sec. 6.1 is not slack.
  const double d = 100.0;
  const double sigma = 0.25 * d / 2.0;  // < (sqrt(2)-1) d/2
  const auto shifted = circle_internal::ShiftedPoints({0, 0}, sigma);
  const Point corner{-d / 2 + 0.01, -d / 2 + 0.01};
  bool covered = false;
  for (const Point& p : shifted) covered |= Circle{p, d}.Contains(corner);
  EXPECT_FALSE(covered);
}

// --- Exact MaxCRS reference -------------------------------------------------

struct CircleCase {
  size_t n;
  uint64_t extent;
  double diameter;
  bool weights;
};

class ExactMaxCRSTest : public ::testing::TestWithParam<CircleCase> {};

TEST_P(ExactMaxCRSTest, MatchesBruteForce) {
  const CircleCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed, c.weights);
    const ExactMaxCRSResult got = ExactMaxCRS(objects, c.diameter);
    const BruteForceResult want = BruteForceMaxCRS(objects, c.diameter);
    ASSERT_EQ(got.total_weight, want.total_weight)
        << "n=" << c.n << " d=" << c.diameter << " seed=" << seed;
    // The witness center realizes the weight.
    EXPECT_EQ(CoveredWeight(objects, Circle{got.location, c.diameter}),
              got.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ExactMaxCRSTest,
                         ::testing::Values(CircleCase{20, 50, 20, false},
                                           CircleCase{60, 100, 30, false},
                                           CircleCase{60, 100, 30, true},
                                           CircleCase{100, 60, 15, true},
                                           CircleCase{40, 400, 80, false}));

TEST(ExactMaxCRSBasicTest, SinglePoint) {
  std::vector<SpatialObject> objects = {{10, 10, 3.0}};
  const ExactMaxCRSResult r = ExactMaxCRS(objects, 5.0);
  EXPECT_EQ(r.total_weight, 3.0);
}

TEST(ExactMaxCRSBasicTest, EmptyInput) {
  EXPECT_EQ(ExactMaxCRS({}, 5.0).total_weight, 0.0);
}

TEST(ExactMaxCRSBasicTest, TwoPointsJustWithinDiameter) {
  std::vector<SpatialObject> objects = {{0, 0, 1}, {9, 0, 1}};
  EXPECT_EQ(ExactMaxCRS(objects, 10.0).total_weight, 2.0);
  // At distance >= d they cannot share an open circle.
  objects[1].x = 10.5;
  EXPECT_EQ(ExactMaxCRS(objects, 10.0).total_weight, 1.0);
}

// --- ApproxMaxCRS ------------------------------------------------------------

class ApproxBoundTest : public ::testing::TestWithParam<CircleCase> {};

TEST_P(ApproxBoundTest, AtLeastQuarterOfOptimal) {
  const CircleCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed, c.weights);
    const MaxCRSResult approx = ApproxMaxCRSInMemory(objects, c.diameter);
    const ExactMaxCRSResult opt = ExactMaxCRS(objects, c.diameter);
    ASSERT_GE(approx.total_weight, 0.25 * opt.total_weight - 1e-9)
        << "n=" << c.n << " seed=" << seed;
    ASSERT_LE(approx.total_weight, opt.total_weight + 1e-9)
        << "approx cannot beat the optimum";
    // Reported weight matches an independent recount at the location.
    EXPECT_EQ(CoveredWeight(objects, Circle{approx.location, c.diameter}),
              approx.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ApproxBoundTest,
                         ::testing::Values(CircleCase{30, 60, 20, false},
                                           CircleCase{100, 100, 25, false},
                                           CircleCase{100, 100, 25, true},
                                           CircleCase{200, 80, 12, true},
                                           CircleCase{50, 500, 100, false}));

TEST(ApproxMaxCRSTest, RejectsInvalidSigma) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteDataset(*env, "data", {{1, 1, 1}}).ok());
  MaxCRSOptions options;
  options.sigma_fraction = 0.3;  // below sqrt(2)-1
  EXPECT_EQ(RunApproxMaxCRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
  options.sigma_fraction = 1.0;
  EXPECT_EQ(RunApproxMaxCRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
  options.sigma_fraction = 0.7;
  options.diameter = -1;
  EXPECT_EQ(RunApproxMaxCRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(ApproxMaxCRSTest, ExternalMatchesInMemory) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(2000, 1500, 11);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  MaxCRSOptions options;
  options.diameter = 60;
  options.memory_bytes = 1 << 14;
  auto external = RunApproxMaxCRS(*env, "data", options);
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  const MaxCRSResult internal = ApproxMaxCRSInMemory(objects, 60);
  EXPECT_EQ(external->total_weight, internal.total_weight);
  EXPECT_EQ(external->chosen, internal.chosen);
}

TEST(ApproxMaxCRSTest, CandidateWeightsAreConsistent) {
  auto objects = testing::RandomIntObjects(300, 200, 13);
  const MaxCRSResult r = ApproxMaxCRSInMemory(objects, 40);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(CoveredWeight(objects, Circle{r.candidates[i], 40.0}),
              r.candidate_weights[i])
        << "candidate " << i;
    EXPECT_LE(r.candidate_weights[i], r.total_weight);
  }
  // Worst-case structure of Theorem 4: p1..p4 are at distance sigma from p0.
  for (int i = 1; i < 5; ++i) {
    EXPECT_NEAR(Distance(r.candidates[0], r.candidates[i]), 0.7 * 20.0, 1e-9);
  }
}

TEST(ApproxMaxCRSTest, PaperWorstCaseStaysAboveBound) {
  // Theorem 4's tightness construction: four unit-weight circles arranged so
  // the MBR max-region center sees nothing, and each shifted point covers
  // one circle. The approximation must still deliver >= 1/4 of OPT.
  const double d = 100.0;
  std::vector<SpatialObject> objects = {
      {-45, 45, 1}, {45, 45, 1}, {45, -45, 1}, {-45, -45, 1}};
  const MaxCRSResult approx = ApproxMaxCRSInMemory(objects, d);
  const ExactMaxCRSResult opt = ExactMaxCRS(objects, d);
  EXPECT_GE(approx.total_weight, 0.25 * opt.total_weight - 1e-12);
}

}  // namespace
}  // namespace maxrs
