// Seeded chaos battery: the end-to-end fault-tolerance contract is that a
// query submitted against a chaotic storage stack either returns the
// bit-identical fault-free answer or a clean, specific non-OK Status —
// never a hang, a wrong answer, or leaked scratch files.
//
// The stack under test is MemEnv -> ChaosEnv -> RetryEnv -> MaxRSServer.
// The dataset is always ingested cleanly (chaos models serve-time storage
// trouble, not a corrupted ingest — recovery_test.cc covers damaged
// persistent state); every fault the battery injects strikes query-time
// reads of the shard files and the per-query scratch I/O.
//
// Three invariants are pinned exactly, not probabilistically:
//  1. Transient-only schedules converge: with retries, every query
//     succeeds with the fault-free answer, and the base Env's block
//     counts equal the fault-free run's — faulted attempts never reach
//     storage, so retrying adds retry-counter ticks but zero transfers.
//  2. Each transient fault drawn costs exactly one retry attempt
//     (retries() == transient_faults() when all are absorbed), and those
//     attempts are visible in IoStats reads_retried / writes_retried.
//  3. Permanent-only schedules are never retried (retries() == 0).
//
// MAXRS_CHAOS_SEED_BASE offsets every schedule seed, so a CI matrix can
// sweep disjoint fault schedules with the same binary.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/io_stats.h"
#include "io/retry_env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr char kPrefix[] = "ds";

uint64_t SeedBase() {
  const char* v = std::getenv("MAXRS_CHAOS_SEED_BASE");
  return v == nullptr ? 0 : std::strtoull(v, nullptr, 10);
}

const std::vector<std::pair<double, double>>& QueryRects() {
  static const std::vector<std::pair<double, double>> kRects = {
      {60.0, 340.0}, {120.0, 90.0},  {200.0, 200.0},
      {35.0, 500.0}, {410.0, 55.0},  {150.0, 260.0},
  };
  return kRects;
}

std::unique_ptr<Env> MakeIngestedEnv() {
  auto env = NewMemEnv(512);
  const std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/2500, /*extent=*/1000, /*seed=*/23, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  DatasetHandleOptions options;
  options.shard_count = 3;
  options.memory_bytes = 64 * 1024;
  options.prefix = kPrefix;
  EXPECT_TRUE(DatasetHandle::Ingest(*env, kDatasetFile, options).ok());
  return env;
}

MaxRSServerOptions ServerOptions() {
  MaxRSServerOptions options;
  options.num_workers = 1;    // deterministic op sequence per seed
  options.cache_entries = 0;  // every query must survive the storage stack
  options.memory_bytes = 64 * 1024;
  return options;
}

struct QueryOutcome {
  Result<MaxRSResult> result{Status::Internal("query not run")};
  IoStatsSnapshot io;  ///< base-Env transfers attributed to this query
};

/// Runs the full rect battery through a fresh server over `env`, isolating
/// each query's base-Env block transfers via snapshot deltas.
std::vector<QueryOutcome> RunBattery(Env& env, const DatasetHandle& dataset,
                                     IoStats& base_stats) {
  MaxRSServer server(env, dataset, ServerOptions());
  std::vector<QueryOutcome> outcomes;
  for (const auto& rect : QueryRects()) {
    const IoStatsSnapshot before = base_stats.Snapshot();
    QueryOutcome outcome;
    outcome.result = server.Submit(rect.first, rect.second);
    outcome.io = base_stats.Snapshot() - before;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<std::string> SortedFiles(const Env& env) {
  std::vector<std::string> files = env.ListFiles();
  std::sort(files.begin(), files.end());
  return files;
}

void ExpectSameAnswer(const Result<MaxRSResult>& got,
                      const Result<MaxRSResult>& want) {
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->total_weight, want->total_weight);
  EXPECT_EQ(got->location, want->location);
  EXPECT_EQ(got->region, want->region);
}

TEST(ChaosTest, TransientOnlySchedulesConvergeToTheFaultFreeRun) {
  for (uint64_t seed = SeedBase() + 1; seed <= SeedBase() + 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto env = MakeIngestedEnv();
    auto dataset = DatasetHandle::Open(*env, kPrefix);
    ASSERT_TRUE(dataset.ok());
    const std::vector<std::string> clean_files = SortedFiles(*env);

    const std::vector<QueryOutcome> reference =
        RunBattery(*env, *dataset, env->stats());
    for (const QueryOutcome& outcome : reference) {
      ASSERT_TRUE(outcome.result.ok()) << outcome.result.status().ToString();
    }

    ChaosOptions chaos_options;
    chaos_options.seed = seed;
    chaos_options.transient_fault_p = 0.05;
    ChaosEnv chaos(*env, chaos_options);
    RetryPolicy policy;
    policy.max_retries = 16;  // with p=0.05 one op failing 17 draws is ~1e-22
    RetryEnv retry(chaos, policy);

    const IoStatsSnapshot before = env->stats().Snapshot();
    const std::vector<QueryOutcome> chaotic =
        RunBattery(retry, *dataset, env->stats());
    const IoStatsSnapshot delta = env->stats().Snapshot() - before;

    for (size_t i = 0; i < chaotic.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      ExpectSameAnswer(chaotic[i].result, reference[i].result);
      // Faulted attempts fail before reaching storage, so a converged run
      // performs exactly the fault-free transfers, query by query.
      EXPECT_EQ(chaotic[i].io.blocks_read, reference[i].io.blocks_read);
      EXPECT_EQ(chaotic[i].io.blocks_written, reference[i].io.blocks_written);
    }

    // Every transient fault cost exactly one retry attempt, and every
    // attempt is visible in the shared IoStats retry counters.
    EXPECT_GT(chaos.transient_faults(), 0u);
    EXPECT_EQ(retry.retries(), chaos.transient_faults());
    EXPECT_EQ(delta.reads_retried + delta.writes_retried, retry.retries());
    EXPECT_EQ(chaos.permanent_faults(), 0u);
    EXPECT_EQ(chaos.bit_flips(), 0u);
    EXPECT_EQ(chaos.torn_writes(), 0u);

    EXPECT_EQ(SortedFiles(*env), clean_files);  // no scratch residue
  }
}

TEST(ChaosTest, MixedFaultsYieldCorrectAnswersOrCleanSpecificErrors) {
  uint64_t total_faults = 0;
  for (uint64_t seed = SeedBase() + 1; seed <= SeedBase() + 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto env = MakeIngestedEnv();
    auto dataset = DatasetHandle::Open(*env, kPrefix);
    ASSERT_TRUE(dataset.ok());
    const std::vector<std::string> clean_files = SortedFiles(*env);

    const std::vector<QueryOutcome> reference =
        RunBattery(*env, *dataset, env->stats());

    ChaosOptions chaos_options;
    chaos_options.seed = seed;
    chaos_options.transient_fault_p = 0.01;
    chaos_options.permanent_fault_p = 0.004;
    chaos_options.bit_flip_read_p = 0.004;
    chaos_options.torn_write_p = 0.004;
    ChaosEnv chaos(*env, chaos_options);
    RetryEnv retry(chaos, RetryPolicy{});

    size_t failures = 0;
    {
      MaxRSServer server(retry, *dataset, ServerOptions());
      for (size_t i = 0; i < QueryRects().size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        const auto& rect = QueryRects()[i];
        auto result = server.Submit(rect.first, rect.second);
        if (result.ok()) {
          // A query that survives chaos must be *right*, bit for bit.
          ExpectSameAnswer(result, reference[i].result);
        } else {
          ++failures;
          const Status::Code code = result.status().code();
          EXPECT_TRUE(code == Status::Code::kIOError ||
                      code == Status::Code::kCorruption ||
                      code == Status::Code::kUnavailable)
              << result.status().ToString();
          EXPECT_FALSE(result.status().message().empty());
        }
      }
      const ServerCounters counters = server.counters();
      EXPECT_EQ(counters.failed, failures);
      EXPECT_EQ(counters.shed, 0u);
      EXPECT_EQ(counters.deadlines, 0u);
    }  // ~MaxRSServer: clean shutdown even with failed queries in history

    // Failed queries must release their scratch files on the way out.
    EXPECT_EQ(SortedFiles(*env), clean_files);
    total_faults += chaos.permanent_faults() + chaos.bit_flips() +
                    chaos.torn_writes() + chaos.transient_faults();
  }
  // The schedule must actually have exercised the fault paths across the
  // seed sweep, or the battery is vacuous.
  EXPECT_GT(total_faults, 0u);
}

TEST(ChaosTest, PermanentFaultsFailFastAndAreNeverRetried) {
  auto env = MakeIngestedEnv();
  auto dataset = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(dataset.ok());
  const std::vector<std::string> clean_files = SortedFiles(*env);

  const std::vector<QueryOutcome> reference =
      RunBattery(*env, *dataset, env->stats());

  ChaosOptions chaos_options;
  chaos_options.seed = SeedBase() + 99;
  chaos_options.permanent_fault_p = 0.05;
  ChaosEnv chaos(*env, chaos_options);
  RetryEnv retry(chaos, RetryPolicy{});

  const IoStatsSnapshot before = env->stats().Snapshot();
  const std::vector<QueryOutcome> chaotic =
      RunBattery(retry, *dataset, env->stats());
  const IoStatsSnapshot delta = env->stats().Snapshot() - before;

  for (size_t i = 0; i < chaotic.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    if (chaotic[i].result.ok()) {
      ExpectSameAnswer(chaotic[i].result, reference[i].result);
    } else {
      EXPECT_EQ(chaotic[i].result.status().code(), Status::Code::kIOError)
          << chaotic[i].result.status().ToString();
    }
  }

  // kIOError is terminal under the default policy: zero retry attempts, no
  // retry-counter noise — failing fast is part of the taxonomy's contract.
  EXPECT_EQ(retry.retries(), 0u);
  EXPECT_EQ(delta.reads_retried, 0u);
  EXPECT_EQ(delta.writes_retried, 0u);
  EXPECT_EQ(SortedFiles(*env), clean_files);
}

TEST(ChaosTest, BitFlippedReadsAreCaughtByChecksumsNotReturnedAsAnswers) {
  // Read-side corruption only: every fault is a silently flipped bit in an
  // otherwise-successful read. The only acceptable outcomes are the exact
  // answer (the flip hit a block the query never decoded, or a buffer
  // whose checksum was verified on a clean re-read) or kCorruption — a
  // flipped bit must never escape into a "successful" wrong answer.
  for (uint64_t seed = SeedBase() + 1; seed <= SeedBase() + 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto env = MakeIngestedEnv();
    auto dataset = DatasetHandle::Open(*env, kPrefix);
    ASSERT_TRUE(dataset.ok());

    const std::vector<QueryOutcome> reference =
        RunBattery(*env, *dataset, env->stats());

    ChaosOptions chaos_options;
    chaos_options.seed = seed;
    chaos_options.bit_flip_read_p = 0.01;
    ChaosEnv chaos(*env, chaos_options);

    const std::vector<QueryOutcome> chaotic =
        RunBattery(chaos, *dataset, env->stats());
    for (size_t i = 0; i < chaotic.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      if (chaotic[i].result.ok()) {
        ExpectSameAnswer(chaotic[i].result, reference[i].result);
      } else {
        EXPECT_EQ(chaotic[i].result.status().code(), Status::Code::kCorruption)
            << chaotic[i].result.status().ToString();
      }
    }
    EXPECT_GT(chaos.bit_flips(), 0u);
  }
}

TEST(ChaosTest, DegradedIndexServesExactAnswersUnderTransientFaults) {
  // The aggregate index is corrupted on disk before the dataset is opened,
  // so the handle attaches degraded (null index, kCorruption reason) and
  // every query runs un-pruned — then the whole battery rides a transient-
  // fault schedule. The contract composes: degradation must never trade
  // correctness for availability, and the un-pruned executions must be
  // visible in the server's unpruned counter, with zero shards reported
  // pruned anywhere.
  auto env = MakeIngestedEnv();
  {
    auto file_or = env->Open("ds/agg_index");
    ASSERT_TRUE(file_or.ok());
    std::vector<char> buf((*file_or)->block_size());
    ASSERT_TRUE((*file_or)->ReadBlock(0, buf.data()).ok());
    buf[17] ^= 0x20;
    ASSERT_TRUE((*file_or)->WriteBlock(0, buf.data()).ok());
  }
  auto dataset = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  ASSERT_EQ(dataset->agg_index(), nullptr);
  EXPECT_EQ(dataset->index_status().code(), Status::Code::kCorruption);

  const std::vector<QueryOutcome> reference =
      RunBattery(*env, *dataset, env->stats());
  for (const QueryOutcome& outcome : reference) {
    ASSERT_TRUE(outcome.result.ok()) << outcome.result.status().ToString();
  }

  ChaosOptions chaos_options;
  chaos_options.seed = SeedBase() + 5;
  chaos_options.transient_fault_p = 0.05;
  ChaosEnv chaos(*env, chaos_options);
  RetryPolicy policy;
  policy.max_retries = 16;
  RetryEnv retry(chaos, policy);

  MaxRSServer server(retry, *dataset, ServerOptions());
  for (size_t i = 0; i < QueryRects().size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const auto& rect = QueryRects()[i];
    auto result = server.Submit(rect.first, rect.second);
    ExpectSameAnswer(result, reference[i].result);
    if (result.ok()) {
      EXPECT_EQ(result->stats.io.shards_pruned, 0u)
          << "a degraded handle must not claim pruned shards";
      EXPECT_EQ(result->stats.io.bound_skips, 0u);
    }
  }
  EXPECT_EQ(server.counters().unpruned, QueryRects().size())
      << "every multi-shard execution without an index counts as unpruned";
  EXPECT_GT(chaos.transient_faults(), 0u);
}

}  // namespace
}  // namespace maxrs
