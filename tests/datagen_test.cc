#include "datagen/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/dataset_io.h"
#include "io/env.h"

namespace maxrs {
namespace {

TEST(GeneratorsTest, UniformRespectsCardinalityAndDomain) {
  SyntheticOptions options;
  options.cardinality = 10000;
  auto objects = MakeUniform(options);
  ASSERT_EQ(objects.size(), 10000u);
  const double domain = 4.0 * 10000;
  for (const auto& o : objects) {
    ASSERT_GE(o.x, 0.0);
    ASSERT_LT(o.x, domain);
    ASSERT_GE(o.y, 0.0);
    ASSERT_LT(o.y, domain);
    ASSERT_EQ(o.w, 1.0);
  }
}

TEST(GeneratorsTest, UniformIsRoughlyUniform) {
  SyntheticOptions options;
  options.cardinality = 40000;
  options.domain_size = 1000;
  auto objects = MakeUniform(options);
  // Quadrant counts should be near 10000 each.
  int q[4] = {0, 0, 0, 0};
  for (const auto& o : objects) {
    q[(o.x >= 500) + 2 * (o.y >= 500)]++;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(q[i], 10000, 500) << "quadrant " << i;
  }
}

TEST(GeneratorsTest, GaussianConcentratesInCenter) {
  SyntheticOptions options;
  options.cardinality = 20000;
  options.domain_size = 1000;
  auto objects = MakeGaussian(options);
  ASSERT_EQ(objects.size(), 20000u);
  // Central half-box should hold the vast majority (sigma = domain/8).
  int center = 0;
  for (const auto& o : objects) {
    ASSERT_GE(o.x, 0.0);
    ASSERT_LT(o.x, 1000.0);
    if (o.x > 250 && o.x < 750 && o.y > 250 && o.y < 750) ++center;
  }
  // P(|X - mu| < 2 sigma)^2 ~ 0.911 for the accepted points.
  EXPECT_GT(center, 17500);
}

TEST(GeneratorsTest, DeterministicForSameSeedDistinctAcrossSeeds) {
  SyntheticOptions options;
  options.cardinality = 100;
  auto a = MakeUniform(options);
  auto b = MakeUniform(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
  options.seed = 43;
  auto c = MakeUniform(options);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) any_diff |= (a[i].x != c[i].x);
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, RandomWeightsInRange) {
  SyntheticOptions options;
  options.cardinality = 1000;
  options.weights = WeightMode::kUniformRandom;
  auto objects = MakeUniform(options);
  for (const auto& o : objects) {
    ASSERT_GE(o.w, 0.5);
    ASSERT_LT(o.w, 2.0);
  }
}

TEST(GeneratorsTest, UxAndNeLikeMatchPaperCardinalities) {
  auto ux = MakeUxLike();
  auto ne = MakeNeLike();
  EXPECT_EQ(ux.size(), kUxCardinality);
  EXPECT_EQ(ne.size(), kNeCardinality);
  // Both normalized to [0, 1M]^2 (Table 2 discussion).
  for (const auto& o : ux) {
    ASSERT_GE(o.x, 0.0);
    ASSERT_LT(o.x, 1e6);
  }
  const Rect ne_box = BoundingBox(ne);
  EXPECT_LT(ne_box.x_hi, 1e6);
}

TEST(GeneratorsTest, ClusteredIsMoreConcentratedThanUniform) {
  // Compare max local density on a coarse grid: clustered data must have a
  // much denser hotspot than uniform data of the same cardinality.
  auto clustered = MakeNeLike();
  SyntheticOptions options;
  options.cardinality = clustered.size();
  options.domain_size = 1e6;
  auto uniform = MakeUniform(options);
  auto max_cell = [](const std::vector<SpatialObject>& objects) {
    std::vector<int> cells(100, 0);
    int best = 0;
    for (const auto& o : objects) {
      const int cx = std::min(9, static_cast<int>(o.x / 1e5));
      const int cy = std::min(9, static_cast<int>(o.y / 1e5));
      best = std::max(best, ++cells[cy * 10 + cx]);
    }
    return best;
  };
  EXPECT_GT(max_cell(clustered), 2 * max_cell(uniform));
}

TEST(DatasetIoTest, EnvRoundTrip) {
  auto env = NewMemEnv(4096);
  SyntheticOptions options;
  options.cardinality = 5000;
  auto objects = MakeUniform(options);
  ASSERT_TRUE(WriteDataset(*env, "d", objects).ok());
  auto back = ReadDataset(*env, "d");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), objects.size());
  EXPECT_EQ((*back)[123].x, objects[123].x);
  EXPECT_EQ((*back)[4999].w, objects[4999].w);
}

TEST(DatasetIoTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/maxrs_csv_test.csv";
  std::vector<SpatialObject> objects = {
      {1.5, 2.5, 3.0}, {-7.25, 0.125, 1.0}, {1e6, 999999.5, 0.25}};
  ASSERT_TRUE(SaveCsv(path, objects).ok());
  auto back = LoadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ((*back)[i].x, objects[i].x);
    EXPECT_EQ((*back)[i].y, objects[i].y);
    EXPECT_EQ((*back)[i].w, objects[i].w);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvDefaultsWeightToOne) {
  const std::string path = ::testing::TempDir() + "/maxrs_csv_now.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "x,y\n3.5,4.5\n10,20\n");
  std::fclose(f);
  auto back = LoadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].w, 1.0);
  EXPECT_EQ((*back)[1].x, 10.0);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvMissingFileIsNotFound) {
  EXPECT_EQ(LoadCsv("/definitely/not/here.csv").status().code(),
            Status::Code::kNotFound);
}

}  // namespace
}  // namespace maxrs
