// Serve-layer tests: ingest invariants (sharding, manifest roundtrip,
// thread-count determinism), server correctness (bit-identical to one-shot
// ExactMaxRS across rect sizes and worker counts), concurrency (8 in-flight
// queries, deterministic results), and cache semantics (a warm query
// performs zero block transfers — in particular zero sort-phase I/O).
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/record_io.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";

// Shared setup: a fixed-seed integer dataset staged into a fresh MemEnv.
// 4000 objects with the 64KB budget keep every query on the external
// (division + merge-sweep) code path: base_case_max derives to ~1638.
std::unique_ptr<Env> MakeEnvWithDataset(std::vector<SpatialObject>* out_objects,
                                        size_t n = 4000) {
  auto env = NewMemEnv(4096);
  std::vector<SpatialObject> objects =
      testing::RandomIntObjects(n, /*extent=*/2000, /*seed=*/7,
                                /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  if (out_objects != nullptr) *out_objects = objects;
  return env;
}

MaxRSOptions OneShotOptions(double w, double h) {
  MaxRSOptions options;
  options.rect_width = w;
  options.rect_height = h;
  options.memory_bytes = 64 * 1024;
  return options;
}

DatasetHandleOptions IngestOptions(size_t shards, size_t threads = 1) {
  DatasetHandleOptions options;
  options.shard_count = shards;
  options.memory_bytes = 64 * 1024;
  options.num_threads = threads;
  return options;
}

MaxRSServerOptions ServerOptions(size_t workers) {
  MaxRSServerOptions options;
  options.num_workers = workers;
  options.memory_bytes = 64 * 1024;
  return options;
}

void ExpectBitIdentical(const MaxRSResult& a, const MaxRSResult& b) {
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.location, b.location);
  EXPECT_EQ(a.region, b.region);
}

// Parks every ReadBlock issued while closed, so a test can pin a query
// worker mid-execution and observe queue / dedup state deterministically.
class ReadGate {
 public:
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  size_t arrived() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arrived_;
  }
  void Await() {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  size_t arrived_ = 0;
};

// Env wrapper routing every read of an Open()ed file through a ReadGate.
// Writes (and Create()d scratch files) pass straight through.
class GatedEnv : public Env {
 public:
  explicit GatedEnv(Env& base) : base_(base) {}
  ReadGate& gate() { return gate_; }

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override {
    return base_.Create(name);
  }
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override {
    auto file = base_.Open(name);
    if (!file.ok()) return file.status();
    return Result<std::unique_ptr<BlockFile>>(std::unique_ptr<BlockFile>(
        new File(std::move(file).value(), &gate_)));
  }
  Status Delete(const std::string& name) override { return base_.Delete(name); }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_.Rename(from, to);
  }
  bool Exists(const std::string& name) const override {
    return base_.Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_.ListFiles();
  }
  size_t block_size() const override { return base_.block_size(); }
  IoStats& stats() override { return base_.stats(); }

 private:
  class File : public BlockFile {
   public:
    File(std::unique_ptr<BlockFile> base, ReadGate* gate)
        : base_(std::move(base)), gate_(gate) {}
    Status ReadBlock(uint64_t index, void* buf) override {
      gate_->Await();
      return base_->ReadBlock(index, buf);
    }
    Status WriteBlock(uint64_t index, const void* buf) override {
      return base_->WriteBlock(index, buf);
    }
    uint64_t NumBlocks() const override { return base_->NumBlocks(); }
    Status Truncate(uint64_t num_blocks) override {
      return base_->Truncate(num_blocks);
    }
    size_t block_size() const override { return base_->block_size(); }
    const std::string& name() const override { return base_->name(); }

   private:
    std::unique_ptr<BlockFile> base_;
    ReadGate* gate_;
  };

  Env& base_;
  ReadGate gate_;
};

TEST(DatasetHandleTest, IngestShardsCoverAxisAndStaySorted) {
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle_or = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(4));
  ASSERT_TRUE(handle_or.ok()) << handle_or.status().ToString();
  const DatasetHandle& handle = handle_or.value();

  ASSERT_EQ(handle.shards().size(), 4u);
  EXPECT_EQ(handle.num_objects(), objects.size());
  EXPECT_GT(handle.ingest_stats().io.total(), 0u);

  uint64_t total = 0;
  double prev_hi = -kInf;
  for (const ShardInfo& shard : handle.shards()) {
    // Contiguous slabs: each shard starts where the previous ended.
    EXPECT_EQ(shard.x_range.lo, prev_hi);
    prev_hi = shard.x_range.hi;
    total += shard.num_objects;
    EXPECT_GT(shard.num_objects, 0u);

    auto y_objects = ReadRecordFile<SpatialObject>(*env, shard.y_file);
    auto x_objects = ReadRecordFile<SpatialObject>(*env, shard.x_file);
    ASSERT_TRUE(y_objects.ok());
    ASSERT_TRUE(x_objects.ok());
    EXPECT_EQ(y_objects->size(), shard.num_objects);
    EXPECT_EQ(x_objects->size(), shard.num_objects);
    EXPECT_TRUE(
        std::is_sorted(y_objects->begin(), y_objects->end(), ObjectYLess));
    EXPECT_TRUE(
        std::is_sorted(x_objects->begin(), x_objects->end(), ObjectXLess));
    for (const SpatialObject& o : *x_objects) {
      EXPECT_TRUE(shard.x_range.Contains(o.x));
    }
  }
  EXPECT_EQ(handle.shards().back().x_range.hi, kInf);
  EXPECT_EQ(total, objects.size());
}

TEST(DatasetHandleTest, ManifestRoundtripAndDrop) {
  auto env = MakeEnvWithDataset(nullptr);
  auto ingested = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(3));
  ASSERT_TRUE(ingested.ok());

  auto opened = DatasetHandle::Open(*env, ingested->prefix());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->num_objects(), ingested->num_objects());
  // The dataset extent (cache-admission input) survives the manifest
  // roundtrip bit-for-bit.
  ASSERT_TRUE(ingested->has_bounds());
  ASSERT_TRUE(opened->has_bounds());
  EXPECT_EQ(opened->bounds(), ingested->bounds());
  ASSERT_EQ(opened->shards().size(), ingested->shards().size());
  for (size_t i = 0; i < opened->shards().size(); ++i) {
    EXPECT_EQ(opened->shards()[i].x_range, ingested->shards()[i].x_range);
    EXPECT_EQ(opened->shards()[i].num_objects,
              ingested->shards()[i].num_objects);
    EXPECT_EQ(opened->shards()[i].y_file, ingested->shards()[i].y_file);
  }

  // Ingest under an occupied prefix is refused: datasets are immutable.
  auto again = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(3));
  EXPECT_EQ(again.status().code(), Status::Code::kInvalidArgument);

  EXPECT_TRUE(opened->Drop().ok());
  auto after_drop = DatasetHandle::Open(*env, ingested->prefix());
  EXPECT_FALSE(after_drop.ok());
}

TEST(DatasetHandleTest, IngestIsThreadCountInvariant) {
  auto env1 = MakeEnvWithDataset(nullptr);
  auto env8 = MakeEnvWithDataset(nullptr);
  auto serial = DatasetHandle::Ingest(*env1, kDatasetFile, IngestOptions(4, 1));
  auto parallel =
      DatasetHandle::Ingest(*env8, kDatasetFile, IngestOptions(4, 8));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->shards().size(), parallel->shards().size());
  for (size_t i = 0; i < serial->shards().size(); ++i) {
    auto a = ReadRecordFile<SpatialObject>(*env1, serial->shards()[i].y_file);
    auto b = ReadRecordFile<SpatialObject>(*env8, parallel->shards()[i].y_file);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    EXPECT_EQ(std::memcmp(a->data(), b->data(),
                          a->size() * sizeof(SpatialObject)),
              0);
  }
}

TEST(DatasetHandleTest, FailedIngestNeverBricksThePrefix) {
  // Inject a fault at every possible transfer of the ingest in turn; after
  // each failure the prefix must be reusable (a leaked half-written
  // manifest would make every retry fail with InvalidArgument).
  auto base = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*base, kDatasetFile,
                           testing::RandomIntObjects(500, 1000, 11))
                  .ok());
  FaultEnv fault(*base);
  for (uint64_t k = 1;; ++k) {
    fault.ArmAfter(k);
    auto result = DatasetHandle::Ingest(fault, kDatasetFile, IngestOptions(2));
    fault.Disarm();
    if (result.ok()) {
      ASSERT_TRUE(result->Drop().ok());
      break;  // k exceeded the ingest's total transfers: sweep complete
    }
    auto retry = DatasetHandle::Ingest(fault, kDatasetFile, IngestOptions(2));
    ASSERT_TRUE(retry.ok()) << "prefix bricked after fault at transfer " << k
                            << ": " << retry.status().ToString();
    ASSERT_TRUE(retry->Drop().ok());
  }
}

TEST(ServeTest, SubUlpCoordinateCollapseStaysBitIdentical) {
  // Two objects whose y values differ by less than one ulp of the shifted
  // y - h/2: both pieces get y_lo == -500 exactly, and the x values are
  // chosen so the derived per-shard piece stream violates the PieceYLess
  // tie-break order. The server must detect this and fall back to a real
  // sort, keeping served answers bit-identical to the one-shot pipeline.
  std::vector<SpatialObject> objects;
  objects.push_back({10.0, 0.0, 1.0});
  objects.push_back({5.0, 1e-18, 1.0});
  for (int i = 0; i < 50; ++i) {
    objects.push_back({static_cast<double>((i * 13) % 97),
                       static_cast<double>((i * 7) % 89), 1.0});
  }
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());

  // Force the external (division) path despite the tiny cardinality.
  MaxRSOptions one_shot_options = OneShotOptions(4.0, 1000.0);
  one_shot_options.base_case_max_pieces = 8;
  auto one_shot = RunExactMaxRS(*env, kDatasetFile, one_shot_options);
  ASSERT_TRUE(one_shot.ok());

  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(1));
  ASSERT_TRUE(handle.ok());
  MaxRSServerOptions server_options = ServerOptions(1);
  server_options.base_case_max_pieces = 8;
  MaxRSServer server(*env, *handle, server_options);
  auto served = server.Submit(4.0, 1000.0);
  ASSERT_TRUE(served.ok());
  ExpectBitIdentical(*served, *one_shot);
}

TEST(ServeTest, BitIdenticalToOneShotAcrossRectSizes) {
  const double kRects[][2] = {
      {50, 50}, {100, 200}, {333, 77}, {1000, 1000}, {5, 5}};

  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(4));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(1));

  for (const auto& rect : kRects) {
    auto one_shot =
        RunExactMaxRS(*env, kDatasetFile, OneShotOptions(rect[0], rect[1]));
    ASSERT_TRUE(one_shot.ok());
    auto served = server.Submit(rect[0], rect[1]);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ExpectBitIdentical(*served, *one_shot);
    // Sanity beyond bit-identity: the answer is a real cover weight.
    EXPECT_EQ(served->total_weight,
              CoveredWeight(objects, Rect::Centered(served->location, rect[0],
                                                    rect[1])));
  }
}

TEST(ServeTest, BitIdenticalAcrossWorkerCountsAndShardCounts) {
  const double kW = 250, kH = 125;
  auto reference_env = MakeEnvWithDataset(nullptr);
  auto reference =
      RunExactMaxRS(*reference_env, kDatasetFile, OneShotOptions(kW, kH));
  ASSERT_TRUE(reference.ok());

  for (size_t shards : {1u, 4u}) {
    for (size_t workers : {1u, 2u, 8u}) {
      auto env = MakeEnvWithDataset(nullptr);
      auto handle =
          DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(shards));
      ASSERT_TRUE(handle.ok());
      MaxRSServer server(*env, *handle, ServerOptions(workers));
      auto served = server.Submit(kW, kH);
      ASSERT_TRUE(served.ok());
      ExpectBitIdentical(*served, *reference);
    }
  }
}

TEST(ServeTest, MultiPassMergeWhenShardsExceedFanIn) {
  // 16KB budget = 4 blocks = fan-in 3, below the 4 shards: the per-query
  // merges must go multi-pass to stay within M/B - 1 blocks, and the
  // result must still be bit-identical to the one-shot run on the same
  // budget — in the global-merge mode (whose k-way piece merge is the
  // multi-pass one) and in the per-shard mode (where the cross-shard span
  // merge sees up to 4 source parts).
  auto env = MakeEnvWithDataset(nullptr);
  MaxRSOptions one_shot_options = OneShotOptions(150, 300);
  one_shot_options.memory_bytes = 16 * 1024;
  auto one_shot = RunExactMaxRS(*env, kDatasetFile, one_shot_options);
  ASSERT_TRUE(one_shot.ok());

  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(4));
  ASSERT_TRUE(handle.ok());
  ASSERT_EQ(handle->shards().size(), 4u);
  for (ServeSolveMode mode :
       {ServeSolveMode::kGlobalMerge, ServeSolveMode::kPerShard}) {
    MaxRSServerOptions server_options = ServerOptions(1);
    server_options.memory_bytes = 16 * 1024;
    server_options.solve_mode = mode;
    MaxRSServer server(*env, *handle, server_options);
    auto served = server.Submit(150, 300);
    ASSERT_TRUE(served.ok());
    ExpectBitIdentical(*served, *one_shot);
  }
}

TEST(ServeTest, CacheKeyCanonicalizesSemanticallyEqualDimensions) {
  // Regression: the LRU key used raw (w, h) bit patterns, so semantically
  // equal dimensions with distinct representations (-0.0 vs +0.0, NaN
  // payloads) would miss each other. The canonicalizer folds them.
  EXPECT_EQ(CanonicalDimensionBits(-0.0), CanonicalDimensionBits(0.0));
  EXPECT_EQ(CanonicalDimensionBits(std::nan("0x123")),
            CanonicalDimensionBits(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(CanonicalDimensionBits(-std::numeric_limits<double>::quiet_NaN()),
            CanonicalDimensionBits(std::numeric_limits<double>::quiet_NaN()));
  // Ordinary values keep their exact bit patterns — 1.0 and the next
  // representable double above it stay distinct keys.
  EXPECT_NE(CanonicalDimensionBits(1.0),
            CanonicalDimensionBits(std::nextafter(1.0, 2.0)));

  // Submit-level behavior: neither -0.0 nor NaN passes validation, so no
  // canonicalized key ever reaches the cache — and the rejection performs
  // zero I/O.
  auto env = MakeEnvWithDataset(nullptr, /*n=*/100);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(1));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(1));
  const IoStatsSnapshot before = env->stats().Snapshot();
  EXPECT_EQ(server.Submit(-0.0, 10.0).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Submit(10.0, std::nan("")).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ((env->stats().Snapshot() - before).total(), 0u);
  EXPECT_EQ(server.counters().submitted, 0u);
}

TEST(ServeTest, CacheAdmissionRefusesRectsCoveringMostOfTheExtent) {
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->has_bounds());
  const double extent_w = handle->bounds().width();
  const double extent_h = handle->bounds().height();
  ASSERT_GT(extent_w, 0.0);
  ASSERT_GT(extent_h, 0.0);

  MaxRSServer server(*env, *handle, ServerOptions(1));  // fraction = 0.5

  // 0.9 x 0.9 of the extent covers 81% > 50%: executed on every submit,
  // never cached, counted as an admission reject.
  const double huge_w = extent_w * 0.9, huge_h = extent_h * 0.9;
  ASSERT_TRUE(server.Submit(huge_w, huge_h).ok());
  ASSERT_TRUE(server.Submit(huge_w, huge_h).ok());
  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.executed, 2u);
  EXPECT_EQ(counters.cache_hits, 0u);
  EXPECT_EQ(counters.cache_rejects, 2u);

  // 0.6 x 0.6 covers 36% <= 50%: cached as usual.
  const double ok_w = extent_w * 0.6, ok_h = extent_h * 0.6;
  ASSERT_TRUE(server.Submit(ok_w, ok_h).ok());
  ASSERT_TRUE(server.Submit(ok_w, ok_h).ok());
  counters = server.counters();
  EXPECT_EQ(counters.executed, 3u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.cache_rejects, 2u);

  // Raising the threshold to 1.0 admits the huge rect too.
  MaxRSServerOptions admit_all = ServerOptions(1);
  admit_all.cache_max_extent_fraction = 1.0;
  MaxRSServer permissive(*env, *handle, admit_all);
  ASSERT_TRUE(permissive.Submit(huge_w, huge_h).ok());
  ASSERT_TRUE(permissive.Submit(huge_w, huge_h).ok());
  counters = permissive.counters();
  EXPECT_EQ(counters.executed, 1u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.cache_rejects, 0u);
}

TEST(ServeTest, ColdQuerySkipsTheSortPhase) {
  auto env = MakeEnvWithDataset(nullptr);
  auto one_shot = RunExactMaxRS(*env, kDatasetFile, OneShotOptions(200, 200));
  ASSERT_TRUE(one_shot.ok());

  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(4));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(1));

  const IoStatsSnapshot before = env->stats().Snapshot();
  ASSERT_TRUE(server.Submit(200, 200).ok());
  const uint64_t cold_io = (env->stats().Snapshot() - before).total();
  // The per-query pipeline replaces the transform + two external sorts with
  // linear derivation passes, so a cold query costs strictly less than the
  // one-shot run of the same rect on the same budget.
  EXPECT_LT(cold_io, one_shot->stats.io.total());
  EXPECT_GT(cold_io, 0u);
}

TEST(ServeTest, WarmQueryPerformsZeroBlockTransfers) {
  auto env = MakeEnvWithDataset(nullptr);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(4));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));

  auto cold = server.Submit(300, 150);
  ASSERT_TRUE(cold.ok());
  const IoStatsSnapshot before = env->stats().Snapshot();
  auto warm = server.Submit(300, 150);
  ASSERT_TRUE(warm.ok());
  const IoStatsSnapshot delta = env->stats().Snapshot() - before;
  // Zero transfers of any kind — a fortiori zero sort-phase I/O.
  EXPECT_EQ(delta.blocks_read, 0u);
  EXPECT_EQ(delta.blocks_written, 0u);
  ExpectBitIdentical(*warm, *cold);

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, 2u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.executed, 1u);
}

TEST(ServeTest, LruEvictsLeastRecentlyUsedRect) {
  auto env = MakeEnvWithDataset(nullptr);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServerOptions options = ServerOptions(1);
  options.cache_entries = 1;
  MaxRSServer server(*env, *handle, options);

  ASSERT_TRUE(server.Submit(100, 100).ok());  // executed, cached
  ASSERT_TRUE(server.Submit(200, 200).ok());  // executed, evicts (100,100)
  ASSERT_TRUE(server.Submit(100, 100).ok());  // executed again (evicted)
  ASSERT_TRUE(server.Submit(100, 100).ok());  // hit
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.executed, 3u);
  EXPECT_EQ(counters.cache_hits, 1u);
}

TEST(ServeTest, EightInFlightQueriesAreDeterministic) {
  constexpr size_t kClients = 8;
  const double kRects[kClients][2] = {{50, 50},   {100, 100}, {150, 75},
                                      {75, 150},  {200, 200}, {250, 50},
                                      {50, 250},  {333, 333}};

  // Expected answers from the serial one-shot pipeline.
  std::vector<MaxRSResult> expected(kClients);
  {
    auto env = MakeEnvWithDataset(nullptr);
    for (size_t i = 0; i < kClients; ++i) {
      auto r = RunExactMaxRS(*env, kDatasetFile,
                             OneShotOptions(kRects[i][0], kRects[i][1]));
      ASSERT_TRUE(r.ok());
      expected[i] = *r;
    }
  }

  // Two rounds so cache warmth changes, results must not.
  auto env = MakeEnvWithDataset(nullptr);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(4));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(8));
  for (int round = 0; round < 2; ++round) {
    std::vector<MaxRSResult> got(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        auto r = server.Submit(kRects[i][0], kRects[i][1]);
        ASSERT_TRUE(r.ok());
        got[i] = *r;
      });
    }
    for (std::thread& t : clients) t.join();
    for (size_t i = 0; i < kClients; ++i) {
      ExpectBitIdentical(got[i], expected[i]);
    }
  }
  EXPECT_EQ(server.counters().submitted, 2 * kClients);
}

TEST(ServeTest, EmptyDatasetAnswersLikeOneShot) {
  auto env = NewMemEnv(4096);
  ASSERT_TRUE(WriteDataset(*env, kDatasetFile, {}).ok());
  auto one_shot = RunExactMaxRS(*env, kDatasetFile, OneShotOptions(100, 100));
  ASSERT_TRUE(one_shot.ok());

  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(0));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ASSERT_EQ(handle->shards().size(), 1u);
  MaxRSServer server(*env, *handle, ServerOptions(1));
  auto served = server.Submit(100, 100);
  ASSERT_TRUE(served.ok());
  ExpectBitIdentical(*served, *one_shot);
  EXPECT_EQ(served->total_weight, 0.0);
}

TEST(ServeTest, RejectsInvalidDimensionsAndShutDownServer) {
  auto env = MakeEnvWithDataset(nullptr, /*n=*/100);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(1));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(1));

  EXPECT_EQ(server.Submit(0.0, 10.0).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Submit(10.0, -1.0).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Submit(kInf, 10.0).status().code(),
            Status::Code::kInvalidArgument);

  ASSERT_TRUE(server.Submit(10, 10).ok());
  server.Shutdown();
  // Cached results stay servable; fresh rects are refused.
  EXPECT_TRUE(server.Submit(10, 10).ok());
  EXPECT_EQ(server.Submit(20, 20).status().code(),
            Status::Code::kNotSupported);

  // A bad configuration fails fast on every Submit, with zero I/O paid.
  MaxRSServerOptions bad = ServerOptions(1);
  bad.fanout = 1;
  MaxRSServer bad_server(*env, *handle, bad);
  const IoStatsSnapshot before = env->stats().Snapshot();
  EXPECT_EQ(bad_server.Submit(10, 10).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ((env->stats().Snapshot() - before).total(), 0u);
}

TEST(ServeTest, DedupFollowerHonorsItsOwnDeadline) {
  // Regression: a follower attached to an in-flight leader waited on the
  // leader's future unboundedly, inheriting the LEADER's deadline clock —
  // a follower could block far past its own budget behind a slow leader.
  // The follower now bounds its wait by its own deadline (measured from
  // its Submit) and gives up with kDeadlineExceeded, without touching the
  // leader's CancelToken.
  std::vector<SpatialObject> objects;
  auto base = MakeEnvWithDataset(&objects, /*n=*/400);
  auto handle = DatasetHandle::Ingest(*base, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());

  GatedEnv env(*base);
  MaxRSServerOptions options = ServerOptions(1);
  options.deadline_ms = 300;
  options.cache_entries = 0;
  MaxRSServer server(env, *handle, options);

  env.gate().Close();
  // Watchdog: even if a regression makes the follower wait for the leader
  // instead of its own deadline, the gate eventually opens and the test
  // fails on assertions instead of hanging.
  std::atomic<bool> gate_released{false};
  std::thread watchdog([&] {
    for (int i = 0; i < 100 && !gate_released.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    gate_released.store(true);
    env.gate().Open();
  });

  // Pin the only worker on a query parked at the read gate.
  std::thread blocker([&] { server.Submit(60, 60); });
  while (env.gate().arrived() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The leader for the deduplicated rect sits in the queue behind it.
  Result<MaxRSResult> leader_result = Status::Internal("leader not run");
  std::thread leader([&] { leader_result = server.Submit(150, 90); });
  while (server.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The follower attaches to the leader's pending slot and must give up
  // at ITS deadline — while the leader is still queued, the worker still
  // parked, and the gate still closed.
  Result<MaxRSResult> follower = server.Submit(150, 90);
  EXPECT_FALSE(gate_released.load());  // returned before the watchdog fired
  EXPECT_EQ(follower.status().code(), Status::Code::kDeadlineExceeded);
  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.dedup_hits, 1u);
  EXPECT_GE(counters.deadlines, 1u);

  gate_released.store(true);
  env.gate().Open();
  watchdog.join();
  blocker.join();
  leader.join();

  // The follower's timeout cancelled nothing: the leader ran to its own
  // conclusion (here its own deadline — its clock started even earlier),
  // and the server stays fully serviceable afterwards.
  EXPECT_EQ(leader_result.status().code(), Status::Code::kDeadlineExceeded);
  auto after = server.Submit(70, 70);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(ServeTest, CacheAdmissionDecidesOnTheCanonicalKey) {
  // Regression companion to CacheKeyCanonicalizesSemanticallyEqualDimensions:
  // the admission check used the raw submitted dimensions while the LRU key
  // used canonical bits, so two bit-distinct spellings of one dimension
  // could disagree about cacheability. Admission now evaluates the
  // canonical key itself — every spelling that folds to the same key gets
  // the same verdict.
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->has_bounds());
  const double extent_w = handle->bounds().width();
  const double extent_h = handle->bounds().height();

  MaxRSServer server(*env, *handle, ServerOptions(1));  // fraction = 0.5

  EXPECT_EQ(server.AdmitsToCache(-0.0, 10.0), server.AdmitsToCache(0.0, 10.0));
  EXPECT_EQ(server.AdmitsToCache(10.0, -0.0), server.AdmitsToCache(10.0, 0.0));
  const double canonical_nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(server.AdmitsToCache(std::nan("0x123"), 10.0),
            server.AdmitsToCache(canonical_nan, 10.0));
  EXPECT_EQ(server.AdmitsToCache(-canonical_nan, 10.0),
            server.AdmitsToCache(canonical_nan, 10.0));

  // The policy itself is unchanged: modest rects are admitted, rects
  // covering most of the extent are refused (matches the Submit-level
  // behavior pinned by CacheAdmissionRefusesRectsCoveringMostOfTheExtent).
  EXPECT_TRUE(server.AdmitsToCache(extent_w * 0.6, extent_h * 0.6));
  EXPECT_FALSE(server.AdmitsToCache(extent_w * 0.9, extent_h * 0.9));
}

TEST(ServeTest, QueueDepthStaysConsistentWithCounters) {
  // Regression: queue_depth() read the queue's own size outside the
  // counters mutex, so a sampler could observe a pushed request before
  // the paired submitted++ and report queue_depth > submitted. Both
  // snapshots now move under the counters mutex; depth can only
  // under-report transiently (the safe direction).
  std::vector<SpatialObject> objects;
  auto base = MakeEnvWithDataset(&objects, /*n=*/400);
  auto handle = DatasetHandle::Ingest(*base, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());

  // Deterministic part: worker parked at the gate, one request queued.
  {
    GatedEnv env(*base);
    MaxRSServerOptions options = ServerOptions(1);
    options.cache_entries = 0;
    MaxRSServer server(env, *handle, options);
    EXPECT_EQ(server.queue_depth(), 0u);

    env.gate().Close();
    std::thread blocker([&] { server.Submit(60, 60); });
    while (env.gate().arrived() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::thread queued([&] { server.Submit(90, 90); });
    while (server.queue_depth() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const size_t depth = server.queue_depth();
    const ServerCounters counters = server.counters();
    EXPECT_EQ(depth, 1u);
    EXPECT_LE(depth, counters.submitted - counters.executed);

    env.gate().Open();
    blocker.join();
    queued.join();
    EXPECT_EQ(server.queue_depth(), 0u);
  }

  // Racy part: hammer Submit from several threads while a sampler checks
  // the invariant. Depth is read FIRST; submitted is monotone, so any
  // post-fix interleaving satisfies depth <= submitted.
  {
    MaxRSServerOptions options = ServerOptions(2);
    options.cache_entries = 0;
    MaxRSServer server(*base, *handle, options);
    std::atomic<bool> done{false};
    std::thread sampler([&] {
      while (!done.load()) {
        const size_t depth = server.queue_depth();
        const ServerCounters counters = server.counters();
        EXPECT_LE(depth, counters.submitted);
      }
    });
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        for (int i = 0; i < 25; ++i) {
          ASSERT_TRUE(server.Submit(20 + t * 25 + i, 35 + t * 25 + i).ok());
        }
      });
    }
    for (std::thread& t : clients) t.join();
    done.store(true);
    sampler.join();
    EXPECT_EQ(server.queue_depth(), 0u);
    EXPECT_EQ(server.counters().submitted, 100u);
  }
}

// --- The structured query API: Submit(QuerySpec) / SubmitAsync ---

TEST(ServeTest, QuerySpecSubmitReportsServedFromAndPerQueryIo) {
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));

  QuerySpec spec;
  spec.width = 150;
  spec.height = 300;
  auto cold = server.Submit(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->served_from, ServedFrom::kExecuted);
  EXPECT_GT(cold->io.total(), 0u);  // an execution really moved blocks
  EXPECT_GE(cold->batch_size, 1u);

  auto warm = server.Submit(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->served_from, ServedFrom::kCache);
  EXPECT_EQ(warm->io.total(), 0u);  // a cache hit owes the Env nothing
  ExpectBitIdentical(cold->result, warm->result);

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, 2u);
  EXPECT_EQ(counters.executed, 1u);
  EXPECT_EQ(counters.cache_hits, 1u);
}

TEST(ServeTest, LegacySubmitDelegatesToTheStructuredPath) {
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));

  QuerySpec spec;
  spec.width = 120;
  spec.height = 260;
  auto structured = server.Submit(spec);
  ASSERT_TRUE(structured.ok());
  auto legacy = server.Submit(120.0, 260.0);
  ASSERT_TRUE(legacy.ok());
  ExpectBitIdentical(structured->result, legacy.value());
  // The wrapper went through the same counters: one executed, one cached.
  EXPECT_EQ(server.counters().submitted, 2u);
  EXPECT_EQ(server.counters().cache_hits, 1u);
}

TEST(ServeTest, SubmitAsyncCompletesAndMatchesBlockingSubmit) {
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(2));

  const double rects[][2] = {{100, 100}, {60, 340}, {250, 40}, {100, 100}};
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (const auto& rect : rects) {
    QuerySpec spec;
    spec.width = rect[0];
    spec.height = rect[1];
    futures.push_back(server.SubmitAsync(spec));
  }
  std::vector<MaxRSResult> async_results;
  for (auto& future : futures) {
    Result<QueryResponse> response = future.get();  // every future completes
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    async_results.push_back(response->result);
  }
  for (size_t i = 0; i < 4; ++i) {
    QuerySpec spec;
    spec.width = rects[i][0];
    spec.height = rects[i][1];
    auto blocking = server.Submit(spec);
    ASSERT_TRUE(blocking.ok());
    ExpectBitIdentical(async_results[i], blocking->result);
  }
  // The duplicate rect was deduplicated or cached, never run twice.
  EXPECT_EQ(server.counters().executed, 3u);

  // A spec rejection surfaces on an already-ready future, not a throw.
  QuerySpec bad;
  bad.width = -1;
  bad.height = 10;
  auto rejected = server.SubmitAsync(bad);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().status().code(), Status::Code::kInvalidArgument);

  // After Shutdown every future still completes — with kNotSupported.
  server.Shutdown();
  QuerySpec late;
  late.width = 77;
  late.height = 77;
  auto refused = server.SubmitAsync(late);
  ASSERT_EQ(refused.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(refused.get().status().code(), Status::Code::kNotSupported);
}

TEST(ServeTest, QuerySpecValidationIsTheSingleGate) {
  std::vector<SpatialObject> objects;
  auto env = MakeEnvWithDataset(&objects);
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());
  MaxRSServer server(*env, *handle, ServerOptions(1));

  const IoStatsSnapshot before = env->stats().Snapshot();
  QuerySpec bad_dims;
  bad_dims.width = 0.0;
  bad_dims.height = 10.0;
  EXPECT_EQ(server.Submit(bad_dims).status().code(),
            Status::Code::kInvalidArgument);
  QuerySpec bad_deadline;
  bad_deadline.width = 10;
  bad_deadline.height = 10;
  bad_deadline.deadline_ms = -1;
  EXPECT_EQ(server.Submit(bad_deadline).status().code(),
            Status::Code::kInvalidArgument);
  // Rejections never reached the execution path.
  EXPECT_EQ((env->stats().Snapshot() - before).total(), 0u);
  EXPECT_EQ(server.counters().submitted, 0u);
}

TEST(ServeTest, PerQueryModeOverridesAreBitIdenticalToDefaults) {
  // The soundness property behind the (w,h)-only cache key: pruning and
  // routing overrides change the execution strategy, never the answer.
  // Weight-skewed data (the pruning_equivalence_test recipe: every third
  // point in a heavy strip) at 16 shards guarantees the kAuto baseline
  // genuinely prunes, so the pruning=off override has something to turn
  // off.
  auto env = NewMemEnv(4096);
  std::vector<SpatialObject> objects =
      testing::RandomIntObjects(2816, /*extent=*/6000, /*seed=*/19);
  for (size_t i = 0; i < objects.size(); i += 3) {
    objects[i].x = 4000.0 + std::floor(objects[i].x / 3.0);
    objects[i].y = std::floor(objects[i].y / 20.0);
    objects[i].w = 50.0;
  }
  ASSERT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  DatasetHandleOptions ingest;
  ingest.shard_count = 16;
  ingest.memory_bytes = 512 * 1024;
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
  ASSERT_TRUE(handle.ok());
  MaxRSServerOptions options = ServerOptions(2);
  options.cache_entries = 0;  // force a genuine execution per submit
  MaxRSServer server(*env, *handle, options);

  QuerySpec defaults;
  defaults.width = 200;
  defaults.height = 200;
  auto baseline = server.Submit(defaults);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->served_from, ServedFrom::kExecuted);

  QuerySpec materialized = defaults;
  materialized.routing = ServeRoutingMode::kMaterialized;
  auto via_materialized = server.Submit(materialized);
  ASSERT_TRUE(via_materialized.ok());
  ExpectBitIdentical(baseline->result, via_materialized->result);

  const uint64_t unpruned_before = server.counters().unpruned;
  QuerySpec unpruned = defaults;
  unpruned.pruning = ServePruningMode::kOff;
  auto via_unpruned = server.Submit(unpruned);
  ASSERT_TRUE(via_unpruned.ok());
  ExpectBitIdentical(baseline->result, via_unpruned->result);
  // The override reached the execution layer: the off-run's own I/O
  // attribution shows zero shard-skipping while the kAuto baseline pruned.
  EXPECT_EQ(via_unpruned->io.shards_pruned + via_unpruned->io.bound_skips, 0u);
  EXPECT_GT(baseline->io.shards_pruned + baseline->io.bound_skips, 0u);
  // A deliberate pruning=off is a choice, not a degradation: the kAuto
  // fallback counter must not move.
  EXPECT_EQ(server.counters().unpruned, unpruned_before);

  QuerySpec both = defaults;
  both.routing = ServeRoutingMode::kMaterialized;
  both.pruning = ServePruningMode::kOff;
  auto via_both = server.Submit(both);
  ASSERT_TRUE(via_both.ok());
  ExpectBitIdentical(baseline->result, via_both->result);
}

TEST(ServeTest, DeadlineOverrideBoundsAFollowerWithUnboundedDefaults) {
  // options.deadline_ms = 0 (no server-wide deadline); the per-query
  // override alone must bound the dedup follower's wait.
  std::vector<SpatialObject> objects;
  auto base = MakeEnvWithDataset(&objects, /*n=*/400);
  auto handle = DatasetHandle::Ingest(*base, kDatasetFile, IngestOptions(2));
  ASSERT_TRUE(handle.ok());

  GatedEnv env(*base);
  MaxRSServerOptions options = ServerOptions(1);
  options.cache_entries = 0;
  MaxRSServer server(env, *handle, options);

  env.gate().Close();
  std::atomic<bool> gate_released{false};
  std::thread watchdog([&] {
    for (int i = 0; i < 100 && !gate_released.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    gate_released.store(true);
    env.gate().Open();
  });

  // Pin the only worker, then park a leader for the deduplicated rect in
  // the queue behind it.
  std::thread blocker([&] { server.Submit(60, 60); });
  while (env.gate().arrived() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<MaxRSResult> leader_result = Status::Internal("leader not run");
  std::thread leader([&] { leader_result = server.Submit(150, 90); });
  while (server.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  QuerySpec spec;
  spec.width = 150;
  spec.height = 90;
  spec.deadline_ms = 150;
  auto follower = server.Submit(spec);
  EXPECT_FALSE(gate_released.load());  // returned before the watchdog fired
  EXPECT_EQ(follower.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(server.counters().dedup_hits, 1u);
  EXPECT_GE(server.counters().deadlines, 1u);

  gate_released.store(true);
  env.gate().Open();
  watchdog.join();
  blocker.join();
  leader.join();

  // The follower's expiry cancelled nothing: with no deadline of its own
  // the leader ran to completion once the gate opened.
  ASSERT_TRUE(leader_result.ok()) << leader_result.status().ToString();
}

}  // namespace
}  // namespace maxrs
