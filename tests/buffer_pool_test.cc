#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/env.h"

namespace maxrs {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(4096);
    auto file_or = env_->Create("f");
    ASSERT_TRUE(file_or.ok());
    file_ = std::move(file_or).value();
    std::vector<char> buf(4096);
    for (int b = 0; b < 16; ++b) {
      std::memset(buf.data(), 'a' + b, buf.size());
      ASSERT_TRUE(file_->WriteBlock(b, buf.data()).ok());
    }
    env_->stats().Reset();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockFile> file_;
};

TEST_F(BufferPoolTest, HitsAreFree) {
  BufferPool pool(*env_, 4 * 4096);
  {
    auto p = pool.Fetch(*file_, 0);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], 'a');
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);
  {
    auto p = pool.Fetch(*file_, 0);
    ASSERT_TRUE(p.ok());
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);  // second fetch: hit
  EXPECT_EQ(pool.pool_stats().hits, 1u);
  EXPECT_EQ(pool.pool_stats().misses, 1u);
}

TEST_F(BufferPoolTest, LruEvictionOrder) {
  BufferPool pool(*env_, 2 * 4096);
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());
  ASSERT_TRUE(pool.Fetch(*file_, 1).ok());
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());  // 0 becomes MRU
  ASSERT_TRUE(pool.Fetch(*file_, 2).ok());  // evicts 1 (LRU)
  env_->stats().Reset();
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());  // still cached
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 0u);
  ASSERT_TRUE(pool.Fetch(*file_, 1).ok());  // was evicted: counted read
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  BufferPool pool(*env_, 1 * 4096);
  {
    auto p = pool.Fetch(*file_, 3);
    ASSERT_TRUE(p.ok());
    p->data()[0] = 'Z';
    p->MarkDirty();
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 0u);  // not yet
  ASSERT_TRUE(pool.Fetch(*file_, 4).ok());  // evicts dirty block 3
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 1u);
  // Verify persisted content.
  std::vector<char> buf(4096);
  ASSERT_TRUE(file_->ReadBlock(3, buf.data()).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(*env_, 2 * 4096);
  auto p0 = pool.Fetch(*file_, 0);
  ASSERT_TRUE(p0.ok());
  auto p1 = pool.Fetch(*file_, 1);
  ASSERT_TRUE(p1.ok());
  // Both frames pinned: a third fetch must fail, not evict.
  auto p2 = pool.Fetch(*file_, 2);
  EXPECT_FALSE(p2.ok());
  EXPECT_EQ(p2.status().code(), Status::Code::kResourceExhausted);
  p0->Release();
  auto p3 = pool.Fetch(*file_, 2);  // now frame 0 is evictable
  EXPECT_TRUE(p3.ok());
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  BufferPool pool(*env_, 4 * 4096);
  {
    auto p = pool.Fetch(*file_, 5);
    ASSERT_TRUE(p.ok());
    p->data()[1] = 'Q';
    p->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> buf(4096);
  ASSERT_TRUE(file_->ReadBlock(5, buf.data()).ok());
  EXPECT_EQ(buf[1], 'Q');
  // Flushing twice does not double-write.
  env_->stats().Reset();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 0u);
}

TEST_F(BufferPoolTest, ZeroFillNewAppendsWithoutRead) {
  BufferPool pool(*env_, 4 * 4096);
  env_->stats().Reset();
  {
    auto p = pool.Fetch(*file_, 16, /*zero_fill_new=*/true);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], 0);
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 0u);
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 1u);  // allocation write
}

TEST_F(BufferPoolTest, EvictDropsFileBlocks) {
  BufferPool pool(*env_, 4 * 4096);
  {
    auto p = pool.Fetch(*file_, 0);
    ASSERT_TRUE(p.ok());
    p->MarkDirty();
  }
  ASSERT_TRUE(pool.Evict(*file_).ok());
  env_->stats().Reset();
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);  // re-fetched
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  BufferPool pool(*env_, 1 * 4096);
  auto p0 = pool.Fetch(*file_, 0);
  ASSERT_TRUE(p0.ok());
  PageHandle moved = std::move(p0).value();
  EXPECT_TRUE(moved.valid());
  // Still pinned: fetch of a different block cannot evict.
  EXPECT_FALSE(pool.Fetch(*file_, 1).ok());
  moved.Release();
  EXPECT_TRUE(pool.Fetch(*file_, 1).ok());
}

// --- Concurrency battery: the serve layer shares one pool across all query
// workers (io/pooled_env.h), so pin/evict/dirty transitions race across
// threads by design. These suites run under the TSan CI job (`sanitize`
// label): a missing lock or a write-back racing a re-fetch surfaces there
// even when the assertions below happen to pass.

TEST_F(BufferPoolTest, ConcurrentReadersSeeConsistentBlocks) {
  // 8 readers hammer 16 blocks through 4 frames: constant miss/evict churn
  // with frames handed between threads. Every fetch must observe the
  // block's real contents — a frame reused while still visible to another
  // thread shows up as a wrong fill byte.
  BufferPool pool(*env_, 4 * 4096, /*pin_wait_ms=*/2000);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::atomic<int> wrong_bytes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t block = static_cast<uint64_t>((i * 7 + t * 3) % 16);
        auto p = pool.Fetch(*file_, block);
        if (!p.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (p->data()[0] != static_cast<char>('a' + block)) {
          wrong_bytes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(wrong_bytes.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  const BufferPoolStats stats = pool.pool_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST_F(BufferPoolTest, ConcurrentDirtyWritebackKeepsEveryUpdate) {
  // 8 writers each own one block and write a running sequence number to it
  // through the pool, with only 4 frames — dirty frames evict and write
  // back continuously while other threads fetch. After a final flush each
  // block must hold its owner's last value: a stale byte means an eviction
  // write-back raced a re-fetch or a dirty bit was lost.
  BufferPool pool(*env_, 4 * 4096, /*pin_wait_ms=*/2000);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        auto p = pool.Fetch(*file_, static_cast<uint64_t>(t));
        ASSERT_TRUE(p.ok()) << p.status().ToString();
        p->data()[0] = static_cast<char>(i + 1);
        p->MarkDirty();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> buf(4096);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(file_->ReadBlock(static_cast<uint64_t>(t), buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<char>(kIters)) << "block " << t;
  }
}

TEST_F(BufferPoolTest, ConcurrentFetchAndFlushRace) {
  // Dirty fetches racing FlushAll: flush walks every frame and writes back
  // dirty ones while writers keep pinning and re-dirtying them. No
  // assertion beyond clean completion — the point is the interleaving
  // under TSan.
  BufferPool pool(*env_, 2 * 4096, /*pin_wait_ms=*/2000);
  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load()) {
      EXPECT_TRUE(pool.FlushAll().ok());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        auto p = pool.Fetch(*file_, static_cast<uint64_t>((t + i) % 6));
        if (!p.ok()) continue;  // transient all-pinned is legal here
        p->data()[1] = static_cast<char>(t);
        p->MarkDirty();
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true);
  flusher.join();
}

TEST_F(BufferPoolTest, FetchWaitsForUnpinInsteadOfFailing) {
  // Eviction-under-pin starvation regression: with every frame pinned, a
  // Fetch inside the pin-wait bound must park on the unpin signal and
  // succeed once a frame frees — the single-owner behaviour (immediate
  // ResourceExhausted) starved concurrent queries sharing a small pool.
  BufferPool pool(*env_, 1 * 4096, /*pin_wait_ms=*/30000);
  auto p0 = pool.Fetch(*file_, 0);
  ASSERT_TRUE(p0.ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    p0->Release();
  });
  auto p1 = pool.Fetch(*file_, 1);  // must wait out the pin, not fail
  EXPECT_TRUE(p1.ok()) << p1.status().ToString();
  releaser.join();
}

TEST_F(BufferPoolTest, FetchTimesOutWhenPinNeverReleases) {
  // The wait is bounded: a pin that never releases must surface as
  // ResourceExhausted after the configured wait, not hang the caller.
  BufferPool pool(*env_, 1 * 4096, /*pin_wait_ms=*/50);
  auto p0 = pool.Fetch(*file_, 0);
  ASSERT_TRUE(p0.ok());
  auto p1 = pool.Fetch(*file_, 1);
  EXPECT_FALSE(p1.ok());
  EXPECT_EQ(p1.status().code(), Status::Code::kResourceExhausted);
}

}  // namespace
}  // namespace maxrs
