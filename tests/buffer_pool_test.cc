#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "io/env.h"

namespace maxrs {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(4096);
    auto file_or = env_->Create("f");
    ASSERT_TRUE(file_or.ok());
    file_ = std::move(file_or).value();
    std::vector<char> buf(4096);
    for (int b = 0; b < 16; ++b) {
      std::memset(buf.data(), 'a' + b, buf.size());
      ASSERT_TRUE(file_->WriteBlock(b, buf.data()).ok());
    }
    env_->stats().Reset();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockFile> file_;
};

TEST_F(BufferPoolTest, HitsAreFree) {
  BufferPool pool(*env_, 4 * 4096);
  {
    auto p = pool.Fetch(*file_, 0);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], 'a');
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);
  {
    auto p = pool.Fetch(*file_, 0);
    ASSERT_TRUE(p.ok());
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);  // second fetch: hit
  EXPECT_EQ(pool.pool_stats().hits, 1u);
  EXPECT_EQ(pool.pool_stats().misses, 1u);
}

TEST_F(BufferPoolTest, LruEvictionOrder) {
  BufferPool pool(*env_, 2 * 4096);
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());
  ASSERT_TRUE(pool.Fetch(*file_, 1).ok());
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());  // 0 becomes MRU
  ASSERT_TRUE(pool.Fetch(*file_, 2).ok());  // evicts 1 (LRU)
  env_->stats().Reset();
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());  // still cached
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 0u);
  ASSERT_TRUE(pool.Fetch(*file_, 1).ok());  // was evicted: counted read
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  BufferPool pool(*env_, 1 * 4096);
  {
    auto p = pool.Fetch(*file_, 3);
    ASSERT_TRUE(p.ok());
    p->data()[0] = 'Z';
    p->MarkDirty();
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 0u);  // not yet
  ASSERT_TRUE(pool.Fetch(*file_, 4).ok());  // evicts dirty block 3
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 1u);
  // Verify persisted content.
  std::vector<char> buf(4096);
  ASSERT_TRUE(file_->ReadBlock(3, buf.data()).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(*env_, 2 * 4096);
  auto p0 = pool.Fetch(*file_, 0);
  ASSERT_TRUE(p0.ok());
  auto p1 = pool.Fetch(*file_, 1);
  ASSERT_TRUE(p1.ok());
  // Both frames pinned: a third fetch must fail, not evict.
  auto p2 = pool.Fetch(*file_, 2);
  EXPECT_FALSE(p2.ok());
  EXPECT_EQ(p2.status().code(), Status::Code::kResourceExhausted);
  p0->Release();
  auto p3 = pool.Fetch(*file_, 2);  // now frame 0 is evictable
  EXPECT_TRUE(p3.ok());
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  BufferPool pool(*env_, 4 * 4096);
  {
    auto p = pool.Fetch(*file_, 5);
    ASSERT_TRUE(p.ok());
    p->data()[1] = 'Q';
    p->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> buf(4096);
  ASSERT_TRUE(file_->ReadBlock(5, buf.data()).ok());
  EXPECT_EQ(buf[1], 'Q');
  // Flushing twice does not double-write.
  env_->stats().Reset();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 0u);
}

TEST_F(BufferPoolTest, ZeroFillNewAppendsWithoutRead) {
  BufferPool pool(*env_, 4 * 4096);
  env_->stats().Reset();
  {
    auto p = pool.Fetch(*file_, 16, /*zero_fill_new=*/true);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], 0);
  }
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 0u);
  EXPECT_EQ(env_->stats().Snapshot().blocks_written, 1u);  // allocation write
}

TEST_F(BufferPoolTest, EvictDropsFileBlocks) {
  BufferPool pool(*env_, 4 * 4096);
  {
    auto p = pool.Fetch(*file_, 0);
    ASSERT_TRUE(p.ok());
    p->MarkDirty();
  }
  ASSERT_TRUE(pool.Evict(*file_).ok());
  env_->stats().Reset();
  ASSERT_TRUE(pool.Fetch(*file_, 0).ok());
  EXPECT_EQ(env_->stats().Snapshot().blocks_read, 1u);  // re-fetched
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  BufferPool pool(*env_, 1 * 4096);
  auto p0 = pool.Fetch(*file_, 0);
  ASSERT_TRUE(p0.ok());
  PageHandle moved = std::move(p0).value();
  EXPECT_TRUE(moved.valid());
  // Still pinned: fetch of a different block cannot evict.
  EXPECT_FALSE(pool.Fetch(*file_, 1).ok());
  moved.Release();
  EXPECT_TRUE(pool.Fetch(*file_, 1).ok());
}

}  // namespace
}  // namespace maxrs
