// Property-based sweeps: invariants that must hold for every random
// instance, checked across parameterized configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/division.h"
#include "core/merge_sweep.h"
#include "core/plane_sweep.h"
#include "io/buffer_pool.h"
#include "io/external_sort.h"
#include "io/record_io.h"
#include "io/temp_manager.h"
#include "test_util.h"
#include "util/rng.h"

namespace maxrs {
namespace {

// --- Slab-file invariants ----------------------------------------------------

/// True stabbing extremum over x within `slab` for the stratum containing
/// `y`, computed by brute force over the pieces.
double StabbingExtremum(const std::vector<PieceRecord>& pieces,
                        const Interval& slab, double y, bool want_max) {
  // Collect x-breakpoints of active pieces, then evaluate each elementary
  // interval's stabbing sum at its midpoint.
  std::vector<double> xs = {slab.lo, slab.hi};
  for (const PieceRecord& p : pieces) {
    if (y >= p.y_lo && y < p.y_hi) {
      xs.push_back(p.x_lo);
      xs.push_back(p.x_hi);
    }
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  double best = want_max ? -kInf : kInf;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    // Midpoint of possibly-infinite elementary intervals: nudge inward.
    double mid;
    if (std::isinf(xs[i]) && std::isinf(xs[i + 1])) {
      mid = 0;
    } else if (std::isinf(xs[i])) {
      mid = xs[i + 1] - 1;
    } else if (std::isinf(xs[i + 1])) {
      mid = xs[i] + 1;
    } else {
      mid = (xs[i] + xs[i + 1]) / 2;
    }
    double sum = 0;
    for (const PieceRecord& p : pieces) {
      if (y >= p.y_lo && y < p.y_hi && mid >= p.x_lo && mid < p.x_hi) {
        sum += p.w;
      }
    }
    best = want_max ? std::max(best, sum) : std::min(best, sum);
  }
  return best;
}

struct SlabSweepCase {
  size_t n;
  uint64_t extent;
  double rect_w;
  double rect_h;
  SweepObjective objective;
};

class SlabFileInvariantTest : public ::testing::TestWithParam<SlabSweepCase> {};

TEST_P(SlabFileInvariantTest, TuplesDescribeTrueExtremaOfEveryStratum) {
  const SlabSweepCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed,
                                             /*random_weights=*/true);
    std::vector<PieceRecord> pieces;
    for (const auto& o : objects) {
      pieces.push_back({o.x, o.x + c.rect_w, o.y, o.y + c.rect_h, o.w});
    }
    const Interval slab{-kInf, kInf};
    auto tuples = PlaneSweep(pieces, slab, c.objective);
    ASSERT_FALSE(tuples.empty());
    const bool want_max = c.objective == SweepObjective::kMaximize;
    for (size_t i = 0; i < tuples.size(); ++i) {
      const SlabTuple& t = tuples[i];
      // (1) strictly increasing y.
      if (i > 0) {
        ASSERT_LT(tuples[i - 1].y, t.y);
      }
      // (2) the interval lies within the slab and is non-degenerate.
      ASSERT_LT(t.x_lo, t.x_hi);
      // (3) the sum equals the true extremum for the stratum.
      ASSERT_EQ(t.sum, StabbingExtremum(pieces, slab, t.y, want_max))
          << "tuple " << i << " seed " << seed;
      // (4) the interval actually attains the sum (probe its midpoint).
      const double mid = std::isinf(t.x_lo)
                             ? (std::isinf(t.x_hi) ? 0.0 : t.x_hi - 1)
                             : (std::isinf(t.x_hi) ? t.x_lo + 1
                                                   : (t.x_lo + t.x_hi) / 2);
      double at_mid = 0;
      for (const PieceRecord& p : pieces) {
        if (t.y >= p.y_lo && t.y < p.y_hi && mid >= p.x_lo && mid < p.x_hi) {
          at_mid += p.w;
        }
      }
      ASSERT_EQ(at_mid, t.sum) << "tuple " << i;
    }
    // (5) the final tuple closes everything.
    ASSERT_EQ(tuples.back().sum, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SlabFileInvariantTest,
    ::testing::Values(SlabSweepCase{40, 60, 8, 8, SweepObjective::kMaximize},
                      SlabSweepCase{40, 60, 8, 8, SweepObjective::kMinimize},
                      SlabSweepCase{80, 30, 5, 9, SweepObjective::kMaximize},
                      SlabSweepCase{25, 200, 50, 20, SweepObjective::kMaximize},
                      SlabSweepCase{60, 20, 6, 6, SweepObjective::kMinimize}));

// --- Division + MergeSweep == global PlaneSweep -------------------------------

class DivideMergeRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DivideMergeRoundTripTest, ComposingChildrenReproducesGlobalSweep) {
  const size_t fanout = GetParam();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto env = NewMemEnv(512);
    TempFileManager temps(*env, "prop");
    auto objects =
        testing::RandomIntObjects(120, 150, seed, /*random_weights=*/true);
    std::vector<PieceRecord> pieces;
    std::vector<EdgeRecord> edges;
    for (const auto& o : objects) {
      pieces.push_back({o.x, o.x + 30, o.y, o.y + 15, o.w});
      edges.push_back({o.x});
      edges.push_back({o.x + 30});
    }
    std::stable_sort(pieces.begin(), pieces.end(),
                     [](const PieceRecord& a, const PieceRecord& b) {
                       return a.y_lo < b.y_lo;
                     });
    std::sort(edges.begin(), edges.end(),
              [](const EdgeRecord& a, const EdgeRecord& b) { return a.x < b.x; });
    ASSERT_TRUE(WriteRecordFile(*env, "pieces", pieces).ok());
    ASSERT_TRUE(WriteRecordFile(*env, "edges", edges).ok());

    auto division =
        DividePieces(temps, "pieces", "edges", Interval{-kInf, kInf}, fanout);
    ASSERT_TRUE(division.ok()) << division.status().ToString();

    // Child slab-files by in-memory sweep, merged by MergeSweep.
    std::vector<std::string> child_files;
    for (size_t i = 0; i < division->children.size(); ++i) {
      const ChildSlab& child = division->children[i];
      auto child_pieces = ReadRecordFile<PieceRecord>(*env, child.piece_file);
      ASSERT_TRUE(child_pieces.ok());
      const std::string name = "slab" + std::to_string(i);
      ASSERT_TRUE(
          WriteRecordFile(*env, name, PlaneSweep(*child_pieces, child.x_range))
              .ok());
      child_files.push_back(name);
    }
    ASSERT_TRUE(MergeSweep(*env, division->children, child_files,
                           division->span_file, "merged")
                    .ok());
    auto merged = ReadRecordFile<SlabTuple>(*env, "merged");
    ASSERT_TRUE(merged.ok());

    // Reference: the unsplit global sweep. Compare the best sum and the
    // per-y maxima (the merged stream may contain more event ys due to
    // span events; compare on the union of event ys via step functions).
    auto global = PlaneSweep(pieces, Interval{-kInf, kInf});
    auto step_value = [](const std::vector<SlabTuple>& tuples, double y) {
      double value = 0.0;
      for (const SlabTuple& t : tuples) {
        if (t.y <= y) {
          value = t.sum;
        } else {
          break;
        }
      }
      return value;
    };
    for (const SlabTuple& t : *merged) {
      ASSERT_EQ(t.sum, step_value(global, t.y))
          << "y=" << t.y << " fanout=" << fanout << " seed=" << seed;
    }
    for (const SlabTuple& t : global) {
      ASSERT_EQ(step_value(*merged, t.y), t.sum)
          << "y=" << t.y << " fanout=" << fanout << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, DivideMergeRoundTripTest,
                         ::testing::Values(2, 3, 5, 9));

// --- Record IO / sort across block sizes --------------------------------------

class BlockSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockSizeSweepTest, RecordRoundTripAndSort) {
  const size_t block_size = GetParam();
  auto env = NewMemEnv(block_size);
  struct Rec {
    uint64_t key;
    uint64_t seq;
    double payload;
  };
  Rng rng(block_size);
  std::vector<Rec> records;
  for (uint64_t i = 0; i < 3000; ++i) {
    records.push_back({rng.NextU64() % 500, i, rng.NextDouble()});
  }
  ASSERT_TRUE(WriteRecordFile(*env, "in", records).ok());
  auto back = ReadRecordFile<Rec>(*env, "in");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ((*back)[i].seq, records[i].seq);
  }

  // Sort under a total order (key, then seq) — the comparator shape the
  // determinism contract asks for; the output is then one canonical
  // sequence with strictly increasing (key, seq).
  ASSERT_TRUE((ExternalSort<Rec>(
                   *env, "in", "out",
                   [](const Rec& a, const Rec& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.seq < b.seq;
                   },
                   ExternalSortOptions{block_size * 8}))
                  .ok());
  auto sorted = ReadRecordFile<Rec>(*env, "out");
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), records.size());
  for (size_t i = 1; i < sorted->size(); ++i) {
    ASSERT_LE((*sorted)[i - 1].key, (*sorted)[i].key);
    if ((*sorted)[i - 1].key == (*sorted)[i].key) {
      ASSERT_LT((*sorted)[i - 1].seq, (*sorted)[i].seq);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeSweepTest,
                         ::testing::Values(256, 512, 1024, 4096, 16384));

// --- Buffer pool vs reference cache model -------------------------------------

TEST(BufferPoolPropertyTest, MatchesReferenceLruModel) {
  auto env = NewMemEnv(512);
  auto file = std::move(env->Create("f")).value();
  std::vector<char> buf(512);
  const uint64_t num_blocks = 64;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    buf[0] = static_cast<char>(b);
    ASSERT_TRUE(file->WriteBlock(b, buf.data()).ok());
  }

  const size_t frames = 8;
  BufferPool pool(*env, frames * 512);
  // Reference model: LRU list of block ids.
  std::vector<uint64_t> lru;  // front = most recent
  uint64_t expected_misses = 0;

  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    const uint64_t b = rng.UniformU64(num_blocks);
    auto it = std::find(lru.begin(), lru.end(), b);
    if (it == lru.end()) {
      ++expected_misses;
      lru.insert(lru.begin(), b);
      if (lru.size() > frames) lru.pop_back();
    } else {
      lru.erase(it);
      lru.insert(lru.begin(), b);
    }
    auto page = pool.Fetch(*file, b);
    ASSERT_TRUE(page.ok());
    ASSERT_EQ(page->data()[0], static_cast<char>(b)) << "content mismatch";
  }
  EXPECT_EQ(pool.pool_stats().misses, expected_misses);
  EXPECT_EQ(pool.pool_stats().hits, 5000 - expected_misses);
}

TEST(BufferPoolPropertyTest, RandomDirtyWritesAlwaysPersist) {
  auto env = NewMemEnv(512);
  auto file = std::move(env->Create("f")).value();
  std::vector<char> buf(512, 0);
  const uint64_t num_blocks = 32;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    ASSERT_TRUE(file->WriteBlock(b, buf.data()).ok());
  }
  std::map<uint64_t, char> expected;
  {
    BufferPool pool(*env, 4 * 512);
    Rng rng(7);
    for (int op = 0; op < 2000; ++op) {
      const uint64_t b = rng.UniformU64(num_blocks);
      const char v = static_cast<char>(rng.UniformU64(128));
      auto page = pool.Fetch(*file, b);
      ASSERT_TRUE(page.ok());
      page->data()[1] = v;
      page->MarkDirty();
      expected[b] = v;
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  for (const auto& [b, v] : expected) {
    ASSERT_TRUE(file->ReadBlock(b, buf.data()).ok());
    ASSERT_EQ(buf[1], v) << "block " << b;
  }
}

}  // namespace
}  // namespace maxrs
