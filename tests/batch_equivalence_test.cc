// Batched shared-scan equivalence battery: MaxRSServer with batch_max > 1
// must answer every query bit-identically to serial submission across the
// full configuration matrix — shard counts x worker counts x batch sizes x
// routing modes x pruning modes — because batching only re-plumbs I/O (one
// shared scan feeding per-query channel grids); it never changes the
// per-query record streams. On top of bit-identity the battery pins the
// amortized accounting contract (docs/IO_MODEL.md, "Batched shared scans"):
// a forced full batch reports each query's equal share (counters differ by
// at most one unit, shares sum exactly to the batch total), batch_size = k,
// scans_shared = (k - 1) per shared scan, and two identical runs report
// identical per-query snapshots. A chaos leg checks that faults striking
// mid-batch fail cleanly — affected queries degrade or return a specific
// error; batch-mates and later queries are not poisoned.
#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/io_stats.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr size_t kMemoryBytes = 64 * 1024;

// Delegating Env that fails exactly one operation — the k-th counted
// read/write from arming — with retryable kUnavailable (FaultEnv injects
// terminal kIOError; the degradation leg needs the retryable flavor).
class UnavailableOnceEnv : public Env {
 public:
  UnavailableOnceEnv(Env& base, uint64_t fail_after)
      : base_(&base), remaining_(fail_after) {}

  Result<std::unique_ptr<BlockFile>> Create(const std::string& name) override {
    return Wrap(base_->Create(name));
  }
  Result<std::unique_ptr<BlockFile>> Open(const std::string& name) override {
    return Wrap(base_->Open(name));
  }
  Status Delete(const std::string& name) override {
    return base_->Delete(name);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  std::vector<std::string> ListFiles() const override {
    return base_->ListFiles();
  }
  size_t block_size() const override { return base_->block_size(); }
  IoStats& stats() override { return base_->stats(); }

  bool ShouldFail() {
    uint64_t current = remaining_.load(std::memory_order_relaxed);
    while (true) {
      if (current == 0) return false;
      if (remaining_.compare_exchange_weak(current, current - 1,
                                           std::memory_order_relaxed)) {
        return current == 1;
      }
    }
  }

 private:
  class File : public BlockFile {
   public:
    File(std::unique_ptr<BlockFile> base, UnavailableOnceEnv* env)
        : base_(std::move(base)), env_(env) {}
    Status ReadBlock(uint64_t index, void* buf) override {
      if (env_->ShouldFail()) {
        return Status::Unavailable("injected transient fault");
      }
      return base_->ReadBlock(index, buf);
    }
    Status WriteBlock(uint64_t index, const void* buf) override {
      if (env_->ShouldFail()) {
        return Status::Unavailable("injected transient fault");
      }
      return base_->WriteBlock(index, buf);
    }
    uint64_t NumBlocks() const override { return base_->NumBlocks(); }
    Status Truncate(uint64_t num_blocks) override {
      return base_->Truncate(num_blocks);
    }
    size_t block_size() const override { return base_->block_size(); }
    const std::string& name() const override { return base_->name(); }

   private:
    std::unique_ptr<BlockFile> base_;
    UnavailableOnceEnv* env_;
  };

  Result<std::unique_ptr<BlockFile>> Wrap(
      Result<std::unique_ptr<BlockFile>> file) {
    if (!file.ok()) return file;
    return {std::make_unique<File>(std::move(file).value(), this)};
  }

  Env* base_;
  std::atomic<uint64_t> remaining_;
};

// Eight distinct rects with deliberately incompatible shapes mixed in
// (width span 35..410 exceeds the formation's 8x band), so batch formation
// must split and re-stage — the answers must not care.
const std::vector<std::pair<double, double>>& MatrixRects() {
  static const std::vector<std::pair<double, double>> kRects = {
      {60.0, 340.0},  {120.0, 90.0}, {200.0, 200.0}, {35.0, 500.0},
      {410.0, 55.0},  {150.0, 260.0}, {90.0, 90.0},  {260.0, 150.0},
  };
  return kRects;
}

// Eight distinct rects inside one 8x shape band: a single formation can
// (and, under a long batch window, must) take all of them.
const std::vector<std::pair<double, double>>& CompatibleRects() {
  static const std::vector<std::pair<double, double>> kRects = {
      {100.0, 100.0}, {120.0, 180.0}, {150.0, 75.0},  {200.0, 200.0},
      {250.0, 130.0}, {300.0, 90.0},  {350.0, 220.0}, {400.0, 160.0},
  };
  return kRects;
}

std::unique_ptr<Env> MakeEnvWithDataset() {
  auto env = NewMemEnv(1024);
  const std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/2500, /*extent=*/1000, /*seed=*/41, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  return env;
}

Result<DatasetHandle> IngestShards(Env& env, size_t shards) {
  DatasetHandleOptions options;
  options.shard_count = shards;
  options.memory_bytes = kMemoryBytes;
  return DatasetHandle::Ingest(env, kDatasetFile, options);
}

MaxRSServerOptions BatchServerOptions(size_t workers, size_t batch_max,
                                      ServeRoutingMode routing,
                                      ServePruningMode pruning) {
  MaxRSServerOptions options;
  options.num_workers = workers;
  options.memory_bytes = kMemoryBytes;
  options.batch_max = batch_max;
  // Long enough that concurrently submitted queries reliably land in one
  // formation window; the window exits early once batch_max candidates
  // are in hand, so this is latency only on the final, partial batch.
  options.batch_window_ms = batch_max > 1 ? 2000 : 0;
  options.routing_mode = routing;
  options.pruning_mode = pruning;
  options.cache_entries = 0;  // every submission must execute
  return options;
}

void ExpectBitIdentical(const MaxRSResult& got, const MaxRSResult& want) {
  EXPECT_EQ(got.total_weight, want.total_weight);
  EXPECT_EQ(got.location, want.location);
  EXPECT_EQ(got.region, want.region);
}

// Submits every rect concurrently (one client thread each) and returns the
// results in rect order.
std::vector<Result<MaxRSResult>> SubmitAll(
    MaxRSServer& server, const std::vector<std::pair<double, double>>& rects) {
  std::vector<Result<MaxRSResult>> results(
      rects.size(), Result<MaxRSResult>(Status::Internal("not run")));
  std::vector<std::thread> clients;
  clients.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    clients.emplace_back([&, i] {
      results[i] = server.Submit(rects[i].first, rects[i].second);
    });
  }
  for (std::thread& t : clients) t.join();
  return results;
}

TEST(BatchEquivalenceTest, BitIdenticalToOneShotAcrossTheMatrix) {
  // Oracle: the serial one-shot pipeline, once per rect.
  std::vector<MaxRSResult> expected;
  {
    auto env = MakeEnvWithDataset();
    for (const auto& rect : MatrixRects()) {
      MaxRSOptions options;
      options.rect_width = rect.first;
      options.rect_height = rect.second;
      options.memory_bytes = kMemoryBytes;
      auto r = RunExactMaxRS(*env, kDatasetFile, options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected.push_back(*r);
    }
  }

  for (size_t shards : {1u, 2u, 7u, 16u}) {
    auto env = MakeEnvWithDataset();
    auto handle = IngestShards(*env, shards);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    for (size_t workers : {1u, 2u, 8u}) {
      for (size_t batch : {1u, 2u, 8u}) {
        for (ServeRoutingMode routing :
             {ServeRoutingMode::kStreaming, ServeRoutingMode::kMaterialized}) {
          for (ServePruningMode pruning :
               {ServePruningMode::kAuto, ServePruningMode::kOff}) {
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " workers=" + std::to_string(workers) +
                         " batch=" + std::to_string(batch) +
                         " routing=" + std::to_string(static_cast<int>(routing)) +
                         " pruning=" + std::to_string(static_cast<int>(pruning)));
            MaxRSServer server(
                *env, *handle,
                BatchServerOptions(workers, batch, routing, pruning));
            std::vector<Result<MaxRSResult>> results =
                SubmitAll(server, MatrixRects());
            for (size_t i = 0; i < results.size(); ++i) {
              SCOPED_TRACE("query " + std::to_string(i));
              ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
              ExpectBitIdentical(*results[i], expected[i]);
            }
          }
        }
      }
    }
  }
}

TEST(BatchEquivalenceTest, ForcedFullBatchAmortizesIoDeterministically) {
  constexpr size_t kShards = 4;
  const auto& rects = CompatibleRects();
  const size_t k = rects.size();

  // Serial baseline on an identical fresh environment: per-query answers
  // and the total cold I/O eight separate scans pay.
  std::vector<MaxRSResult> serial(k);
  uint64_t serial_total_io = 0;
  {
    auto env = MakeEnvWithDataset();
    auto handle = IngestShards(*env, kShards);
    ASSERT_TRUE(handle.ok());
    MaxRSServer server(*env, *handle,
                       BatchServerOptions(1, 1, ServeRoutingMode::kStreaming,
                                          ServePruningMode::kOff));
    for (size_t i = 0; i < k; ++i) {
      auto r = server.Submit(rects[i].first, rects[i].second);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->stats.batch_size, 1u);
      EXPECT_EQ(r->stats.io.scans_shared, 0u);
      serial_total_io += r->stats.io.total();
      serial[i] = *r;
    }
  }

  // Two identical batched runs: one worker + a long window force one
  // 8-query formation, making composition — and thus every per-query
  // amortized snapshot — deterministic.
  std::vector<std::vector<IoStatsSnapshot>> run_snapshots;
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    auto env = MakeEnvWithDataset();
    auto handle = IngestShards(*env, kShards);
    ASSERT_TRUE(handle.ok());
    MaxRSServer server(*env, *handle,
                       BatchServerOptions(1, 8, ServeRoutingMode::kStreaming,
                                          ServePruningMode::kOff));
    const IoStatsSnapshot before = env->stats().Snapshot();
    std::vector<Result<MaxRSResult>> results = SubmitAll(server, rects);
    const IoStatsSnapshot delta = env->stats().Snapshot() - before;

    std::vector<IoStatsSnapshot> snapshots(k);
    uint64_t sum_read = 0, sum_written = 0, sum_shared = 0, batch_total = 0;
    uint64_t min_read = UINT64_MAX, max_read = 0;
    for (size_t i = 0; i < k; ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      ExpectBitIdentical(*results[i], serial[i]);
      // Every query ran in THE one batch and says so.
      EXPECT_EQ(results[i]->stats.batch_size, k);
      EXPECT_EQ(results[i]->stats.wall_seconds, results[0]->stats.wall_seconds);
      const IoStatsSnapshot& io = results[i]->stats.io;
      snapshots[i] = io;
      sum_read += io.blocks_read;
      sum_written += io.blocks_written;
      sum_shared += io.scans_shared;
      batch_total += io.total();
      min_read = std::min(min_read, io.blocks_read);
      max_read = std::max(max_read, io.blocks_read);
    }
    // Equal shares: the per-counter spread is at most one unit, and the
    // shares sum exactly to the batch's environment delta.
    EXPECT_LE(max_read - min_read, 1u);
    EXPECT_EQ(sum_read, delta.blocks_read);
    EXPECT_EQ(sum_written, delta.blocks_written);
    // One shared scan per source shard, k - 1 shares each.
    EXPECT_EQ(sum_shared, (k - 1) * kShards);
    // The whole point: a k-query cold batch costs strictly less than k
    // serial cold queries (the source scans ran once, not k times).
    EXPECT_LT(batch_total, serial_total_io);

    const ServerCounters counters = server.counters();
    EXPECT_EQ(counters.batches, 1u);
    EXPECT_EQ(counters.batched_queries, k);
    EXPECT_EQ(counters.executed, k);
    run_snapshots.push_back(std::move(snapshots));
  }
  // Determinism: identical environments + identical forced composition =>
  // identical per-query amortized snapshots, field by field.
  for (size_t i = 0; i < k; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    EXPECT_EQ(run_snapshots[0][i].blocks_read, run_snapshots[1][i].blocks_read);
    EXPECT_EQ(run_snapshots[0][i].blocks_written,
              run_snapshots[1][i].blocks_written);
    EXPECT_EQ(run_snapshots[0][i].scans_shared,
              run_snapshots[1][i].scans_shared);
  }
}

TEST(BatchEquivalenceTest, SingleQueryBatchIsTheLegacyPath) {
  // batch_max > 1 with one in-flight query must not change accounting: the
  // formation window closes on a batch of one, which executes exactly the
  // legacy serial path — batch_size 1, no shared-scan shares.
  auto env = MakeEnvWithDataset();
  auto handle = IngestShards(*env, 3);
  ASSERT_TRUE(handle.ok());
  MaxRSServerOptions options = BatchServerOptions(
      1, 8, ServeRoutingMode::kStreaming, ServePruningMode::kOff);
  options.batch_window_ms = 10;  // don't hold the lone query for 2s
  MaxRSServer server(*env, *handle, options);
  auto r = server.Submit(200.0, 140.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.batch_size, 1u);
  EXPECT_EQ(r->stats.io.scans_shared, 0u);
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.batches, 0u);
  EXPECT_EQ(counters.batched_queries, 0u);
}

TEST(BatchEquivalenceTest, FaultMidBatchFailsCleanlyAndServerSurvives) {
  // A permanent (non-retryable) fault striking one operation mid-batch
  // must produce, per query, either the bit-identical answer or a clean
  // kIOError — never a hang, a wrong answer, or a poisoned server. Which
  // queries fail depends on where the fault lands (a shared-scan fault
  // legitimately affects every query sharing that scan); cleanliness and
  // post-fault health are the invariants.
  const auto& rects = CompatibleRects();
  std::vector<MaxRSResult> expected(rects.size());
  auto env = MakeEnvWithDataset();
  auto handle = IngestShards(*env, 3);
  ASSERT_TRUE(handle.ok());
  {
    MaxRSServer server(*env, *handle,
                       BatchServerOptions(1, 1, ServeRoutingMode::kStreaming,
                                          ServePruningMode::kOff));
    for (size_t i = 0; i < rects.size(); ++i) {
      auto r = server.Submit(rects[i].first, rects[i].second);
      ASSERT_TRUE(r.ok());
      expected[i] = *r;
    }
  }

  FaultEnv faulty(*env);
  MaxRSServer faulted(faulty, *handle,
                      BatchServerOptions(1, 8, ServeRoutingMode::kStreaming,
                                         ServePruningMode::kOff));
  faulty.ArmAfter(40);  // strikes during the batch's routing/solve phase
  std::vector<Result<MaxRSResult>> results = SubmitAll(faulted, rects);
  EXPECT_EQ(faulty.faults_delivered(), 1u);
  size_t failures = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    if (results[i].ok()) {
      ExpectBitIdentical(*results[i], expected[i]);
    } else {
      ++failures;
      EXPECT_EQ(results[i].status().code(), Status::Code::kIOError);
    }
  }
  EXPECT_GE(failures, 1u);

  // Disarmed, the same server serves the failed rects correctly — the
  // fault poisoned results, not state.
  faulty.Disarm();
  for (size_t i = 0; i < rects.size(); ++i) {
    if (results[i].ok()) continue;
    SCOPED_TRACE("retry query " + std::to_string(i));
    auto retry = faulted.Submit(rects[i].first, rects[i].second);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    ExpectBitIdentical(*retry, expected[i]);
  }
}

TEST(BatchEquivalenceTest, RetryableFaultMidBatchDegradesPerQueryNotWrong) {
  // A retryable (kUnavailable) fault mid-batch triggers the per-query
  // degradation rerun: the affected queries re-run SOLO on the
  // materialized path and still answer bit-identically; their stats are
  // the solo rerun's (batch_size back to 1, un-amortized I/O).
  const auto& rects = CompatibleRects();
  std::vector<MaxRSResult> expected(rects.size());
  auto env = MakeEnvWithDataset();
  auto handle = IngestShards(*env, 3);
  ASSERT_TRUE(handle.ok());
  {
    MaxRSServer server(*env, *handle,
                       BatchServerOptions(1, 1, ServeRoutingMode::kStreaming,
                                          ServePruningMode::kOff));
    for (size_t i = 0; i < rects.size(); ++i) {
      auto r = server.Submit(rects[i].first, rects[i].second);
      ASSERT_TRUE(r.ok());
      expected[i] = *r;
    }
  }

  UnavailableOnceEnv flaky(*env, /*fail_after=*/40);
  MaxRSServer server(flaky, *handle,
                     BatchServerOptions(1, 8, ServeRoutingMode::kStreaming,
                                        ServePruningMode::kOff));
  std::vector<Result<MaxRSResult>> results = SubmitAll(server, rects);
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ExpectBitIdentical(*results[i], expected[i]);
  }
  EXPECT_GE(server.counters().degraded, 1u);
}

}  // namespace
}  // namespace maxrs
