#include "util/status.h"

#include <gtest/gtest.h>

namespace maxrs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_EQ(st.message(), "disk on fire");
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllConstructorsProduceTheirCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), Status::Code::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            Status::Code::kDeadlineExceeded);
}

TEST(StatusTest, NewCodesRenderTheirNames) {
  EXPECT_EQ(Status::Unavailable("try later").ToString(),
            "Unavailable: try later");
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
}

// The retry taxonomy: exactly kUnavailable is retryable. kCorruption would
// re-read the same bad bytes, kDeadlineExceeded would re-exceed the same
// deadline, and kIOError is permanent unless a RetryEnv opts in.
TEST(StatusTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(Status::Unavailable("x").is_retryable());
  EXPECT_FALSE(Status::OK().is_retryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").is_retryable());
  EXPECT_FALSE(Status::Corruption("x").is_retryable());
  EXPECT_FALSE(Status::IOError("x").is_retryable());
  EXPECT_FALSE(Status::NotFound("x").is_retryable());
  EXPECT_FALSE(Status::InvalidArgument("x").is_retryable());
  EXPECT_FALSE(Status::NotSupported("x").is_retryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").is_retryable());
  EXPECT_FALSE(Status::Internal("x").is_retryable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Corruption("bad"); }

Status PropagatesViaMacro() {
  MAXRS_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatesViaMacro().code(), Status::Code::kCorruption);
}

Result<int> GivesSeven() { return 7; }

Status UsesAssign(int* out) {
  MAXRS_ASSIGN_OR_RETURN(*out, GivesSeven());
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturnBinds) {
  int out = 0;
  ASSERT_TRUE(UsesAssign(&out).ok());
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace maxrs
