#include "geom/geometry.h"

#include <gtest/gtest.h>

namespace maxrs {
namespace {

TEST(RectTest, CenteredConstruction) {
  Rect r = Rect::Centered({10, 20}, 4, 6);
  EXPECT_DOUBLE_EQ(r.x_lo, 8);
  EXPECT_DOUBLE_EQ(r.x_hi, 12);
  EXPECT_DOUBLE_EQ(r.y_lo, 17);
  EXPECT_DOUBLE_EQ(r.y_hi, 23);
  EXPECT_EQ(r.center().x, 10);
  EXPECT_EQ(r.center().y, 20);
}

TEST(RectTest, HalfOpenCoverSemantics) {
  Rect r{0, 10, 0, 10};
  EXPECT_TRUE(r.Contains(Point{0, 0}));    // low edges inclusive
  EXPECT_TRUE(r.Contains(Point{9.999, 9.999}));
  EXPECT_FALSE(r.Contains(Point{10, 5}));  // high edges exclusive
  EXPECT_FALSE(r.Contains(Point{5, 10}));
  EXPECT_FALSE(r.Contains(Point{-0.001, 5}));
}

TEST(RectTest, OverlapAndIntersect) {
  Rect a{0, 10, 0, 10};
  Rect b{5, 15, 5, 15};
  Rect c{10, 20, 0, 10};  // touches a at x=10: half-open => no overlap
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(c));
  Rect i = a.Intersect(b);
  EXPECT_EQ(i, (Rect{5, 10, 5, 10}));
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(a.Intersect(c).empty());
}

TEST(IntervalTest, ContainsAndOverlaps) {
  Interval v{1, 5};
  EXPECT_TRUE(v.Contains(1));
  EXPECT_FALSE(v.Contains(5));
  EXPECT_TRUE(v.Overlaps({4, 6}));
  EXPECT_FALSE(v.Overlaps({5, 6}));
  EXPECT_DOUBLE_EQ(v.length(), 4);
}

TEST(CircleTest, StrictInteriorCover) {
  Circle c{{0, 0}, 10};  // radius 5
  EXPECT_TRUE(c.Contains(Point{0, 0}));
  EXPECT_TRUE(c.Contains(Point{4.9, 0}));
  EXPECT_FALSE(c.Contains(Point{5, 0}));  // boundary excluded
  EXPECT_FALSE(c.Contains(Point{3.6, 3.6}));
}

TEST(CircleTest, MbrIsSquareOfSideDiameter) {
  Circle c{{3, 4}, 10};
  Rect mbr = c.Mbr();
  EXPECT_EQ(mbr, (Rect{-2, 8, -1, 9}));
  EXPECT_DOUBLE_EQ(mbr.width(), 10);
  EXPECT_DOUBLE_EQ(mbr.height(), 10);
}

TEST(CoveredWeightTest, SumsOnlyCoveredObjects) {
  std::vector<SpatialObject> objects = {
      {1, 1, 2.0}, {5, 5, 3.0}, {10, 10, 7.0}, {9.99, 9.99, 1.0}};
  EXPECT_DOUBLE_EQ(CoveredWeight(objects, Rect{0, 10, 0, 10}), 6.0);
  EXPECT_DOUBLE_EQ(CoveredWeight(objects, Circle{{5, 5}, 2}), 3.0);
}

TEST(BoundingBoxTest, ComputesExtremes) {
  std::vector<SpatialObject> objects = {{1, 7, 1}, {-3, 2, 1}, {9, 5, 1}};
  Rect box = BoundingBox(objects);
  EXPECT_EQ(box.x_lo, -3);
  EXPECT_EQ(box.x_hi, 9);
  EXPECT_EQ(box.y_lo, 2);
  EXPECT_EQ(box.y_hi, 7);
}

TEST(BoundingBoxTest, EmptyInput) {
  std::vector<SpatialObject> none;
  EXPECT_TRUE(BoundingBox(none) == Rect{});
}

TEST(DistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace maxrs
