// Crash-recovery battery for the serve layer's persistent state: a dataset
// is exactly its published manifest plus the shard files it references, and
// every way that state can be damaged — truncation, bit rot, a crash
// between temp-manifest write and rename, a missing shard file — must
// surface as a specific clean error at Open, never a hang, a wrong answer,
// or a half-attached handle. Drop must remove every residue file,
// including the unpublished temp manifest a crashed ingest leaves behind.
// The aggregate index is the one deliberate exception: damage to it (bit
// rot, truncation, a missing file) degrades the handle — null agg_index(),
// the reason in index_status(), exact answers served un-pruned — because
// the shard files alone are the truth and pruning is only an optimization.
// Version-2 manifests (pre-index) keep opening and serving.
#include <algorithm>
#include <string>
#include <vector>

#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/record_io.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr char kPrefix[] = "ds";
constexpr char kManifest[] = "ds/manifest";
constexpr char kTempManifest[] = "ds/manifest.tmp";
constexpr char kAggIndex[] = "ds/agg_index";

std::unique_ptr<Env> MakeEnv() {
  auto env = NewMemEnv(4096);
  const std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/800, /*extent=*/1000, /*seed=*/11, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  return env;
}

Result<DatasetHandle> IngestInto(Env& env) {
  DatasetHandleOptions options;
  options.shard_count = 3;
  options.memory_bytes = 64 * 1024;
  options.prefix = kPrefix;
  return DatasetHandle::Ingest(env, kDatasetFile, options);
}

std::vector<std::string> FilesUnderPrefix(const Env& env) {
  std::vector<std::string> files;
  for (const std::string& name : env.ListFiles()) {
    if (name.rfind(kPrefix, 0) == 0) files.push_back(name);
  }
  return files;
}

void FlipBit(Env& env, const std::string& name, uint64_t block, size_t bit) {
  auto file_or = env.Open(name);
  ASSERT_TRUE(file_or.ok());
  std::vector<char> buf((*file_or)->block_size());
  ASSERT_TRUE((*file_or)->ReadBlock(block, buf.data()).ok());
  buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  ASSERT_TRUE((*file_or)->WriteBlock(block, buf.data()).ok());
}

TEST(RecoveryTest, TruncatedManifestIsCleanCorruption) {
  auto env = MakeEnv();
  ASSERT_TRUE(IngestInto(*env).ok());
  // Chop the manifest's data blocks off, keeping the header that promises
  // them — the shape a torn copy or interrupted restore produces.
  auto file_or = env->Open(kManifest);
  ASSERT_TRUE(file_or.ok());
  ASSERT_TRUE((*file_or)->Truncate(1).ok());

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), Status::Code::kCorruption);
  EXPECT_NE(handle.status().message().find("truncated"), std::string::npos);
}

TEST(RecoveryTest, BitFlippedManifestIsCleanCorruption) {
  auto env = MakeEnv();
  ASSERT_TRUE(IngestInto(*env).ok());
  FlipBit(*env, kManifest, /*block=*/1, /*bit=*/200);

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), Status::Code::kCorruption);
  EXPECT_NE(handle.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST(RecoveryTest, OrphanedTempManifestIsInvisibleAndReingestable) {
  // A crash after writing the temp manifest but before the atomic rename:
  // the dataset was never published, so Open must report NotFound (not
  // corruption — there is nothing half-valid to misread), and a fresh
  // ingest under the same prefix must succeed.
  auto env = MakeEnv();
  {
    auto orphan = env->Create(kTempManifest);
    ASSERT_TRUE(orphan.ok());
    std::vector<char> junk(env->block_size(), 0x5a);
    ASSERT_TRUE((*orphan)->WriteBlock(0, junk.data()).ok());
  }
  EXPECT_EQ(DatasetHandle::Open(*env, kPrefix).status().code(),
            Status::Code::kNotFound);

  auto handle = IngestInto(*env);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->num_objects(), 800u);
  EXPECT_FALSE(env->Exists(kTempManifest));  // publish consumed the temp name
}

TEST(RecoveryTest, MissingShardFileIsCleanCorruption) {
  auto env = MakeEnv();
  auto ingested = IngestInto(*env);
  ASSERT_TRUE(ingested.ok());
  ASSERT_TRUE(env->Delete(ingested->shards()[1].y_file).ok());

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), Status::Code::kCorruption);
  EXPECT_NE(handle.status().message().find("missing shard files"),
            std::string::npos);
}

TEST(RecoveryTest, DropRemovesAllResidueIncludingOrphanedTempManifest) {
  auto env = MakeEnv();
  auto handle = IngestInto(*env);
  ASSERT_TRUE(handle.ok());
  ASSERT_FALSE(FilesUnderPrefix(*env).empty());
  // Plant the residue of a later crashed re-ingest attempt.
  ASSERT_TRUE(env->Create(kTempManifest).ok());

  ASSERT_TRUE(handle->Drop().ok());
  EXPECT_TRUE(FilesUnderPrefix(*env).empty());
  EXPECT_TRUE(env->Exists(kDatasetFile));  // the source file is not ours
}

TEST(RecoveryTest, ReopenedDatasetAnswersQueriesAfterPublish) {
  // End-to-end over the atomic-publish path: ingest, re-attach via Open
  // (exercising the renamed manifest), and answer a query through the
  // server against a one-shot reference.
  auto env = NewMemEnv(4096);
  const std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/800, /*extent=*/1000, /*seed=*/11, /*random_weights=*/true);
  ASSERT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  ASSERT_TRUE(IngestInto(*env).ok());

  auto reopened = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->has_bounds());

  MaxRSServerOptions server_options;
  server_options.memory_bytes = 64 * 1024;
  MaxRSServer server(*env, *reopened, server_options);
  auto served = server.Submit(90.0, 120.0);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  MaxRSOptions one_shot;
  one_shot.rect_width = 90.0;
  one_shot.rect_height = 120.0;
  one_shot.memory_bytes = 64 * 1024;
  auto reference = RunExactMaxRS(*env, kDatasetFile, one_shot);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(served->total_weight, reference->total_weight);
  EXPECT_EQ(served->location, reference->location);
}

// Serves a query through `handle` and checks it against the fault-free
// answer computed straight from the source objects. Returns the server's
// unpruned-execution counter so callers can pin the degradation path.
uint64_t ServeAndExpectExactAnswer(Env& env, const DatasetHandle& handle) {
  MaxRSServerOptions server_options;
  server_options.memory_bytes = 64 * 1024;
  MaxRSServer server(env, handle, server_options);
  auto served = server.Submit(90.0, 120.0);
  EXPECT_TRUE(served.ok()) << served.status().ToString();

  MaxRSOptions one_shot;
  one_shot.rect_width = 90.0;
  one_shot.rect_height = 120.0;
  one_shot.memory_bytes = 64 * 1024;
  auto reference = RunExactMaxRS(env, kDatasetFile, one_shot);
  EXPECT_TRUE(reference.ok());
  if (served.ok() && reference.ok()) {
    EXPECT_EQ(served->total_weight, reference->total_weight);
    EXPECT_EQ(served->location, reference->location);
  }
  return server.counters().unpruned;
}

TEST(RecoveryTest, BitFlippedAggIndexDegradesToUnprunedServing) {
  // Bit rot in the aggregate-index file must never condemn the dataset:
  // the manifest and shard files are the truth, the index is an
  // optimization. Open succeeds with a null index and a kCorruption
  // index_status, and the server serves the exact answer un-pruned —
  // counting the degradation instead of risking a wrong answer from a
  // poisoned bound.
  auto env = MakeEnv();
  ASSERT_TRUE(IngestInto(*env).ok());
  FlipBit(*env, kAggIndex, /*block=*/0, /*bit=*/300);

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->agg_index(), nullptr);
  EXPECT_EQ(handle->index_status().code(), Status::Code::kCorruption);
  EXPECT_GT(ServeAndExpectExactAnswer(*env, *handle), 0u)
      << "a degraded index must be visible in the unpruned counter";
}

TEST(RecoveryTest, TruncatedAggIndexDegradesToUnprunedServing) {
  // A torn copy that chops the index file's blocks off: same contract as
  // bit rot — clean kCorruption in index_status, dataset opens, exact
  // answers un-pruned.
  auto env = MakeEnv();
  ASSERT_TRUE(IngestInto(*env).ok());
  auto file_or = env->Open(kAggIndex);
  ASSERT_TRUE(file_or.ok());
  ASSERT_TRUE((*file_or)->Truncate(0).ok());

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->agg_index(), nullptr);
  EXPECT_EQ(handle->index_status().code(), Status::Code::kCorruption);
  EXPECT_GT(ServeAndExpectExactAnswer(*env, *handle), 0u);
}

TEST(RecoveryTest, MissingAggIndexFileDegradesToUnprunedServing) {
  // The manifest promises an index (kind-4 descriptor) but the file is
  // gone entirely — still a degraded open, not a failed one.
  auto env = MakeEnv();
  ASSERT_TRUE(IngestInto(*env).ok());
  ASSERT_TRUE(env->Delete(kAggIndex).ok());

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->agg_index(), nullptr);
  EXPECT_FALSE(handle->index_status().ok());
  EXPECT_GT(ServeAndExpectExactAnswer(*env, *handle), 0u);
}

TEST(RecoveryTest, V2ManifestWithoutIndexOpensAndServes) {
  // Backward compatibility: a version-2 manifest (no kind-4 index
  // descriptor) written before the aggregate index existed must open with
  // agg_index() == nullptr, an OK index_status (nothing was promised),
  // and serve exact answers un-pruned.
  auto env = MakeEnv();
  ASSERT_TRUE(IngestInto(*env).ok());

  // Rewrite the published manifest as a v2 manifest: drop the index
  // descriptor and stamp format version 2 in the header.
  auto records_or = ReadRecordFile<ShardManifestRecord>(*env, kManifest);
  ASSERT_TRUE(records_or.ok());
  std::vector<ShardManifestRecord> v2_records;
  for (const ShardManifestRecord& r : *records_or) {
    if (r.kind == 4) continue;
    v2_records.push_back(r);
  }
  ASSERT_LT(v2_records.size(), records_or->size())
      << "the v3 manifest must have carried an index descriptor";
  v2_records[0].index = 2;
  ASSERT_TRUE(env->Delete(kManifest).ok());
  ASSERT_TRUE(env->Delete(kAggIndex).ok());  // v2 datasets have no index file
  ASSERT_TRUE(WriteRecordFile(*env, kManifest, v2_records).ok());

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->agg_index(), nullptr);
  EXPECT_TRUE(handle->index_status().ok())
      << "a v2 manifest promises no index, so nothing is degraded";
  EXPECT_GT(ServeAndExpectExactAnswer(*env, *handle), 0u);
}

TEST(RecoveryTest, PosixEnvPublishesAtomicallyViaRename) {
  // The POSIX Rename is the real crash-consistency primitive; round-trip
  // ingest -> open -> drop on it to prove the rename lands and Drop leaves
  // nothing behind.
  auto env = NewPosixEnv(::testing::TempDir() + "/maxrs_recovery_env", 4096);
  const std::vector<SpatialObject> objects = testing::RandomIntObjects(
      /*n=*/300, /*extent=*/500, /*seed=*/7);
  ASSERT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  ASSERT_TRUE(IngestInto(*env).ok());
  EXPECT_TRUE(env->Exists(kManifest));
  EXPECT_FALSE(env->Exists(kTempManifest));

  auto handle = DatasetHandle::Open(*env, kPrefix);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->num_objects(), 300u);
  ASSERT_TRUE(handle->Drop().ok());
  EXPECT_TRUE(FilesUnderPrefix(*env).empty());
  ASSERT_TRUE(env->Delete(kDatasetFile).ok());
}

}  // namespace
}  // namespace maxrs
