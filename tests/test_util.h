// Shared helpers for the test suite.
#ifndef MAXRS_TESTS_TEST_UTIL_H_
#define MAXRS_TESTS_TEST_UTIL_H_

#include <vector>

#include "geom/geometry.h"
#include "util/rng.h"

namespace maxrs {
namespace testing {

/// Random objects with integer coordinates in [0, extent] and unit weights.
/// Integer coordinates make half-open cover decisions exact, so the sweep
/// and the brute-force oracle agree bit-for-bit.
inline std::vector<SpatialObject> RandomIntObjects(size_t n, uint64_t extent,
                                                   uint64_t seed,
                                                   bool random_weights = false) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.UniformU64(extent + 1));
    const double y = static_cast<double>(rng.UniformU64(extent + 1));
    const double w =
        random_weights ? static_cast<double>(1 + rng.UniformU64(9)) : 1.0;
    objects.push_back({x, y, w});
  }
  return objects;
}

}  // namespace testing
}  // namespace maxrs

#endif  // MAXRS_TESTS_TEST_UTIL_H_
