#include "core/division.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/records.h"
#include "io/env.h"
#include "io/record_io.h"
#include "test_util.h"

namespace maxrs {
namespace {

struct Fixture {
  std::unique_ptr<Env> env = NewMemEnv(512);
  TempFileManager temps{*env, "div"};

  Status Put(const std::vector<PieceRecord>& pieces) {
    std::vector<EdgeRecord> edges;
    for (const PieceRecord& p : pieces) {
      edges.push_back({p.x_lo});
      edges.push_back({p.x_hi});
    }
    std::sort(edges.begin(), edges.end(),
              [](const EdgeRecord& a, const EdgeRecord& b) { return a.x < b.x; });
    auto sorted_pieces = pieces;
    std::stable_sort(sorted_pieces.begin(), sorted_pieces.end(),
                     [](const PieceRecord& a, const PieceRecord& b) {
                       return a.y_lo < b.y_lo;
                     });
    MAXRS_RETURN_IF_ERROR(WriteRecordFile(*env, "pieces", sorted_pieces));
    return WriteRecordFile(*env, "edges", edges);
  }
};

std::vector<PieceRecord> UnitSquaresAt(const std::vector<double>& xs) {
  std::vector<PieceRecord> pieces;
  double y = 0;
  for (double x : xs) {
    pieces.push_back({x, x + 10, y, y + 5, 1.0});
    y += 1;
  }
  return pieces;
}

TEST(DivisionTest, SplitsIntoRoughlyEqualEdgeCounts) {
  Fixture f;
  auto pieces = UnitSquaresAt({0, 100, 200, 300, 400, 500, 600, 700});
  ASSERT_TRUE(f.Put(pieces).ok());
  auto div = DividePieces(f.temps, "pieces", "edges", Interval{-kInf, kInf}, 4);
  ASSERT_TRUE(div.ok());
  EXPECT_EQ(div->children.size(), 4u);
  uint64_t total_edges = 0;
  uint64_t total_pieces = 0;
  for (const ChildSlab& c : div->children) {
    total_edges += c.num_edges;
    total_pieces += c.num_pieces;
    EXPECT_LE(c.num_edges, 6u);  // ~16/4 with slack
    // Termination invariant: pieces never exceed edges in a child.
    EXPECT_LE(c.num_pieces, c.num_edges);
  }
  EXPECT_EQ(total_edges, 16u);
  EXPECT_EQ(total_pieces, 8u);  // squares are disjoint: nothing split
  EXPECT_EQ(div->num_spans, 0u);
}

TEST(DivisionTest, WideRectangleProducesSpans) {
  Fixture f;
  // One wide rectangle across many narrow ones.
  std::vector<PieceRecord> pieces = UnitSquaresAt({0, 100, 200, 300, 400, 500});
  pieces.push_back({5, 595, 0, 5, 2.0});  // nearly full width
  ASSERT_TRUE(f.Put(pieces).ok());
  auto div = DividePieces(f.temps, "pieces", "edges", Interval{-kInf, kInf}, 3);
  ASSERT_TRUE(div.ok());
  EXPECT_GE(div->num_spans, 1u);
  auto spans = ReadRecordFile<SpanRecord>(*f.env, div->span_file);
  ASSERT_TRUE(spans.ok());
  for (const SpanRecord& s : *spans) {
    EXPECT_LE(s.child_lo, s.child_hi);
    EXPECT_GE(s.child_lo, 0);
    EXPECT_LT(s.child_hi, static_cast<int32_t>(div->children.size()));
    EXPECT_EQ(s.w, 2.0);
  }
}

TEST(DivisionTest, ChildFilesInheritSortOrders) {
  Fixture f;
  auto objects = testing::RandomIntObjects(300, 1000, 3);
  std::vector<PieceRecord> pieces;
  for (const auto& o : objects) {
    pieces.push_back({o.x, o.x + 40, o.y, o.y + 20, o.w});
  }
  ASSERT_TRUE(f.Put(pieces).ok());
  auto div = DividePieces(f.temps, "pieces", "edges", Interval{-kInf, kInf}, 5);
  ASSERT_TRUE(div.ok());
  for (const ChildSlab& c : div->children) {
    auto child_pieces = ReadRecordFile<PieceRecord>(*f.env, c.piece_file);
    ASSERT_TRUE(child_pieces.ok());
    for (size_t i = 1; i < child_pieces->size(); ++i) {
      EXPECT_LE((*child_pieces)[i - 1].y_lo, (*child_pieces)[i].y_lo);
    }
    auto child_edges = ReadRecordFile<EdgeRecord>(*f.env, c.edge_file);
    ASSERT_TRUE(child_edges.ok());
    for (size_t i = 1; i < child_edges->size(); ++i) {
      EXPECT_LE((*child_edges)[i - 1].x, (*child_edges)[i].x);
    }
    // Pieces stay within their slab and never cover it fully.
    for (const PieceRecord& p : *child_pieces) {
      EXPECT_GE(p.x_lo, c.x_range.lo);
      EXPECT_LE(p.x_hi, c.x_range.hi);
      EXPECT_FALSE(p.x_lo == c.x_range.lo && p.x_hi == c.x_range.hi)
          << "full-slab piece should have become a span";
    }
  }
}

TEST(DivisionTest, WeightIsConserved) {
  // Total (weight x covered child count or clipped extent) must survive the
  // split: verify via per-child piece + span weights against the originals.
  Fixture f;
  auto objects = testing::RandomIntObjects(200, 500, 9, /*random_weights=*/true);
  std::vector<PieceRecord> pieces;
  double total_area_weight = 0;
  for (const auto& o : objects) {
    PieceRecord p{o.x, o.x + 60, o.y, o.y + 10, o.w};
    pieces.push_back(p);
    total_area_weight += p.w * (p.x_hi - p.x_lo);
  }
  ASSERT_TRUE(f.Put(pieces).ok());
  auto div = DividePieces(f.temps, "pieces", "edges", Interval{-kInf, kInf}, 6);
  ASSERT_TRUE(div.ok());
  double got = 0;
  for (const ChildSlab& c : div->children) {
    auto child_pieces = ReadRecordFile<PieceRecord>(*f.env, c.piece_file);
    ASSERT_TRUE(child_pieces.ok());
    for (const PieceRecord& p : *child_pieces) got += p.w * (p.x_hi - p.x_lo);
  }
  auto spans = ReadRecordFile<SpanRecord>(*f.env, div->span_file);
  ASSERT_TRUE(spans.ok());
  for (const SpanRecord& s : *spans) {
    for (int32_t k = s.child_lo; k <= s.child_hi; ++k) {
      got += s.w * div->children[k].x_range.length();
    }
  }
  EXPECT_NEAR(got, total_area_weight, 1e-6 * total_area_weight);
}

TEST(DivisionTest, DegenerateSingleXIsRejected) {
  Fixture f;
  std::vector<PieceRecord> pieces;
  for (int i = 0; i < 10; ++i) {
    pieces.push_back({5, 5 + 10, static_cast<double>(i), i + 2.0, 1.0});
  }
  // All left edges at 5, all right edges at 15: two distinct values, so a
  // split IS possible...
  ASSERT_TRUE(f.Put(pieces).ok());
  auto div = DividePieces(f.temps, "pieces", "edges", Interval{-kInf, kInf}, 4);
  ASSERT_TRUE(div.ok());

  // ...but truly identical single-coordinate edge files are not.
  Fixture g;
  std::vector<PieceRecord> same;
  std::vector<EdgeRecord> edges(20, EdgeRecord{7.0});
  ASSERT_TRUE(WriteRecordFile(*g.env, "pieces", same).ok());
  ASSERT_TRUE(WriteRecordFile(*g.env, "edges", edges).ok());
  auto bad = DividePieces(g.temps, "pieces", "edges", Interval{-kInf, kInf}, 4);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

TEST(DivisionTest, PieceEndingExactlyAtBoundaryDoesNotEnterNextChild) {
  Fixture f;
  // Boundaries depend on edge quantiles; craft edges so 100 is a boundary.
  std::vector<PieceRecord> pieces = {
      {0, 100, 0, 10, 1.0},    // ends exactly where the next slab starts
      {100, 200, 0, 10, 1.0},  // starts at the boundary
      {0, 50, 5, 15, 1.0},
      {150, 200, 5, 15, 1.0},
  };
  ASSERT_TRUE(f.Put(pieces).ok());
  auto div = DividePieces(f.temps, "pieces", "edges", Interval{-kInf, kInf}, 2);
  ASSERT_TRUE(div.ok());
  ASSERT_EQ(div->children.size(), 2u);
  const double boundary = div->children[0].x_range.hi;
  for (size_t k = 0; k < div->children.size(); ++k) {
    auto child_pieces =
        ReadRecordFile<PieceRecord>(*f.env, div->children[k].piece_file);
    ASSERT_TRUE(child_pieces.ok());
    for (const PieceRecord& p : *child_pieces) {
      if (k == 0) {
        EXPECT_LE(p.x_hi, boundary);
      } else {
        EXPECT_GE(p.x_lo, boundary);
      }
      EXPECT_LT(p.x_lo, p.x_hi);
    }
  }
}

}  // namespace
}  // namespace maxrs
