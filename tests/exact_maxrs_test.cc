#include "core/exact_maxrs.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/brute_force.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "test_util.h"

namespace maxrs {
namespace {

MaxRSOptions SmallExternalOptions() {
  // Force deep recursion on small inputs: tiny base case and fan-out.
  MaxRSOptions options;
  options.rect_width = 8;
  options.rect_height = 8;
  options.memory_bytes = 1 << 14;
  options.fanout = 3;
  options.base_case_max_pieces = 16;
  return options;
}

TEST(ExactMaxRSTest, EmptyDataset) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteDataset(*env, "data", {}).ok());
  MaxRSOptions options;
  options.memory_bytes = 1 << 14;
  auto result = RunExactMaxRS(*env, "data", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_weight, 0.0);
}

TEST(ExactMaxRSTest, RejectsBadOptions) {
  auto env = NewMemEnv(512);
  ASSERT_TRUE(WriteDataset(*env, "data", {{1, 1, 1}}).ok());
  MaxRSOptions options;
  options.rect_width = 0;
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
  options.rect_width = 10;
  options.memory_bytes = 256;  // less than 4 blocks
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);

  options.memory_bytes = 1 << 14;
  options.rect_height = std::numeric_limits<double>::infinity();
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
  options.rect_height = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);

  options.rect_height = 10;
  options.fanout = 1;  // 0 means derive; 1 can never divide
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
  options.fanout = (1 << 14) / 512 + 1;  // one output buffer per child > M/B
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);

  options.fanout = 0;
  options.num_threads = 100000;  // absurd: almost certainly a unit mix-up
  EXPECT_EQ(RunExactMaxRS(*env, "data", options).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(ExactMaxRSTest, MissingDatasetIsNotFound) {
  auto env = NewMemEnv(512);
  MaxRSOptions options;
  options.memory_bytes = 1 << 14;
  EXPECT_EQ(RunExactMaxRS(*env, "absent", options).status().code(),
            Status::Code::kNotFound);
}

TEST(ExactMaxRSTest, MatchesInMemoryOnModerateData) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(2000, 500, 23);
  const MaxRSOptions options = SmallExternalOptions();
  auto external = RunExactMaxRS(*env, objects, options);
  ASSERT_TRUE(external.ok());
  const MaxRSResult internal =
      ExactMaxRSInMemory(objects, options.rect_width, options.rect_height);
  EXPECT_EQ(external->total_weight, internal.total_weight);
  EXPECT_GT(external->stats.recursion_levels, 0u);
  // The returned location must realize the weight.
  const Rect r =
      Rect::Centered(external->location, options.rect_width, options.rect_height);
  EXPECT_EQ(CoveredWeight(objects, r), external->total_weight);
}

struct ExternalCase {
  size_t n;
  uint64_t extent;
  double rect;
  size_t fanout;
  uint64_t base_max;
  bool weights;
};

class ExactMaxRSOracleTest : public ::testing::TestWithParam<ExternalCase> {};

TEST_P(ExactMaxRSOracleTest, MatchesBruteForceThroughRecursion) {
  const ExternalCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto env = NewMemEnv(512);
    auto objects = testing::RandomIntObjects(c.n, c.extent, seed, c.weights);
    MaxRSOptions options;
    options.rect_width = c.rect;
    options.rect_height = c.rect;
    options.memory_bytes = 1 << 14;
    options.fanout = c.fanout;
    options.base_case_max_pieces = c.base_max;
    auto got = RunExactMaxRS(*env, objects, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const BruteForceResult want = BruteForceMaxRS(objects, c.rect, c.rect);
    ASSERT_EQ(got->total_weight, want.total_weight)
        << "n=" << c.n << " seed=" << seed << " fanout=" << c.fanout;
    const Rect r = Rect::Centered(got->location, c.rect, c.rect);
    ASSERT_EQ(CoveredWeight(objects, r), got->total_weight) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExactMaxRSOracleTest,
    ::testing::Values(
        // Wide rectangles relative to the domain force many spanning parts.
        ExternalCase{100, 50, 20, 2, 8, false},
        ExternalCase{100, 50, 20, 3, 8, true},
        ExternalCase{200, 100, 10, 4, 16, false},
        ExternalCase{200, 100, 40, 4, 16, false},   // very wide: heavy spans
        ExternalCase{300, 60, 6, 5, 12, true},      // dense duplicates
        ExternalCase{150, 2000, 100, 3, 10, false}, // sparse
        ExternalCase{250, 30, 4, 2, 6, true},       // deep recursion
        ExternalCase{64, 16, 8, 8, 4, false}));     // rect = half the domain

TEST(ExactMaxRSTest, DegenerateAllSameXFallsBackToBaseCase) {
  auto env = NewMemEnv(512);
  std::vector<SpatialObject> objects;
  for (int i = 0; i < 200; ++i) objects.push_back({42, static_cast<double>(i), 1});
  MaxRSOptions options = SmallExternalOptions();
  options.rect_width = 4;
  options.rect_height = 10;
  auto result = RunExactMaxRS(*env, objects, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_weight, 10.0);
}

TEST(ExactMaxRSTest, CleansUpAllScratchFiles) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(500, 200, 5);
  auto result = RunExactMaxRS(*env, objects, SmallExternalOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(env->ListFiles().empty())
      << "leftover scratch files after a run";
}

TEST(ExactMaxRSTest, DeterministicAcrossRuns) {
  auto objects = testing::RandomIntObjects(1500, 400, 77);
  MaxRSOptions options = SmallExternalOptions();
  auto env1 = NewMemEnv(512);
  auto env2 = NewMemEnv(512);
  auto r1 = RunExactMaxRS(*env1, objects, options);
  auto r2 = RunExactMaxRS(*env2, objects, options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->total_weight, r2->total_weight);
  EXPECT_EQ(r1->location.x, r2->location.x);
  EXPECT_EQ(r1->location.y, r2->location.y);
  EXPECT_EQ(r1->stats.io.total(), r2->stats.io.total());
}

TEST(ExactMaxRSTest, InMemoryShortcutDoesMinimalIo) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(100, 100, 9);
  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  env->stats().Reset();
  MaxRSOptions options;
  options.rect_width = 10;
  options.rect_height = 10;
  options.memory_bytes = 1 << 20;  // plenty: base case at the top level
  auto result = RunExactMaxRS(*env, "data", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.base_cases, 1u);
  EXPECT_EQ(result->stats.recursion_levels, 0u);
  // Only the linear dataset read is allowed.
  const uint64_t data_blocks =
      (objects.size() * sizeof(SpatialObject) + 511) / 512 + 1;
  EXPECT_LE(result->stats.io.total(), data_blocks + 2);
}

TEST(ExactMaxRSTest, RegionIsConsistentWithLocationAndWeight) {
  auto env = NewMemEnv(512);
  auto objects = testing::RandomIntObjects(800, 300, 31);
  MaxRSOptions options = SmallExternalOptions();
  auto result = RunExactMaxRS(*env, objects, options);
  ASSERT_TRUE(result.ok());
  // Any point of the reported max-region must achieve the same weight.
  const Rect region = result->region;
  const Point probes[] = {
      result->location,
      {region.x_lo + 1e-9, region.y_lo + 1e-9},
      {(region.x_lo + region.x_hi) / 2, region.y_lo + 1e-9},
  };
  for (const Point& p : probes) {
    const Rect r = Rect::Centered(p, options.rect_width, options.rect_height);
    EXPECT_EQ(CoveredWeight(objects, r), result->total_weight);
  }
}

TEST(ExactMaxRSTest, IoScalesNearLinearly) {
  // Doubling N should not much more than double the I/O (the log factor is
  // tiny): checks the O((N/B) log_{M/B}(N/B)) envelope empirically.
  MaxRSOptions options;
  options.rect_width = 100;
  options.rect_height = 100;
  options.memory_bytes = 1 << 14;  // 32 blocks of 512B
  uint64_t io_small = 0, io_large = 0;
  {
    auto env = NewMemEnv(512);
    auto objects = testing::RandomIntObjects(4000, 100000, 1);
    auto r = RunExactMaxRS(*env, objects, options);
    ASSERT_TRUE(r.ok());
    io_small = r->stats.io.total();
  }
  {
    auto env = NewMemEnv(512);
    auto objects = testing::RandomIntObjects(8000, 200000, 1);
    auto r = RunExactMaxRS(*env, objects, options);
    ASSERT_TRUE(r.ok());
    io_large = r->stats.io.total();
  }
  EXPECT_LT(io_large, 3 * io_small);
  EXPECT_GT(io_large, io_small);
}

}  // namespace
}  // namespace maxrs
