// Differential tests on continuous (double) coordinates: the integer-grid
// oracle suites exercise exact tie handling; these verify nothing depends on
// integer alignment. With random doubles, coincidences are measure-zero, so
// the half-open sweep and the anchored brute force agree exactly.
#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "circle/approx_maxcrs.h"
#include "circle/exact_maxcrs.h"
#include "core/brute_force.h"
#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "io/env.h"
#include "util/rng.h"

namespace maxrs {
namespace {

std::vector<SpatialObject> RandomRealObjects(size_t n, double extent,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    objects.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent),
                       rng.Uniform(0.1, 5.0)});
  }
  return objects;
}

class FractionalMaxRSTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FractionalMaxRSTest, SweepAgreesWithBruteForceOnReals) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  const size_t n = 50 + rng.UniformU64(150);
  const double extent = rng.Uniform(50, 500);
  const double w = rng.Uniform(extent / 20, extent / 3);
  const double h = rng.Uniform(extent / 20, extent / 3);
  auto objects = RandomRealObjects(n, extent, seed);

  const BruteForceResult oracle = BruteForceMaxRS(objects, w, h);
  const MaxRSResult mem = ExactMaxRSInMemory(objects, w, h);
  ASSERT_DOUBLE_EQ(mem.total_weight, oracle.total_weight) << "seed " << seed;
  ASSERT_DOUBLE_EQ(CoveredWeight(objects, Rect::Centered(mem.location, w, h)),
                   mem.total_weight);

  auto env = NewMemEnv(512);
  MaxRSOptions options;
  options.rect_width = w;
  options.rect_height = h;
  options.memory_bytes = 1 << 13;
  options.fanout = 3;
  options.base_case_max_pieces = 24;
  auto external = RunExactMaxRS(*env, objects, options);
  ASSERT_TRUE(external.ok());
  ASSERT_DOUBLE_EQ(external->total_weight, oracle.total_weight)
      << "seed " << seed;

  ASSERT_TRUE(WriteDataset(*env, "data", objects).ok());
  BaselineOptions baseline_options;
  baseline_options.rect_width = w;
  baseline_options.rect_height = h;
  baseline_options.memory_bytes = 1 << 12;
  auto naive = RunNaivePlaneSweep(*env, "data", baseline_options);
  ASSERT_TRUE(naive.ok());
  EXPECT_DOUBLE_EQ(naive->total_weight, oracle.total_weight) << "seed " << seed;
  auto asb = RunASBTreeSweep(*env, "data", baseline_options);
  ASSERT_TRUE(asb.ok());
  EXPECT_DOUBLE_EQ(asb->total_weight, oracle.total_weight) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractionalMaxRSTest,
                         ::testing::Range<uint64_t>(1, 13));

class FractionalCircleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FractionalCircleTest, CirclePipelineOnReals) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 131 + 7);
  const size_t n = 30 + rng.UniformU64(80);
  const double extent = rng.Uniform(50, 300);
  const double d = rng.Uniform(extent / 10, extent / 2);
  auto objects = RandomRealObjects(n, extent, seed + 1000);

  const ExactMaxCRSResult opt = ExactMaxCRS(objects, d);
  const BruteForceResult oracle = BruteForceMaxCRS(objects, d);
  ASSERT_DOUBLE_EQ(opt.total_weight, oracle.total_weight) << "seed " << seed;

  const MaxCRSResult approx = ApproxMaxCRSInMemory(objects, d);
  EXPECT_GE(approx.total_weight, 0.25 * opt.total_weight - 1e-9);
  EXPECT_LE(approx.total_weight, opt.total_weight + 1e-9);
  EXPECT_DOUBLE_EQ(CoveredWeight(objects, Circle{approx.location, d}),
                   approx.total_weight);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractionalCircleTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace maxrs
