// Streaming-vs-materialized equivalence battery for the zero-
// materialization query pipeline (serve/maxrs_server.h,
// ServeRoutingMode::kStreaming, and core MaxRSOptions::streaming_division).
//
// The streaming pipeline replaces every routed part file with an in-memory
// channel (io/record_stream.h) and overlaps routing with solving — but the
// answer, the division statistics, and the schedule-independence of the
// per-query IoStats must not move:
//
//   - bit-identical answers to the materialized routing across shard
//     counts {1, 2, 7, 16, 64} x worker counts {1, 2, 8} x read_ahead
//     on/off, with per-query I/O deterministic within each configuration
//     (independent of workers and read_ahead) and never above the
//     materialized pipeline's;
//   - a memory-cap sweep from cap=0 (every routed record spills — the
//     materialization worst case) through mid-stream-crossing caps to
//     cap=SIZE_MAX (pure in-memory hand-off): identical answers at every
//     spill level, deterministic I/O per level;
//   - the core recursion's streaming division (channels between parent
//     routing and child solves) against the file-based division: identical
//     answers AND identical division stats (base cases, merges, spans,
//     levels) at 1 and 4 threads, I/O never above the materialized run.
#include <cstddef>
#include <limits>
#include <vector>

#include "core/exact_maxrs.h"
#include "datagen/dataset_io.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "serve/dataset_handle.h"
#include "serve/maxrs_server.h"
#include "test_util.h"

namespace maxrs {
namespace {

constexpr char kDatasetFile[] = "objects";
constexpr size_t kShardCounts[] = {1, 2, 7, 16, 64};
constexpr size_t kWorkerCounts[] = {1, 2, 8};
constexpr size_t kIngestMemoryBytes = 512 * 1024;
// 64KB derives a ~1638-piece base case: shards at low counts still divide
// internally, so the streaming recursion (not just the top level) is on.
constexpr size_t kQueryMemoryBytes = 64 * 1024;
constexpr size_t kNoCap = std::numeric_limits<size_t>::max();
const double kRects[][2] = {{260, 140}, {800, 800}};

std::unique_ptr<Env> MakeEnv(uint64_t seed, size_t n) {
  auto env = NewMemEnv(4096);
  const std::vector<SpatialObject> objects = testing::RandomIntObjects(
      n, /*extent=*/6000, seed, /*random_weights=*/true);
  EXPECT_TRUE(WriteDataset(*env, kDatasetFile, objects).ok());
  return env;
}

MaxRSServerOptions BaseServerOptions(size_t workers) {
  MaxRSServerOptions options;
  options.num_workers = workers;
  options.memory_bytes = kQueryMemoryBytes;
  options.cache_entries = 0;  // every submit pays its full pipeline
  return options;
}

void ExpectBitIdentical(const MaxRSResult& a, const MaxRSResult& b) {
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.location, b.location);
  EXPECT_EQ(a.region, b.region);
}

TEST(StreamingEquivalenceTest, MatchesMaterializedAcrossShardWorkerReadAhead) {
  constexpr size_t kN = 2816;  // realizes all 64 shards (shard_property_test)
  const uint64_t kSeed = 3;
  for (size_t shards : kShardCounts) {
    auto env = MakeEnv(kSeed, kN);
    DatasetHandleOptions ingest;
    ingest.shard_count = shards;
    ingest.memory_bytes = kIngestMemoryBytes;
    auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    ASSERT_EQ(handle->shards().size(), shards);

    // Materialized oracle: answers and per-query block counts.
    std::vector<MaxRSResult> oracle;
    {
      MaxRSServerOptions options = BaseServerOptions(1);
      options.routing_mode = ServeRoutingMode::kMaterialized;
      MaxRSServer server(*env, *handle, options);
      for (const auto& rect : kRects) {
        auto r = server.Submit(rect[0], rect[1]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        oracle.push_back(*r);
      }
    }

    // Streaming at every worker count x read_ahead: bit-identical answers,
    // I/O deterministic across the whole sub-matrix and never above the
    // materialized pipeline's.
    std::vector<IoStatsSnapshot> streaming_io(2);
    bool first_config = true;
    for (size_t workers : kWorkerCounts) {
      for (bool read_ahead : {false, true}) {
        MaxRSServerOptions options = BaseServerOptions(workers);
        options.routing_mode = ServeRoutingMode::kStreaming;
        options.read_ahead = read_ahead;
        MaxRSServer server(*env, *handle, options);
        for (size_t q = 0; q < 2; ++q) {
          auto served = server.Submit(kRects[q][0], kRects[q][1]);
          ASSERT_TRUE(served.ok())
              << served.status().ToString() << " (" << shards << " shards, "
              << workers << " workers, read_ahead=" << read_ahead << ")";
          ExpectBitIdentical(*served, oracle[q]);
          EXPECT_LE(served->stats.io.total(), oracle[q].stats.io.total())
              << shards << " shards, query " << q
              << ": streaming must never out-spend materialized routing";
          if (first_config) {
            streaming_io[q] = served->stats.io;
          } else {
            EXPECT_EQ(served->stats.io.blocks_read,
                      streaming_io[q].blocks_read)
                << shards << " shards, " << workers << " workers, read_ahead="
                << read_ahead << ", query " << q;
            EXPECT_EQ(served->stats.io.blocks_written,
                      streaming_io[q].blocks_written)
                << shards << " shards, " << workers << " workers, read_ahead="
                << read_ahead << ", query " << q;
          }
        }
        first_config = false;
      }
    }
  }
}

TEST(StreamingEquivalenceTest, SpillCapSweepIdenticalAtEverySpillLevel) {
  // cap=0 spills every routed record (streaming degraded to materialization
  // through single spill files), mid caps cross the threshold mid-stream,
  // kNoCap never touches the Env for routing. Answers must be identical at
  // every level; I/O per level must be deterministic across worker counts
  // and write_behind, and the cap=0 run must spend strictly more than the
  // never-spill run (proving the cap actually gates Env traffic).
  constexpr size_t kN = 2816;
  constexpr size_t kShards = 7;
  auto env = MakeEnv(11, kN);
  DatasetHandleOptions ingest;
  ingest.shard_count = kShards;
  ingest.memory_bytes = kIngestMemoryBytes;
  auto handle = DatasetHandle::Ingest(*env, kDatasetFile, ingest);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ASSERT_EQ(handle->shards().size(), kShards);

  std::vector<MaxRSResult> oracle;
  {
    MaxRSServerOptions options = BaseServerOptions(1);
    options.routing_mode = ServeRoutingMode::kMaterialized;
    MaxRSServer server(*env, *handle, options);
    for (const auto& rect : kRects) {
      auto r = server.Submit(rect[0], rect[1]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      oracle.push_back(*r);
    }
  }

  uint64_t io_at_zero_cap = 0, io_at_no_cap = 0;
  for (size_t cap : {size_t{0}, size_t{4096}, size_t{1} << 16, kNoCap}) {
    std::vector<IoStatsSnapshot> io_per_query(2);
    bool first_config = true;
    for (size_t workers : {size_t{1}, size_t{4}}) {
      for (bool write_behind : {false, true}) {
        MaxRSServerOptions options = BaseServerOptions(workers);
        options.routing_mode = ServeRoutingMode::kStreaming;
        options.stream_channel_bytes = cap;
        options.write_behind = write_behind;
        MaxRSServer server(*env, *handle, options);
        for (size_t q = 0; q < 2; ++q) {
          auto served = server.Submit(kRects[q][0], kRects[q][1]);
          ASSERT_TRUE(served.ok())
              << served.status().ToString() << " (cap " << cap << ", "
              << workers << " workers, write_behind=" << write_behind << ")";
          ExpectBitIdentical(*served, oracle[q]);
          if (first_config) {
            io_per_query[q] = served->stats.io;
          } else {
            EXPECT_EQ(served->stats.io.blocks_read, io_per_query[q].blocks_read)
                << "cap " << cap << ", " << workers << " workers, query " << q;
            EXPECT_EQ(served->stats.io.blocks_written,
                      io_per_query[q].blocks_written)
                << "cap " << cap << ", " << workers << " workers, query " << q;
          }
        }
        first_config = false;
      }
    }
    if (cap == 0) io_at_zero_cap = io_per_query[0].total();
    if (cap == kNoCap) io_at_no_cap = io_per_query[0].total();
  }
  EXPECT_GT(io_at_zero_cap, io_at_no_cap)
      << "cap=0 must force spill traffic the in-memory hand-off avoids";
}

TEST(StreamingEquivalenceTest, CoreStreamingDivisionMatchesMaterialized) {
  // The recursion itself: MaxRSOptions::streaming_division routes every
  // division through channels between the parent's routing loop and the
  // child solves. Division decisions depend only on the record sequence,
  // so answers AND division stats must match the file-based recursion
  // exactly; I/O must be deterministic per thread count and never above
  // the materialized run's.
  constexpr size_t kN = 12000;  // divides 2+ levels at the 64KB budget
  const double kW = 420, kH = 260;
  auto env = MakeEnv(5, kN);

  MaxRSOptions options;
  options.rect_width = kW;
  options.rect_height = kH;
  options.memory_bytes = kQueryMemoryBytes;

  IoStatsSnapshot before = env->stats().Snapshot();
  auto materialized = RunExactMaxRS(*env, kDatasetFile, options);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  const uint64_t materialized_io = (env->stats().Snapshot() - before).total();
  ASSERT_GT(materialized->stats.merges, 0u) << "reference must divide";

  uint64_t streaming_io_single = 0;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t cap : {size_t{0}, size_t{1} << 20}) {
      MaxRSOptions streaming = options;
      streaming.streaming_division = true;
      streaming.stream_channel_bytes = cap;
      streaming.num_threads = threads;
      before = env->stats().Snapshot();
      auto result = RunExactMaxRS(*env, kDatasetFile, streaming);
      const uint64_t io = (env->stats().Snapshot() - before).total();
      ASSERT_TRUE(result.ok())
          << result.status().ToString() << " (threads " << threads << ", cap "
          << cap << ")";
      ExpectBitIdentical(*result, *materialized);
      EXPECT_EQ(result->stats.base_cases, materialized->stats.base_cases);
      EXPECT_EQ(result->stats.merges, materialized->stats.merges);
      EXPECT_EQ(result->stats.total_spans, materialized->stats.total_spans);
      EXPECT_EQ(result->stats.recursion_levels,
                materialized->stats.recursion_levels);
      EXPECT_LE(io, materialized_io)
          << "threads " << threads << ", cap " << cap;
      // I/O is a pure function of (input, options): thread count must not
      // move it at either spill level.
      if (threads == 1 && cap == 0) {
        streaming_io_single = io;
      } else if (cap == 0) {
        EXPECT_EQ(io, streaming_io_single) << "threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace maxrs
